//! A Manku–Rajagopalan–Lindsay-style multi-level collapsing-buffer summary
//! (SIGMOD 1998).
//!
//! The stream fills a level-0 buffer of `k` values. When a level already
//! holds a full buffer, the two same-level buffers are COLLAPSEd: merge the
//! sorted contents and keep every other element, producing one buffer at
//! the next level with twice the per-element weight. A buffer at level `ℓ`
//! therefore represents `k·2^ℓ` stream values with `k` stored ones.
//! Rank/quantile queries sum weighted ranks across levels. The alternating
//! even/odd retention offset removes the systematic rank bias of always
//! keeping even positions.

use crate::QuantileSummary;
use streamhist_core::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use streamhist_core::{MergeableSummary, StreamSummary, StreamhistError};

/// Deterministic multi-level quantile summary with buffer size `k`.
///
/// Rank error grows as `O((n/k)·log(n/k))`; choose `k ≈ (1/ε)·log(εn)` for
/// an `εn` target (see `[SRL98]`).
#[derive(Debug, Clone)]
pub struct MrlSummary {
    k: usize,
    n: usize,
    /// `levels[ℓ]` is `None` or one sorted buffer of exactly `k` values,
    /// each with weight `2^ℓ`.
    levels: Vec<Option<Vec<f64>>>,
    /// The filling level-0 buffer (unsorted, < k values).
    partial: Vec<f64>,
    /// Flips each collapse so retained positions alternate even/odd.
    keep_odd: bool,
}

impl MrlSummary {
    /// Creates a summary with buffer size `k` (must be even and >= 2 so
    /// collapses halve cleanly).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k` is odd.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "buffer size must be an even number >= 2"
        );
        Self {
            k,
            n: 0,
            levels: Vec::new(),
            partial: Vec::with_capacity(k),
            keep_odd: false,
        }
    }

    /// Buffer size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Consumes one value, or rejects it if it is not finite. Amortized
    /// `O(log(n/k))` buffer work per value.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::NonFiniteValue`] if `v` is NaN or
    /// infinite.
    pub fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        self.partial.push(v);
        self.n += 1;
        if self.partial.len() == self.k {
            let mut buf = std::mem::replace(&mut self.partial, Vec::with_capacity(self.k));
            buf.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            self.carry(buf, 0);
        }
        Ok(())
    }

    /// Consumes one value. Amortized `O(log(n/k))` buffer work per value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite.
    pub fn push(&mut self, v: f64) {
        if let Err(e) = self.try_push(v) {
            panic!("{e}");
        }
    }

    /// Restores the summary to empty, keeping the configured `k`.
    pub fn reset(&mut self) {
        self.n = 0;
        self.levels.clear();
        self.partial.clear();
        self.keep_odd = false;
    }

    /// Carry-propagates a full sorted buffer into level `lvl`, collapsing
    /// upward while the slot is occupied (binary-counter style).
    fn carry(&mut self, mut buf: Vec<f64>, mut lvl: usize) {
        loop {
            if self.levels.len() <= lvl {
                self.levels.resize(lvl + 1, None);
            }
            match self.levels[lvl].take() {
                None => {
                    self.levels[lvl] = Some(buf);
                    return;
                }
                Some(other) => {
                    buf = self.collapse(buf, other);
                    lvl += 1;
                }
            }
        }
    }

    /// COLLAPSE: merge two sorted `k`-buffers, retain alternating elements.
    fn collapse(&mut self, a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        let offset = usize::from(self.keep_odd);
        self.keep_odd = !self.keep_odd;
        merged.into_iter().skip(offset).step_by(2).collect()
    }

    /// Merges another summary (built with the same `k`) into this one —
    /// the distributed-aggregation operation: summaries built on separate
    /// stream partitions combine into a summary of the union, with the
    /// same per-level weights and error behaviour.
    ///
    /// `O(s log s)` in the stored sizes.
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes differ.
    pub fn merge(&mut self, other: MrlSummary) {
        assert_eq!(self.k, other.k, "summaries must share the buffer size k");
        for v in other.partial {
            self.push(v);
        }
        for (lvl, buf) in other.levels.into_iter().enumerate() {
            if let Some(buf) = buf {
                self.n += self.k << lvl;
                self.carry(buf, lvl);
            }
        }
    }

    /// All stored `(value, weight)` pairs, including the partial buffer.
    fn weighted(&self) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = Vec::new();
        for &v in &self.partial {
            out.push((v, 1));
        }
        for (lvl, buf) in self.levels.iter().enumerate() {
            if let Some(buf) = buf {
                let w = 1u64 << lvl;
                out.extend(buf.iter().map(|&v| (v, w)));
            }
        }
        out
    }
}

/// Fallible wrapper around the inherent consuming
/// [`merge`](MrlSummary::merge): `k` mismatch is rejected with
/// [`StreamhistError::InvalidParameter`] instead of the panic, and the
/// right-hand side is cloned instead of consumed. Per-level weights are
/// preserved exactly, so merged rank error stays within the sum of the
/// parts' bounds (DESIGN.md §7). Note the inherent method shadows the
/// trait's k-way combinator in path syntax — spell that one
/// `MergeableSummary::merge(&parts)`.
impl MergeableSummary for MrlSummary {
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
        if self.k != other.k {
            return Err(StreamhistError::InvalidParameter {
                param: "k",
                message: "merge requires identical buffer sizes",
            });
        }
        self.merge(other.clone());
        Ok(())
    }
}

impl Checkpoint for MrlSummary {
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::MRL);
        w.put_usize(self.k);
        w.put_usize(self.n);
        w.put_u8(u8::from(self.keep_odd));
        w.put_usize(self.partial.len());
        for &v in &self.partial {
            w.put_f64(v);
        }
        w.put_usize(self.levels.len());
        for buf in &self.levels {
            match buf {
                None => w.put_u8(0),
                Some(buf) => {
                    w.put_u8(1);
                    for &v in buf {
                        w.put_f64(v);
                    }
                }
            }
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        let mut r = FrameReader::open(bytes, tag::MRL)?;
        let k = r.get_usize()?;
        if k < 2 || !k.is_multiple_of(2) {
            return Err(corrupt("buffer size must be an even number >= 2"));
        }
        let n = r.get_usize()?;
        let keep_odd = match r.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(corrupt("invalid boolean byte")),
        };
        let partial_len = r.get_count(8)?;
        if partial_len >= k {
            return Err(corrupt("partial buffer at or past k"));
        }
        let mut partial = Vec::with_capacity(k);
        for _ in 0..partial_len {
            partial.push(r.get_f64()?);
        }
        let num_levels = r.get_count(1)?;
        let mut levels = Vec::with_capacity(num_levels);
        for _ in 0..num_levels {
            match r.get_u8()? {
                0 => levels.push(None),
                1 => {
                    // Every occupied level holds exactly one sorted
                    // k-buffer.
                    if r.remaining() < k * 8 {
                        return Err(corrupt("payload truncated"));
                    }
                    let mut buf = Vec::with_capacity(k);
                    let mut prev = f64::NEG_INFINITY;
                    for _ in 0..k {
                        let v = r.get_f64()?;
                        if v < prev {
                            return Err(corrupt("MRL level buffer out of order"));
                        }
                        prev = v;
                        buf.push(v);
                    }
                    levels.push(Some(buf));
                }
                _ => return Err(corrupt("invalid level-presence byte")),
            }
        }
        r.finish()?;
        Ok(Self {
            k,
            n,
            levels,
            partial,
            keep_odd,
        })
    }
}

impl StreamSummary for MrlSummary {
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        MrlSummary::try_push(self, v)
    }

    fn push(&mut self, v: f64) {
        MrlSummary::push(self, v);
    }

    /// Number of stream values consumed (`n`, not the stored element count —
    /// see [`QuantileSummary::stored`] for the space diagnostic).
    fn len(&self) -> usize {
        self.n
    }

    fn reset(&mut self) {
        MrlSummary::reset(self);
    }
}

impl QuantileSummary for MrlSummary {
    fn count(&self) -> usize {
        self.n
    }

    fn quantile(&self, phi: f64) -> f64 {
        assert!(self.n > 0, "summary is empty");
        assert!((0.0..=1.0).contains(&phi), "phi must be in [0, 1]");
        let mut w = self.weighted();
        w.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        let total: u64 = w.iter().map(|&(_, wt)| wt).sum();
        let target = (phi * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for &(v, wt) in &w {
            acc += wt;
            if acc >= target {
                return v;
            }
        }
        w.last().expect("non-empty").0
    }

    fn rank(&self, v: f64) -> usize {
        self.weighted()
            .iter()
            .filter(|&&(x, _)| x <= v)
            .map(|&(_, w)| w as usize)
            .sum()
    }

    fn stored(&self) -> usize {
        self.partial.len()
            + self
                .levels
                .iter()
                .map(|b| b.as_ref().map_or(0, Vec::len))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_one_buffer() {
        let mut m = MrlSummary::new(64);
        for v in [5.0, 1.0, 3.0] {
            m.push(v);
        }
        assert_eq!(m.quantile(0.0), 1.0);
        assert_eq!(m.quantile(0.5), 3.0);
        assert_eq!(m.quantile(1.0), 5.0);
        assert_eq!(m.rank(2.0), 1);
        assert_eq!(m.stored(), 3);
    }

    #[test]
    fn median_of_large_stream_is_close() {
        let n = 50_000usize;
        let mut m = MrlSummary::new(256);
        for i in 0..n {
            m.push(((i * 7919) % n) as f64); // pseudo-shuffled 0..n
        }
        let med = m.quantile(0.5);
        // Tolerance: a generous multiple of n/k * log2(n/k).
        let tol = (n / 256) as f64 * ((n / 256) as f64).log2() * 4.0;
        assert!(
            (med - (n / 2) as f64).abs() <= tol,
            "median {med}, tol {tol}"
        );
    }

    #[test]
    fn space_is_logarithmic_in_stream_length() {
        let mut m = MrlSummary::new(128);
        for i in 0..200_000 {
            m.push((i % 999) as f64);
        }
        // <= one buffer per level + partial.
        let levels = (200_000f64 / 128.0).log2().ceil() as usize + 1;
        assert!(m.stored() <= 128 * (levels + 1), "stored {}", m.stored());
    }

    #[test]
    fn quantiles_are_monotone_in_phi() {
        let mut m = MrlSummary::new(32);
        for i in 0..5_000 {
            m.push(((i * 613) % 5000) as f64);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = m.quantile(i as f64 / 20.0);
            assert!(q >= last, "phi {} gave {q} < {last}", i as f64 / 20.0);
            last = q;
        }
    }

    #[test]
    fn rank_is_within_tolerance_on_uniform_data() {
        let n = 20_000usize;
        let k = 256;
        let mut m = MrlSummary::new(k);
        for i in 0..n {
            m.push((i % 1000) as f64);
        }
        // exact rank of 499.5-ish probe = n/2
        let est = m.rank(499.0);
        let exact = n / 2;
        let tol = (n / k) as f64 * ((n / k) as f64).log2().max(1.0) * 4.0;
        assert!(
            (est as f64 - exact as f64).abs() <= tol,
            "rank est {est}, exact {exact}, tol {tol}"
        );
    }

    #[test]
    fn merge_combines_partitions() {
        let n = 30_000usize;
        let k = 256;
        // Partition a pseudo-shuffled 0..n across three summaries.
        let mut parts: Vec<MrlSummary> = (0..3).map(|_| MrlSummary::new(k)).collect();
        for i in 0..n {
            parts[i % 3].push(((i * 7919) % n) as f64);
        }
        let mut merged = parts.remove(0);
        for p in parts {
            merged.merge(p);
        }
        assert_eq!(merged.count(), n);
        let med = merged.quantile(0.5);
        let tol = (n / k) as f64 * ((n / k) as f64).log2() * 4.0;
        assert!(
            (med - (n / 2) as f64).abs() <= tol,
            "median {med}, tol {tol}"
        );
        // Extremes survive merging within tolerance.
        assert!(merged.quantile(0.0) <= tol);
        assert!(merged.quantile(1.0) >= n as f64 - 1.0 - tol);
    }

    #[test]
    fn mergeable_summary_rejects_mismatched_k_without_panicking() {
        let mut a = MrlSummary::new(4);
        a.push(1.0);
        let b = MrlSummary::new(8);
        let err = a.merge_from(&b).expect_err("k mismatch");
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter { param: "k", .. }
        ));
        assert_eq!(a.count(), 1);
        // Matching k merges through the trait with the rhs intact.
        let mut c = MrlSummary::new(4);
        c.push(2.0);
        a.merge_from(&c).expect("same k");
        assert_eq!(a.count(), 2);
        assert_eq!(c.count(), 1);
    }

    #[test]
    #[should_panic(expected = "share the buffer size")]
    fn merge_requires_matching_k() {
        let mut a = MrlSummary::new(4);
        a.merge(MrlSummary::new(8));
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_buffer_size_rejected() {
        let _ = MrlSummary::new(3);
    }

    #[test]
    #[should_panic(expected = "summary is empty")]
    fn quantile_of_empty_panics() {
        let m = MrlSummary::new(4);
        let _ = m.quantile(0.5);
    }

    #[test]
    fn push_is_the_single_ingest_entry_point() {
        let mut m = MrlSummary::new(4);
        m.push(3.0);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn stream_summary_rejects_nan_and_resets() {
        use streamhist_core::StreamSummary;
        let mut m = MrlSummary::new(4);
        let out = m.push_batch(&[1.0, f64::NAN, 2.0]);
        assert_eq!((out.accepted, out.rejected), (2, 1));
        assert_eq!(StreamSummary::len(&m), 2);
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.stored(), 0);
        m.push(7.0);
        assert_eq!(m.quantile(1.0), 7.0);
    }
}
