//! # streamhist-quantile
//!
//! One-pass quantile summaries over data streams — the order-statistics
//! substrate from the reproduced paper's related-work section (§2):
//!
//! * [`GkSummary`] — the Greenwald–Khanna summary (SIGMOD 2001, `[GK01]`):
//!   deterministic ε-approximate quantiles in `O((1/ε) log(εN))` space,
//!   "an improvement on the algorithms by Manku et al., requiring less
//!   memory".
//! * [`MrlSummary`] — the multi-level collapsing-buffer scheme in the style
//!   of Manku–Rajagopalan–Lindsay (SIGMOD 1998, `[SRL98]`), implemented as
//!   a deterministic compactor hierarchy.
//! * [`EquiDepthHistogram`] — equi-depth **value-domain** histograms
//!   derived from either summary, the classical selectivity-estimation
//!   synopsis: value-range `selectivity` and `rank` estimates.
//!   [`StreamingEquiDepth`] packages a GK summary plus a bucket budget as a
//!   one-pass ingesting synopsis.
//!
//! All ingesting types implement the workspace-wide
//! [`StreamSummary`] trait (`try_push`/`push`/`push_batch`/`len`/`reset`);
//! the former `insert` entry points have been removed in favour of `push`.
//!
//! These are *value-domain* synopses: they answer "how many stream values
//! fall in `[a, b]`", complementing the *index-domain* histograms of
//! `streamhist-core`/`streamhist-stream` that answer "what is the sum of
//! the last `n` points over positions `[i, j]`". The workspace benches use
//! them as the additional applicable baseline for stream approximation
//! (`DESIGN.md` §3.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equidepth;
pub mod gk;
pub mod mrl;

pub use equidepth::{EquiDepthHistogram, StreamingEquiDepth};
pub use gk::GkSummary;
pub use mrl::MrlSummary;
pub use streamhist_core::{BatchOutcome, MergeableSummary, StreamSummary};

/// Common interface of the quantile summaries: enough to extract quantiles
/// and ranks, and to derive equi-depth histograms.
pub trait QuantileSummary {
    /// Number of stream values consumed.
    fn count(&self) -> usize;

    /// An estimate of the value at quantile `phi` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty or `phi` is outside `[0, 1]`.
    fn quantile(&self, phi: f64) -> f64;

    /// An estimate of the rank of `v`: the number of consumed values `<= v`.
    fn rank(&self, v: f64) -> usize;

    /// Number of stored tuples/elements (the space diagnostic).
    fn stored(&self) -> usize;
}
