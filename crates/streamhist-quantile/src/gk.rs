//! The Greenwald–Khanna ε-approximate quantile summary (SIGMOD 2001).
//!
//! The summary is an ordered list of tuples `(v_i, g_i, Δ_i)` where
//! `g_i = rmin(v_i) − rmin(v_{i−1})` and `Δ_i = rmax(v_i) − rmin(v_i)`.
//! The invariant `g_i + Δ_i <= 2εn` guarantees that any rank query can be
//! answered within `εn`. Insertion places a new tuple with `g = 1` and
//! `Δ = ⌊2εn⌋` (0 at the extremes); a periodic `compress` pass merges
//! tuples whose combined uncertainty still fits the invariant.

use crate::QuantileSummary;
use streamhist_core::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use streamhist_core::{MergeableSummary, StreamSummary, StreamhistError};

#[derive(Debug, Clone, Copy)]
struct Tuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// Deterministic ε-approximate quantile summary.
///
/// # Example
///
/// ```
/// use streamhist_quantile::{GkSummary, QuantileSummary};
///
/// let mut gk = GkSummary::new(0.01);
/// for i in 0..10_000 {
///     gk.push(i as f64);
/// }
/// let med = gk.quantile(0.5);
/// assert!((med - 5000.0).abs() <= 100.0 + 1.0); // rank error <= eps * n
/// assert!(gk.stored() < 10_000 / 10); // far smaller than the stream
/// ```
#[derive(Debug, Clone)]
pub struct GkSummary {
    eps: f64,
    n: usize,
    tuples: Vec<Tuple>,
    since_compress: usize,
    compress_period: usize,
}

impl GkSummary {
    /// Creates a summary with rank-error tolerance `eps·n`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        let compress_period = (1.0 / (2.0 * eps)).floor().max(1.0) as usize;
        Self {
            eps,
            n: 0,
            tuples: Vec::new(),
            since_compress: 0,
            compress_period,
        }
    }

    /// The configured tolerance `ε`.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Consumes one value, or rejects it if it is not finite. Amortized
    /// `O(log s + s/period)` where `s` is the summary size.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::NonFiniteValue`] if `v` is NaN or
    /// infinite.
    pub fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        let pos = self.tuples.partition_point(|t| t.v < v);
        let at_edge = pos == 0 || pos == self.tuples.len();
        let delta = if at_edge || self.n == 0 {
            0
        } else {
            (2.0 * self.eps * self.n as f64).floor() as u64
        };
        self.tuples.insert(pos, Tuple { v, g: 1, delta });
        self.n += 1;
        self.since_compress += 1;
        if self.since_compress >= self.compress_period {
            self.compress();
            self.since_compress = 0;
        }
        Ok(())
    }

    /// Consumes one value. Amortized `O(log s + s/period)` where `s` is the
    /// summary size.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite.
    pub fn push(&mut self, v: f64) {
        if let Err(e) = self.try_push(v) {
            panic!("{e}");
        }
    }

    /// Restores the summary to empty, keeping the configured `eps`.
    pub fn reset(&mut self) {
        self.n = 0;
        self.tuples.clear();
        self.since_compress = 0;
    }

    /// Merges adjacent tuples whose combined band fits `2εn`, right to left
    /// (the GK COMPRESS operation, simplified to ignore band nesting — this
    /// weakens the constant-factor space bound, not correctness).
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.eps * self.n as f64).floor() as u64;
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        // Never merge away the extremes (their ranks must stay exact).
        let last_idx = self.tuples.len() - 1;
        for (i, t) in self.tuples.iter().copied().enumerate() {
            if i == 0 || i == last_idx {
                out.push(t);
                continue;
            }
            // Merging the previous tuple into `t` is allowed when it is not
            // the first tuple and the merged uncertainty fits the invariant.
            let can_merge = out.len() > 1 && {
                let prev = out.last().expect("first tuple always pushed");
                prev.g + t.g + t.delta <= threshold
            };
            if can_merge {
                let prev = out.last_mut().expect("first tuple always pushed");
                *prev = Tuple {
                    v: t.v,
                    g: prev.g + t.g,
                    delta: t.delta,
                };
            } else {
                out.push(t);
            }
        }
        self.tuples = out;
    }
}

/// The standard mergeable-GK rule: interleave the two sorted tuple lists;
/// a tuple keeps its `g`, and its `Δ` widens by the rank band of the
/// *next* tuple originating from the other summary (`Δ' = Δ + g_u + Δ_u −
/// 1`, no widening when no such tuple follows). Since `g + Δ ≤ 2εn` held
/// in each part, every merged tuple satisfies `g + Δ' ≤ 2ε(n₁ + n₂)`, so
/// the merged summary answers rank queries within `ε·(n₁ + n₂)` — rank
/// errors **add** across a merge tree (DESIGN.md §7). A compress pass runs
/// after the splice to restore the space bound.
impl MergeableSummary for GkSummary {
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
        if self.eps != other.eps {
            return Err(StreamhistError::InvalidParameter {
                param: "eps",
                message: "merge requires identical rank-error tolerances",
            });
        }
        if other.tuples.is_empty() {
            self.n += other.n;
            return Ok(());
        }
        if self.tuples.is_empty() {
            self.tuples = other.tuples.clone();
            self.n += other.n;
            self.since_compress = 0;
            return Ok(());
        }
        let (a, b) = (&self.tuples, &other.tuples);
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let take_a = j == b.len() || (i < a.len() && a[i].v <= b[j].v);
            let (mut t, next_other) = if take_a {
                let t = a[i];
                i += 1;
                (t, b.get(j))
            } else {
                let t = b[j];
                j += 1;
                (t, a.get(i))
            };
            if let Some(u) = next_other {
                // g >= 1 for every tuple, so the subtraction cannot wrap.
                t.delta += u.g + u.delta - 1;
            }
            merged.push(t);
        }
        self.tuples = merged;
        self.n += other.n;
        self.since_compress = 0;
        self.compress();
        Ok(())
    }
}

impl Checkpoint for GkSummary {
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::GK);
        w.put_f64(self.eps);
        w.put_usize(self.n);
        w.put_usize(self.since_compress);
        w.put_usize(self.tuples.len());
        for t in &self.tuples {
            w.put_f64(t.v);
            w.put_varint(t.g);
            w.put_varint(t.delta);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        let mut r = FrameReader::open(bytes, tag::GK)?;
        let eps = r.get_f64()?;
        if !(eps > 0.0 && eps < 1.0) {
            return Err(corrupt("eps outside (0, 1)"));
        }
        let n = r.get_usize()?;
        let since_compress = r.get_usize()?;
        let count = r.get_count(10)?; // f64 + two one-byte varints minimum
        let mut tuples = Vec::with_capacity(count);
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..count {
            let v = r.get_f64()?;
            if v < prev {
                return Err(corrupt("GK tuples out of order"));
            }
            prev = v;
            let g = r.get_varint()?;
            let delta = r.get_varint()?;
            tuples.push(Tuple { v, g, delta });
        }
        r.finish()?;
        // `compress_period` is a pure function of eps, so re-deriving it
        // reproduces the exact original (eps round-trips bit-for-bit).
        let compress_period = (1.0 / (2.0 * eps)).floor().max(1.0) as usize;
        if since_compress >= compress_period {
            return Err(corrupt("compress schedule position out of range"));
        }
        Ok(Self {
            eps,
            n,
            tuples,
            since_compress,
            compress_period,
        })
    }
}

impl StreamSummary for GkSummary {
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        GkSummary::try_push(self, v)
    }

    fn push(&mut self, v: f64) {
        GkSummary::push(self, v);
    }

    /// Number of stream values consumed (`n`, not the stored tuple count —
    /// see [`QuantileSummary::stored`] for the space diagnostic).
    fn len(&self) -> usize {
        self.n
    }

    fn reset(&mut self) {
        GkSummary::reset(self);
    }
}

impl QuantileSummary for GkSummary {
    fn count(&self) -> usize {
        self.n
    }

    fn quantile(&self, phi: f64) -> f64 {
        assert!(!self.tuples.is_empty(), "summary is empty");
        assert!((0.0..=1.0).contains(&phi), "phi must be in [0, 1]");
        let r = (phi * self.n as f64).ceil().max(1.0);
        // Return the tuple whose rank band [rmin, rmax] deviates least from
        // the target rank. Whenever a tuple provably covering r exists
        // (the classical case εn >= 1) this picks one; for tiny streams
        // where ⌊2εn⌋ rounding weakens the invariant it still returns the
        // best available answer instead of an arbitrary tuple.
        let mut rmin: u64 = 0;
        let mut best = (f64::INFINITY, self.tuples[0].v);
        for t in &self.tuples {
            rmin += t.g;
            let rmax = rmin + t.delta;
            let deviation = (r - rmin as f64).max(rmax as f64 - r).max(0.0);
            if deviation < best.0 {
                best = (deviation, t.v);
            }
        }
        best.1
    }

    fn rank(&self, v: f64) -> usize {
        let mut rmin: u64 = 0;
        for t in &self.tuples {
            if t.v > v {
                // True rank lies in [rmin(prev), rmax(this) - 1]; the band
                // width g + Δ is bounded by 2εn, so the midpoint is within
                // εn of the truth.
                return (rmin + (t.g + t.delta) / 2) as usize;
            }
            rmin += t.g;
        }
        self.n
    }

    fn stored(&self) -> usize {
        self.tuples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_rank(sorted: &[f64], v: f64) -> usize {
        sorted.partition_point(|&x| x <= v)
    }

    #[test]
    fn quantiles_of_sorted_stream_within_eps() {
        let n = 20_000;
        let eps = 0.01;
        let mut gk = GkSummary::new(eps);
        for i in 0..n {
            gk.push(i as f64);
        }
        for phi in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let q = gk.quantile(phi);
            let target = (phi * n as f64).ceil().max(1.0);
            // value == rank−1 for this stream
            assert!(
                (q - (target - 1.0)).abs() <= eps * n as f64 + 1.0,
                "phi={phi}: got {q}, target {target}"
            );
        }
    }

    #[test]
    fn quantiles_of_adversarial_orders() {
        let n = 10_000usize;
        let eps = 0.02;
        // Reversed and interleaved insertion orders.
        let orders: Vec<Vec<usize>> = vec![
            (0..n).rev().collect(),
            (0..n).map(|i| (i * 7919) % n).collect(), // pseudo-shuffle (7919 prime, coprime)
        ];
        for order in orders {
            let mut gk = GkSummary::new(eps);
            for &i in &order {
                gk.push(i as f64);
            }
            for phi in [0.1, 0.5, 0.9] {
                let q = gk.quantile(phi);
                let target = (phi * n as f64).ceil();
                assert!(
                    (q - (target - 1.0)).abs() <= eps * n as f64 + 1.0,
                    "phi={phi}: got {q}"
                );
            }
        }
    }

    #[test]
    fn space_is_sublinear() {
        let mut gk = GkSummary::new(0.01);
        for i in 0..100_000 {
            gk.push(((i * 31) % 1000) as f64);
        }
        assert!(
            gk.stored() < 2_000,
            "stored {} tuples for n=100000",
            gk.stored()
        );
    }

    #[test]
    fn rank_estimates_within_eps() {
        let n = 5_000;
        let eps = 0.02;
        let mut gk = GkSummary::new(eps);
        let mut vals: Vec<f64> = Vec::with_capacity(n);
        for i in 0..n {
            let v = ((i * 137 + 11) % 997) as f64;
            gk.push(v);
            vals.push(v);
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for probe in [0.0, 100.0, 250.0, 500.0, 996.0, 2000.0] {
            let est = gk.rank(probe);
            let exact = exact_rank(&vals, probe);
            assert!(
                (est as i64 - exact as i64).unsigned_abs() as f64 <= eps * n as f64 + 1.0,
                "probe {probe}: est {est} exact {exact}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut gk = GkSummary::new(0.05);
        for v in [5.0, 1.0, 9.0, 3.0, 7.0] {
            gk.push(v);
        }
        assert_eq!(gk.quantile(0.0), 1.0);
        assert_eq!(gk.quantile(1.0), 9.0);
    }

    #[test]
    fn duplicates_are_handled() {
        let mut gk = GkSummary::new(0.05);
        for _ in 0..1000 {
            gk.push(42.0);
        }
        assert_eq!(gk.quantile(0.5), 42.0);
        assert_eq!(gk.rank(41.0), 0);
        assert_eq!(gk.rank(42.0), 1000);
    }

    #[test]
    #[should_panic(expected = "summary is empty")]
    fn quantile_of_empty_panics() {
        let gk = GkSummary::new(0.1);
        let _ = gk.quantile(0.5);
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn invalid_eps_rejected() {
        let _ = GkSummary::new(1.5);
    }

    #[test]
    fn push_is_the_single_ingest_entry_point() {
        let mut gk = GkSummary::new(0.1);
        gk.push(3.0);
        assert_eq!(gk.count(), 1);
    }

    #[test]
    fn merged_partitions_answer_within_eps_of_whole_stream() {
        let n = 12_000usize;
        let eps = 0.02;
        let values: Vec<f64> = (0..n).map(|i| ((i * 7919) % n) as f64).collect();
        let mut parts: Vec<GkSummary> = Vec::new();
        for chunk in values.chunks(n / 4) {
            let mut gk = GkSummary::new(eps);
            for &v in chunk {
                gk.push(v);
            }
            parts.push(gk);
        }
        let refs: Vec<&GkSummary> = parts.iter().collect();
        let merged = GkSummary::merge(&refs).expect("same eps");
        assert_eq!(merged.count(), n);
        for phi in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let q = merged.quantile(phi);
            let target = (phi * n as f64).ceil().max(1.0);
            assert!(
                (q - (target - 1.0)).abs() <= eps * n as f64 + 1.0,
                "phi={phi}: got {q}, target {target}"
            );
        }
        // Space stays summary-sized after the post-merge compress.
        assert!(merged.stored() < n / 10);
    }

    #[test]
    fn merge_rejects_mismatched_eps_and_leaves_receiver_unchanged() {
        let mut a = GkSummary::new(0.01);
        a.push(1.0);
        let mut b = GkSummary::new(0.02);
        b.push(2.0);
        let err = a.merge_from(&b).expect_err("eps mismatch");
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter { param: "eps", .. }
        ));
        assert_eq!(a.count(), 1);
        assert_eq!(a.quantile(0.5), 1.0);
    }

    #[test]
    fn merge_with_empty_sides_is_identity() {
        let mut a = GkSummary::new(0.05);
        for v in [3.0, 1.0, 2.0] {
            a.push(v);
        }
        let empty = GkSummary::new(0.05);
        a.merge_from(&empty).expect("empty rhs");
        assert_eq!(a.count(), 3);
        let mut lhs = GkSummary::new(0.05);
        lhs.merge_from(&a).expect("empty lhs");
        assert_eq!(lhs.count(), 3);
        assert_eq!(lhs.quantile(0.0), 1.0);
        assert_eq!(lhs.quantile(1.0), 3.0);
    }

    #[test]
    fn stream_summary_rejects_nan_and_resets() {
        use streamhist_core::StreamSummary;
        let mut gk = GkSummary::new(0.1);
        let out = gk.push_batch(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!((out.accepted, out.rejected), (2, 2));
        assert_eq!(StreamSummary::len(&gk), 2);
        gk.reset();
        assert!(gk.is_empty());
        assert_eq!(gk.stored(), 0);
        gk.push(7.0);
        assert_eq!(gk.quantile(0.5), 7.0);
    }
}
