//! Equi-depth value-domain histograms derived from quantile summaries.
//!
//! An equi-depth histogram with `b` buckets places boundaries at the
//! `i/b` quantiles, so every bucket holds (approximately) `n/b` values.
//! This is the classical selectivity-estimation synopsis; deriving it from
//! a one-pass summary makes it a stream synopsis.

use crate::gk::GkSummary;
use crate::QuantileSummary;
use streamhist_core::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use streamhist_core::{MergeableSummary, StreamSummary, StreamhistError};

/// Equi-depth histogram over the *value* domain.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    /// `b + 1` boundaries: `boundaries[0]` is the minimum (0-quantile),
    /// `boundaries[b]` the maximum.
    boundaries: Vec<f64>,
    /// Total number of summarized values.
    n: usize,
}

impl EquiDepthHistogram {
    /// Derives a `b`-bucket equi-depth histogram from any quantile summary.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` or the summary is empty.
    #[must_use]
    pub fn from_summary<S: QuantileSummary>(summary: &S, b: usize) -> Self {
        assert!(b > 0, "need at least one bucket");
        assert!(summary.count() > 0, "summary is empty");
        let boundaries: Vec<f64> = (0..=b)
            .map(|i| summary.quantile(i as f64 / b as f64))
            .collect();
        Self {
            boundaries,
            n: summary.count(),
        }
    }

    /// Number of buckets.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Number of summarized values.
    #[must_use]
    pub fn count(&self) -> usize {
        self.n
    }

    /// The `b + 1` bucket boundaries, non-decreasing.
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Estimated fraction of values `<= v` (the **upper** value of the CDF
    /// at a point mass): linear interpolation between boundaries, jumping
    /// to the top of any vertical step caused by repeated boundaries
    /// (heavy duplicates in the data).
    #[must_use]
    pub fn cdf(&self, v: f64) -> f64 {
        let b = self.num_buckets();
        // Number of boundaries <= v.
        let i = self.boundaries.partition_point(|&x| x <= v);
        if i == 0 {
            return 0.0;
        }
        if i == b + 1 {
            return 1.0;
        }
        // boundaries[i-1] <= v < boundaries[i], and they are distinct.
        let lo = self.boundaries[i - 1];
        let hi = self.boundaries[i];
        let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((i - 1) as f64 + frac) / b as f64
    }

    /// Estimated fraction of values strictly `< v` (the **lower** value of
    /// the CDF at a point mass).
    #[must_use]
    pub fn cdf_below(&self, v: f64) -> f64 {
        let b = self.num_buckets();
        // Number of boundaries strictly below v.
        let i = self.boundaries.partition_point(|&x| x < v);
        if i == 0 {
            return 0.0;
        }
        if i == b + 1 {
            return 1.0;
        }
        // boundaries[i-1] < v <= boundaries[i], and they are distinct.
        let lo = self.boundaries[i - 1];
        let hi = self.boundaries[i];
        let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((i - 1) as f64 + frac) / b as f64
    }

    /// Estimated selectivity of the **closed** value range `[lo, hi]` — the
    /// fraction of summarized values falling inside, including point masses
    /// at both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn selectivity(&self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "range lo must not exceed hi");
        (self.cdf(hi) - self.cdf_below(lo)).max(0.0)
    }

    /// Estimated count of values in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn range_count(&self, lo: f64, hi: f64) -> f64 {
        self.selectivity(lo, hi) * self.n as f64
    }
}

/// A *streaming* equi-depth histogram: a [`GkSummary`] that ingests the
/// stream one-pass and materializes a `b`-bucket [`EquiDepthHistogram`] on
/// demand — the value-domain counterpart of the index-domain streaming
/// summaries, behind the same [`StreamSummary`] ingestion surface.
///
/// # Example
///
/// ```
/// use streamhist_core::StreamSummary;
/// use streamhist_quantile::StreamingEquiDepth;
///
/// let mut ed = StreamingEquiDepth::new(0.01, 8);
/// for i in 0..10_000 {
///     ed.push((i % 100) as f64);
/// }
/// let h = ed.histogram();
/// assert_eq!(h.num_buckets(), 8);
/// assert!((h.selectivity(0.0, 49.0) - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEquiDepth {
    summary: GkSummary,
    b: usize,
}

impl StreamingEquiDepth {
    /// Creates a streaming equi-depth histogram with quantile tolerance
    /// `eps` and bucket budget `b`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `b > 0`.
    #[must_use]
    pub fn new(eps: f64, b: usize) -> Self {
        assert!(b > 0, "need at least one bucket");
        Self {
            summary: GkSummary::new(eps),
            b,
        }
    }

    /// The bucket budget `b`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The backing quantile summary.
    #[must_use]
    pub fn summary(&self) -> &GkSummary {
        &self.summary
    }

    /// Derives the current `b`-bucket equi-depth histogram.
    ///
    /// # Panics
    ///
    /// Panics if no values have been consumed yet.
    #[must_use]
    pub fn histogram(&self) -> EquiDepthHistogram {
        EquiDepthHistogram::from_summary(&self.summary, self.b)
    }
}

/// Delegates to the backing [`GkSummary`] merge after checking that both
/// the bucket budget `b` and the GK tolerance agree; the derived
/// equi-depth boundaries then inherit the additive GK rank-error bound
/// (DESIGN.md §7).
impl MergeableSummary for StreamingEquiDepth {
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
        if self.b != other.b {
            return Err(StreamhistError::InvalidParameter {
                param: "b",
                message: "merge requires identical bucket budgets",
            });
        }
        self.summary.merge_from(&other.summary)
    }
}

impl Checkpoint for StreamingEquiDepth {
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::EQUI_DEPTH);
        w.put_usize(self.b);
        // The backing GK summary nests as its own self-validating frame.
        w.put_bytes(&self.summary.encode_checkpoint());
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let mut r = FrameReader::open(bytes, tag::EQUI_DEPTH)?;
        let b = r.get_usize()?;
        if b == 0 {
            return Err(StreamhistError::CorruptCheckpoint {
                reason: "need at least one bucket",
            });
        }
        let summary = GkSummary::restore(r.get_bytes()?)?;
        r.finish()?;
        Ok(Self { summary, b })
    }
}

impl StreamSummary for StreamingEquiDepth {
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        self.summary.try_push(v)
    }

    fn len(&self) -> usize {
        self.summary.count()
    }

    fn reset(&mut self) {
        self.summary.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gk::GkSummary;
    use crate::mrl::MrlSummary;

    fn uniform_gk(n: usize) -> GkSummary {
        let mut gk = GkSummary::new(0.005);
        for i in 0..n {
            gk.push(((i * 7919) % n) as f64);
        }
        gk
    }

    #[test]
    fn boundaries_are_monotone() {
        let gk = uniform_gk(10_000);
        let h = EquiDepthHistogram::from_summary(&gk, 16);
        assert_eq!(h.num_buckets(), 16);
        for w in h.boundaries().windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn uniform_data_gives_near_uniform_boundaries() {
        let n = 10_000;
        let h = EquiDepthHistogram::from_summary(&uniform_gk(n), 10);
        for (i, &b) in h.boundaries().iter().enumerate() {
            let expect = i as f64 / 10.0 * n as f64;
            assert!(
                (b - expect).abs() <= 0.02 * n as f64,
                "boundary {i}: {b} vs {expect}"
            );
        }
    }

    #[test]
    fn selectivity_of_uniform_range_is_proportional() {
        let n = 10_000;
        let h = EquiDepthHistogram::from_summary(&uniform_gk(n), 20);
        let sel = h.selectivity(2_500.0, 7_500.0);
        assert!((sel - 0.5).abs() < 0.05, "sel {sel}");
        assert!((h.range_count(0.0, 9_999.0) - n as f64).abs() < 0.05 * n as f64);
    }

    #[test]
    fn cdf_is_clamped_and_monotone() {
        let h = EquiDepthHistogram::from_summary(&uniform_gk(1_000), 8);
        assert_eq!(h.cdf(-10.0), 0.0);
        assert_eq!(h.cdf(1e9), 1.0);
        let mut last = 0.0;
        for p in 0..100 {
            let c = h.cdf(p as f64 * 10.0);
            assert!(c >= last - 1e-12);
            last = c;
        }
    }

    #[test]
    fn works_from_mrl_too() {
        let mut m = MrlSummary::new(128);
        let n = 8_192;
        for i in 0..n {
            m.push(((i * 613) % n) as f64);
        }
        let h = EquiDepthHistogram::from_summary(&m, 8);
        let sel = h.selectivity(0.0, (n / 2) as f64);
        assert!((sel - 0.5).abs() < 0.1, "sel {sel}");
    }

    #[test]
    fn streaming_equi_depth_tracks_the_batch_derivation() {
        let n = 10_000;
        let mut ed = StreamingEquiDepth::new(0.005, 10);
        let mut gk = GkSummary::new(0.005);
        for i in 0..n {
            let v = ((i * 7919) % n) as f64;
            ed.push(v);
            gk.push(v);
        }
        assert_eq!(ed.len(), n);
        assert_eq!(ed.b(), 10);
        let expect = EquiDepthHistogram::from_summary(&gk, 10);
        let got = ed.histogram();
        assert_eq!(got.boundaries(), expect.boundaries());
        assert_eq!(got.count(), expect.count());
        ed.reset();
        assert!(ed.is_empty());
    }

    #[test]
    fn streaming_equi_depth_rejects_non_finite() {
        let mut ed = StreamingEquiDepth::new(0.1, 4);
        let out = ed.push_batch(&[1.0, f64::NAN, 2.0, 3.0, 4.0]);
        assert_eq!((out.accepted, out.rejected), (4, 1));
        assert_eq!(ed.histogram().count(), 4);
    }

    #[test]
    #[should_panic(expected = "need at least one bucket")]
    fn streaming_equi_depth_zero_buckets_rejected() {
        let _ = StreamingEquiDepth::new(0.1, 0);
    }

    #[test]
    fn merge_checks_bucket_budget_then_delegates_to_gk() {
        let mut a = StreamingEquiDepth::new(0.01, 8);
        a.push(1.0);
        let wrong_b = StreamingEquiDepth::new(0.01, 4);
        let err = a.merge_from(&wrong_b).expect_err("b mismatch");
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter { param: "b", .. }
        ));
        let wrong_eps = StreamingEquiDepth::new(0.02, 8);
        let err = a.merge_from(&wrong_eps).expect_err("eps mismatch");
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter { param: "eps", .. }
        ));
        let mut b = StreamingEquiDepth::new(0.01, 8);
        for v in [2.0, 3.0] {
            b.push(v);
        }
        a.merge_from(&b).expect("compatible");
        assert_eq!(a.len(), 3);
        assert_eq!(a.histogram().count(), 3);
    }

    #[test]
    fn skewed_data_concentrates_boundaries() {
        // 90% of mass at small values: lower boundaries should be tight.
        let mut gk = GkSummary::new(0.005);
        for i in 0..10_000 {
            let v = if i % 10 == 0 {
                1000.0 + (i % 97) as f64
            } else {
                (i % 10) as f64
            };
            gk.push(v);
        }
        let h = EquiDepthHistogram::from_summary(&gk, 10);
        // The 0.8 quantile is robustly inside the small-value cluster (the
        // 0.9 quantile sits exactly on the cluster edge, where the eps-rank
        // tolerance legitimately allows either side).
        assert!(h.boundaries()[8] <= 20.0, "boundaries {:?}", h.boundaries());
        // Most of the probability mass is below 20.
        assert!(h.cdf(20.0) >= 0.8, "cdf(20) = {}", h.cdf(20.0));
    }
}
