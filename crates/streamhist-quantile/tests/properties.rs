//! Property tests for the quantile summaries: the GK rank-error guarantee
//! under arbitrary insertion orders, MRL sanity, and equi-depth histogram
//! consistency.

use proptest::prelude::*;
use streamhist_quantile::{EquiDepthHistogram, GkSummary, MrlSummary, QuantileSummary};

fn stream_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10_000..10_000i64, 10..600)
        .prop_map(|v| v.into_iter().map(|x| x as f64).collect())
}

/// Exact rank: number of values <= v.
fn exact_rank(sorted: &[f64], v: f64) -> usize {
    sorted.partition_point(|&x| x <= v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The central GK invariant: every quantile answer is within eps*n
    /// ranks of the truth, for any insertion order.
    #[test]
    fn gk_quantiles_within_eps_rank_error(
        data in stream_strategy(),
        eps in prop::sample::select(vec![0.01f64, 0.05, 0.1]),
    ) {
        let mut gk = GkSummary::new(eps);
        for &v in &data {
            gk.push(v);
        }
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = data.len();
        for phi in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let q = gk.quantile(phi);
            let target = (phi * n as f64).ceil().max(1.0) as i64;
            // Rank of the returned value must be close to the target rank.
            let lo = exact_rank(&sorted, q - 0.5) as i64; // values strictly below q
            let hi = exact_rank(&sorted, q) as i64; // values <= q
            let tol = (eps * n as f64).ceil() as i64 + 1;
            prop_assert!(
                target >= lo - tol && target <= hi + tol,
                "phi={phi}: value {q} has rank range [{lo},{hi}], target {target}, tol {tol}"
            );
        }
    }

    #[test]
    fn gk_rank_estimates_within_eps(
        data in stream_strategy(),
        eps in prop::sample::select(vec![0.02f64, 0.1]),
    ) {
        let mut gk = GkSummary::new(eps);
        for &v in &data {
            gk.push(v);
        }
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = data.len();
        for probe_idx in [0usize, n / 4, n / 2, 3 * n / 4, n - 1] {
            let probe = sorted[probe_idx];
            let est = gk.rank(probe) as i64;
            let exact = exact_rank(&sorted, probe) as i64;
            let tol = (eps * n as f64).ceil() as i64 + 1;
            prop_assert!(
                (est - exact).abs() <= tol,
                "probe {probe}: est {est} exact {exact} tol {tol}"
            );
        }
    }

    #[test]
    fn gk_space_stays_bounded(data in stream_strategy()) {
        let eps = 0.05;
        let mut gk = GkSummary::new(eps);
        for &v in &data {
            gk.push(v);
        }
        // Loose bound: a small multiple of (1/eps) * log(eps n) + slack.
        let n = data.len() as f64;
        let bound = (11.0 / eps) * (eps * n).max(2.0).log2() + 3.0 / eps + 16.0;
        prop_assert!(
            (gk.stored() as f64) <= bound,
            "stored {} exceeds bound {bound} for n={n}",
            gk.stored()
        );
    }

    #[test]
    fn mrl_quantiles_are_order_consistent(
        data in stream_strategy(),
        k in prop::sample::select(vec![16usize, 64, 256]),
    ) {
        let mut m = MrlSummary::new(k);
        for &v in &data {
            m.push(v);
        }
        prop_assert_eq!(m.count(), data.len());
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = m.quantile(i as f64 / 10.0);
            prop_assert!(q >= last);
            // Every returned quantile is an actual stream value.
            prop_assert!(data.contains(&q), "{q} not in the stream");
            last = q;
        }
    }

    #[test]
    fn equi_depth_cdf_is_monotone_and_normalized(
        data in stream_strategy(),
        b in 1usize..24,
    ) {
        let mut gk = GkSummary::new(0.02);
        for &v in &data {
            gk.push(v);
        }
        let h = EquiDepthHistogram::from_summary(&gk, b);
        prop_assert_eq!(h.num_buckets(), b);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.cdf(min - 1.0), 0.0);
        prop_assert_eq!(h.cdf(max), 1.0);
        let mut last = -1.0;
        for t in 0..=20 {
            let v = min + (max - min) * t as f64 / 20.0;
            let c = h.cdf(v);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= last - 1e-12);
            last = c;
        }
        prop_assert!((h.selectivity(min, max) - 1.0).abs() < 1e-9);
    }

    /// GK and MRL agree (within their tolerances) on the median.
    #[test]
    fn summaries_agree_on_the_median(data in stream_strategy()) {
        let mut gk = GkSummary::new(0.02);
        let mut mrl = MrlSummary::new(128);
        for &v in &data {
            gk.push(v);
            mrl.push(v);
        }
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = data.len();
        let true_median = sorted[(n - 1) / 2];
        let span = sorted[n - 1] - sorted[0];
        // Both estimates must be within a reasonable rank-window of the
        // true median; compare via ranks, not values.
        for (name, est) in [("gk", gk.quantile(0.5)), ("mrl", mrl.quantile(0.5))] {
            let rank = exact_rank(&sorted, est) as i64;
            let tol = ((n as f64) * 0.25).ceil() as i64 + 2; // loose for tiny MRL buffers
            prop_assert!(
                (rank - (n / 2) as i64).abs() <= tol,
                "{name} median {est} (true {true_median}, span {span}) rank {rank}"
            );
        }
    }
}
