//! Property tests for the core substrate: prefix sums against naive
//! computation, histogram structural invariants, query consistency, the
//! codec roundtrip, and histogram distances.

use proptest::prelude::*;
use streamhist_core::distance;
use streamhist_core::{codec, Histogram, PrefixSums, Query, SlidingPrefixSums};

fn data_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000..1000i64, 1..80)
        .prop_map(|v| v.into_iter().map(|x| x as f64).collect())
}

/// A random valid bucket-ends list for a domain of length n.
fn ends_strategy(n: usize) -> BoxedStrategy<Vec<usize>> {
    if n <= 1 {
        return Just(vec![0]).boxed();
    }
    prop::collection::btree_set(0..n - 1, 0..(n - 1).min(8))
        .prop_map(move |set| {
            let mut ends: Vec<usize> = set.into_iter().collect();
            ends.push(n - 1);
            ends
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prefix_sums_match_naive(data in data_strategy()) {
        let p = PrefixSums::new(&data);
        let n = data.len();
        // Sample a few ranges rather than all O(n²).
        for (a, b) in [(0, n - 1), (0, 0), (n / 2, n - 1), (n / 3, 2 * n / 3)] {
            let (a, b) = (a.min(b), a.max(b));
            let naive_sum: f64 = data[a..=b].iter().sum();
            prop_assert!((p.range_sum(a, b) - naive_sum).abs() < 1e-6);
            let mean = naive_sum / (b - a + 1) as f64;
            let naive_sse: f64 = data[a..=b].iter().map(|v| (v - mean) * (v - mean)).sum();
            prop_assert!((p.sqerror(a, b) - naive_sse).abs() < 1e-4);
            prop_assert!(p.sqerror(a, b) >= 0.0);
        }
    }

    #[test]
    fn sliding_prefix_agrees_with_static(
        data in data_strategy(),
        cap in 1usize..20,
        period in 1usize..50,
    ) {
        let mut w = SlidingPrefixSums::with_rebase_period(cap, period);
        for (t, &v) in data.iter().enumerate() {
            w.push(v);
            let lo = (t + 1).saturating_sub(cap);
            let window = &data[lo..=t];
            let p = PrefixSums::new(window);
            let m = window.len();
            prop_assert!((w.range_sum(0, m - 1) - p.range_sum(0, m - 1)).abs() < 1e-6);
            prop_assert!((w.sqerror(0, m - 1) - p.sqerror(0, m - 1)).abs() < 1e-4);
            if m >= 2 {
                prop_assert!((w.sqerror(1, m - 1) - p.sqerror(1, m - 1)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn histogram_from_ends_is_structurally_valid(
        data in data_strategy(),
        seed in 0usize..1000,
    ) {
        let n = data.len();
        // Derive deterministic pseudo-random ends from the seed.
        let mut ends: Vec<usize> = (0..n - 1).filter(|i| (i * 31 + seed) % 7 == 0).collect();
        ends.push(n - 1);
        let h = Histogram::from_bucket_ends(&data, &ends);
        prop_assert_eq!(h.domain_len(), n);
        // Tiling: reconstruct index coverage.
        let mut covered = 0usize;
        for b in h.buckets() {
            prop_assert_eq!(b.start, covered);
            covered = b.end + 1;
        }
        prop_assert_eq!(covered, n);
        // Heights are means.
        for b in h.buckets() {
            let mean: f64 =
                data[b.start..=b.end].iter().sum::<f64>() / b.len() as f64;
            prop_assert!((b.height - mean).abs() < 1e-6);
        }
        // Roundtrip of boundaries.
        prop_assert_eq!(h.bucket_ends(), ends);
    }

    #[test]
    fn range_sum_equals_point_sum(data in data_strategy(), b in 1usize..10) {
        let n = data.len();
        let ends: Vec<usize> = {
            let b = b.min(n);
            (1..=b).map(|k| k * n / b - 1).collect()
        };
        let h = Histogram::from_bucket_ends(&data, &ends);
        for (a, z) in [(0, n - 1), (n / 4, 3 * n / 4), (n - 1, n - 1)] {
            let (a, z) = (a.min(z), a.max(z));
            let direct = h.range_sum(a, z);
            let pointwise: f64 = (a..=z).map(|i| h.point(i)).sum();
            prop_assert!((direct - pointwise).abs() < 1e-6, "({a},{z})");
        }
    }

    #[test]
    fn whole_domain_range_sum_is_exact(data in data_strategy(), b in 1usize..10) {
        // Bucket means make the full-domain sum exact regardless of B.
        let h = Histogram::equi_width(&data, b);
        let total: f64 = data.iter().sum();
        prop_assert!((h.range_sum(0, data.len() - 1) - total).abs() < 1e-6);
    }

    #[test]
    fn codec_roundtrips_arbitrary_histograms(
        (data, ends) in data_strategy().prop_flat_map(|data| {
            let n = data.len();
            (Just(data), ends_strategy(n))
        }),
    ) {
        let h = Histogram::from_bucket_ends(&data, &ends);
        let bytes = codec::encode(&h);
        let back = codec::decode(&bytes).expect("roundtrip");
        prop_assert_eq!(h, back);
    }

    #[test]
    fn distances_satisfy_metric_axioms(
        data in data_strategy(),
        ba in 1usize..8,
        bb in 1usize..8,
        bc in 1usize..8,
    ) {
        let a = Histogram::equi_width(&data, ba);
        let b = {
            // Different heights: perturb the data.
            let d2: Vec<f64> = data.iter().map(|v| v * 0.5 + 3.0).collect();
            Histogram::equi_width(&d2, bb)
        };
        let c = {
            let d3: Vec<f64> = data.iter().rev().copied().collect();
            Histogram::equi_width(&d3, bc)
        };
        for dist in [distance::l1, distance::l2, distance::linf] {
            // Symmetry, identity, triangle inequality.
            prop_assert!((dist(&a, &b) - dist(&b, &a)).abs() < 1e-9);
            prop_assert!(dist(&a, &a).abs() < 1e-9);
            prop_assert!(dist(&a, &c) <= dist(&a, &b) + dist(&b, &c) + 1e-6);
            prop_assert!(dist(&a, &b) >= 0.0);
        }
    }

    #[test]
    fn query_estimates_are_finite_and_consistent(
        data in data_strategy(),
        b in 1usize..10,
    ) {
        let h = Histogram::equi_width(&data, b);
        let n = data.len();
        for q in [
            Query::Point { idx: n / 2 },
            Query::RangeSum { start: 0, end: n - 1 },
            Query::RangeAvg { start: 0, end: n - 1 },
            Query::RangeCount { start: 0, end: n - 1 },
        ] {
            let est = q.estimate(&h);
            prop_assert!(est.is_finite());
        }
        // avg * span == sum.
        let sum = Query::RangeSum { start: 0, end: n - 1 }.estimate(&h);
        let avg = Query::RangeAvg { start: 0, end: n - 1 }.estimate(&h);
        prop_assert!((avg * n as f64 - sum).abs() < 1e-6);
    }
}

/// Regression guard for floating-point drift in `SlidingPrefixSums`
/// between rebases: stream values offset by `1e8` through 20 full window
/// wraps and require `sqerror` to stay within relative tolerance of the
/// exact two-pass answer on the raw window.
///
/// Calibration (measured, release build): the drift-free Eq. 2 identity
/// `q − s²/n` evaluated over fresh per-window prefix sums already shows a
/// ~1.5e-4 worst relative error at this offset — an inherent cancellation
/// floor of the paper's O(1) formulation, untouched by how the running
/// accumulators are summed (so Neumaier compensation would not move it).
/// The sliding store with its amortized rebase (every `capacity` pushes,
/// paper §4.5) sits at that same floor, while a *broken* rebase (anchor
/// never moved) degrades to ~3.6e-3 over the same stream. The 1e-3
/// tolerance therefore passes the healthy implementation with >6x margin
/// and trips any regression toward unbounded accumulator growth with >3x
/// margin.
#[test]
fn sliding_sqerror_tracks_two_pass_under_large_offset() {
    let cap = 128;
    let offset = 1e8;
    // Deterministic spread wide enough that the true SSE dominates the
    // inherent O(sum² · ε_machine) cancellation floor of the Eq. 2 identity.
    let data: Vec<f64> = (0..cap * 20)
        .map(|i| offset + (((i * 13 + 7) % 10) as f64) * 100.0)
        .collect();
    let mut w = SlidingPrefixSums::new(cap);
    let mut worst: f64 = 0.0;
    for (t, &v) in data.iter().enumerate() {
        w.push(v);
        if w.len() < cap {
            continue;
        }
        let window = &data[t + 1 - cap..=t];
        let mean = window.iter().sum::<f64>() / cap as f64;
        let exact: f64 = window.iter().map(|x| (x - mean) * (x - mean)).sum();
        let got = w.sqerror(0, cap - 1);
        worst = worst.max((got - exact).abs() / exact);
    }
    assert!(
        worst <= 1e-3,
        "sliding sqerror drifted {worst:.3e} (relative) from the two-pass answer"
    );
}
