//! Workload evaluation: the paper's §5 accuracy protocol.
//!
//! "Accuracy is measured by reporting the average result obtained by
//! performing random queries; the starting points as well as the span of the
//! queries is chosen uniformly and independently." We run each query both
//! exactly and against the summary, and report the averages of both answers
//! (Figure 6(a)-(b) plots these series directly) plus derived error
//! statistics.

use crate::query::{Query, SequenceSummary};

/// Aggregate accuracy statistics for a query workload against one summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Mean exact answer (the "Exact" series of Fig. 6(a)-(b)).
    pub mean_exact: f64,
    /// Mean estimated answer (the method's series of Fig. 6(a)-(b)).
    pub mean_estimate: f64,
    /// Mean absolute error `mean |estimate − exact|`.
    pub mean_abs_error: f64,
    /// Mean relative error `mean |estimate − exact| / max(|exact|, 1)`.
    ///
    /// The `max(·, 1)` sanitizer is the standard guard against division by
    /// tiny exact answers.
    pub mean_rel_error: f64,
    /// Root-mean-squared error of the estimates.
    pub rmse: f64,
    /// Largest absolute error observed.
    pub max_abs_error: f64,
}

impl AccuracyReport {
    /// A report over zero queries (all statistics zero).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            queries: 0,
            mean_exact: 0.0,
            mean_estimate: 0.0,
            mean_abs_error: 0.0,
            mean_rel_error: 0.0,
            rmse: 0.0,
            max_abs_error: 0.0,
        }
    }

    /// Merges two reports over disjoint workloads into one (weighted by
    /// query counts). Used by the harnesses to aggregate across sampled
    /// window positions.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let n = self.queries + other.queries;
        if n == 0 {
            return Self::empty();
        }
        let (wa, wb) = (self.queries as f64, other.queries as f64);
        let nf = n as f64;
        Self {
            queries: n,
            mean_exact: (self.mean_exact * wa + other.mean_exact * wb) / nf,
            mean_estimate: (self.mean_estimate * wa + other.mean_estimate * wb) / nf,
            mean_abs_error: (self.mean_abs_error * wa + other.mean_abs_error * wb) / nf,
            mean_rel_error: (self.mean_rel_error * wa + other.mean_rel_error * wb) / nf,
            rmse: ((self.rmse * self.rmse * wa + other.rmse * other.rmse * wb) / nf).sqrt(),
            max_abs_error: self.max_abs_error.max(other.max_abs_error),
        }
    }
}

/// Runs `queries` against both the raw `data` and `summary`, returning the
/// aggregate accuracy statistics.
///
/// # Panics
///
/// Panics if any query exceeds the bounds of `data` or if
/// `summary.summary_len() != data.len()`.
#[must_use]
pub fn evaluate_queries<S: SequenceSummary + ?Sized>(
    data: &[f64],
    summary: &S,
    queries: &[Query],
) -> AccuracyReport {
    assert_eq!(
        summary.summary_len(),
        data.len(),
        "summary domain must match the data length"
    );
    if queries.is_empty() {
        return AccuracyReport::empty();
    }
    let mut sum_exact = 0.0;
    let mut sum_est = 0.0;
    let mut sum_abs = 0.0;
    let mut sum_rel = 0.0;
    let mut sum_sq = 0.0;
    let mut max_abs = 0.0f64;
    for q in queries {
        let exact = q.exact(data);
        let est = q.estimate(summary);
        let abs = (est - exact).abs();
        sum_exact += exact;
        sum_est += est;
        sum_abs += abs;
        sum_rel += abs / exact.abs().max(1.0);
        sum_sq += abs * abs;
        max_abs = max_abs.max(abs);
    }
    let n = queries.len() as f64;
    AccuracyReport {
        queries: queries.len(),
        mean_exact: sum_exact / n,
        mean_estimate: sum_est / n,
        mean_abs_error: sum_abs / n,
        mean_rel_error: sum_rel / n,
        rmse: (sum_sq / n).sqrt(),
        max_abs_error: max_abs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::query::ExactSummary;

    const DATA: [f64; 6] = [1.0, 1.0, 3.0, 3.0, 3.0, 10.0];

    #[test]
    fn exact_summary_has_zero_error() {
        let s = ExactSummary::new(&DATA);
        let qs = vec![
            Query::Point { idx: 2 },
            Query::RangeSum { start: 0, end: 5 },
            Query::RangeAvg { start: 1, end: 3 },
        ];
        let r = evaluate_queries(&DATA, &s, &qs);
        assert_eq!(r.queries, 3);
        assert_eq!(r.mean_abs_error, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.max_abs_error, 0.0);
        assert_eq!(r.mean_exact, r.mean_estimate);
    }

    #[test]
    fn coarse_histogram_has_positive_error() {
        let h = Histogram::from_bucket_ends(&DATA, &[5]);
        let qs = vec![Query::Point { idx: 5 }];
        let r = evaluate_queries(&DATA, &h, &qs);
        // estimate 3.5 vs exact 10
        assert!((r.mean_abs_error - 6.5).abs() < 1e-12);
        assert!((r.max_abs_error - 6.5).abs() < 1e-12);
        assert!((r.mean_rel_error - 0.65).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_reports_zeroes() {
        let s = ExactSummary::new(&DATA);
        let r = evaluate_queries(&DATA, &s, &[]);
        assert_eq!(r, AccuracyReport::empty());
    }

    #[test]
    fn merge_weights_by_query_count() {
        let a = AccuracyReport {
            queries: 1,
            mean_exact: 2.0,
            mean_estimate: 2.0,
            mean_abs_error: 0.0,
            mean_rel_error: 0.0,
            rmse: 0.0,
            max_abs_error: 0.0,
        };
        let b = AccuracyReport {
            queries: 3,
            mean_exact: 6.0,
            mean_estimate: 4.0,
            mean_abs_error: 2.0,
            mean_rel_error: 0.5,
            rmse: 2.0,
            max_abs_error: 4.0,
        };
        let m = a.merge(&b);
        assert_eq!(m.queries, 4);
        assert!((m.mean_exact - 5.0).abs() < 1e-12);
        assert!((m.mean_abs_error - 1.5).abs() < 1e-12);
        assert_eq!(m.max_abs_error, 4.0);
        // rmse of merge: sqrt((0*1 + 4*3)/4) = sqrt(3)
        assert!((m.rmse - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let b = AccuracyReport {
            queries: 2,
            mean_exact: 1.0,
            mean_estimate: 1.5,
            mean_abs_error: 0.5,
            mean_rel_error: 0.5,
            rmse: 0.5,
            max_abs_error: 0.5,
        };
        let m = AccuracyReport::empty().merge(&b);
        assert_eq!(m, b);
    }
}
