//! The histogram representation `H_B` and its query estimators.

use crate::bucket::Bucket;
use crate::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use crate::error::StreamhistError;
use crate::prefix::PrefixSums;
use crate::summary::MergeableSummary;
use std::fmt;

/// Errors produced when assembling a [`Histogram`] from buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistogramError {
    /// The bucket list was empty but the domain is non-empty.
    Empty,
    /// The first bucket does not start at index 0.
    DoesNotStartAtZero {
        /// Actual start of the first bucket.
        start: usize,
    },
    /// Two consecutive buckets leave a gap or overlap.
    NotContiguous {
        /// End of the earlier bucket.
        prev_end: usize,
        /// Start of the later bucket.
        next_start: usize,
    },
    /// The last bucket does not end at `domain_len - 1`.
    DomainMismatch {
        /// End of the last bucket.
        last_end: usize,
        /// Expected domain length.
        domain_len: usize,
    },
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "histogram over a non-empty domain needs >= 1 bucket"),
            Self::DoesNotStartAtZero { start } => {
                write!(f, "first bucket starts at {start}, expected 0")
            }
            Self::NotContiguous {
                prev_end,
                next_start,
            } => write!(
                f,
                "buckets not contiguous: previous ends at {prev_end}, next starts at {next_start}"
            ),
            Self::DomainMismatch {
                last_end,
                domain_len,
            } => write!(
                f,
                "last bucket ends at {last_end} but the domain has length {domain_len}"
            ),
        }
    }
}

impl std::error::Error for HistogramError {}

/// A piecewise-constant approximation of a sequence of `domain_len` values
/// using `B` contiguous [`Bucket`]s that tile `[0, domain_len)`.
///
/// This is the representation `H_B` of the paper's §3: the answer object
/// produced by every construction algorithm in the workspace (optimal DP,
/// offline ε-approximation, agglomerative streaming, fixed-window streaming)
/// and consumed by the query layer.
///
/// # Example
///
/// ```
/// use streamhist_core::Histogram;
///
/// let data = [1.0, 1.0, 8.0, 8.0, 8.0, 2.0];
/// let h = Histogram::from_bucket_ends(&data, &[1, 4, 5]);
/// assert_eq!(h.num_buckets(), 3);
/// assert_eq!(h.point(3), 8.0);             // bucket mean
/// assert_eq!(h.range_sum(0, 5), 28.0);     // whole-domain sums are exact
/// assert_eq!(h.sse(&data), 0.0);           // boundaries match the runs
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    domain_len: usize,
    buckets: Vec<Bucket>,
}

impl Histogram {
    /// Builds a histogram from buckets, validating the structural invariants:
    /// buckets are contiguous, non-overlapping, start at 0 and end at
    /// `domain_len - 1`.
    pub fn new(domain_len: usize, buckets: Vec<Bucket>) -> Result<Self, HistogramError> {
        if domain_len == 0 {
            return Ok(Self {
                domain_len,
                buckets: Vec::new(),
            });
        }
        let first = buckets.first().ok_or(HistogramError::Empty)?;
        if first.start != 0 {
            return Err(HistogramError::DoesNotStartAtZero { start: first.start });
        }
        for pair in buckets.windows(2) {
            if pair[1].start != pair[0].end + 1 {
                return Err(HistogramError::NotContiguous {
                    prev_end: pair[0].end,
                    next_start: pair[1].start,
                });
            }
        }
        let last_end = buckets.last().expect("non-empty").end;
        if last_end + 1 != domain_len {
            return Err(HistogramError::DomainMismatch {
                last_end,
                domain_len,
            });
        }
        Ok(Self {
            domain_len,
            buckets,
        })
    }

    /// Builds the histogram induced on `data` by bucket *end* boundaries.
    ///
    /// `ends` lists the inclusive end index of every bucket in increasing
    /// order; the last entry must be `data.len() - 1`. Bucket heights are the
    /// means of the covered values (the SSE-optimal representative).
    ///
    /// # Panics
    ///
    /// Panics if `ends` is empty for non-empty data, unsorted, or does not
    /// end at `data.len() - 1` — boundary lists are produced by construction
    /// algorithms, so a malformed list is a bug.
    #[must_use]
    pub fn from_bucket_ends(data: &[f64], ends: &[usize]) -> Self {
        if data.is_empty() {
            assert!(ends.is_empty(), "boundaries for empty data must be empty");
            return Self {
                domain_len: 0,
                buckets: Vec::new(),
            };
        }
        assert_eq!(
            *ends.last().expect("at least one bucket"),
            data.len() - 1,
            "last boundary must end the domain"
        );
        let prefix = PrefixSums::new(data);
        let mut buckets = Vec::with_capacity(ends.len());
        let mut start = 0usize;
        for &end in ends {
            assert!(
                start <= end,
                "bucket boundaries must be strictly increasing"
            );
            buckets.push(Bucket::new(start, end, prefix.mean(start, end)));
            start = end + 1;
        }
        Self {
            domain_len: data.len(),
            buckets,
        }
    }

    /// Builds the equi-width histogram of `data` with at most `b` buckets:
    /// bucket boundaries at (near-)equal index spacing, heights = means.
    ///
    /// The classical baseline that ignores the data distribution entirely;
    /// V-optimal construction exists precisely because this is suboptimal
    /// on non-uniform data.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` and `data` is non-empty.
    #[must_use]
    pub fn equi_width(data: &[f64], b: usize) -> Self {
        if data.is_empty() {
            return Self {
                domain_len: 0,
                buckets: Vec::new(),
            };
        }
        assert!(b > 0, "need at least one bucket for non-empty data");
        let n = data.len();
        let b = b.min(n);
        let ends: Vec<usize> = (1..=b).map(|k| k * n / b - 1).collect();
        Self::from_bucket_ends(data, &ends)
    }

    /// Number of values the histogram approximates.
    #[must_use]
    pub fn domain_len(&self) -> usize {
        self.domain_len
    }

    /// Number of buckets `B` used.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The buckets, in increasing index order.
    #[must_use]
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Index of the bucket containing `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= domain_len`.
    #[must_use]
    pub fn bucket_index_of(&self, idx: usize) -> usize {
        assert!(
            idx < self.domain_len,
            "index {idx} out of domain {}",
            self.domain_len
        );
        self.buckets.partition_point(|b| b.end < idx)
    }

    /// Point estimate: the height of the bucket containing `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= domain_len`.
    #[must_use]
    pub fn point(&self, idx: usize) -> f64 {
        self.buckets[self.bucket_index_of(idx)].height
    }

    /// Range-sum estimate over the inclusive index range `[start, end]`:
    /// the sum of `height * overlap` across intersecting buckets. This is
    /// the estimator used for the paper's §5.1 "range sum queries".
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end >= domain_len`.
    #[must_use]
    pub fn range_sum(&self, start: usize, end: usize) -> f64 {
        assert!(start <= end, "range start {start} > end {end}");
        assert!(
            end < self.domain_len,
            "range end {end} out of domain {}",
            self.domain_len
        );
        let first = self.bucket_index_of(start);
        let mut total = 0.0;
        for b in &self.buckets[first..] {
            if b.start > end {
                break;
            }
            total += b.partial_sum(start, end);
        }
        total
    }

    /// Range-average estimate over `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end >= domain_len`.
    #[must_use]
    pub fn range_avg(&self, start: usize, end: usize) -> f64 {
        self.range_sum(start, end) / (end - start + 1) as f64
    }

    /// Total sum-squared-error of the approximation against `data`
    /// (`E_X(H_B)` of the paper, Eq. 1 summed over buckets).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != domain_len`.
    #[must_use]
    pub fn sse(&self, data: &[f64]) -> f64 {
        assert_eq!(
            data.len(),
            self.domain_len,
            "data length must match the domain"
        );
        self.buckets.iter().map(|b| b.sse(data)).sum()
    }

    /// Reconstructs the full approximated sequence (each index replaced by
    /// its bucket height). Useful for testing and for error metrics defined
    /// on raw sequences.
    #[must_use]
    pub fn expand(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.domain_len);
        for b in &self.buckets {
            out.extend(std::iter::repeat_n(b.height, b.len()));
        }
        out
    }

    /// The inclusive end index of every bucket, in order. The inverse of
    /// [`Histogram::from_bucket_ends`].
    #[must_use]
    pub fn bucket_ends(&self) -> Vec<usize> {
        self.buckets.iter().map(|b| b.end).collect()
    }
}

/// Exact concatenation: `a.merge_from(&b)` appends `b`'s buckets after
/// `a`'s, shifting their indices by `a`'s domain length. The result is the
/// histogram of the concatenated sequence `a ++ b` with **no** information
/// loss (the bucket count grows to `a.B + b.B`; re-optimizing the merged
/// bucket list back down to a budget `B` is the job of the kernel-backed
/// `merge_histograms` in `streamhist-stream`, see DESIGN.md §7).
///
/// `Histogram` carries no tunable configuration, so merging never rejects:
/// any two histograms (including empty-domain ones) concatenate.
impl MergeableSummary for Histogram {
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
        let offset = self.domain_len;
        self.buckets.extend(
            other
                .buckets
                .iter()
                .map(|b| Bucket::new(b.start + offset, b.end + offset, b.height)),
        );
        self.domain_len += other.domain_len;
        Ok(())
    }
}

/// Frame layout (after the shared header, see [`crate::checkpoint`]):
///
/// ```text
/// domain_len   varint
/// num_buckets  varint   (count-checked: >= 10 payload bytes per bucket)
/// buckets      num_buckets x { start varint, end varint, height f64-le }
/// ```
///
/// Restore re-validates every structural invariant through
/// [`Histogram::new`], so a corrupted payload that happens to pass the CRC
/// still cannot materialize a malformed histogram.
impl Checkpoint for Histogram {
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::HISTOGRAM);
        w.put_usize(self.domain_len);
        w.put_usize(self.buckets.len());
        for b in &self.buckets {
            w.put_usize(b.start);
            w.put_usize(b.end);
            w.put_f64(b.height);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let mut r = FrameReader::open(bytes, tag::HISTOGRAM)?;
        let domain_len = r.get_usize()?;
        let num_buckets = r.get_count(10)?;
        let mut buckets = Vec::with_capacity(num_buckets);
        for _ in 0..num_buckets {
            let start = r.get_usize()?;
            let end = r.get_usize()?;
            let height = r.get_f64()?;
            if start > end {
                return Err(StreamhistError::CorruptCheckpoint {
                    reason: "bucket start exceeds its end",
                });
            }
            buckets.push(Bucket::new(start, end, height));
        }
        r.finish()?;
        Histogram::new(domain_len, buckets).map_err(|_| StreamhistError::CorruptCheckpoint {
            reason: "bucket list violates histogram invariants",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Histogram {
        Histogram::new(
            6,
            vec![
                Bucket::new(0, 1, 1.0),
                Bucket::new(2, 4, 3.0),
                Bucket::new(5, 5, 10.0),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn new_validates_contiguity() {
        let err = Histogram::new(4, vec![Bucket::new(0, 1, 0.0), Bucket::new(3, 3, 0.0)])
            .expect_err("gap");
        assert_eq!(
            err,
            HistogramError::NotContiguous {
                prev_end: 1,
                next_start: 3
            }
        );
    }

    #[test]
    fn new_validates_start_and_end() {
        assert_eq!(
            Histogram::new(3, vec![Bucket::new(1, 2, 0.0)]).expect_err("start"),
            HistogramError::DoesNotStartAtZero { start: 1 }
        );
        assert_eq!(
            Histogram::new(4, vec![Bucket::new(0, 2, 0.0)]).expect_err("end"),
            HistogramError::DomainMismatch {
                last_end: 2,
                domain_len: 4
            }
        );
        assert_eq!(
            Histogram::new(2, vec![]).expect_err("empty"),
            HistogramError::Empty
        );
    }

    #[test]
    fn empty_domain_is_allowed() {
        let h = Histogram::new(0, vec![]).expect("empty domain");
        assert_eq!(h.domain_len(), 0);
        assert_eq!(h.num_buckets(), 0);
        assert!(h.expand().is_empty());
    }

    #[test]
    fn point_returns_containing_bucket_height() {
        let h = simple();
        assert_eq!(h.point(0), 1.0);
        assert_eq!(h.point(1), 1.0);
        assert_eq!(h.point(2), 3.0);
        assert_eq!(h.point(4), 3.0);
        assert_eq!(h.point(5), 10.0);
    }

    #[test]
    fn range_sum_spans_buckets() {
        let h = simple();
        // [1, 3]: one index of height 1 + two of height 3 = 7
        assert_eq!(h.range_sum(1, 3), 7.0);
        // whole domain: 2*1 + 3*3 + 1*10 = 21
        assert_eq!(h.range_sum(0, 5), 21.0);
        // single point
        assert_eq!(h.range_sum(5, 5), 10.0);
    }

    #[test]
    fn range_avg_divides_by_span() {
        let h = simple();
        assert!((h.range_avg(1, 3) - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_bucket_ends_uses_means() {
        let data = [1.0, 3.0, 10.0, 20.0];
        let h = Histogram::from_bucket_ends(&data, &[1, 3]);
        assert_eq!(h.num_buckets(), 2);
        assert_eq!(h.buckets()[0].height, 2.0);
        assert_eq!(h.buckets()[1].height, 15.0);
        assert_eq!(h.bucket_ends(), vec![1, 3]);
    }

    #[test]
    fn sse_sums_bucket_errors() {
        let data = [1.0, 3.0, 10.0, 20.0];
        let h = Histogram::from_bucket_ends(&data, &[1, 3]);
        // bucket 0: (1-2)^2+(3-2)^2 = 2 ; bucket 1: (10-15)^2+(20-15)^2 = 50
        assert!((h.sse(&data) - 52.0).abs() < 1e-9);
    }

    #[test]
    fn expand_reconstructs_heights() {
        let h = simple();
        assert_eq!(h.expand(), vec![1.0, 1.0, 3.0, 3.0, 3.0, 10.0]);
    }

    #[test]
    fn equi_width_splits_evenly() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let h = Histogram::equi_width(&data, 3);
        assert_eq!(h.bucket_ends(), vec![3, 7, 11]);
        assert_eq!(h.buckets()[0].height, 1.5);
        // Non-divisible case still tiles the domain.
        let h = Histogram::equi_width(&data, 5);
        assert_eq!(h.num_buckets(), 5);
        assert_eq!(h.bucket_ends().last(), Some(&11));
        // b > n clamps; empty data allowed.
        assert_eq!(Histogram::equi_width(&data, 100).num_buckets(), 12);
        assert_eq!(Histogram::equi_width(&[], 3).domain_len(), 0);
    }

    #[test]
    fn bucket_index_of_boundaries() {
        let h = simple();
        assert_eq!(h.bucket_index_of(1), 0);
        assert_eq!(h.bucket_index_of(2), 1);
        assert_eq!(h.bucket_index_of(5), 2);
    }

    #[test]
    fn merge_from_concatenates_exactly() {
        let left = [1.0, 1.0, 5.0];
        let right = [2.0, 2.0];
        let mut a = Histogram::from_bucket_ends(&left, &[1, 2]);
        let b = Histogram::from_bucket_ends(&right, &[1]);
        a.merge_from(&b).expect("histograms always merge");
        assert_eq!(a.domain_len(), 5);
        assert_eq!(a.num_buckets(), 3);
        let whole: Vec<f64> = left.iter().chain(&right).copied().collect();
        assert_eq!(a.expand(), whole);
        assert_eq!(a.sse(&whole), 0.0);
    }

    #[test]
    fn merge_combinator_handles_empty_domains() {
        let a = Histogram::new(0, vec![]).expect("empty");
        let b = simple();
        let merged = Histogram::merge(&[&a, &b, &a]).expect("merge");
        assert_eq!(merged.domain_len(), 6);
        assert_eq!(merged.expand(), b.expand());
    }

    #[test]
    fn checkpoint_roundtrip_is_identical() {
        let h = simple();
        let bytes = h.encode_checkpoint();
        let restored = Histogram::restore(&bytes).expect("valid frame");
        assert_eq!(restored, h);
        let empty = Histogram::new(0, vec![]).expect("empty");
        let restored = Histogram::restore(&empty.encode_checkpoint()).expect("valid frame");
        assert_eq!(restored, empty);
    }

    #[test]
    fn checkpoint_rejects_invariant_violations() {
        // Hand-build a CRC-valid frame whose buckets leave a gap.
        let mut w = FrameWriter::new(tag::HISTOGRAM);
        w.put_usize(4);
        w.put_usize(2);
        w.put_usize(0);
        w.put_usize(1);
        w.put_f64(1.0);
        w.put_usize(3); // gap: previous ended at 1, this starts at 3
        w.put_usize(3);
        w.put_f64(2.0);
        let err = Histogram::restore(&w.finish()).expect_err("gap rejected");
        assert!(matches!(err, StreamhistError::CorruptCheckpoint { .. }));
        // start > end never reaches Bucket::new's panic.
        let mut w = FrameWriter::new(tag::HISTOGRAM);
        w.put_usize(1);
        w.put_usize(1);
        w.put_usize(1);
        w.put_usize(0);
        w.put_f64(1.0);
        let err = Histogram::restore(&w.finish()).expect_err("inverted rejected");
        assert!(matches!(err, StreamhistError::CorruptCheckpoint { .. }));
    }
}
