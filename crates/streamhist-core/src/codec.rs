//! Compact binary serialization of histograms.
//!
//! The paper's motivating deployments ship synopses between network
//! elements and collectors ("network elements, like routers and hubs,
//! produce vast amounts of stream data"), so a histogram needs a wire
//! format. The encoding is deliberately simple and self-contained:
//!
//! ```text
//! magic  u8      0x48 ('H')
//! version u8     1
//! domain  varint domain length n
//! count   varint number of buckets B
//! ends    varint x B   delta-encoded bucket lengths (end - prev_end)
//! heights f64-le x B   bucket heights
//! ```
//!
//! Bucket ends are strictly increasing, so delta coding keeps small-bucket
//! histograms around `B` bytes of boundary data instead of `8B`.

use crate::bucket::Bucket;
use crate::histogram::Histogram;
use std::fmt;

const MAGIC: u8 = 0x48;
const VERSION: u8 = 1;

/// Errors produced while decoding a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    UnexpectedEnd,
    /// The magic byte or version did not match.
    BadHeader,
    /// A varint ran past 64 bits.
    VarintOverflow,
    /// The decoded buckets do not tile the declared domain.
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd => write!(f, "input truncated"),
            Self::BadHeader => write!(f, "bad magic/version header"),
            Self::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            Self::Corrupt(what) => write!(f, "corrupt histogram encoding: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(input: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut out: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = input.get(*pos).ok_or(DecodeError::UnexpectedEnd)?;
        *pos += 1;
        if shift >= 64 {
            return Err(DecodeError::VarintOverflow);
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Serializes a histogram to its compact wire format.
#[must_use]
pub fn encode(h: &Histogram) -> Vec<u8> {
    let buckets = h.buckets();
    let mut out = Vec::with_capacity(4 + buckets.len() * 10);
    out.push(MAGIC);
    out.push(VERSION);
    put_varint(&mut out, h.domain_len() as u64);
    put_varint(&mut out, buckets.len() as u64);
    let mut prev: u64 = 0;
    for b in buckets {
        let end = b.end as u64 + 1; // store 1-past-end so deltas are >= 1
        put_varint(&mut out, end - prev);
        prev = end;
    }
    for b in buckets {
        out.extend_from_slice(&b.height.to_le_bytes());
    }
    out
}

/// Deserializes a histogram from its wire format, validating the
/// structural invariants.
pub fn decode(input: &[u8]) -> Result<Histogram, DecodeError> {
    let mut pos = 0usize;
    let magic = *input.get(pos).ok_or(DecodeError::UnexpectedEnd)?;
    pos += 1;
    let version = *input.get(pos).ok_or(DecodeError::UnexpectedEnd)?;
    pos += 1;
    if magic != MAGIC || version != VERSION {
        return Err(DecodeError::BadHeader);
    }
    let domain_len = get_varint(input, &mut pos)? as usize;
    let count = get_varint(input, &mut pos)? as usize;
    if count > domain_len {
        return Err(DecodeError::Corrupt("more buckets than domain points"));
    }
    let mut ends = Vec::with_capacity(count);
    let mut prev: u64 = 0;
    for _ in 0..count {
        let delta = get_varint(input, &mut pos)?;
        if delta == 0 {
            return Err(DecodeError::Corrupt("zero-length bucket"));
        }
        prev = prev.checked_add(delta).ok_or(DecodeError::VarintOverflow)?;
        ends.push(prev as usize - 1);
    }
    let mut buckets = Vec::with_capacity(count);
    let mut start = 0usize;
    for &end in &ends {
        let bytes = input
            .get(pos..pos + 8)
            .ok_or(DecodeError::UnexpectedEnd)?
            .try_into()
            .expect("slice of length 8");
        pos += 8;
        let height = f64::from_le_bytes(bytes);
        if !height.is_finite() {
            return Err(DecodeError::Corrupt("non-finite bucket height"));
        }
        buckets.push(Bucket::new(start, end, height));
        start = end + 1;
    }
    Histogram::new(domain_len, buckets)
        .map_err(|_| DecodeError::Corrupt("buckets do not tile the domain"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Histogram {
        let data: Vec<f64> = (0..50).map(|i| ((i * 7) % 13) as f64).collect();
        Histogram::from_bucket_ends(&data, &[4, 9, 30, 49])
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let bytes = encode(&h);
        let back = decode(&bytes).expect("valid encoding");
        assert_eq!(h, back);
    }

    #[test]
    fn roundtrip_empty_domain() {
        let h = Histogram::new(0, vec![]).expect("empty");
        let back = decode(&encode(&h)).expect("valid encoding");
        assert_eq!(back.domain_len(), 0);
    }

    #[test]
    fn encoding_is_compact() {
        let h = sample();
        let bytes = encode(&h);
        // 2 header + <=2 varint domain + 1 count + ~1/bucket + 8/bucket.
        assert!(
            bytes.len() <= 2 + 2 + 1 + h.num_buckets() * 10,
            "{}",
            bytes.len()
        );
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, DecodeError::UnexpectedEnd | DecodeError::BadHeader),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample());
        bytes[0] = 0x00;
        assert_eq!(decode(&bytes), Err(DecodeError::BadHeader));
    }

    #[test]
    fn corrupt_height_rejected() {
        let h = sample();
        let mut bytes = encode(&h);
        // Overwrite the first height with NaN.
        let heights_at = bytes.len() - 8 * h.num_buckets();
        bytes[heights_at..heights_at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn zero_delta_rejected() {
        // Hand-build: domain 2, 2 buckets, deltas [1, 0].
        let mut bytes = vec![MAGIC, VERSION];
        put_varint(&mut bytes, 2);
        put_varint(&mut bytes, 2);
        put_varint(&mut bytes, 1);
        put_varint(&mut bytes, 0);
        bytes.extend_from_slice(&1.0f64.to_le_bytes());
        bytes.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn varint_boundaries() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            out.clear();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos), Ok(v));
            assert_eq!(pos, out.len());
        }
    }
}
