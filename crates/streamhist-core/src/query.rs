//! Query types and the [`SequenceSummary`] abstraction.
//!
//! The paper's §3 motivates histograms as a synopsis "suitable for obtaining
//! answers to common queries about the values of points in the buffer, such
//! as point and range queries", and §5.1 evaluates "range sum queries ...
//! (similar results are obtained for range queries requesting average or
//! point queries)". This module defines those query kinds and a trait that
//! any synopsis (V-optimal histograms, wavelet synopses, quantile-derived
//! histograms) implements so workloads can be evaluated uniformly.

use crate::error::StreamhistError;
use crate::histogram::Histogram;

/// A query over a sequence of values indexed `0..n`.
///
/// All ranges are inclusive `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// The value at a single index.
    Point {
        /// Queried index.
        idx: usize,
    },
    /// The sum of values over a range — the paper's headline workload
    /// ("aggregate number of bytes over network interfaces for time windows
    /// of interest").
    RangeSum {
        /// Range start (inclusive).
        start: usize,
        /// Range end (inclusive).
        end: usize,
    },
    /// The average of values over a range.
    RangeAvg {
        /// Range start (inclusive).
        start: usize,
        /// Range end (inclusive).
        end: usize,
    },
    /// The number of points in a range. Exact for any index-partitioning
    /// summary; included for workload completeness.
    RangeCount {
        /// Range start (inclusive).
        start: usize,
        /// Range end (inclusive).
        end: usize,
    },
}

impl Query {
    /// The number of indices the query touches.
    ///
    /// An inverted range (`end < start`) touches nothing and reports a
    /// span of 0 — never a `usize` underflow. (It is still rejected by
    /// [`validate`](Self::validate), so the evaluators never divide by
    /// it.) A full-domain `[0, usize::MAX]` range saturates at
    /// `usize::MAX` instead of wrapping to 0.
    #[must_use]
    pub fn span(&self) -> usize {
        match *self {
            Query::Point { .. } => 1,
            Query::RangeSum { start, end }
            | Query::RangeAvg { start, end }
            | Query::RangeCount { start, end } => match end.checked_sub(start) {
                Some(width) => width.saturating_add(1),
                None => 0,
            },
        }
    }

    /// The largest index the query touches (used to validate workloads
    /// against a domain).
    #[must_use]
    pub fn max_index(&self) -> usize {
        match *self {
            Query::Point { idx } => idx,
            Query::RangeSum { end, .. }
            | Query::RangeAvg { end, .. }
            | Query::RangeCount { end, .. } => end,
        }
    }

    /// Checks the query against a domain of `domain_len` indices: ranges
    /// must not be inverted (`end < start`) and every touched index must
    /// lie inside `[0, domain_len)`.
    ///
    /// This is the single gate the evaluators ([`try_exact`](Self::try_exact),
    /// [`try_estimate`](Self::try_estimate)) and any network front-end
    /// route through, so a malformed query — the first thing an untrusted
    /// client sends — surfaces as a recoverable error, never an index
    /// panic or a wrapped `end - start + 1` span.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidQuery`] naming the violated condition.
    pub fn validate(&self, domain_len: usize) -> Result<(), StreamhistError> {
        let invalid = |reason: &'static str| StreamhistError::InvalidQuery { reason };
        match *self {
            Query::Point { idx } => {
                if idx >= domain_len {
                    return Err(invalid("point index past the end of the domain"));
                }
            }
            Query::RangeSum { start, end }
            | Query::RangeAvg { start, end }
            | Query::RangeCount { start, end } => {
                if end < start {
                    return Err(invalid("inverted range (end < start)"));
                }
                if end >= domain_len {
                    return Err(invalid("range end past the end of the domain"));
                }
            }
        }
        Ok(())
    }

    /// Evaluates the query exactly against raw data, validating it first.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidQuery`] if [`validate`](Self::validate)
    /// rejects the query for a domain of `data.len()` indices.
    pub fn try_exact(&self, data: &[f64]) -> Result<f64, StreamhistError> {
        self.validate(data.len())?;
        Ok(match *self {
            Query::Point { idx } => data[idx],
            Query::RangeSum { start, end } => data[start..=end].iter().sum(),
            Query::RangeAvg { start, end } => {
                data[start..=end].iter().sum::<f64>() / self.span() as f64
            }
            Query::RangeCount { start, end } => {
                debug_assert!(start <= end);
                self.span() as f64
            }
        })
    }

    /// Evaluates the query approximately against a summary, validating it
    /// against the summary's domain first.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidQuery`] if [`validate`](Self::validate)
    /// rejects the query for a domain of `summary.summary_len()` indices.
    pub fn try_estimate<S: SequenceSummary + ?Sized>(
        &self,
        summary: &S,
    ) -> Result<f64, StreamhistError> {
        self.validate(summary.summary_len())?;
        Ok(match *self {
            Query::Point { idx } => summary.estimate_point(idx),
            Query::RangeSum { start, end } => summary.estimate_range_sum(start, end),
            Query::RangeAvg { start, end } => {
                summary.estimate_range_sum(start, end) / self.span() as f64
            }
            Query::RangeCount { start, end } => {
                debug_assert!(start <= end);
                self.span() as f64
            }
        })
    }

    /// Evaluates the query exactly against raw data.
    ///
    /// # Panics
    ///
    /// Panics if [`validate`](Self::validate) rejects the query for
    /// `data`'s bounds. Use [`try_exact`](Self::try_exact) for untrusted
    /// queries.
    #[must_use]
    pub fn exact(&self, data: &[f64]) -> f64 {
        self.try_exact(data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Evaluates the query approximately against a summary.
    ///
    /// # Panics
    ///
    /// Panics if [`validate`](Self::validate) rejects the query for the
    /// summary's domain. Use [`try_estimate`](Self::try_estimate) for
    /// untrusted queries.
    #[must_use]
    pub fn estimate<S: SequenceSummary + ?Sized>(&self, summary: &S) -> f64 {
        self.try_estimate(summary).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A compact synopsis of a value sequence that can answer point and
/// range-sum estimates.
///
/// Implemented by [`Histogram`] here, wavelet synopses in
/// `streamhist-wavelet`, and any other approximation the workspace compares.
pub trait SequenceSummary {
    /// Length of the summarized sequence.
    fn summary_len(&self) -> usize;

    /// Estimate of the value at `idx`.
    fn estimate_point(&self, idx: usize) -> f64;

    /// Estimate of the sum of values over inclusive `[start, end]`.
    ///
    /// The default sums point estimates; implementors should override with
    /// an `O(B)`-or-better direct computation.
    fn estimate_range_sum(&self, start: usize, end: usize) -> f64 {
        (start..=end).map(|i| self.estimate_point(i)).sum()
    }
}

impl SequenceSummary for Histogram {
    fn summary_len(&self) -> usize {
        self.domain_len()
    }

    fn estimate_point(&self, idx: usize) -> f64 {
        self.point(idx)
    }

    fn estimate_range_sum(&self, start: usize, end: usize) -> f64 {
        self.range_sum(start, end)
    }
}

/// Adapter exposing raw data through the [`SequenceSummary`] interface, so
/// "Exact" can appear as a series alongside approximations in the harnesses
/// (as in the paper's Figure 6(a)-(b)).
#[derive(Debug, Clone, Copy)]
pub struct ExactSummary<'a> {
    data: &'a [f64],
}

impl<'a> ExactSummary<'a> {
    /// Wraps a data slice.
    #[must_use]
    pub fn new(data: &'a [f64]) -> Self {
        Self { data }
    }
}

impl SequenceSummary for ExactSummary<'_> {
    fn summary_len(&self) -> usize {
        self.data.len()
    }

    fn estimate_point(&self, idx: usize) -> f64 {
        self.data[idx]
    }

    fn estimate_range_sum(&self, start: usize, end: usize) -> f64 {
        self.data[start..=end].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    const DATA: [f64; 6] = [1.0, 1.0, 3.0, 3.0, 3.0, 10.0];

    #[test]
    fn exact_answers() {
        assert_eq!(Query::Point { idx: 5 }.exact(&DATA), 10.0);
        assert_eq!(Query::RangeSum { start: 1, end: 4 }.exact(&DATA), 10.0);
        assert_eq!(Query::RangeAvg { start: 0, end: 1 }.exact(&DATA), 1.0);
        assert_eq!(Query::RangeCount { start: 2, end: 5 }.exact(&DATA), 4.0);
    }

    #[test]
    fn histogram_estimates_are_exact_when_buckets_align() {
        let h = Histogram::from_bucket_ends(&DATA, &[1, 4, 5]);
        for q in [
            Query::Point { idx: 0 },
            Query::Point { idx: 5 },
            Query::RangeSum { start: 0, end: 5 },
            Query::RangeSum { start: 2, end: 4 },
            Query::RangeAvg { start: 0, end: 1 },
            Query::RangeCount { start: 0, end: 3 },
        ] {
            assert_eq!(q.estimate(&h), q.exact(&DATA), "{q:?}");
        }
    }

    #[test]
    fn histogram_estimate_within_bucket_uses_mean() {
        // One bucket over everything: mean = 3.5
        let h = Histogram::from_bucket_ends(&DATA, &[5]);
        assert_eq!(Query::Point { idx: 0 }.estimate(&h), 3.5);
        assert_eq!(Query::RangeSum { start: 0, end: 1 }.estimate(&h), 7.0);
    }

    #[test]
    fn exact_summary_roundtrips() {
        let s = ExactSummary::new(&DATA);
        assert_eq!(s.summary_len(), 6);
        for q in [
            Query::Point { idx: 3 },
            Query::RangeSum { start: 1, end: 5 },
        ] {
            assert_eq!(q.estimate(&s), q.exact(&DATA));
        }
    }

    #[test]
    fn span_and_max_index() {
        let q = Query::RangeSum { start: 2, end: 7 };
        assert_eq!(q.span(), 6);
        assert_eq!(q.max_index(), 7);
        assert_eq!(Query::Point { idx: 4 }.span(), 1);
        assert_eq!(Query::Point { idx: 4 }.max_index(), 4);
    }

    #[test]
    fn inverted_range_spans_zero_and_saturates() {
        // Regression: `end - start + 1` used to underflow-panic in debug
        // (wrap near usize::MAX in release) on inverted ranges.
        let q = Query::RangeSum { start: 7, end: 2 };
        assert_eq!(q.span(), 0);
        let full = Query::RangeCount {
            start: 0,
            end: usize::MAX,
        };
        assert_eq!(full.span(), usize::MAX);
    }

    #[test]
    fn validate_rejects_malformed_queries() {
        let inverted = Query::RangeAvg { start: 5, end: 1 };
        assert!(matches!(
            inverted.validate(10),
            Err(StreamhistError::InvalidQuery { .. })
        ));
        let out = Query::RangeSum { start: 0, end: 10 };
        assert!(out.validate(10).is_err());
        assert!(out.validate(11).is_ok());
        let point = Query::Point { idx: 3 };
        assert!(point.validate(3).is_err());
        assert!(point.validate(4).is_ok());
        // Zero-length domains reject everything (nothing to query).
        assert!(Query::Point { idx: 0 }.validate(0).is_err());
        assert!(Query::RangeSum { start: 0, end: 0 }.validate(0).is_err());
        // A single-index range is valid.
        assert!(Query::RangeSum { start: 2, end: 2 }.validate(3).is_ok());
    }

    #[test]
    fn try_evaluators_error_instead_of_panicking() {
        let h = Histogram::from_bucket_ends(&DATA, &[5]);
        for q in [
            Query::RangeSum { start: 4, end: 1 },
            Query::RangeAvg { start: 4, end: 1 },
            Query::RangeCount {
                start: 0,
                end: usize::MAX,
            },
            Query::Point { idx: 99 },
        ] {
            assert!(
                matches!(
                    q.try_exact(&DATA),
                    Err(StreamhistError::InvalidQuery { .. })
                ),
                "{q:?}"
            );
            assert!(
                matches!(
                    q.try_estimate(&h),
                    Err(StreamhistError::InvalidQuery { .. })
                ),
                "{q:?}"
            );
        }
        // Valid queries agree with the panicking wrappers.
        let q = Query::RangeAvg { start: 1, end: 4 };
        assert_eq!(q.try_exact(&DATA).unwrap(), q.exact(&DATA));
        assert_eq!(q.try_estimate(&h).unwrap(), q.estimate(&h));
    }

    #[test]
    #[should_panic(expected = "invalid query")]
    fn panicking_wrapper_names_the_violation() {
        let _ = Query::RangeSum { start: 3, end: 1 }.exact(&DATA);
    }

    #[test]
    fn default_range_sum_sums_points() {
        struct Const(usize);
        impl SequenceSummary for Const {
            fn summary_len(&self) -> usize {
                self.0
            }
            fn estimate_point(&self, _: usize) -> f64 {
                2.0
            }
        }
        let c = Const(10);
        assert_eq!(Query::RangeSum { start: 2, end: 4 }.estimate(&c), 6.0);
    }
}
