//! Sequence-level error metrics between a data sequence and its
//! approximation.
//!
//! The paper's construction algorithms minimize the Sum-Squared-Error (SSE,
//! Eq. 1); the evaluation section additionally reports query-level errors
//! (see [`crate::eval`]). These helpers compare any reconstructed sequence
//! against the raw one and are used throughout the workspace's tests and
//! harnesses.

/// Sum of squared differences `Σ (data[i] − approx[i])²`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn sum_squared_error(data: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(data.len(), approx.len(), "sequences must have equal length");
    data.iter()
        .zip(approx)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Sum of absolute differences `Σ |data[i] − approx[i]|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn sum_abs_error(data: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(data.len(), approx.len(), "sequences must have equal length");
    data.iter().zip(approx).map(|(a, b)| (a - b).abs()).sum()
}

/// Maximum absolute difference `max |data[i] − approx[i]|` (0 for empty
/// input). The paper notes in §3 footnote 3 that its results hold for any
/// point-wise additive error; max-error is the common alternative.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn max_abs_error(data: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(data.len(), approx.len(), "sequences must have equal length");
    data.iter()
        .zip(approx)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_basic() {
        assert_eq!(sum_squared_error(&[1.0, 2.0], &[1.0, 4.0]), 4.0);
        assert_eq!(sum_squared_error(&[], &[]), 0.0);
    }

    #[test]
    fn sae_basic() {
        assert_eq!(sum_abs_error(&[1.0, 2.0, 3.0], &[2.0, 0.0, 3.0]), 3.0);
    }

    #[test]
    fn max_abs_basic() {
        assert_eq!(max_abs_error(&[1.0, 2.0, 3.0], &[2.0, -1.0, 3.0]), 3.0);
        assert_eq!(max_abs_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn sse_length_mismatch_panics() {
        let _ = sum_squared_error(&[1.0], &[1.0, 2.0]);
    }
}
