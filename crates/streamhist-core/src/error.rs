//! Sequence-level error metrics between a data sequence and its
//! approximation, and the workspace's ingestion error type.
//!
//! The paper's construction algorithms minimize the Sum-Squared-Error (SSE,
//! Eq. 1); the evaluation section additionally reports query-level errors
//! (see [`crate::eval`]). These helpers compare any reconstructed sequence
//! against the raw one and are used throughout the workspace's tests and
//! harnesses.
//!
//! [`StreamhistError`] is the recoverable counterpart to the ingestion
//! asserts: every summary's `push`/`observe` has a `try_` variant that
//! reports malformed input instead of panicking, which is what lets a
//! serving deployment (the sharded layer in `streamhist-stream`)
//! count-and-reject bad records rather than lose a worker.

use crate::codec::DecodeError;
use std::fmt;

/// A recoverable ingestion error: the record was rejected, the summary is
/// unchanged and remains fully usable.
///
/// Returned by the `try_push`/`try_observe` entry points of the streaming
/// summaries; the panicking `push`/`observe` wrappers turn it into a panic
/// with the same message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamhistError {
    /// The value was NaN or infinite. Accepting it would silently corrupt
    /// the prefix sums and every later answer, so it is rejected up front.
    NonFiniteValue {
        /// The offending value.
        value: f64,
    },
    /// A timestamp moved backwards in a time-windowed summary, which only
    /// supports in-order (non-decreasing) arrival.
    NonMonotonicTimestamp {
        /// The rejected timestamp.
        ts: u64,
        /// The latest timestamp previously observed.
        now: u64,
    },
    /// A constructor/builder parameter is outside its valid domain. The
    /// builders return this instead of panicking; the legacy positional
    /// constructors panic with the same message.
    InvalidParameter {
        /// Which parameter was rejected (`"b"`, `"eps"`, `"capacity"`, ...).
        param: &'static str,
        /// Why it was rejected.
        message: &'static str,
    },
    /// A bounded structure (a fixed-length wavelet array, for example) has
    /// no room for another value.
    CapacityExhausted {
        /// The structure's fixed capacity.
        capacity: usize,
    },
    /// A query is malformed for the domain it was evaluated against: an
    /// inverted range (`end < start`) or an index past the end of the
    /// summarized sequence. Returned by [`crate::Query::validate`] and the
    /// `try_exact`/`try_estimate` evaluators — a network front-end turns
    /// this into an error frame instead of letting `end - start + 1`
    /// underflow.
    InvalidQuery {
        /// What the validator tripped on.
        reason: &'static str,
    },
    /// A checkpoint frame failed validation: truncated, checksum mismatch,
    /// wrong type tag, or a payload violating the summary's invariants.
    /// The frame is rejected whole; nothing is partially restored.
    CorruptCheckpoint {
        /// What the validator tripped on.
        reason: &'static str,
    },
    /// A histogram wire decode failed (see [`crate::codec::decode`]).
    /// Wraps [`DecodeError`] so checkpoint/serving callers handle one
    /// error type end to end.
    Decode(DecodeError),
}

impl From<DecodeError> for StreamhistError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

impl fmt::Display for StreamhistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFiniteValue { value } => {
                write!(f, "stream values must be finite (got {value})")
            }
            Self::NonMonotonicTimestamp { ts, now } => {
                write!(f, "timestamps must be non-decreasing ({ts} < {now})")
            }
            Self::InvalidParameter { param, message } => {
                write!(f, "invalid parameter `{param}`: {message}")
            }
            Self::CapacityExhausted { capacity } => {
                write!(f, "summary capacity exhausted ({capacity} values)")
            }
            Self::InvalidQuery { reason } => {
                write!(f, "invalid query: {reason}")
            }
            Self::CorruptCheckpoint { reason } => {
                write!(f, "corrupt checkpoint frame: {reason}")
            }
            Self::Decode(e) => write!(f, "histogram decode failed: {e}"),
        }
    }
}

impl std::error::Error for StreamhistError {}

/// Sum of squared differences `Σ (data[i] − approx[i])²`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn sum_squared_error(data: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(data.len(), approx.len(), "sequences must have equal length");
    data.iter()
        .zip(approx)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Sum of absolute differences `Σ |data[i] − approx[i]|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn sum_abs_error(data: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(data.len(), approx.len(), "sequences must have equal length");
    data.iter().zip(approx).map(|(a, b)| (a - b).abs()).sum()
}

/// Maximum absolute difference `max |data[i] − approx[i]|` (0 for empty
/// input). The paper notes in §3 footnote 3 that its results hold for any
/// point-wise additive error; max-error is the common alternative.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn max_abs_error(data: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(data.len(), approx.len(), "sequences must have equal length");
    data.iter()
        .zip(approx)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_basic() {
        assert_eq!(sum_squared_error(&[1.0, 2.0], &[1.0, 4.0]), 4.0);
        assert_eq!(sum_squared_error(&[], &[]), 0.0);
    }

    #[test]
    fn sae_basic() {
        assert_eq!(sum_abs_error(&[1.0, 2.0, 3.0], &[2.0, 0.0, 3.0]), 3.0);
    }

    #[test]
    fn max_abs_basic() {
        assert_eq!(max_abs_error(&[1.0, 2.0, 3.0], &[2.0, -1.0, 3.0]), 3.0);
        assert_eq!(max_abs_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn sse_length_mismatch_panics() {
        let _ = sum_squared_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn streamhist_error_messages_name_the_violation() {
        let nan = StreamhistError::NonFiniteValue { value: f64::NAN };
        assert!(nan.to_string().contains("finite"));
        let back = StreamhistError::NonMonotonicTimestamp { ts: 3, now: 9 };
        assert!(back.to_string().contains("non-decreasing"));
        assert!(back.to_string().contains('3') && back.to_string().contains('9'));
        let bad = StreamhistError::InvalidParameter {
            param: "b",
            message: "need at least one bucket",
        };
        assert!(bad.to_string().contains("`b`"));
        assert!(bad.to_string().contains("need at least one bucket"));
        let full = StreamhistError::CapacityExhausted { capacity: 16 };
        assert!(full.to_string().contains("exhausted"));
        assert!(full.to_string().contains("16"));
        let corrupt = StreamhistError::CorruptCheckpoint {
            reason: "checksum mismatch",
        };
        assert!(corrupt.to_string().contains("checksum mismatch"));
        let decode: StreamhistError = DecodeError::BadHeader.into();
        assert_eq!(decode, StreamhistError::Decode(DecodeError::BadHeader));
        assert!(decode.to_string().contains("bad magic/version"));
    }
}
