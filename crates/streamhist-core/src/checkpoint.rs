//! Durable checkpoint/restore for streaming summaries.
//!
//! The paper's motivating deployment is network elements shipping synopses
//! to collectors; processes there die, and the value of a small summary is
//! that its whole state is cheap to capture and ship. This module defines
//! the [`Checkpoint`] trait every `StreamSummary` in the workspace
//! implements, plus the shared frame machinery: a versioned, magic-tagged,
//! CRC32-checksummed envelope in the style of [`crate::codec`].
//!
//! # Frame layout
//!
//! ```text
//! magic   u8       0x43 ('C')
//! version u8       1
//! tag     u8       summary type (see [`tag`])
//! payload ...      type-specific fields (varints, f64-le, nested frames)
//! crc32   u32-le   CRC-32 (IEEE 802.3) over every preceding byte
//! ```
//!
//! Restore validates the envelope before touching the payload: a truncated
//! frame, a flipped bit anywhere (header, payload, or checksum), a wrong
//! type tag, or trailing bytes all surface as
//! [`StreamhistError::CorruptCheckpoint`] — never a panic, never a
//! silently-wrong summary. CRC-32 detects every single-bit error, so the
//! corruption fuzz suite can assert rejection of *all* bit flips, not just
//! structurally invalid ones.
//!
//! # Bit-identity contract
//!
//! `restore(&s.encode_checkpoint())` must behave **bit-identically** to `s`
//! from then on: same query answers, same state after any further pushes.
//! For the window summaries this falls out of serializing the raw buffered
//! points plus the *complete* rebased prefix state (anchor, cumulative
//! entries, and position in the rebase schedule — rebase timing changes the
//! rounding of later entries, so the schedule position is part of the
//! state) and rebuilding interval lists deterministically through the
//! kernel at the next materialization.

use crate::error::StreamhistError;

/// Magic byte opening every checkpoint frame (`'C'`).
pub const MAGIC: u8 = 0x43;
/// Current frame format version.
pub const VERSION: u8 = 1;

/// Type tags identifying which summary a frame belongs to. A frame only
/// restores through the type that wrote it; a tag mismatch is rejected as
/// corruption (it usually means frames got routed to the wrong consumer).
pub mod tag {
    /// `FixedWindowHistogram` (streamhist-stream).
    pub const FIXED_WINDOW: u8 = 1;
    /// `AgglomerativeHistogram` (streamhist-stream).
    pub const AGGLOMERATIVE: u8 = 2;
    /// `TimeWindowHistogram` (streamhist-stream).
    pub const TIME_WINDOW: u8 = 3;
    /// `GkSummary` (streamhist-quantile).
    pub const GK: u8 = 4;
    /// `MrlSummary` (streamhist-quantile).
    pub const MRL: u8 = 5;
    /// `StreamingEquiDepth` (streamhist-quantile).
    pub const EQUI_DEPTH: u8 = 6;
    /// `FrequencyVector` (streamhist-freq).
    pub const FREQUENCY_VECTOR: u8 = 7;
    /// `DynamicWavelet` (streamhist-wavelet).
    pub const DYNAMIC_WAVELET: u8 = 8;
    /// `SlidingWindowWavelet` (streamhist-wavelet).
    pub const SLIDING_WAVELET: u8 = 9;
    /// `Histogram` (streamhist-core) — a materialized (possibly gathered
    /// fleet-global) snapshot persisted for serving after restart.
    pub const HISTOGRAM: u8 = 10;
    /// A [`crate::wal::WalSegment`] — a contiguous run of accepted records
    /// (the incremental complement of a full checkpoint frame).
    pub const WAL_SEGMENT: u8 = 11;
    /// A `streamhist-serve` request frame (query/admin verb + arguments).
    /// Serve frames share the checkpoint envelope (magic, version, CRC) so
    /// the wire inherits the same corruption guarantees.
    pub const SERVE_REQUEST: u8 = 32;
    /// A `streamhist-serve` success-response frame.
    pub const SERVE_RESPONSE: u8 = 33;
    /// A `streamhist-serve` structured error frame (code + detail string).
    pub const SERVE_ERROR: u8 = 34;
    /// A flight-recorder event (`streamhist-obs`), as carried inside the
    /// serve protocol's `events` admin verb responses.
    pub const EVENT: u8 = 35;
}

/// Durable save/restore of a summary's complete state.
///
/// Implementations serialize into the shared frame format (see the module
/// docs) via [`FrameWriter`]/[`FrameReader`]. The contract: restoring an
/// encoded checkpoint yields a summary bit-identical in behaviour to the
/// one that was encoded.
pub trait Checkpoint {
    /// Serializes the summary's complete state into a self-validating
    /// frame.
    fn encode_checkpoint(&self) -> Vec<u8>;

    /// Reconstructs a summary from a frame produced by
    /// [`encode_checkpoint`](Self::encode_checkpoint).
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::CorruptCheckpoint`] if the frame is
    /// truncated, fails its checksum, carries the wrong type tag, or its
    /// payload violates the summary's invariants. Never panics on
    /// malformed input.
    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError>
    where
        Self: Sized;
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), bitwise —
/// checkpointing is off the hot path, so no table is kept.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Builds one checkpoint frame: header on construction, payload via the
/// `put_*` methods, checksum on [`finish`](Self::finish).
#[derive(Debug)]
pub struct FrameWriter {
    buf: Vec<u8>,
}

impl FrameWriter {
    /// Starts a frame for the given type [`tag`].
    #[must_use]
    pub fn new(tag: u8) -> Self {
        Self {
            buf: vec![MAGIC, VERSION, tag],
        }
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a LEB128 varint (same encoding as the histogram wire
    /// codec).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a `usize` as a varint.
    pub fn put_usize(&mut self, v: usize) {
        self.put_varint(v as u64);
    }

    /// Appends an `f64` as its exact little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `(sum, sqsum)` cumulative pair.
    pub fn put_pair(&mut self, (s, q): (f64, f64)) {
        self.put_f64(s);
        self.put_f64(q);
    }

    /// Appends a length-prefixed byte string (for nested frames).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Seals the frame: appends the CRC-32 of everything written so far
    /// and returns the bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

fn corrupt(reason: &'static str) -> StreamhistError {
    StreamhistError::CorruptCheckpoint { reason }
}

/// Validating cursor over one checkpoint frame. [`open`](Self::open)
/// checks the envelope (length, checksum, magic, version, tag) before any
/// payload is read; the `get_*` methods then decode payload fields, and
/// [`finish`](Self::finish) asserts the payload was consumed exactly.
#[derive(Debug)]
pub struct FrameReader<'a> {
    /// Payload region only (header stripped, checksum trailer excluded).
    payload: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Validates the envelope of `input` and positions a cursor at the
    /// start of the payload.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] on truncation, checksum
    /// mismatch, bad magic/version, or a tag other than `expected_tag`.
    pub fn open(input: &'a [u8], expected_tag: u8) -> Result<Self, StreamhistError> {
        if input.len() < 7 {
            return Err(corrupt("frame shorter than header + checksum"));
        }
        let (body, crc_bytes) = input.split_at(input.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte slice"));
        if crc32(body) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        if body[0] != MAGIC {
            return Err(corrupt("bad magic byte"));
        }
        if body[1] != VERSION {
            return Err(corrupt("unsupported frame version"));
        }
        if body[2] != expected_tag {
            return Err(corrupt("frame is for a different summary type"));
        }
        Ok(Self {
            payload: &body[3..],
            pos: 0,
        })
    }

    /// Bytes of payload not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] if the payload is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, StreamhistError> {
        let &b = self
            .payload
            .get(self.pos)
            .ok_or_else(|| corrupt("payload truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] on truncation or a varint
    /// running past 64 bits.
    pub fn get_varint(&mut self) -> Result<u64, StreamhistError> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(corrupt("varint exceeds 64 bits"));
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Reads a `usize` varint and sanity-checks it as an element count:
    /// each element occupies at least `min_bytes_per_item` payload bytes,
    /// so a count the remaining payload cannot possibly hold is rejected
    /// up front (bounding allocations on adversarial frames).
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] on truncation, overflow, or
    /// an impossible count.
    pub fn get_count(&mut self, min_bytes_per_item: usize) -> Result<usize, StreamhistError> {
        let raw = self.get_varint()?;
        let n = usize::try_from(raw).map_err(|_| corrupt("count exceeds usize"))?;
        if n.saturating_mul(min_bytes_per_item.max(1)) > self.remaining() {
            return Err(corrupt("count exceeds remaining payload"));
        }
        Ok(n)
    }

    /// Reads a `usize` varint (no count sanity check — for scalar fields
    /// like capacities and totals).
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] on truncation or overflow.
    pub fn get_usize(&mut self) -> Result<usize, StreamhistError> {
        usize::try_from(self.get_varint()?).map_err(|_| corrupt("value exceeds usize"))
    }

    /// Reads an `f64` bit pattern, rejecting NaN/infinities — no summary
    /// in the workspace stores a non-finite value, so one in a frame means
    /// corruption.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] on truncation or a
    /// non-finite value.
    pub fn get_f64(&mut self) -> Result<f64, StreamhistError> {
        let bytes = self
            .payload
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| corrupt("payload truncated"))?;
        self.pos += 8;
        let v = f64::from_le_bytes(bytes.try_into().expect("8-byte slice"));
        if !v.is_finite() {
            return Err(corrupt("non-finite float in payload"));
        }
        Ok(v)
    }

    /// Reads a `(sum, sqsum)` cumulative pair.
    ///
    /// # Errors
    ///
    /// As [`get_f64`](Self::get_f64).
    pub fn get_pair(&mut self) -> Result<(f64, f64), StreamhistError> {
        Ok((self.get_f64()?, self.get_f64()?))
    }

    /// Reads a length-prefixed byte string (a nested frame).
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] on truncation or an
    /// impossible length.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], StreamhistError> {
        let len = self.get_count(1)?;
        let bytes = self
            .payload
            .get(self.pos..self.pos + len)
            .ok_or_else(|| corrupt("payload truncated"))?;
        self.pos += len;
        Ok(bytes)
    }

    /// Asserts the payload was consumed exactly — trailing bytes mean the
    /// frame was not produced by the matching encoder.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] if payload bytes remain.
    pub fn finish(self) -> Result<(), StreamhistError> {
        if self.remaining() != 0 {
            return Err(corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut w = FrameWriter::new(tag::FIXED_WINDOW);
        w.put_varint(300);
        w.put_f64(1.5);
        w.put_pair((2.0, 4.0));
        w.put_bytes(&[9, 8, 7]);
        w.finish()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let bytes = sample_frame();
        let mut r = FrameReader::open(&bytes, tag::FIXED_WINDOW).expect("valid frame");
        assert_eq!(r.get_varint().unwrap(), 300);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert_eq!(r.get_pair().unwrap(), (2.0, 4.0));
        assert_eq!(r.get_bytes().unwrap(), &[9, 8, 7]);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn every_truncation_rejected() {
        let bytes = sample_frame();
        for cut in 0..bytes.len() {
            let err = FrameReader::open(&bytes[..cut], tag::FIXED_WINDOW)
                .err()
                .unwrap_or_else(|| panic!("cut {cut} must fail"));
            assert!(matches!(err, StreamhistError::CorruptCheckpoint { .. }));
        }
    }

    #[test]
    fn every_single_bit_flip_rejected() {
        let bytes = sample_frame();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    FrameReader::open(&flipped, tag::FIXED_WINDOW).is_err(),
                    "flip at byte {byte} bit {bit} must fail the checksum"
                );
            }
        }
    }

    #[test]
    fn wrong_tag_rejected() {
        let bytes = sample_frame();
        let err = FrameReader::open(&bytes, tag::GK).expect_err("tag mismatch");
        assert!(matches!(err, StreamhistError::CorruptCheckpoint { .. }));
    }

    #[test]
    fn trailing_payload_rejected() {
        let bytes = sample_frame();
        let mut r = FrameReader::open(&bytes, tag::FIXED_WINDOW).expect("valid frame");
        let _ = r.get_varint().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn non_finite_float_rejected() {
        let mut w = FrameWriter::new(tag::MRL);
        w.put_f64(f64::NAN);
        let bytes = w.finish();
        let mut r = FrameReader::open(&bytes, tag::MRL).expect("envelope is valid");
        assert!(r.get_f64().is_err());
    }

    #[test]
    fn impossible_count_rejected() {
        let mut w = FrameWriter::new(tag::MRL);
        w.put_varint(u64::MAX);
        let bytes = w.finish();
        let mut r = FrameReader::open(&bytes, tag::MRL).expect("envelope is valid");
        assert!(r.get_count(8).is_err());
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut w = FrameWriter::new(0);
            w.put_varint(v);
            let bytes = w.finish();
            let mut r = FrameReader::open(&bytes, 0).expect("valid");
            assert_eq!(r.get_varint().unwrap(), v);
            r.finish().unwrap();
        }
    }
}
