//! Write-ahead-log segments: the incremental half of durability.
//!
//! A full [`Checkpoint`](crate::Checkpoint) frame costs `O(window)` to
//! encode, so cutting one every few records makes durability cost linear in
//! window size per interval. The accepted record stream itself is the
//! natural incremental log: a [`WalSegment`] is a contiguous run of
//! accepted records, carried in the same magic/version/CRC envelope as
//! every other frame in the workspace (tag
//! [`WAL_SEGMENT`](crate::checkpoint::tag::WAL_SEGMENT)), so it inherits
//! the corruption guarantees — truncations and bit flips are rejected, not
//! replayed.
//!
//! Replaying a segment is just re-pushing its records in order, and pushes
//! are bit-deterministic, so *last frame + replayed segments* reconstructs
//! a summary bit-identical to one that never crashed (see DESIGN.md).
//!
//! # Payload layout (inside the standard envelope)
//!
//! | field   | encoding        | meaning                                      |
//! |---------|-----------------|----------------------------------------------|
//! | shard   | varint          | shard the records belong to                  |
//! | base    | varint          | index of the first record in the shard's accepted-record sequence |
//! | count   | varint          | number of records                            |
//! | records | count × f64-le  | the accepted values, in absorption order     |

use crate::checkpoint::{tag, FrameReader, FrameWriter};
use crate::error::StreamhistError;

/// One contiguous run of accepted records, CRC-framed for durable storage.
///
/// `base` addresses the run in the owning summary's `total_pushed` domain:
/// the segment holds accepted records `base .. base + records.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalSegment {
    /// The shard these records were accepted by.
    pub shard: u64,
    /// Index of `records[0]` in the shard's accepted-record sequence.
    pub base: u64,
    /// The accepted values, in absorption order. Always finite: non-finite
    /// values are rejected at ingest and never reach a log.
    pub records: Vec<f64>,
}

impl WalSegment {
    /// One past the index of the last record this segment covers.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base + self.records.len() as u64
    }

    /// Serializes the segment into a self-validating frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::WAL_SEGMENT);
        w.put_varint(self.shard);
        w.put_varint(self.base);
        w.put_usize(self.records.len());
        for &v in &self.records {
            w.put_f64(v);
        }
        w.finish()
    }

    /// Decodes a frame produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] on truncation, checksum
    /// mismatch, a wrong tag, a non-finite record, or an `end` overflowing
    /// `u64`.
    pub fn decode(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let mut r = FrameReader::open(bytes, tag::WAL_SEGMENT)?;
        let shard = r.get_varint()?;
        let base = r.get_varint()?;
        let count = r.get_count(8)?;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            records.push(r.get_f64()?);
        }
        r.finish()?;
        if base.checked_add(records.len() as u64).is_none() {
            return Err(StreamhistError::CorruptCheckpoint {
                reason: "WAL segment range overflows the record domain",
            });
        }
        Ok(Self {
            shard,
            base,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WalSegment {
        WalSegment {
            shard: 3,
            base: 4096,
            records: vec![1.5, -2.25, 0.0, 1e12],
        }
    }

    #[test]
    fn roundtrip() {
        let seg = sample();
        let bytes = seg.encode();
        let back = WalSegment::decode(&bytes).unwrap();
        assert_eq!(back, seg);
        assert_eq!(back.end(), 4100);
    }

    #[test]
    fn empty_segment_roundtrips() {
        let seg = WalSegment {
            shard: 0,
            base: 0,
            records: Vec::new(),
        };
        let back = WalSegment::decode(&seg.encode()).unwrap();
        assert_eq!(back, seg);
        assert_eq!(back.end(), 0);
    }

    #[test]
    fn every_truncation_and_bit_flip_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(WalSegment::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    WalSegment::decode(&flipped).is_err(),
                    "flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut w = FrameWriter::new(tag::FIXED_WINDOW);
        w.put_varint(0);
        assert!(WalSegment::decode(&w.finish()).is_err());
    }

    #[test]
    fn non_finite_record_rejected() {
        let mut w = FrameWriter::new(tag::WAL_SEGMENT);
        w.put_varint(0);
        w.put_varint(0);
        w.put_usize(1);
        w.put_f64(1.0);
        let mut bytes = w.finish();
        // Overwrite the record bytes with a NaN pattern and re-seal.
        let len = bytes.len();
        bytes[len - 12..len - 4].copy_from_slice(&f64::NAN.to_le_bytes());
        let crc = crate::checkpoint::crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(WalSegment::decode(&bytes).is_err());
    }

    #[test]
    fn overflowing_range_rejected() {
        let mut w = FrameWriter::new(tag::WAL_SEGMENT);
        w.put_varint(0);
        w.put_varint(u64::MAX);
        w.put_usize(1);
        w.put_f64(1.0);
        assert!(WalSegment::decode(&w.finish()).is_err());
    }
}
