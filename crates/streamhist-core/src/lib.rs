//! # streamhist-core
//!
//! Core substrate for the `streamhist` workspace: bucket/histogram
//! representations, prefix-sum machinery, error metrics, and the query and
//! evaluation layer shared by every approximation method in the workspace.
//!
//! The workspace reproduces *Guha & Koudas, "Approximating a Data Stream for
//! Querying and Estimation: Algorithms and Performance Evaluation"*
//! (ICDE 2002). This crate corresponds to the paper's Section 3
//! ("Histogramming Problem Definition"):
//!
//! * [`Bucket`] and [`Histogram`] — the piecewise-constant representation
//!   `H_B`: a sequence of buckets `b_i = (s_i, e_i, h_i)` where `h_i` is the
//!   mean of the values in `[s_i, e_i]`.
//! * [`PrefixSums`] — the `SUM`/`SQSUM` arrays (paper Eq. 3) giving `O(1)`
//!   evaluation of the bucket error `SQERROR[i, j]` (paper Eq. 2).
//! * [`SlidingPrefixSums`] — the cyclic `SUM'`/`SQSUM'` arrays of the fixed
//!   window algorithm (paper §4.5) with the amortized rebase "from some point
//!   in the past".
//! * [`Query`] / [`SequenceSummary`] — point, range-sum, range-average and
//!   range-count queries, evaluated exactly on raw data or approximately on
//!   any summary (histograms here, wavelet synopses in `streamhist-wavelet`).
//! * [`evaluate_queries`] — the paper's §5 accuracy protocol: run a workload
//!   of random queries and report average errors.
//! * [`StreamSummary`] — the workspace-wide ingestion interface
//!   (`try_push`/`push`/`push_batch`/`len`/`reset`) implemented by every
//!   streaming summary in the downstream crates.
//! * [`MergeableSummary`] — the workspace-wide merge interface
//!   (`merge_from`/`merge`) for scatter/gather deployments: summaries of
//!   stream partitions combine into one global summary, with documented
//!   error composition (DESIGN.md §7).
//! * [`CheckpointStore`] — the pluggable durable-storage seam for
//!   checkpoint frames and [`WalSegment`] write-ahead-log segments
//!   ([`DirStore`] on a local directory with atomic temp-file + rename
//!   writes, [`MemStore`] for tests, [`FailingStore`] for fault
//!   injection).
//!
//! All index domains are 0-based and ranges are inclusive `[start, end]`,
//! matching the bucket convention of the paper (which is 1-based; we shift).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod checkpoint;
pub mod codec;
pub mod distance;
pub mod error;
pub mod eval;
pub mod histogram;
pub mod prefix;
pub mod query;
pub mod store;
pub mod summary;
pub mod wal;

pub use bucket::Bucket;
pub use checkpoint::{Checkpoint, FrameReader, FrameWriter};
pub use codec::{decode, encode, DecodeError};
pub use error::{max_abs_error, sum_abs_error, sum_squared_error, StreamhistError};
pub use eval::{evaluate_queries, AccuracyReport};
pub use histogram::{Histogram, HistogramError};
pub use prefix::{GrowableWindowSums, PrefixProvider, PrefixSums, SlidingPrefixSums, WindowSums};
pub use query::{ExactSummary, Query, SequenceSummary};
pub use store::{
    CheckpointStore, DirStore, FailingStore, MemStore, ObjectId, ObjectKind, StoreError,
};
pub use summary::{BatchOutcome, MergeableSummary, StreamSummary};
pub use wal::WalSegment;
