//! Prefix-sum machinery: the paper's `SUM`/`SQSUM` arrays (Eq. 3) and the
//! sliding `SUM'`/`SQSUM'` variant of the fixed-window algorithm (§4.5).
//!
//! Both structures answer the bucket error
//!
//! ```text
//! SQERROR[i, j] = Σ v_l²  −  (Σ v_l)² / (j − i + 1)      (paper Eq. 2)
//! ```
//!
//! in `O(1)`, which is the workhorse of every construction algorithm.

use crate::error::StreamhistError;
use std::collections::VecDeque;

/// Read interface over the sums of a (window of a) sequence: everything a
/// histogram construction needs — `O(1)` range sums, sums of squares and
/// `SQERROR` over window-relative inclusive ranges.
///
/// Implemented by [`SlidingPrefixSums`] (count-based windows, the paper's
/// model) and [`GrowableWindowSums`] (externally-driven eviction, used for
/// the time-based windows of the paper's Figure 1 description).
///
/// # Preconditions
///
/// Every range query takes an **inclusive, non-empty** window-relative
/// range: callers must guarantee `start <= end` and `end < len()`. The
/// count divisor is computed as `end - start + 1` with unsigned
/// arithmetic, so a violated `start <= end` would underflow-panic in debug
/// builds and silently wrap to a garbage divisor in release builds — the
/// default [`mean`](Self::mean) and [`sqerror`](Self::sqerror) therefore
/// `debug_assert!` the ordering, and implementations of
/// [`range_sum`](Self::range_sum)/[`range_sqsum`](Self::range_sqsum)
/// should do the same.
pub trait WindowSums {
    /// Number of points currently summarized.
    fn len(&self) -> usize;

    /// Whether the window is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of values over window-relative `[start, end]`.
    ///
    /// Requires `start <= end < len()` (see the trait-level preconditions).
    fn range_sum(&self, start: usize, end: usize) -> f64;

    /// Sum of squares over window-relative `[start, end]`.
    ///
    /// Requires `start <= end < len()` (see the trait-level preconditions).
    fn range_sqsum(&self, start: usize, end: usize) -> f64;

    /// Mean over window-relative `[start, end]`.
    ///
    /// Requires `start <= end < len()` (see the trait-level preconditions).
    fn mean(&self, start: usize, end: usize) -> f64 {
        debug_assert!(
            start <= end,
            "WindowSums::mean requires start <= end (inclusive range), got start={start}, end={end}"
        );
        self.range_sum(start, end) / (end - start + 1) as f64
    }

    /// `SQERROR` (paper Eq. 2) over window-relative `[start, end]`,
    /// clamped at 0.
    ///
    /// Requires `start <= end < len()` (see the trait-level preconditions).
    fn sqerror(&self, start: usize, end: usize) -> f64 {
        debug_assert!(
            start <= end,
            "WindowSums::sqerror requires start <= end (inclusive range), got start={start}, end={end}"
        );
        let n = (end - start + 1) as f64;
        let s = self.range_sum(start, end);
        let q = self.range_sqsum(start, end);
        (q - s * s / n).max(0.0)
    }
}

/// Read interface tailored to the streaming dynamic program (the shared
/// `herror_eval` kernel in `streamhist-stream`): the three prefix views the
/// DP consumes, each in the cheapest frame the backing store can serve.
///
/// The kernel compares segment errors of the form
/// `SQSUM(e+1, c) − SUM(e+1, c)² / len`, where the left end `e` is an
/// interval endpoint whose cumulative sums were captured when the endpoint
/// was created and the right end `c` is the position being evaluated. To
/// make that subtraction exact the two sides must come from the *same*
/// frame, but the frame itself is arbitrary — only differences are ever
/// used. [`dp_sums`](Self::dp_sums) therefore exposes the store's raw
/// cumulative pairs (anchor-relative for the sliding stores, absolute for
/// whole-stream totals) without normalizing them.
///
/// Bucket-boundary chains additionally need window-framed prefix sums
/// (heights are derived from their differences, starting at window index
/// 0), served by [`chain_sum`](Self::chain_sum), and the DP's single-bucket
/// candidate `SQERROR[0, c]` is served by
/// [`head_sqerror`](Self::head_sqerror).
///
/// Implementations: [`SlidingPrefixSums`] (count windows),
/// [`GrowableWindowSums`] (time windows), [`PrefixSums`] (offline slices),
/// and the whole-stream running totals inside `streamhist-stream`'s
/// agglomerative summary.
pub trait PrefixProvider {
    /// Number of points currently summarized.
    fn len(&self) -> usize;

    /// Whether no points are currently summarized.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative `(sum, sqsum)` through window-relative `idx` inclusive,
    /// in an arbitrary but internally consistent frame: only differences
    /// between two `dp_sums` results (or between a `dp_sums` result and
    /// itself at a later index, absent intervening mutation) are
    /// meaningful.
    fn dp_sums(&self, idx: usize) -> (f64, f64);

    /// Sum of values over window-relative `[0, idx]` — the window frame
    /// required by bucket-boundary chains.
    fn chain_sum(&self, idx: usize) -> f64;

    /// `SQERROR[0, idx]` (paper Eq. 2, clamped at 0): the DP's
    /// single-bucket candidate.
    fn head_sqerror(&self, idx: usize) -> f64;

    /// Number of anchor rebases performed so far (0 for stores without a
    /// moving anchor). Surfaced as a kernel diagnostic.
    fn rebases(&self) -> usize {
        0
    }
}

/// Static prefix sums over a fixed slice: `SUM[0..=n]`, `SQSUM[0..=n]`.
///
/// `sum[k]` holds the sum of the first `k` values (so `sum[0] == 0`), and
/// likewise for squares. Range queries use inclusive 0-based `[start, end]`.
#[derive(Debug, Clone)]
pub struct PrefixSums {
    sum: Vec<f64>,
    sqsum: Vec<f64>,
}

impl PrefixSums {
    /// Computes both arrays in one pass, `O(n)` time and space.
    #[must_use]
    pub fn new(data: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(data.len() + 1);
        let mut sqsum = Vec::with_capacity(data.len() + 1);
        sum.push(0.0);
        sqsum.push(0.0);
        let (mut s, mut q) = (0.0, 0.0);
        for &v in data {
            s += v;
            q += v * v;
            sum.push(s);
            sqsum.push(q);
        }
        Self { sum, sqsum }
    }

    /// Number of underlying values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sum.len() - 1
    }

    /// Whether the underlying sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of values in `[start, end]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if `end >= len` ; debug-asserts
    /// `start <= end`.
    #[must_use]
    pub fn range_sum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end);
        self.sum[end + 1] - self.sum[start]
    }

    /// Sum of squared values in `[start, end]` (inclusive).
    #[must_use]
    pub fn range_sqsum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end);
        self.sqsum[end + 1] - self.sqsum[start]
    }

    /// Mean of the values in `[start, end]` — the SSE-optimal bucket height.
    #[must_use]
    pub fn mean(&self, start: usize, end: usize) -> f64 {
        self.range_sum(start, end) / (end - start + 1) as f64
    }

    /// The paper's `SQERROR[start, end]` (Eq. 2): the SSE incurred by
    /// collapsing `[start, end]` into one bucket at its mean. Clamped at 0
    /// to absorb floating-point cancellation on near-constant ranges.
    #[must_use]
    pub fn sqerror(&self, start: usize, end: usize) -> f64 {
        let n = (end - start + 1) as f64;
        let s = self.range_sum(start, end);
        let q = self.range_sqsum(start, end);
        (q - s * s / n).max(0.0)
    }
}

/// Sliding-window prefix sums: the `SUM'`/`SQSUM'` arrays of the paper's
/// fixed-window algorithm (§4.5).
///
/// Maintains cumulative sums "from some point in the past `ℓ`" so that any
/// window-relative range query is two subtractions. The anchor is moved
/// forward to the start of the window every `rebase_period` pushes (the
/// paper rebases every `n` iterations: `O(n)` work "amortized over n
/// iterations, can be ignored"). Rebasing also bounds floating-point drift,
/// because cumulative magnitudes reset relative to the window content.
///
/// Indices in queries are **window-relative**: 0 is the oldest retained
/// point, `len() - 1` the most recent.
#[derive(Debug, Clone)]
pub struct SlidingPrefixSums {
    capacity: usize,
    /// Cumulative (sum, sqsum) *including* each retained point, measured
    /// from the current anchor.
    cum: VecDeque<(f64, f64)>,
    /// Cumulative (sum, sqsum) of everything evicted since the anchor, i.e.
    /// the value "just before" window index 0.
    head: (f64, f64),
    rebase_period: usize,
    since_rebase: usize,
    rebases: usize,
}

impl SlidingPrefixSums {
    /// Creates an empty window with the paper's default rebase period of
    /// `capacity` pushes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_rebase_period(capacity, capacity)
    }

    /// Creates an empty window with an explicit rebase period (used by the
    /// ABL-REBASE ablation bench).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `rebase_period == 0`.
    #[must_use]
    pub fn with_rebase_period(capacity: usize, rebase_period: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(rebase_period > 0, "rebase period must be positive");
        Self {
            capacity,
            cum: VecDeque::with_capacity(capacity),
            head: (0.0, 0.0),
            rebase_period,
            since_rebase: 0,
            rebases: 0,
        }
    }

    /// Number of anchor moves performed so far (each pays `O(len)`; the
    /// count is the diagnostic surfaced through kernel stats).
    #[must_use]
    pub fn rebases(&self) -> usize {
        self.rebases
    }

    /// Window capacity `n`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured rebase period (anchor moves every this many pushes).
    #[must_use]
    pub fn rebase_period(&self) -> usize {
        self.rebase_period
    }

    /// Number of points currently retained (`<= capacity`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether no points have been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Whether the window has reached capacity (every further push evicts).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.cum.len() == self.capacity
    }

    /// Appends `v`, evicting the temporally oldest point if the window is
    /// full. Amortized `O(1)`; every `rebase_period`-th push pays `O(len)`
    /// to move the anchor (paper §4.5).
    pub fn push(&mut self, v: f64) {
        if self.cum.len() == self.capacity {
            let evicted = self.cum.pop_front().expect("full window is non-empty");
            self.head = evicted;
        }
        let (s, q) = self.cum.back().copied().unwrap_or(self.head);
        self.cum.push_back((s + v, q + v * v));
        self.since_rebase += 1;
        if self.since_rebase >= self.rebase_period {
            self.rebase();
        }
    }

    /// Appends a whole slab, evicting oldest points as needed — the batch
    /// ingestion fast path. Equivalent to calling [`push`](Self::push) per
    /// value **bit for bit**, including the anchor-rebase schedule: the
    /// slab is split at rebase boundaries, so each rebase fires after
    /// exactly the same push it would have fired after in per-point mode
    /// (rebase timing changes the rounding of later cumulative entries, so
    /// replicating the schedule is what keeps the two modes identical).
    ///
    /// Within a chunk the rebase branch and the back-of-deque lookup are
    /// hoisted out of the loop: one rebase check and one write pass per
    /// chunk, with the running `(sum, sqsum)` kept in registers. The
    /// accumulation `(s + v, q + v*v)` is the same operation sequence as
    /// per-point pushes, so the stored values are identical.
    pub fn push_slab(&mut self, values: &[f64]) {
        let mut rest = values;
        while !rest.is_empty() {
            // The per-point invariant `since_rebase < rebase_period` holds
            // on entry, so `take >= 1` and the chunk ends exactly where the
            // next rebase would fire.
            let take = (self.rebase_period - self.since_rebase).min(rest.len());
            let (chunk, tail) = rest.split_at(take);
            let (mut s, mut q) = self.cum.back().copied().unwrap_or(self.head);
            for &v in chunk {
                if self.cum.len() == self.capacity {
                    let evicted = self.cum.pop_front().expect("full window is non-empty");
                    self.head = evicted;
                }
                s += v;
                q += v * v;
                self.cum.push_back((s, q));
            }
            self.since_rebase += take;
            if self.since_rebase >= self.rebase_period {
                self.rebase();
            }
            rest = tail;
        }
    }

    /// The raw anchor frame — `(head, cumulative entries)` exactly as
    /// stored. This is the `SUM'`/`SQSUM'` state of paper §4.5; the batch
    /// equivalence tests compare it with `==` to prove slab ingestion
    /// leaves bit-identical state behind.
    #[must_use]
    pub fn raw_frame(&self) -> ((f64, f64), Vec<(f64, f64)>) {
        (self.head, self.cum.iter().copied().collect())
    }

    /// Pushes performed since the last anchor rebase. Together with
    /// [`raw_frame`](Self::raw_frame) and [`rebases`](Self::rebases) this
    /// is the store's *complete* state: rebase timing changes the rounding
    /// of later cumulative entries, so a restore that did not resume the
    /// schedule mid-period would drift bit-wise from the original.
    #[must_use]
    pub fn since_rebase(&self) -> usize {
        self.since_rebase
    }

    /// Reassembles a store from previously captured raw state (the
    /// checkpoint/restore path). The resulting store is bit-identical to
    /// the one the state was read from: same anchor, same cumulative
    /// entries, same position in the rebase schedule.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] if the parameters violate
    /// the store's invariants (`capacity == 0`, `rebase_period == 0`, more
    /// entries than capacity, or `since_rebase >= rebase_period`).
    pub fn from_checkpoint_state(
        capacity: usize,
        rebase_period: usize,
        head: (f64, f64),
        cum: Vec<(f64, f64)>,
        since_rebase: usize,
        rebases: usize,
    ) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        if capacity == 0 {
            return Err(corrupt("window capacity must be positive"));
        }
        if rebase_period == 0 {
            return Err(corrupt("rebase period must be positive"));
        }
        if cum.len() > capacity {
            return Err(corrupt("more cumulative entries than capacity"));
        }
        // Between pushes the schedule invariant `since_rebase <
        // rebase_period` always holds (a push that reaches the period
        // rebases and zeroes the counter before returning).
        if since_rebase >= rebase_period {
            return Err(corrupt("rebase schedule position out of range"));
        }
        Ok(Self {
            capacity,
            cum: cum.into(),
            head,
            rebase_period,
            since_rebase,
            rebases,
        })
    }

    /// Moves the anchor to the start of the window: subtracts `head` from
    /// every cumulative entry. `O(len)`.
    fn rebase(&mut self) {
        let (hs, hq) = self.head;
        if hs != 0.0 || hq != 0.0 {
            for e in &mut self.cum {
                e.0 -= hs;
                e.1 -= hq;
            }
            self.head = (0.0, 0.0);
            self.rebases += 1;
        }
        self.since_rebase = 0;
    }

    fn cum_before(&self, idx: usize) -> (f64, f64) {
        if idx == 0 {
            self.head
        } else {
            self.cum[idx - 1]
        }
    }

    /// Sum of the window values in window-relative `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end >= len`; debug-asserts `start <= end`.
    #[must_use]
    pub fn range_sum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end);
        self.cum[end].0 - self.cum_before(start).0
    }

    /// Sum of squares of the window values in `[start, end]`.
    #[must_use]
    pub fn range_sqsum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end);
        self.cum[end].1 - self.cum_before(start).1
    }

    /// Mean over window-relative `[start, end]`.
    #[must_use]
    pub fn mean(&self, start: usize, end: usize) -> f64 {
        self.range_sum(start, end) / (end - start + 1) as f64
    }

    /// `SQERROR` over window-relative `[start, end]` (paper Eq. 2), clamped
    /// at 0.
    #[must_use]
    pub fn sqerror(&self, start: usize, end: usize) -> f64 {
        let n = (end - start + 1) as f64;
        let s = self.range_sum(start, end);
        let q = self.range_sqsum(start, end);
        (q - s * s / n).max(0.0)
    }
}

impl WindowSums for SlidingPrefixSums {
    fn len(&self) -> usize {
        self.cum.len()
    }

    fn range_sum(&self, start: usize, end: usize) -> f64 {
        SlidingPrefixSums::range_sum(self, start, end)
    }

    fn range_sqsum(&self, start: usize, end: usize) -> f64 {
        SlidingPrefixSums::range_sqsum(self, start, end)
    }
}

impl WindowSums for PrefixSums {
    fn len(&self) -> usize {
        PrefixSums::len(self)
    }

    fn range_sum(&self, start: usize, end: usize) -> f64 {
        PrefixSums::range_sum(self, start, end)
    }

    fn range_sqsum(&self, start: usize, end: usize) -> f64 {
        PrefixSums::range_sqsum(self, start, end)
    }
}

/// Sliding prefix sums with **externally driven eviction**: the window
/// grows on [`push`](Self::push) and shrinks only when the caller invokes
/// [`evict_oldest`](Self::evict_oldest).
///
/// This powers the paper's *time-based* fixed windows ("the latest T
/// seconds of data produced", §1/Figure 1), where how many points leave per
/// arrival depends on timestamps rather than a fixed count. The amortized
/// rebase follows the same policy as [`SlidingPrefixSums`]: every
/// `rebase_period` operations the anchor moves to the window start.
#[derive(Debug, Clone)]
pub struct GrowableWindowSums {
    cum: VecDeque<(f64, f64)>,
    head: (f64, f64),
    rebase_period: usize,
    since_rebase: usize,
    rebases: usize,
}

impl Default for GrowableWindowSums {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl GrowableWindowSums {
    /// Creates an empty window rebasing every `rebase_period` operations.
    ///
    /// # Panics
    ///
    /// Panics if `rebase_period == 0`.
    #[must_use]
    pub fn new(rebase_period: usize) -> Self {
        assert!(rebase_period > 0, "rebase period must be positive");
        Self {
            cum: VecDeque::new(),
            head: (0.0, 0.0),
            rebase_period,
            since_rebase: 0,
            rebases: 0,
        }
    }

    /// Number of anchor moves performed so far.
    #[must_use]
    pub fn rebases(&self) -> usize {
        self.rebases
    }

    /// The configured rebase period.
    #[must_use]
    pub fn rebase_period(&self) -> usize {
        self.rebase_period
    }

    /// Operations performed since the last anchor rebase (part of the
    /// store's complete state — see
    /// [`SlidingPrefixSums::since_rebase`]).
    #[must_use]
    pub fn since_rebase(&self) -> usize {
        self.since_rebase
    }

    /// The raw anchor frame — `(head, cumulative entries)` exactly as
    /// stored (see [`SlidingPrefixSums::raw_frame`]).
    #[must_use]
    pub fn raw_frame(&self) -> ((f64, f64), Vec<(f64, f64)>) {
        (self.head, self.cum.iter().copied().collect())
    }

    /// Reassembles a store from previously captured raw state (the
    /// checkpoint/restore path); bit-identical to the original, including
    /// the position in the rebase schedule.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] if the parameters violate
    /// the store's invariants (`rebase_period == 0`, or a schedule
    /// position at or past the effective rebase threshold
    /// `max(rebase_period, len)`).
    pub fn from_checkpoint_state(
        rebase_period: usize,
        head: (f64, f64),
        cum: Vec<(f64, f64)>,
        since_rebase: usize,
        rebases: usize,
    ) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        if rebase_period == 0 {
            return Err(corrupt("rebase period must be positive"));
        }
        // At rest `since_rebase` is strictly below the threshold the last
        // tick used, and no mutation has changed `len` since that tick.
        if since_rebase >= rebase_period.max(cum.len()) {
            return Err(corrupt("rebase schedule position out of range"));
        }
        Ok(Self {
            cum: cum.into(),
            head,
            rebase_period,
            since_rebase,
            rebases,
        })
    }

    /// Appends `v` to the window. Amortized `O(1)`.
    pub fn push(&mut self, v: f64) {
        let (s, q) = self.cum.back().copied().unwrap_or(self.head);
        self.cum.push_back((s + v, q + v * v));
        self.tick();
    }

    /// Removes the temporally oldest point. Amortized `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn evict_oldest(&mut self) {
        let evicted = self.cum.pop_front().expect("evict from an empty window");
        self.head = evicted;
        self.tick();
    }

    fn tick(&mut self) {
        self.since_rebase += 1;
        // Rebase costs O(len); waiting for at least `len` operations (or
        // the configured period, whichever is larger) keeps the amortized
        // cost O(1) even when the window far outgrows the period.
        if self.since_rebase >= self.rebase_period.max(self.cum.len()) {
            let (hs, hq) = self.head;
            if hs != 0.0 || hq != 0.0 {
                for e in &mut self.cum {
                    e.0 -= hs;
                    e.1 -= hq;
                }
                self.head = (0.0, 0.0);
                self.rebases += 1;
            }
            self.since_rebase = 0;
        }
    }

    fn cum_before(&self, idx: usize) -> (f64, f64) {
        if idx == 0 {
            self.head
        } else {
            self.cum[idx - 1]
        }
    }
}

impl WindowSums for GrowableWindowSums {
    fn len(&self) -> usize {
        self.cum.len()
    }

    fn range_sum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end);
        self.cum[end].0 - self.cum_before(start).0
    }

    fn range_sqsum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end);
        self.cum[end].1 - self.cum_before(start).1
    }
}

// The DP frame for both sliding stores is the raw anchor-relative
// cumulative pair: subtracting two of them cancels the anchor exactly, and
// reproduces `range_sum`/`range_sqsum` over `(e, c]` bit for bit (both
// reduce to `cum[c] − cum[e]`).

impl PrefixProvider for SlidingPrefixSums {
    fn len(&self) -> usize {
        self.cum.len()
    }

    fn dp_sums(&self, idx: usize) -> (f64, f64) {
        self.cum[idx]
    }

    fn chain_sum(&self, idx: usize) -> f64 {
        self.range_sum(0, idx)
    }

    fn head_sqerror(&self, idx: usize) -> f64 {
        self.sqerror(0, idx)
    }

    fn rebases(&self) -> usize {
        self.rebases
    }
}

impl PrefixProvider for GrowableWindowSums {
    fn len(&self) -> usize {
        self.cum.len()
    }

    fn dp_sums(&self, idx: usize) -> (f64, f64) {
        self.cum[idx]
    }

    fn chain_sum(&self, idx: usize) -> f64 {
        WindowSums::range_sum(self, 0, idx)
    }

    fn head_sqerror(&self, idx: usize) -> f64 {
        WindowSums::sqerror(self, 0, idx)
    }

    fn rebases(&self) -> usize {
        self.rebases
    }
}

impl PrefixProvider for PrefixSums {
    fn len(&self) -> usize {
        PrefixSums::len(self)
    }

    fn dp_sums(&self, idx: usize) -> (f64, f64) {
        (self.sum[idx + 1], self.sqsum[idx + 1])
    }

    fn chain_sum(&self, idx: usize) -> f64 {
        PrefixSums::range_sum(self, 0, idx)
    }

    fn head_sqerror(&self, idx: usize) -> f64 {
        PrefixSums::sqerror(self, 0, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sqerror(data: &[f64]) -> f64 {
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        data.iter().map(|v| (v - mean) * (v - mean)).sum()
    }

    #[test]
    fn prefix_range_sum_matches_naive() {
        let data = [3.0, 7.0, 5.0, 8.0, 2.0, 6.0, 4.0];
        let p = PrefixSums::new(&data);
        assert_eq!(p.len(), 7);
        for i in 0..data.len() {
            for j in i..data.len() {
                let naive: f64 = data[i..=j].iter().sum();
                assert!((p.range_sum(i, j) - naive).abs() < 1e-9, "range ({i},{j})");
            }
        }
    }

    #[test]
    fn prefix_sqerror_matches_naive() {
        let data = [3.0, 7.0, 5.0, 8.0, 2.0, 6.0, 4.0];
        let p = PrefixSums::new(&data);
        for i in 0..data.len() {
            for j in i..data.len() {
                let naive = naive_sqerror(&data[i..=j]);
                assert!(
                    (p.sqerror(i, j) - naive).abs() < 1e-8,
                    "sqerror ({i},{j}): {} vs {naive}",
                    p.sqerror(i, j)
                );
            }
        }
    }

    #[test]
    fn prefix_sqerror_zero_on_constant_run() {
        let data = [5.0; 10];
        let p = PrefixSums::new(&data);
        assert_eq!(p.sqerror(0, 9), 0.0);
        assert_eq!(p.sqerror(3, 3), 0.0);
    }

    #[test]
    fn prefix_sqerror_never_negative() {
        // Large offsets provoke FP cancellation.
        let data: Vec<f64> = (0..100).map(|i| 1.0e9 + (i % 3) as f64).collect();
        let p = PrefixSums::new(&data);
        for i in 0..data.len() {
            for j in i..data.len() {
                assert!(p.sqerror(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn prefix_empty_data() {
        let p = PrefixSums::new(&[]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn sliding_matches_static_on_every_window() {
        let data: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64).collect();
        let cap = 8;
        let mut w = SlidingPrefixSums::new(cap);
        for (t, &v) in data.iter().enumerate() {
            w.push(v);
            let lo = (t + 1).saturating_sub(cap);
            let window = &data[lo..=t];
            assert_eq!(w.len(), window.len());
            let p = PrefixSums::new(window);
            for i in 0..window.len() {
                for j in i..window.len() {
                    assert!(
                        (w.range_sum(i, j) - p.range_sum(i, j)).abs() < 1e-9,
                        "t={t} range ({i},{j})"
                    );
                    assert!(
                        (w.sqerror(i, j) - p.sqerror(i, j)).abs() < 1e-7,
                        "t={t} sqerror ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn sliding_rebase_period_does_not_change_answers() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 13 + 5) % 17) as f64).collect();
        let cap = 16;
        for period in [1, 3, 16, 64, 1000] {
            let mut w = SlidingPrefixSums::with_rebase_period(cap, period);
            for (t, &v) in data.iter().enumerate() {
                w.push(v);
                let lo = (t + 1).saturating_sub(cap);
                let expect: f64 = data[lo..=t].iter().sum();
                assert!(
                    (w.range_sum(0, w.len() - 1) - expect).abs() < 1e-9,
                    "period {period} t {t}"
                );
            }
        }
    }

    #[test]
    fn sliding_fill_state_transitions() {
        let mut w = SlidingPrefixSums::new(3);
        assert!(w.is_empty());
        assert!(!w.is_full());
        w.push(1.0);
        assert_eq!(w.len(), 1);
        w.push(2.0);
        w.push(3.0);
        assert!(w.is_full());
        w.push(4.0);
        assert!(w.is_full());
        assert_eq!(w.len(), 3);
        // window is now [2, 3, 4]
        assert_eq!(w.range_sum(0, 2), 9.0);
        assert_eq!(w.range_sum(0, 0), 2.0);
        assert_eq!(w.range_sum(2, 2), 4.0);
    }

    #[test]
    fn sliding_mean_and_sqerror() {
        let mut w = SlidingPrefixSums::new(4);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.mean(0, 3), 2.5);
        assert!((w.sqerror(0, 3) - 5.0).abs() < 1e-12);
        assert_eq!(w.sqerror(1, 1), 0.0);
    }

    #[test]
    fn push_slab_is_bit_identical_to_per_point_pushes() {
        let data: Vec<f64> = (0..500)
            .map(|i| 1.0e6 + ((i * 37 + 11) % 97) as f64 * 0.125)
            .collect();
        for cap in [1, 7, 16] {
            for period in [1, 5, 16, 64] {
                for slab in [1, 3, 16, 17, 100] {
                    let mut a = SlidingPrefixSums::with_rebase_period(cap, period);
                    let mut b = SlidingPrefixSums::with_rebase_period(cap, period);
                    for chunk in data.chunks(slab) {
                        for &v in chunk {
                            a.push(v);
                        }
                        b.push_slab(chunk);
                        assert_eq!(
                            a.raw_frame(),
                            b.raw_frame(),
                            "cap={cap} period={period} slab={slab}"
                        );
                    }
                    assert_eq!(a.rebases(), b.rebases());
                }
            }
        }
    }

    #[test]
    fn push_slab_handles_empty_slab() {
        let mut w = SlidingPrefixSums::new(4);
        w.push_slab(&[]);
        assert!(w.is_empty());
        w.push_slab(&[1.0, 2.0]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.range_sum(0, 1), 3.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn sliding_zero_capacity_rejected() {
        let _ = SlidingPrefixSums::new(0);
    }

    // The `start <= end` precondition is debug-asserted; release builds
    // (exercised by the CI release-test job) skip these checks entirely, so
    // the regression tests only exist under `debug_assertions`.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "start <= end")]
    fn window_sums_mean_rejects_inverted_range_in_debug() {
        let mut w = SlidingPrefixSums::new(4);
        w.push(1.0);
        w.push(2.0);
        let _ = WindowSums::mean(&w, 1, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "start <= end")]
    fn window_sums_sqerror_rejects_inverted_range_in_debug() {
        let mut w = GrowableWindowSums::new(16);
        w.push(1.0);
        w.push(2.0);
        let _ = WindowSums::sqerror(&w, 1, 0);
    }
}
