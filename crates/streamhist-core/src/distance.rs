//! Distances between histograms over the same index domain.
//!
//! Two piecewise-constant functions over `[0, n)` can be compared in
//! `O(B₁ + B₂)` by sweeping their merged bucket boundaries — no expansion
//! to `n` points. This powers the change-detection application the paper's
//! conclusion motivates ("several data mining applications can make use of
//! the superior quality histograms... applicable to mining problems in data
//! streams"): compare the histograms of successive windows to detect
//! distribution shifts.

use crate::histogram::Histogram;

/// Sweeps the merged boundaries of two same-domain histograms, calling
/// `f(len, height_a, height_b)` for every maximal index run on which both
/// are constant.
fn sweep(a: &Histogram, b: &Histogram, mut f: impl FnMut(usize, f64, f64)) {
    assert_eq!(
        a.domain_len(),
        b.domain_len(),
        "histograms must cover the same domain"
    );
    let n = a.domain_len();
    if n == 0 {
        return;
    }
    let (ab, bb) = (a.buckets(), b.buckets());
    let (mut i, mut j) = (0usize, 0usize);
    let mut pos = 0usize;
    while pos < n {
        let end = ab[i].end.min(bb[j].end);
        f(end - pos + 1, ab[i].height, bb[j].height);
        pos = end + 1;
        if i < ab.len() - 1 && ab[i].end < pos {
            i += 1;
        }
        if j < bb.len() - 1 && bb[j].end < pos {
            j += 1;
        }
    }
}

/// Squared L2 distance between the expanded sequences of two histograms:
/// `Σ_i (a(i) − b(i))²`, computed in `O(B₁ + B₂)`.
///
/// # Panics
///
/// Panics if the domains differ.
#[must_use]
pub fn l2_sq(a: &Histogram, b: &Histogram) -> f64 {
    let mut acc = 0.0;
    sweep(a, b, |len, ha, hb| {
        let d = ha - hb;
        acc += len as f64 * d * d;
    });
    acc
}

/// L2 distance (`sqrt` of [`l2_sq`]).
///
/// # Panics
///
/// Panics if the domains differ.
#[must_use]
pub fn l2(a: &Histogram, b: &Histogram) -> f64 {
    l2_sq(a, b).sqrt()
}

/// L1 distance between the expanded sequences: `Σ_i |a(i) − b(i)|`, in
/// `O(B₁ + B₂)`.
///
/// # Panics
///
/// Panics if the domains differ.
#[must_use]
pub fn l1(a: &Histogram, b: &Histogram) -> f64 {
    let mut acc = 0.0;
    sweep(a, b, |len, ha, hb| {
        acc += len as f64 * (ha - hb).abs();
    });
    acc
}

/// L∞ distance between the expanded sequences: `max_i |a(i) − b(i)|`
/// (0 for empty domains), in `O(B₁ + B₂)`.
///
/// # Panics
///
/// Panics if the domains differ.
#[must_use]
pub fn linf(a: &Histogram, b: &Histogram) -> f64 {
    let mut acc = 0.0f64;
    sweep(a, b, |_, ha, hb| {
        acc = acc.max((ha - hb).abs());
    });
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{sum_abs_error, sum_squared_error};

    fn h(data: &[f64], ends: &[usize]) -> Histogram {
        Histogram::from_bucket_ends(data, ends)
    }

    #[test]
    fn distances_match_expanded_computation() {
        let da = [1.0, 1.0, 5.0, 5.0, 5.0, 2.0, 2.0, 9.0];
        let db = [2.0, 2.0, 2.0, 6.0, 6.0, 6.0, 1.0, 1.0];
        let a = h(&da, &[1, 4, 6, 7]);
        let b = h(&db, &[2, 5, 7]);
        let (ea, eb) = (a.expand(), b.expand());
        assert!((l2_sq(&a, &b) - sum_squared_error(&ea, &eb)).abs() < 1e-9);
        assert!((l1(&a, &b) - sum_abs_error(&ea, &eb)).abs() < 1e-9);
        let max = ea
            .iter()
            .zip(&eb)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!((linf(&a, &b) - max).abs() < 1e-12);
    }

    #[test]
    fn identical_histograms_are_at_distance_zero() {
        let d = [3.0, 3.0, 7.0, 7.0];
        let a = h(&d, &[1, 3]);
        assert_eq!(l2(&a, &a), 0.0);
        assert_eq!(l1(&a, &a), 0.0);
        assert_eq!(linf(&a, &a), 0.0);
    }

    #[test]
    fn misaligned_boundaries_are_handled() {
        // a has one bucket, b has n buckets.
        let d = [0.0, 4.0, 8.0];
        let a = h(&d, &[2]); // height 4
        let b = h(&d, &[0, 1, 2]); // exact
                                   // |4-0| + |4-4| + |4-8| = 8 ; squared: 16 + 0 + 16 = 32
        assert_eq!(l1(&a, &b), 8.0);
        assert_eq!(l2_sq(&a, &b), 32.0);
        assert_eq!(linf(&a, &b), 4.0);
    }

    #[test]
    fn empty_domain_distance_is_zero() {
        let a = Histogram::new(0, vec![]).expect("empty");
        let b = Histogram::new(0, vec![]).expect("empty");
        assert_eq!(l2(&a, &b), 0.0);
        assert_eq!(linf(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "same domain")]
    fn domain_mismatch_panics() {
        let a = h(&[1.0, 2.0], &[1]);
        let b = h(&[1.0, 2.0, 3.0], &[2]);
        let _ = l2(&a, &b);
    }
}
