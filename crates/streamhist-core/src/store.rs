//! Pluggable durable storage for checkpoint frames and WAL segments.
//!
//! The paper's summaries live on network elements whose processes die; PR 4
//! gave every summary a self-validating [`Checkpoint`](crate::Checkpoint)
//! frame, and the sharded serving layer cuts those frames (plus incremental
//! WAL segments, see [`crate::wal`]) on a schedule. *Where* the bytes go is
//! a deployment decision — a local directory, a test harness, eventually an
//! object store — so the seam is a trait: [`CheckpointStore`].
//!
//! Three implementations ship here:
//!
//! * [`DirStore`] — a local directory, one subdirectory per shard, every
//!   object written to a temp file and atomically renamed into place so a
//!   crash mid-write can never leave a torn object visible.
//! * [`MemStore`] — an in-memory map for tests and benchmarks.
//! * [`FailingStore`] — a fault-injecting wrapper that fails every *n*-th
//!   call with a [`StoreError`], for exercising retry and recovery paths
//!   deterministically.
//!
//! # Object model
//!
//! A store holds two kinds of objects per shard, both addressed by a
//! sequence number in the shard summary's `total_pushed` domain:
//!
//! * a **frame** at `seq` is a full [`Checkpoint`](crate::Checkpoint)
//!   frame of the summary after absorbing its first `seq` records;
//! * a **WAL segment** at `seq` is a [`crate::wal::WalSegment`] whose
//!   first record is the `seq`-th accepted record (0-based), i.e. `seq` is
//!   the segment's `base`.
//!
//! Recovery reads the newest frame and replays every segment past it (see
//! `streamhist-stream`). [`truncate`](CheckpointStore::truncate) declares a
//! frame canonical: everything it supersedes (older frames, fully covered
//! segments) *and* everything it invalidates (objects past it, left over
//! from a rewinding restore) is deleted.

use crate::error::StreamhistError;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A storage operation failed. Carries which operation and a human-readable
/// detail (an `io::Error` rendering, or the injected-fault marker).
///
/// Store failures are *retryable by contract*: callers that need durability
/// retry with backoff (the uploader in `streamhist-stream` does), and a
/// [`FailingStore`] fault is indistinguishable from a transient I/O error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The operation that failed (`"put_frame"`, `"list"`, ...).
    pub op: &'static str,
    /// Why it failed.
    pub detail: String,
}

impl StoreError {
    fn new(op: &'static str, detail: impl fmt::Display) -> Self {
        Self {
            op,
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint store {} failed: {}", self.op, self.detail)
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for StreamhistError {
    fn from(_: StoreError) -> Self {
        StreamhistError::CorruptCheckpoint {
            reason: "checkpoint store operation failed",
        }
    }
}

/// What kind of object an [`ObjectId`] names. Ordered so that frames sort
/// before WAL segments at equal sequence numbers (a frame at `seq` already
/// covers a segment starting at `seq - k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjectKind {
    /// A full checkpoint frame.
    Frame,
    /// An incremental WAL segment.
    WalSegment,
}

/// Address of one stored object: shard, kind, and sequence number (see the
/// [module docs](self) for the sequence-number domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId {
    /// The shard the object belongs to.
    pub shard: usize,
    /// Frame or WAL segment.
    pub kind: ObjectKind,
    /// Sequence number in the shard's accepted-record domain.
    pub seq: u64,
}

/// Pluggable backend for durable checkpoint frames and WAL segments.
///
/// Implementations must be thread-safe (`Send + Sync`): the uploader thread
/// writes while admin paths list and read. Every method is synchronous and
/// may fail transiently; callers that need durability retry.
///
/// # Atomicity contract
///
/// A `put_*` must be all-or-nothing: after a crash at any instant, a later
/// [`list`](Self::list)/[`get`](Self::get) sees either the complete object
/// or no object — never a torn prefix. [`DirStore`] implements this with a
/// temp file plus atomic rename.
pub trait CheckpointStore: Send + Sync {
    /// Durably stores a full checkpoint frame for `shard` at `seq`
    /// (overwriting any existing frame at that address).
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the write did not complete; the store is left
    /// without a torn object.
    fn put_frame(&self, shard: usize, seq: u64, frame: &[u8]) -> Result<(), StoreError>;

    /// Durably stores a WAL segment for `shard` whose first record is the
    /// `seq`-th accepted record.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the write did not complete.
    fn put_wal_segment(&self, shard: usize, seq: u64, segment: &[u8]) -> Result<(), StoreError>;

    /// Lists every object stored for `shard`, sorted ascending by
    /// `(kind, seq)` — frames first, then WAL segments, each in sequence
    /// order.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on an unreadable backend.
    fn list(&self, shard: usize) -> Result<Vec<ObjectId>, StoreError>;

    /// Reads one object's bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the object does not exist or cannot be read.
    fn get(&self, id: &ObjectId) -> Result<Vec<u8>, StoreError>;

    /// Declares the frame at `frame_seq` the shard's canonical recovery
    /// point: deletes WAL segments starting before it (fully covered),
    /// frames older than it (superseded), and *any* object past it
    /// (invalidated — left over from a rewinding restore). The frame at
    /// `frame_seq` itself and segments starting at or after it survive.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the cleanup could not complete (retryable; stale
    /// objects past the canonical frame are invisible to recovery only
    /// after a successful truncate, so callers retry).
    fn truncate(&self, shard: usize, frame_seq: u64) -> Result<(), StoreError>;
}

/// Which stored ids `truncate` removes — shared by every backend so the
/// trait's deletion rule cannot drift between implementations.
fn truncate_victim(id: &ObjectId, frame_seq: u64) -> bool {
    match id.kind {
        ObjectKind::Frame => id.seq != frame_seq,
        ObjectKind::WalSegment => id.seq != frame_seq,
    }
}

// ---------------------------------------------------------------------------
// DirStore
// ---------------------------------------------------------------------------

/// A [`CheckpointStore`] on a local directory.
///
/// Layout: `root/shard-{shard:05}/frame-{seq:020}.ckpt` and
/// `root/shard-{shard:05}/wal-{seq:020}.seg`. The zero-padded decimal
/// sequence numbers make lexicographic order equal numeric order, so the
/// layout is inspectable with plain `ls`.
///
/// Every write goes to a `.tmp-` file in the same directory, is flushed,
/// and is then atomically renamed into place — a crash mid-write leaves at
/// worst an orphaned temp file, never a torn object ([`list`] ignores temp
/// files, and [`Self::open`] sweeps orphans from any previous process).
///
/// [`list`]: CheckpointStore::list
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) a store rooted at `root`, and sweeps any
    /// orphaned temp files a crashed predecessor left behind.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the root cannot be created or scanned.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StoreError::new("open", e))?;
        let this = Self { root };
        this.sweep_temp_files()?;
        Ok(this)
    }

    /// The directory this store writes under.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn shard_dir(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard:05}"))
    }

    fn object_path(&self, id: &ObjectId) -> PathBuf {
        let name = match id.kind {
            ObjectKind::Frame => format!("frame-{:020}.ckpt", id.seq),
            ObjectKind::WalSegment => format!("wal-{:020}.seg", id.seq),
        };
        self.shard_dir(id.shard).join(name)
    }

    /// Temp-file + rename write: the object becomes visible atomically.
    fn put(&self, op: &'static str, id: &ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        let dir = self.shard_dir(id.shard);
        fs::create_dir_all(&dir).map_err(|e| StoreError::new(op, e))?;
        let target = self.object_path(id);
        let file_name = target
            .file_name()
            .expect("object paths always have a file name")
            .to_string_lossy()
            .into_owned();
        let tmp = dir.join(format!(".tmp-{file_name}"));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &target)
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError::new(op, e)
        })
    }

    /// Parses an object file name back into its id component.
    fn parse_name(shard: usize, name: &str) -> Option<ObjectId> {
        let (kind, rest) = if let Some(rest) = name.strip_prefix("frame-") {
            (ObjectKind::Frame, rest.strip_suffix(".ckpt")?)
        } else if let Some(rest) = name.strip_prefix("wal-") {
            (ObjectKind::WalSegment, rest.strip_suffix(".seg")?)
        } else {
            return None;
        };
        let seq = rest.parse().ok()?;
        Some(ObjectId { shard, kind, seq })
    }

    /// Removes `.tmp-` leftovers from a crashed writer, in every shard dir.
    fn sweep_temp_files(&self) -> Result<(), StoreError> {
        let dirs = fs::read_dir(&self.root).map_err(|e| StoreError::new("open", e))?;
        for dir in dirs {
            let dir = dir.map_err(|e| StoreError::new("open", e))?;
            if !dir.path().is_dir() {
                continue;
            }
            let entries = fs::read_dir(dir.path()).map_err(|e| StoreError::new("open", e))?;
            for entry in entries {
                let entry = entry.map_err(|e| StoreError::new("open", e))?;
                if entry.file_name().to_string_lossy().starts_with(".tmp-") {
                    fs::remove_file(entry.path()).map_err(|e| StoreError::new("open", e))?;
                }
            }
        }
        Ok(())
    }
}

impl CheckpointStore for DirStore {
    fn put_frame(&self, shard: usize, seq: u64, frame: &[u8]) -> Result<(), StoreError> {
        let id = ObjectId {
            shard,
            kind: ObjectKind::Frame,
            seq,
        };
        self.put("put_frame", &id, frame)
    }

    fn put_wal_segment(&self, shard: usize, seq: u64, segment: &[u8]) -> Result<(), StoreError> {
        let id = ObjectId {
            shard,
            kind: ObjectKind::WalSegment,
            seq,
        };
        self.put("put_wal_segment", &id, segment)
    }

    fn list(&self, shard: usize) -> Result<Vec<ObjectId>, StoreError> {
        let dir = self.shard_dir(shard);
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let entries = fs::read_dir(&dir).map_err(|e| StoreError::new("list", e))?;
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::new("list", e))?;
            if let Some(id) = Self::parse_name(shard, &entry.file_name().to_string_lossy()) {
                out.push(id);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn get(&self, id: &ObjectId) -> Result<Vec<u8>, StoreError> {
        fs::read(self.object_path(id)).map_err(|e| StoreError::new("get", e))
    }

    fn truncate(&self, shard: usize, frame_seq: u64) -> Result<(), StoreError> {
        for id in self.list(shard)? {
            if truncate_victim(&id, frame_seq) {
                fs::remove_file(self.object_path(&id))
                    .map_err(|e| StoreError::new("truncate", e))?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

/// An in-memory [`CheckpointStore`] for tests and benchmarks: a mutexed
/// ordered map, so [`list`](CheckpointStore::list) order falls out of the
/// key order for free.
#[derive(Debug, Default)]
pub struct MemStore {
    objects: Mutex<BTreeMap<ObjectId, Vec<u8>>>,
}

impl MemStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<ObjectId, Vec<u8>>> {
        self.objects.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Total bytes currently stored across all shards (for amplification
    /// accounting in benchmarks).
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.lock().values().map(|v| v.len() as u64).sum()
    }
}

impl CheckpointStore for MemStore {
    fn put_frame(&self, shard: usize, seq: u64, frame: &[u8]) -> Result<(), StoreError> {
        let id = ObjectId {
            shard,
            kind: ObjectKind::Frame,
            seq,
        };
        self.lock().insert(id, frame.to_vec());
        Ok(())
    }

    fn put_wal_segment(&self, shard: usize, seq: u64, segment: &[u8]) -> Result<(), StoreError> {
        let id = ObjectId {
            shard,
            kind: ObjectKind::WalSegment,
            seq,
        };
        self.lock().insert(id, segment.to_vec());
        Ok(())
    }

    fn list(&self, shard: usize) -> Result<Vec<ObjectId>, StoreError> {
        Ok(self
            .lock()
            .keys()
            .filter(|id| id.shard == shard)
            .copied()
            .collect())
    }

    fn get(&self, id: &ObjectId) -> Result<Vec<u8>, StoreError> {
        self.lock()
            .get(id)
            .cloned()
            .ok_or_else(|| StoreError::new("get", "no such object"))
    }

    fn truncate(&self, shard: usize, frame_seq: u64) -> Result<(), StoreError> {
        self.lock()
            .retain(|id, _| id.shard != shard || !truncate_victim(id, frame_seq));
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FailingStore
// ---------------------------------------------------------------------------

/// Deterministic fault injection around any [`CheckpointStore`]: every
/// `n`-th call (counting *all* trait calls, in arrival order) fails with a
/// [`StoreError`] before touching the inner store. With `n >= 2`, one
/// retry of a failed call always succeeds — which keeps loss accounting in
/// the recovery fuzz exact while still exercising every retry path.
#[derive(Debug)]
pub struct FailingStore<S> {
    inner: S,
    every_nth: u64,
    calls: AtomicU64,
    failures: AtomicU64,
}

impl<S: CheckpointStore> FailingStore<S> {
    /// Wraps `inner`, failing every `every_nth`-th call. `every_nth == 0`
    /// disables injection (a transparent wrapper).
    #[must_use]
    pub fn every_nth(inner: S, every_nth: u64) -> Self {
        Self {
            inner,
            every_nth,
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Total trait calls observed (failed or not).
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Calls that were failed by injection.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    fn gate(&self, op: &'static str) -> Result<(), StoreError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.every_nth != 0 && call.is_multiple_of(self.every_nth) {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::new(op, "injected store fault"));
        }
        Ok(())
    }
}

impl<S: CheckpointStore> CheckpointStore for FailingStore<S> {
    fn put_frame(&self, shard: usize, seq: u64, frame: &[u8]) -> Result<(), StoreError> {
        self.gate("put_frame")?;
        self.inner.put_frame(shard, seq, frame)
    }

    fn put_wal_segment(&self, shard: usize, seq: u64, segment: &[u8]) -> Result<(), StoreError> {
        self.gate("put_wal_segment")?;
        self.inner.put_wal_segment(shard, seq, segment)
    }

    fn list(&self, shard: usize) -> Result<Vec<ObjectId>, StoreError> {
        self.gate("list")?;
        self.inner.list(shard)
    }

    fn get(&self, id: &ObjectId) -> Result<Vec<u8>, StoreError> {
        self.gate("get")?;
        self.inner.get(id)
    }

    fn truncate(&self, shard: usize, frame_seq: u64) -> Result<(), StoreError> {
        self.gate("truncate")?;
        self.inner.truncate(shard, frame_seq)
    }
}

/// Blanket passthrough so `Arc<dyn CheckpointStore>` (what
/// `DurabilityOptions` carries) is itself a store.
impl<S: CheckpointStore + ?Sized> CheckpointStore for Arc<S> {
    fn put_frame(&self, shard: usize, seq: u64, frame: &[u8]) -> Result<(), StoreError> {
        (**self).put_frame(shard, seq, frame)
    }

    fn put_wal_segment(&self, shard: usize, seq: u64, segment: &[u8]) -> Result<(), StoreError> {
        (**self).put_wal_segment(shard, seq, segment)
    }

    fn list(&self, shard: usize) -> Result<Vec<ObjectId>, StoreError> {
        (**self).list(shard)
    }

    fn get(&self, id: &ObjectId) -> Result<Vec<u8>, StoreError> {
        (**self).get(id)
    }

    fn truncate(&self, shard: usize, frame_seq: u64) -> Result<(), StoreError> {
        (**self).truncate(shard, frame_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "streamhist-store-test-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn id(shard: usize, kind: ObjectKind, seq: u64) -> ObjectId {
        ObjectId { shard, kind, seq }
    }

    fn exercise(store: &dyn CheckpointStore) {
        store.put_frame(0, 10, b"frame10").unwrap();
        store.put_wal_segment(0, 10, b"seg10").unwrap();
        store.put_wal_segment(0, 20, b"seg20").unwrap();
        store.put_frame(1, 5, b"other-shard").unwrap();

        let listed = store.list(0).unwrap();
        assert_eq!(
            listed,
            vec![
                id(0, ObjectKind::Frame, 10),
                id(0, ObjectKind::WalSegment, 10),
                id(0, ObjectKind::WalSegment, 20),
            ],
            "sorted by kind then seq, other shards excluded"
        );
        assert_eq!(store.get(&listed[0]).unwrap(), b"frame10");
        assert_eq!(store.get(&listed[2]).unwrap(), b"seg20");

        // Overwrite at the same address replaces the object.
        store.put_frame(0, 10, b"frame10-v2").unwrap();
        assert_eq!(
            store.get(&id(0, ObjectKind::Frame, 10)).unwrap(),
            b"frame10-v2"
        );
        assert_eq!(store.list(0).unwrap().len(), 3);
    }

    #[test]
    fn memstore_roundtrip() {
        exercise(&MemStore::new());
    }

    #[test]
    fn dirstore_roundtrip() {
        let root = temp_root("roundtrip");
        exercise(&DirStore::open(&root).unwrap());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn dirstore_reopen_sees_same_objects() {
        let root = temp_root("reopen");
        {
            let store = DirStore::open(&root).unwrap();
            store.put_frame(3, 42, b"persisted").unwrap();
        }
        let store = DirStore::open(&root).unwrap();
        assert_eq!(store.list(3).unwrap(), vec![id(3, ObjectKind::Frame, 42)]);
        assert_eq!(
            store.get(&id(3, ObjectKind::Frame, 42)).unwrap(),
            b"persisted"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn dirstore_sweeps_orphaned_temp_files_and_never_lists_them() {
        let root = temp_root("sweep");
        let store = DirStore::open(&root).unwrap();
        store.put_frame(0, 1, b"real").unwrap();
        // Simulate a writer that died between create and rename.
        let orphan = root.join("shard-00000").join(".tmp-frame-torn.ckpt");
        fs::write(&orphan, b"torn").unwrap();
        assert_eq!(store.list(0).unwrap().len(), 1, "temp files are invisible");
        let store = DirStore::open(&root).unwrap();
        assert!(!orphan.exists(), "reopen sweeps the orphan");
        assert_eq!(store.list(0).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    fn truncate_case(store: &dyn CheckpointStore) {
        store.put_frame(0, 100, b"old-frame").unwrap();
        store.put_frame(0, 200, b"canonical").unwrap();
        store.put_frame(0, 300, b"stale-future").unwrap();
        store.put_wal_segment(0, 150, b"covered").unwrap();
        store.put_wal_segment(0, 200, b"tail").unwrap();
        store.put_wal_segment(0, 250, b"stale-future-seg").unwrap();
        store.put_frame(1, 1, b"untouched").unwrap();
        // 250 > 200 is invalidated: segments past the canonical frame can
        // only be leftovers from a rewinding restore.
        store.truncate(0, 200).unwrap();
        assert_eq!(
            store.list(0).unwrap(),
            vec![
                id(0, ObjectKind::Frame, 200),
                id(0, ObjectKind::WalSegment, 200)
            ],
            "only the canonical frame and its tail segment survive"
        );
        assert_eq!(store.list(1).unwrap().len(), 1, "other shards untouched");
    }

    #[test]
    fn memstore_truncate_keeps_canonical_frame_and_tail() {
        truncate_case(&MemStore::new());
    }

    #[test]
    fn dirstore_truncate_keeps_canonical_frame_and_tail() {
        let root = temp_root("truncate");
        truncate_case(&DirStore::open(&root).unwrap());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failing_store_fails_exactly_every_nth_call() {
        let store = FailingStore::every_nth(MemStore::new(), 3);
        let mut outcomes = Vec::new();
        for i in 0..9u64 {
            outcomes.push(store.put_frame(0, i, b"x").is_err());
        }
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(store.calls(), 9);
        assert_eq!(store.failures(), 3);
        // Failed calls never reached the inner store.
        assert_eq!(store.inner().list(0).unwrap().len(), 6);
        // A retry directly after a failure always succeeds (n >= 2).
        let store = FailingStore::every_nth(MemStore::new(), 2);
        for i in 0..4u64 {
            if store.put_frame(0, i, b"x").is_err() {
                store.put_frame(0, i, b"x").expect("retry succeeds");
            }
        }
        assert_eq!(store.inner().list(0).unwrap().len(), 4);
    }

    #[test]
    fn failing_store_zero_is_transparent() {
        let store = FailingStore::every_nth(MemStore::new(), 0);
        for i in 0..50u64 {
            store.put_wal_segment(2, i, b"x").unwrap();
        }
        assert_eq!(store.failures(), 0);
        assert_eq!(store.list(2).unwrap().len(), 50);
    }

    #[test]
    fn arc_dyn_store_is_a_store() {
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        store.put_frame(0, 7, b"via-arc").unwrap();
        assert_eq!(store.get(&id(0, ObjectKind::Frame, 7)).unwrap(), b"via-arc");
    }
}
