//! Histogram buckets.
//!
//! A bucket collapses the values of a contiguous index range `[start, end]`
//! into a single representative `height` (their mean, for V-optimal
//! histograms). This is the `b_i = (s_i, e_i, h_i)` triple of the paper's §3.

/// One bucket of a piecewise-constant sequence approximation.
///
/// Index range is inclusive on both ends. The invariants `start <= end` and
/// `height.is_finite()` are enforced by [`Bucket::new`]; callers constructing
/// buckets literally are expected to uphold them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// First index covered by the bucket (inclusive).
    pub start: usize,
    /// Last index covered by the bucket (inclusive).
    pub end: usize,
    /// Representative value for every index in `[start, end]`.
    ///
    /// For V-optimal histograms this is the arithmetic mean of the covered
    /// values, which minimizes the bucket's contribution to the
    /// sum-squared-error (paper Eq. 1).
    pub height: f64,
}

impl Bucket {
    /// Creates a bucket, panicking on invalid input.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `height` is not finite. These are
    /// programmer errors in the construction algorithms, not recoverable
    /// runtime conditions.
    #[must_use]
    pub fn new(start: usize, end: usize, height: f64) -> Self {
        assert!(start <= end, "bucket start {start} > end {end}");
        assert!(height.is_finite(), "bucket height must be finite");
        Self { start, end, height }
    }

    /// Number of indices covered by the bucket (always at least 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Buckets always cover at least one index; provided for clippy's
    /// `len_without_is_empty` convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `idx` falls inside the bucket's range.
    #[must_use]
    pub fn contains(&self, idx: usize) -> bool {
        self.start <= idx && idx <= self.end
    }

    /// The bucket's estimate of the sum of all values it covers,
    /// i.e. `len * height`.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.len() as f64 * self.height
    }

    /// The bucket's estimate of the sum over the intersection of its range
    /// with `[start, end]` (inclusive). Returns 0 if the intersection is
    /// empty.
    #[must_use]
    pub fn partial_sum(&self, start: usize, end: usize) -> f64 {
        let lo = self.start.max(start);
        let hi = self.end.min(end);
        if lo > hi {
            0.0
        } else {
            (hi - lo + 1) as f64 * self.height
        }
    }

    /// The bucket's sum-squared-error against the raw `data` slice (indexed
    /// by absolute position, so `data` must cover `[start, end]`).
    ///
    /// This is `F(b_i)` in the paper's Eq. 1.
    #[must_use]
    pub fn sse(&self, data: &[f64]) -> f64 {
        data[self.start..=self.end]
            .iter()
            .map(|v| {
                let d = v - self.height;
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_counts_inclusive_range() {
        assert_eq!(Bucket::new(0, 0, 1.0).len(), 1);
        assert_eq!(Bucket::new(2, 5, 1.0).len(), 4);
    }

    #[test]
    fn contains_is_inclusive_on_both_ends() {
        let b = Bucket::new(2, 5, 0.0);
        assert!(!b.contains(1));
        assert!(b.contains(2));
        assert!(b.contains(5));
        assert!(!b.contains(6));
    }

    #[test]
    fn sum_is_len_times_height() {
        let b = Bucket::new(3, 6, 2.5);
        assert_eq!(b.sum(), 10.0);
    }

    #[test]
    fn partial_sum_clips_to_intersection() {
        let b = Bucket::new(2, 5, 2.0);
        assert_eq!(b.partial_sum(0, 10), 8.0); // whole bucket
        assert_eq!(b.partial_sum(3, 4), 4.0); // interior
        assert_eq!(b.partial_sum(0, 2), 2.0); // left edge
        assert_eq!(b.partial_sum(5, 9), 2.0); // right edge
        assert_eq!(b.partial_sum(6, 9), 0.0); // disjoint right
        assert_eq!(b.partial_sum(0, 1), 0.0); // disjoint left
    }

    #[test]
    fn sse_matches_direct_computation() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let b = Bucket::new(1, 3, 3.0);
        // (2-3)^2 + (3-3)^2 + (4-3)^2 = 2
        assert_eq!(b.sse(&data), 2.0);
    }

    #[test]
    #[should_panic(expected = "bucket start")]
    fn new_rejects_inverted_range() {
        let _ = Bucket::new(3, 2, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_rejects_nan_height() {
        let _ = Bucket::new(0, 1, f64::NAN);
    }
}
