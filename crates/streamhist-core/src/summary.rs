//! The workspace-wide ingestion interface.
//!
//! Every one-pass summary in the workspace consumes a stream of `f64`
//! values; historically each crate grew its own entry-point spelling
//! (`push`, `insert`, `observe`, `add`) and its own failure behaviour
//! (panic, silent accept, tally-and-ignore). [`StreamSummary`] is the one
//! interface they all implement now:
//!
//! * [`try_push`](StreamSummary::try_push) — fallible ingestion returning
//!   [`StreamhistError`] on malformed input, leaving the summary unchanged;
//! * [`push`](StreamSummary::push) — the panicking convenience wrapper;
//! * [`push_batch`](StreamSummary::push_batch) — slab ingestion with
//!   partial-acceptance semantics ([`BatchOutcome`] reports exact
//!   accepted/rejected counts); summaries with a batched fast path (the
//!   fixed-window histogram) override the default per-point loop;
//! * [`len`](StreamSummary::len) / [`is_empty`](StreamSummary::is_empty) /
//!   [`reset`](StreamSummary::reset) — occupancy and reuse.

use crate::error::StreamhistError;

/// Exact accounting of one slab ingestion: every value in the slab is
/// either accepted or rejected (`accepted + rejected == slab length`).
///
/// Batch ingestion is *partially accepting*: a malformed value (NaN,
/// infinity, a domain violation) is rejected and counted, and ingestion
/// continues with the next value — a slab is a transport unit, not a
/// transaction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Values absorbed into the summary.
    pub accepted: usize,
    /// Values rejected as malformed, with the summary left unchanged by
    /// each of them.
    pub rejected: usize,
}

impl BatchOutcome {
    /// Total number of values the slab contained.
    #[must_use]
    pub fn total(&self) -> usize {
        self.accepted + self.rejected
    }

    /// Whether every value was accepted.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.rejected == 0
    }

    /// Folds another slab's accounting into this one.
    pub fn absorb(&mut self, other: BatchOutcome) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
    }
}

/// A one-pass stream summary: consumes `f64` values and maintains a
/// compact synopsis.
///
/// Implemented across the workspace by the index-domain histograms
/// (`streamhist-stream`), the quantile summaries (`streamhist-quantile`),
/// the value-domain frequency vector (`streamhist-freq`) and the wavelet
/// synopses (`streamhist-wavelet`). Implementations document what
/// [`len`](Self::len) counts (window occupancy for windowed summaries,
/// stream length for whole-stream ones) and any value-domain coercions.
pub trait StreamSummary {
    /// Consumes one value, or rejects it leaving the summary unchanged
    /// and fully usable.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamhistError`] describing why the value was
    /// rejected (non-finite, out of domain, capacity exhausted, ...).
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError>;

    /// Consumes one value.
    ///
    /// Thin panicking wrapper around [`try_push`](Self::try_push), for
    /// callers that control their input; serving paths use `try_push`
    /// (or [`push_batch`](Self::push_batch)) and count rejects instead.
    ///
    /// # Panics
    ///
    /// Panics if the value is rejected.
    fn push(&mut self, v: f64) {
        if let Err(e) = self.try_push(v) {
            panic!("{e}");
        }
    }

    /// Consumes a slab of values with partial-acceptance semantics: each
    /// malformed value is rejected and counted, the rest are absorbed in
    /// order. Equivalent to calling [`try_push`](Self::try_push) per value
    /// (implementations overriding this with a fast path must preserve
    /// that equivalence bit for bit).
    fn push_batch(&mut self, values: &[f64]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for &v in values {
            match self.try_push(v) {
                Ok(()) => out.accepted += 1,
                Err(_) => out.rejected += 1,
            }
        }
        out
    }

    /// Number of values the summary currently accounts for (see the
    /// implementation's documentation for windowed vs whole-stream
    /// semantics).
    fn len(&self) -> usize;

    /// Whether the summary currently accounts for no values.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Restores the summary to its freshly-constructed state, keeping its
    /// configuration (capacity, budgets, tolerances).
    fn reset(&mut self);
}

/// A summary that can absorb another summary of the **same configuration**
/// — the algebraic half of scatter/gather: partition a stream across
/// workers, summarize each partition independently, then merge the
/// summaries into one global synopsis without revisiting the raw data.
///
/// # Semantics
///
/// `a.merge_from(&b)` turns `a` into a summary of the *union* of the two
/// summarized (multi)sets or, for index-domain summaries, the
/// *concatenation* `a ++ b` of the two summarized sequences — each
/// implementation documents which. Merging is never free: every summary
/// documents how its error composes (rank errors add for the quantile
/// summaries; the window histograms pick up a *gather term* equal to the
/// per-part SSE already spent; frequency vectors and dense wavelet
/// coefficient merges are exact). DESIGN.md §7 states and proves the
/// bound for every implementation.
///
/// # Configuration compatibility
///
/// Two summaries merge only if their configurations agree (same error
/// budget, same bucket/coefficient budget, same domain, same window
/// size). Mismatches are rejected with
/// [`StreamhistError::InvalidParameter`] naming the offending parameter;
/// the receiver is left unchanged by a rejected merge.
pub trait MergeableSummary: Sized {
    /// Absorbs `other` into `self`: afterwards `self` summarizes
    /// everything both operands summarized. `other` is unchanged.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] if the configurations are
    /// incompatible; `self` is left unchanged.
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError>;

    /// Merges `parts` (in order) into one summary: clones `parts[0]` and
    /// folds every later part in with
    /// [`merge_from`](Self::merge_from). Implementations with a cheaper
    /// or stricter k-way form (the window histograms re-optimize once
    /// over the whole gather instead of per fold) override this.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] if `parts` is empty or any
    /// pairwise fold rejects.
    fn merge(parts: &[&Self]) -> Result<Self, StreamhistError>
    where
        Self: Clone,
    {
        let (first, rest) = parts
            .split_first()
            .ok_or(StreamhistError::InvalidParameter {
                param: "parts",
                message: "merge needs at least one summary",
            })?;
        let mut merged = (*first).clone();
        for part in rest {
            merged.merge_from(part)?;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal implementor exercising the trait's default methods.
    struct Tally {
        values: Vec<f64>,
    }

    impl StreamSummary for Tally {
        fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
            if !v.is_finite() {
                return Err(StreamhistError::NonFiniteValue { value: v });
            }
            self.values.push(v);
            Ok(())
        }

        fn len(&self) -> usize {
            self.values.len()
        }

        fn reset(&mut self) {
            self.values.clear();
        }
    }

    #[test]
    fn default_push_batch_is_partially_accepting_with_exact_counts() {
        let mut t = Tally { values: Vec::new() };
        let out = t.push_batch(&[1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]);
        assert_eq!(
            out,
            BatchOutcome {
                accepted: 3,
                rejected: 2
            }
        );
        assert_eq!(out.total(), 5);
        assert!(!out.is_clean());
        assert_eq!(t.values, vec![1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 3);
        t.reset();
        assert!(t.is_empty());
    }

    #[test]
    fn default_push_panics_on_rejection() {
        let mut t = Tally { values: Vec::new() };
        t.push(7.0);
        assert_eq!(t.len(), 1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.push(f64::NAN);
        }));
        assert!(err.is_err());
    }

    /// A cloneable mergeable implementor exercising the default `merge`
    /// combinator.
    #[derive(Debug, Clone)]
    struct Sum {
        domain: u32,
        total: f64,
    }

    impl MergeableSummary for Sum {
        fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
            if self.domain != other.domain {
                return Err(StreamhistError::InvalidParameter {
                    param: "domain",
                    message: "merge requires identical domains",
                });
            }
            self.total += other.total;
            Ok(())
        }
    }

    #[test]
    fn default_merge_folds_left_to_right() {
        let parts = [
            Sum {
                domain: 7,
                total: 1.0,
            },
            Sum {
                domain: 7,
                total: 2.0,
            },
            Sum {
                domain: 7,
                total: 4.0,
            },
        ];
        let refs: Vec<&Sum> = parts.iter().collect();
        let merged = Sum::merge(&refs).expect("compatible parts");
        assert_eq!(merged.total, 7.0);
    }

    #[test]
    fn default_merge_rejects_empty_and_mismatched_parts() {
        let err = Sum::merge(&[]).unwrap_err();
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter { param: "parts", .. }
        ));
        let a = Sum {
            domain: 1,
            total: 1.0,
        };
        let b = Sum {
            domain: 2,
            total: 1.0,
        };
        let err = Sum::merge(&[&a, &b]).unwrap_err();
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter {
                param: "domain",
                ..
            }
        ));
    }

    #[test]
    fn batch_outcome_absorbs() {
        let mut a = BatchOutcome {
            accepted: 2,
            rejected: 1,
        };
        a.absorb(BatchOutcome {
            accepted: 5,
            rejected: 0,
        });
        assert_eq!(
            a,
            BatchOutcome {
                accepted: 7,
                rejected: 1
            }
        );
    }
}
