//! # streamhist-similarity
//!
//! Time-series similarity search with piecewise-constant representations —
//! the paper's §5.2 third experiment: "we ... utilized the techniques of
//! Keogh et al. `[KCMP01]` in the problem of querying collections of time
//! series based on similarity ... Our results indicate that the histogram
//! approximations resulting from our algorithms are far superior than those
//! resulting from the APCA algorithm of Keogh et al., ... reflected ... by
//! reducing the number of false positives during time series similarity
//! indexing."
//!
//! Components:
//!
//! * [`PiecewiseConstant`] — an `M`-segment representation of a series,
//!   constructible from [`apca()`] (Keogh's wavelet-seeded heuristic), from
//!   the workspace's ε-approximate V-optimal histograms, or from the exact
//!   DP. Segment values are exact segment means, which is what makes the
//!   lower-bounding distance sound.
//! * [`lower_bound_dist`] — the GEMINI lower bound: for raw query `q` and a
//!   represented candidate `c`, `Σ len_i (q̄_i − c̄_i)² ≤ ‖q − c‖²` by
//!   Cauchy–Schwarz per segment, so range search over representations never
//!   dismisses a true answer.
//! * [`SeriesIndex`] / [`SubsequenceIndex`] — whole-series and subsequence
//!   matching with lower-bound pruning and exact verification, reporting
//!   the false-positive counts the experiment compares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apca;
pub mod repr;
pub mod search;

pub use apca::apca;
pub use repr::{lower_bound_dist, PiecewiseConstant, ReprMethod, Segment};
pub use search::{SearchStats, SeriesIndex, SubsequenceIndex};

/// Euclidean distance between equal-length series.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    streamhist_core::sum_squared_error(a, b).sqrt()
}
