//! GEMINI-style similarity search with lower-bound pruning.
//!
//! The GEMINI framework (Faloutsos et al.): search over compact
//! representations with a distance that *lower-bounds* the true distance,
//! then verify surviving candidates against the raw data. Lower bounding
//! guarantees **no false dismissals**; representation quality determines
//! the number of **false positives** (candidates that survive pruning but
//! fail verification) — the §5.2 metric on which the paper's histograms
//! beat APCA.

use crate::repr::{lower_bound_dist, PiecewiseConstant, ReprMethod};
use streamhist_core::PrefixSums;

/// Counters from one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Candidates whose lower bound passed the radius (verified exactly).
    pub candidates: usize,
    /// Candidates that passed pruning but failed verification.
    pub false_positives: usize,
    /// True answers returned.
    pub answers: usize,
    /// Series pruned without touching raw data.
    pub pruned: usize,
}

/// A whole-series similarity index: a collection of equal-length series
/// with their piecewise-constant representations.
#[derive(Debug)]
pub struct SeriesIndex {
    series_len: usize,
    series: Vec<Vec<f64>>,
    reprs: Vec<PiecewiseConstant>,
}

impl SeriesIndex {
    /// Builds the index: one `m`-segment representation per series.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty, any series is empty, or lengths differ.
    #[must_use]
    pub fn build(series: Vec<Vec<f64>>, m: usize, method: ReprMethod) -> Self {
        assert!(!series.is_empty(), "index needs at least one series");
        let series_len = series[0].len();
        assert!(series_len > 0, "series must be non-empty");
        assert!(
            series.iter().all(|s| s.len() == series_len),
            "all series must have equal length"
        );
        let reprs = series
            .iter()
            .map(|s| PiecewiseConstant::build(s, m, method))
            .collect();
        Self {
            series_len,
            series,
            reprs,
        }
    }

    /// Number of indexed series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Indexes are never built empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Length of every indexed series.
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The raw series at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn series(&self, idx: usize) -> &[f64] {
        &self.series[idx]
    }

    /// Range query: all series within Euclidean `radius` of `query`,
    /// GEMINI-style (lower-bound pruning, then exact verification).
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != series_len` or `radius < 0`.
    #[must_use]
    pub fn range_query(&self, query: &[f64], radius: f64) -> (Vec<usize>, SearchStats) {
        assert_eq!(
            query.len(),
            self.series_len,
            "query length must match the index"
        );
        assert!(radius >= 0.0, "radius must be non-negative");
        let qp = PrefixSums::new(query);
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        for (i, repr) in self.reprs.iter().enumerate() {
            let lb = lower_bound_dist(&qp, repr);
            if lb <= radius {
                stats.candidates += 1;
                let d = crate::euclidean(query, &self.series[i]);
                if d <= radius {
                    stats.answers += 1;
                    out.push(i);
                } else {
                    stats.false_positives += 1;
                }
            } else {
                stats.pruned += 1;
            }
        }
        (out, stats)
    }

    /// Exact nearest neighbour of `query` with lower-bound pruning
    /// (branch-and-bound over the representation order).
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != series_len`.
    #[must_use]
    pub fn nearest(&self, query: &[f64]) -> (usize, f64, SearchStats) {
        assert_eq!(
            query.len(),
            self.series_len,
            "query length must match the index"
        );
        let qp = PrefixSums::new(query);
        // Sort candidates by lower bound so good matches verify early and
        // tighten the pruning radius.
        let mut order: Vec<(usize, f64)> = self
            .reprs
            .iter()
            .enumerate()
            .map(|(i, r)| (i, lower_bound_dist(&qp, r)))
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"));
        let mut stats = SearchStats::default();
        let mut best = (usize::MAX, f64::INFINITY);
        for (i, lb) in order {
            if lb >= best.1 {
                stats.pruned += 1;
                continue;
            }
            stats.candidates += 1;
            let d = crate::euclidean(query, &self.series[i]);
            if d < best.1 {
                best = (i, d);
            }
        }
        stats.answers = 1;
        (best.0, best.1, stats)
    }
}

/// Subsequence matching: index every stride-`step` window of length
/// `window_len` from a long series (paper §5.2 also evaluates "subsequence
/// time series matching").
#[derive(Debug)]
pub struct SubsequenceIndex {
    /// Start offset of each indexed window in the original series.
    offsets: Vec<usize>,
    inner: SeriesIndex,
}

impl SubsequenceIndex {
    /// Extracts the windows and builds the index.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`, `step == 0`, or the series is shorter
    /// than one window.
    #[must_use]
    pub fn build(
        series: &[f64],
        window_len: usize,
        step: usize,
        m: usize,
        method: ReprMethod,
    ) -> Self {
        assert!(window_len > 0, "window length must be positive");
        assert!(step > 0, "step must be positive");
        assert!(series.len() >= window_len, "series shorter than one window");
        let mut offsets = Vec::new();
        let mut windows = Vec::new();
        let mut start = 0usize;
        while start + window_len <= series.len() {
            offsets.push(start);
            windows.push(series[start..start + window_len].to_vec());
            start += step;
        }
        Self {
            offsets,
            inner: SeriesIndex::build(windows, m, method),
        }
    }

    /// Number of indexed windows.
    #[must_use]
    pub fn num_windows(&self) -> usize {
        self.offsets.len()
    }

    /// Range query over windows; returns the matching **window start
    /// offsets** plus the search stats.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the window length.
    #[must_use]
    pub fn range_query(&self, pattern: &[f64], radius: f64) -> (Vec<usize>, SearchStats) {
        let (idxs, stats) = self.inner.range_query(pattern, radius);
        (idxs.into_iter().map(|i| self.offsets[i]).collect(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean;

    fn collection() -> Vec<Vec<f64>> {
        // Four base shapes + noise-free copies shifted in level.
        let n = 32;
        let mut out = Vec::new();
        for k in 0..8 {
            let series: Vec<f64> = (0..n)
                .map(|i| {
                    let base = ((i * (k + 2)) % 13) as f64;
                    base + (k as f64) * 5.0
                })
                .collect();
            out.push(series);
        }
        out
    }

    #[test]
    fn range_query_has_no_false_dismissals() {
        let coll = collection();
        let query = coll[3].clone();
        // Ground truth by linear scan.
        let radius = 25.0;
        let truth: Vec<usize> = coll
            .iter()
            .enumerate()
            .filter(|(_, s)| euclidean(&query, s) <= radius)
            .map(|(i, _)| i)
            .collect();
        for method in [
            ReprMethod::Apca,
            ReprMethod::VOptimalApprox { eps: 0.2 },
            ReprMethod::VOptimalExact,
        ] {
            let idx = SeriesIndex::build(coll.clone(), 4, method);
            let (mut got, stats) = idx.range_query(&query, radius);
            got.sort_unstable();
            assert_eq!(got, truth, "{method:?}");
            assert_eq!(stats.answers, truth.len());
            assert_eq!(stats.candidates + stats.pruned, coll.len());
        }
    }

    #[test]
    fn self_query_returns_self() {
        let coll = collection();
        let idx = SeriesIndex::build(coll.clone(), 4, ReprMethod::VOptimalExact);
        let (hits, _) = idx.range_query(&coll[5], 1e-9);
        assert_eq!(hits, vec![5]);
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let coll = collection();
        let query: Vec<f64> = coll[2].iter().map(|v| v + 0.5).collect();
        let truth = coll
            .iter()
            .enumerate()
            .map(|(i, s)| (i, euclidean(&query, s)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        for method in [ReprMethod::Apca, ReprMethod::VOptimalExact] {
            let idx = SeriesIndex::build(coll.clone(), 5, method);
            let (i, d, _) = idx.nearest(&query);
            assert_eq!(i, truth.0, "{method:?}");
            assert!((d - truth.1).abs() < 1e-9);
        }
    }

    #[test]
    fn better_representations_prune_at_least_as_well_on_average() {
        // Aggregate false positives over several queries: the exact
        // V-optimal segmentation (minimal within-segment variance) should
        // not produce more false positives than APCA overall.
        let coll = collection();
        let mut fp = std::collections::HashMap::new();
        for method in [ReprMethod::Apca, ReprMethod::VOptimalExact] {
            let idx = SeriesIndex::build(coll.clone(), 3, method);
            let mut total = 0usize;
            for q in &coll {
                let query: Vec<f64> = q.iter().map(|v| v + 1.0).collect();
                let (_, stats) = idx.range_query(&query, 20.0);
                total += stats.false_positives;
            }
            fp.insert(format!("{method:?}"), total);
        }
        let apca = fp["Apca"];
        let vopt = fp["VOptimalExact"];
        assert!(vopt <= apca, "vopt FPs {vopt} > apca FPs {apca}");
    }

    #[test]
    fn subsequence_matching_finds_planted_pattern() {
        // A long noisy-ish series with a distinctive plateau planted at a
        // known offset.
        let mut series: Vec<f64> = (0..256).map(|i| ((i * 7) % 5) as f64).collect();
        for v in series.iter_mut().skip(100).take(16) {
            *v = 50.0;
        }
        let pattern = series[96..128].to_vec();
        let idx =
            SubsequenceIndex::build(&series, 32, 4, 4, ReprMethod::VOptimalApprox { eps: 0.1 });
        let (hits, stats) = idx.range_query(&pattern, 1.0);
        assert!(hits.contains(&96), "hits {hits:?}");
        assert!(stats.pruned > 0, "distant windows should be pruned");
    }

    #[test]
    fn subsequence_window_extraction() {
        let series: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let idx = SubsequenceIndex::build(&series, 8, 4, 2, ReprMethod::VOptimalExact);
        assert_eq!(idx.num_windows(), 4); // offsets 0, 4, 8, 12
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_lengths_rejected() {
        let _ = SeriesIndex::build(vec![vec![1.0, 2.0], vec![1.0]], 1, ReprMethod::Apca);
    }
}
