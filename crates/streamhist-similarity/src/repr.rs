//! Piecewise-constant series representations and the GEMINI lower bound.

use streamhist_core::{Histogram, PrefixSums};

/// One segment of a piecewise-constant representation: inclusive end index
/// and the mean of the raw values over the segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Inclusive end index of the segment.
    pub end: usize,
    /// Mean of the represented series over the segment.
    pub value: f64,
}

/// Which construction builds the representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReprMethod {
    /// Keogh et al.'s APCA: wavelet-seeded segment placement
    /// (see [`crate::apca()`]).
    Apca,
    /// The paper's proposal: ε-approximate V-optimal histogram boundaries
    /// (one-pass, `streamhist-stream`).
    VOptimalApprox {
        /// Approximation parameter for the one-pass construction.
        eps: f64,
    },
    /// Exact V-optimal DP boundaries (`streamhist-optimal`) — the quality
    /// ceiling for segment placement.
    VOptimalExact,
}

/// An `M`-segment piecewise-constant representation of a fixed-length
/// series, with exact segment means as values.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseConstant {
    len: usize,
    segments: Vec<Segment>,
}

impl PiecewiseConstant {
    /// Builds the representation of `series` with at most `m` segments
    /// using `method`.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or `m == 0`.
    #[must_use]
    pub fn build(series: &[f64], m: usize, method: ReprMethod) -> Self {
        assert!(!series.is_empty(), "series must be non-empty");
        assert!(m > 0, "need at least one segment");
        let ends: Vec<usize> = match method {
            ReprMethod::Apca => crate::apca::apca(series, m).bucket_ends(),
            ReprMethod::VOptimalApprox { eps } => {
                streamhist_stream::approx_histogram(series, m, eps).bucket_ends()
            }
            ReprMethod::VOptimalExact => {
                streamhist_optimal::optimal_histogram(series, m).bucket_ends()
            }
        };
        Self::from_bucket_ends(series, &ends)
    }

    /// Builds the representation directly from inclusive bucket end
    /// indices, recomputing exact means.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries do not tile the series.
    #[must_use]
    pub fn from_bucket_ends(series: &[f64], ends: &[usize]) -> Self {
        let h = Histogram::from_bucket_ends(series, ends);
        Self::from_histogram(&h)
    }

    /// Converts any index-domain histogram (whose heights are segment
    /// means) into a representation.
    #[must_use]
    pub fn from_histogram(h: &Histogram) -> Self {
        let segments = h
            .buckets()
            .iter()
            .map(|b| Segment {
                end: b.end,
                value: b.height,
            })
            .collect();
        Self {
            len: h.domain_len(),
            segments,
        }
    }

    /// Length of the represented series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Representations are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The segments, in index order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments used.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Reconstructs the approximated series (each index replaced by its
    /// segment value).
    #[must_use]
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        let mut start = 0usize;
        for s in &self.segments {
            out.extend(std::iter::repeat_n(s.value, s.end + 1 - start));
            start = s.end + 1;
        }
        out
    }

    /// SSE of the representation against the raw series (the per-series
    /// quality the two methods compete on).
    ///
    /// # Panics
    ///
    /// Panics if `series.len() != len`.
    #[must_use]
    pub fn sse(&self, series: &[f64]) -> f64 {
        streamhist_core::sum_squared_error(series, &self.reconstruct())
    }
}

/// The GEMINI lower-bounding distance between a **raw query** and a
/// **represented candidate**: with `q̄_i` the query mean over the
/// candidate's `i`-th segment,
///
/// ```text
/// D_LB(q, R)² = Σ_i len_i · (q̄_i − value_i)²  ≤  ‖q − c‖²
/// ```
///
/// (per-segment Cauchy–Schwarz, using that `value_i` is the exact mean of
/// the candidate over the segment). Guarantees no false dismissals in range
/// search; the slack produces the *false positives* the §5.2 experiment
/// counts.
///
/// Pass the query's [`PrefixSums`] so a batch of candidates shares one
/// `O(n)` precomputation; each call is then `O(M)`.
///
/// # Panics
///
/// Panics if the query length differs from the representation length.
#[must_use]
pub fn lower_bound_dist(query_prefix: &PrefixSums, repr: &PiecewiseConstant) -> f64 {
    assert_eq!(
        query_prefix.len(),
        repr.len(),
        "query and candidate lengths must match"
    );
    let mut acc = 0.0;
    let mut start = 0usize;
    for s in repr.segments() {
        let len = (s.end + 1 - start) as f64;
        let qmean = query_prefix.mean(start, s.end);
        let d = qmean - s.value;
        acc += len * d * d;
        start = s.end + 1;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean;

    fn series_a() -> Vec<f64> {
        (0..32).map(|i| ((i * 13 + 5) % 17) as f64).collect()
    }

    #[test]
    fn all_methods_produce_valid_representations() {
        let s = series_a();
        for method in [
            ReprMethod::Apca,
            ReprMethod::VOptimalApprox { eps: 0.1 },
            ReprMethod::VOptimalExact,
        ] {
            let r = PiecewiseConstant::build(&s, 5, method);
            assert!(r.num_segments() <= 5, "{method:?}");
            assert_eq!(r.len(), 32);
            assert_eq!(r.segments().last().expect("non-empty").end, 31);
            // Segment values are exact means.
            let mut start = 0;
            for seg in r.segments() {
                let mean = s[start..=seg.end].iter().sum::<f64>() / (seg.end + 1 - start) as f64;
                assert!((seg.value - mean).abs() < 1e-9, "{method:?}");
                start = seg.end + 1;
            }
        }
    }

    #[test]
    fn exact_voptimal_never_worse_than_apca_in_sse() {
        let s = series_a();
        for m in [2, 4, 8] {
            let apca = PiecewiseConstant::build(&s, m, ReprMethod::Apca);
            let vopt = PiecewiseConstant::build(&s, m, ReprMethod::VOptimalExact);
            assert!(
                vopt.sse(&s) <= apca.sse(&s) + 1e-9,
                "m={m}: vopt {} vs apca {}",
                vopt.sse(&s),
                apca.sse(&s)
            );
        }
    }

    #[test]
    fn lower_bound_never_exceeds_true_distance() {
        let s = series_a();
        let queries: Vec<Vec<f64>> = vec![
            s.iter().map(|v| v + 1.0).collect(),
            s.iter().rev().copied().collect(),
            (0..32).map(|i| (i % 5) as f64 * 3.0).collect(),
            vec![0.0; 32],
        ];
        for method in [
            ReprMethod::Apca,
            ReprMethod::VOptimalApprox { eps: 0.2 },
            ReprMethod::VOptimalExact,
        ] {
            for m in [1, 3, 8] {
                let r = PiecewiseConstant::build(&s, m, method);
                for q in &queries {
                    let p = PrefixSums::new(q);
                    let lb = lower_bound_dist(&p, &r);
                    let d = euclidean(q, &s);
                    assert!(lb <= d + 1e-9, "{method:?} m={m}: lb {lb} > d {d}");
                }
            }
        }
    }

    #[test]
    fn lower_bound_is_exact_for_full_resolution() {
        // One segment per point: q̄_i = q_i and value_i = s_i, so LB = D.
        let s = series_a();
        let ends: Vec<usize> = (0..s.len()).collect();
        let r = PiecewiseConstant::from_bucket_ends(&s, &ends);
        let q: Vec<f64> = s.iter().map(|v| v * 2.0 + 1.0).collect();
        let lb = lower_bound_dist(&PrefixSums::new(&q), &r);
        assert!((lb - euclidean(&q, &s)).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_of_identical_query_is_zero_only_with_matching_means() {
        let s = series_a();
        let r = PiecewiseConstant::build(&s, 4, ReprMethod::VOptimalExact);
        let lb = lower_bound_dist(&PrefixSums::new(&s), &r);
        // Query == candidate: per-segment means coincide, LB must be 0.
        assert!(lb < 1e-9);
    }

    #[test]
    fn reconstruct_matches_segment_layout() {
        let s = [1.0, 1.0, 5.0, 5.0, 5.0, 9.0];
        let r = PiecewiseConstant::from_bucket_ends(&s, &[1, 4, 5]);
        assert_eq!(r.reconstruct(), vec![1.0, 1.0, 5.0, 5.0, 5.0, 9.0]);
        assert_eq!(r.sse(&s), 0.0);
    }
}
