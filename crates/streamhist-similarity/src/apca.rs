//! APCA — Adaptive Piecewise Constant Approximation (Keogh, Chakrabarti,
//! Mehrotra & Pazzani, SIGMOD 2001), the comparator of the paper's §5.2
//! similarity experiment.
//!
//! The APCA paper's construction heuristic:
//!
//! 1. take the Haar transform of the (padded) series and keep the `M`
//!    largest normalized coefficients;
//! 2. reconstruct — the result is piecewise-constant with at most `3M`
//!    segments;
//! 3. while more than `M` segments remain, merge the adjacent pair whose
//!    merge increases the approximation error (against the raw data) the
//!    least;
//! 4. replace every segment value by the exact mean of the raw data over
//!    the segment.
//!
//! Step 4 makes the representation mean-exact, which both the APCA paper's
//! index and our GEMINI lower bound require.

use streamhist_core::{Histogram, PrefixSums};
use streamhist_wavelet::WaveletSynopsis;

/// Builds the APCA representation of `series` with at most `m` segments,
/// returned as an index-domain [`Histogram`] (heights = segment means).
///
/// # Panics
///
/// Panics if `series` is empty or `m == 0`.
#[must_use]
pub fn apca(series: &[f64], m: usize) -> Histogram {
    assert!(!series.is_empty(), "series must be non-empty");
    assert!(m > 0, "need at least one segment");

    // Steps 1-2: wavelet-seeded piecewise-constant reconstruction.
    let synopsis = WaveletSynopsis::top_b(series, m);
    let recon = synopsis.reconstruct();

    // Collapse equal-value runs into candidate segment ends.
    let mut ends: Vec<usize> = Vec::new();
    for i in 0..recon.len() {
        if i + 1 == recon.len() || (recon[i] - recon[i + 1]).abs() > 1e-12 {
            ends.push(i);
        }
    }

    // Step 3: greedy merging down to m segments, minimizing the SSE
    // increase measured against the raw series.
    let prefix = PrefixSums::new(series);
    while ends.len() > m {
        // Merging segments (k, k+1) replaces their two buckets by one; the
        // cost delta is sqerror(joined) - sqerror(a) - sqerror(b) >= 0.
        let mut best_k = 0usize;
        let mut best_cost = f64::INFINITY;
        let mut start = 0usize;
        for k in 0..ends.len() - 1 {
            let mid = ends[k];
            let end = ends[k + 1];
            let joined = prefix.sqerror(start, end);
            let split = prefix.sqerror(start, mid) + prefix.sqerror(mid + 1, end);
            let cost = joined - split;
            if cost < best_cost {
                best_cost = cost;
                best_k = k;
            }
            start = mid + 1;
        }
        ends.remove(best_k);
    }

    // Step 4: Histogram::from_bucket_ends recomputes exact means.
    Histogram::from_bucket_ends(series, &ends)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_segment_budget() {
        let s: Vec<f64> = (0..64).map(|i| ((i * 31 + 7) % 23) as f64).collect();
        for m in [1, 2, 5, 10] {
            let h = apca(&s, m);
            assert!(h.num_buckets() <= m, "m={m}: got {}", h.num_buckets());
            assert_eq!(h.domain_len(), 64);
        }
    }

    #[test]
    fn exact_on_piecewise_constant_input() {
        let mut s = vec![2.0; 16];
        s.extend(vec![9.0; 16]);
        let h = apca(&s, 2);
        assert_eq!(h.bucket_ends(), vec![15, 31]);
        assert!(h.sse(&s) < 1e-12);
    }

    #[test]
    fn single_segment_is_global_mean() {
        let s = [1.0, 3.0, 5.0, 7.0];
        let h = apca(&s, 1);
        assert_eq!(h.num_buckets(), 1);
        assert!((h.buckets()[0].height - 4.0).abs() < 1e-12);
    }

    #[test]
    fn heights_are_exact_means() {
        let s: Vec<f64> = (0..32).map(|i| (i as f64).sin() * 10.0).collect();
        let h = apca(&s, 6);
        for b in h.buckets() {
            let mean = s[b.start..=b.end].iter().sum::<f64>() / b.len() as f64;
            assert!((b.height - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn non_power_of_two_lengths() {
        let s: Vec<f64> = (0..37).map(|i| ((i * 5) % 11) as f64).collect();
        let h = apca(&s, 4);
        assert_eq!(h.domain_len(), 37);
        assert!(h.num_buckets() <= 4);
    }

    #[test]
    fn more_segments_never_hurt_much() {
        // Greedy merging is monotone in the budget: SSE with a larger m is
        // never worse (the merge sequence with larger m is a prefix of the
        // one with smaller m).
        let s: Vec<f64> = (0..64)
            .map(|i| {
                if (16..24).contains(&i) {
                    50.0
                } else {
                    ((i * 3) % 7) as f64
                }
            })
            .collect();
        let mut last = f64::INFINITY;
        for m in [1, 2, 4, 8, 16] {
            let sse = apca(&s, m).sse(&s);
            // Not strictly monotone across different wavelet seeds; allow
            // modest slack while requiring the overall trend.
            assert!(sse <= last * 1.2 + 1e-9, "m={m}: {sse} vs {last}");
            last = last.min(sse);
        }
    }
}
