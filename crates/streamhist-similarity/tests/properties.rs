//! Property tests for the similarity substrate: the GEMINI lower-bounding
//! contract (never exceed the true distance — no false dismissals), APCA
//! structural validity, and search completeness against linear scan.

use proptest::prelude::*;
use streamhist_core::PrefixSums;
use streamhist_similarity::{
    apca, euclidean, lower_bound_dist, PiecewiseConstant, ReprMethod, SeriesIndex,
};

fn series_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100..100i64, len..=len)
        .prop_map(|v| v.into_iter().map(|x| x as f64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The load-bearing GEMINI property: for every representation method,
    /// every budget, and every query, the lower bound never exceeds the
    /// true Euclidean distance.
    #[test]
    fn lower_bound_never_exceeds_distance(
        candidate in series_strategy(48),
        query in series_strategy(48),
        m in 1usize..12,
    ) {
        for method in [
            ReprMethod::Apca,
            ReprMethod::VOptimalApprox { eps: 0.3 },
            ReprMethod::VOptimalExact,
        ] {
            let r = PiecewiseConstant::build(&candidate, m, method);
            let lb = lower_bound_dist(&PrefixSums::new(&query), &r);
            let d = euclidean(&query, &candidate);
            prop_assert!(lb <= d + 1e-6, "{method:?} m={m}: lb {lb} > d {d}");
        }
    }

    /// Tighter segmentations give tighter (larger) lower bounds on
    /// average? Not guaranteed pointwise — but the bound of the exact
    /// V-optimal repr is always valid and the representation SSE ordering
    /// holds: exact <= approx <= (1 + eps) * exact.
    #[test]
    fn representation_sse_ordering(series in series_strategy(40), m in 1usize..8) {
        let exact = PiecewiseConstant::build(&series, m, ReprMethod::VOptimalExact);
        let eps = 0.3;
        let approx =
            PiecewiseConstant::build(&series, m, ReprMethod::VOptimalApprox { eps });
        let apca_r = PiecewiseConstant::build(&series, m, ReprMethod::Apca);
        let (se, sa, sk) = (exact.sse(&series), approx.sse(&series), apca_r.sse(&series));
        prop_assert!(se <= sa + 1e-6, "exact {se} > approx {sa}");
        prop_assert!(sa <= (1.0 + eps) * se + 1e-6, "approx {sa} > (1+eps)*{se}");
        prop_assert!(se <= sk + 1e-6, "exact {se} > apca {sk}");
    }

    /// APCA structural validity for arbitrary data and budgets.
    #[test]
    fn apca_is_structurally_valid(series in series_strategy(33), m in 1usize..10) {
        let h = apca(&series, m);
        prop_assert!(h.num_buckets() <= m);
        prop_assert_eq!(h.domain_len(), series.len());
        for b in h.buckets() {
            let mean: f64 = series[b.start..=b.end].iter().sum::<f64>() / b.len() as f64;
            prop_assert!((b.height - mean).abs() < 1e-6);
        }
    }

    /// Range search returns exactly the linear-scan answer set (soundness
    /// and completeness), for every method.
    #[test]
    fn range_query_matches_linear_scan(
        seeds in prop::collection::vec(0u64..1000, 3..12),
        radius_scale in 1u32..40,
    ) {
        let len = 24;
        let coll: Vec<Vec<f64>> = seeds
            .iter()
            .map(|&s| {
                (0..len)
                    .map(|i| (((i as u64 + 1) * (s + 3)) % 37) as f64)
                    .collect()
            })
            .collect();
        let query: Vec<f64> = coll[0].iter().map(|v| v + 1.0).collect();
        let radius = radius_scale as f64;
        let truth: Vec<usize> = coll
            .iter()
            .enumerate()
            .filter(|(_, s)| euclidean(&query, s) <= radius)
            .map(|(i, _)| i)
            .collect();
        for method in [ReprMethod::Apca, ReprMethod::VOptimalExact] {
            let idx = SeriesIndex::build(coll.clone(), 4, method);
            let (mut got, stats) = idx.range_query(&query, radius);
            got.sort_unstable();
            prop_assert_eq!(&got, &truth, "{:?}", method);
            prop_assert_eq!(stats.answers, truth.len());
            prop_assert_eq!(
                stats.candidates + stats.pruned,
                coll.len(),
                "every series is either pruned or verified"
            );
        }
    }

    /// 1-NN with pruning equals the linear-scan nearest neighbour.
    #[test]
    fn nearest_matches_linear_scan(
        seeds in prop::collection::vec(0u64..1000, 2..10),
        qseed in 0u64..1000,
    ) {
        let len = 20;
        let coll: Vec<Vec<f64>> = seeds
            .iter()
            .map(|&s| (0..len).map(|i| (((i as u64 + 2) * (s + 7)) % 41) as f64).collect())
            .collect();
        let query: Vec<f64> =
            (0..len).map(|i| (((i as u64 + 2) * (qseed + 7)) % 41) as f64).collect();
        let truth = coll
            .iter()
            .map(|s| euclidean(&query, s))
            .fold(f64::INFINITY, f64::min);
        let idx = SeriesIndex::build(coll, 4, ReprMethod::VOptimalExact);
        let (_, d, _) = idx.nearest(&query);
        prop_assert!((d - truth).abs() < 1e-9, "pruned 1-NN {d} vs scan {truth}");
    }
}
