//! Property tests for the wavelet substrate: transform roundtrips, query
//! consistency with reconstruction, energy-optimal selection, and the
//! dynamic maintainer's equivalence to the batch transform.

use proptest::prelude::*;
use streamhist_core::SequenceSummary;
use streamhist_wavelet::{haar, DynamicWavelet, WaveletSynopsis};

fn data_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-500..500i64, 1..65)
        .prop_map(|v| v.into_iter().map(|x| x as f64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn forward_inverse_roundtrip(data in data_strategy()) {
        let c = haar::forward(&data);
        prop_assert!(c.len().is_power_of_two());
        let back = haar::inverse(&c);
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            prop_assert!((a - b).abs() < 1e-7, "i={i}: {a} vs {b}");
        }
        // Padded tail reconstructs to zero.
        for (i, &v) in back.iter().enumerate().skip(data.len()) {
            prop_assert!(v.abs() < 1e-7, "pad {i}: {v}");
        }
    }

    #[test]
    fn estimates_match_reconstruction(data in data_strategy(), b in 1usize..32) {
        let s = WaveletSynopsis::top_b(&data, b);
        let r = s.reconstruct();
        prop_assert_eq!(r.len(), data.len());
        let n = data.len();
        for i in [0, n / 2, n - 1] {
            prop_assert!((s.estimate_point(i) - r[i]).abs() < 1e-7, "point {i}");
        }
        for (a, z) in [(0, n - 1), (n / 3, 2 * n / 3)] {
            let (a, z) = (a.min(z), a.max(z));
            let direct: f64 = r[a..=z].iter().sum();
            prop_assert!(
                (s.estimate_range_sum(a, z) - direct).abs() < 1e-6,
                "range ({a},{z})"
            );
        }
    }

    #[test]
    fn full_budget_is_lossless(data in data_strategy()) {
        let n_padded = haar::pad_len(data.len());
        let s = WaveletSynopsis::top_b(&data, n_padded);
        prop_assert!(s.sse(&data) < 1e-6);
    }

    #[test]
    fn selection_is_energy_optimal_among_coefficient_subsets(
        data in data_strategy(),
        b in 1usize..8,
    ) {
        // With an orthogonal basis, keeping the B largest normalized
        // coefficients minimizes the SSE among all B-subsets — check
        // against dropping one kept coefficient for one unkept.
        //
        // Parseval's identity applies over the padded power-of-two domain,
        // so truncate the data to a power of two (for other lengths the
        // ignored padding region perturbs the truncated-domain SSE by a
        // hair, which is the documented behaviour of the baseline).
        let data = {
            let mut d = data;
            let p = streamhist_wavelet::haar::pad_len(d.len());
            d.truncate(if p == d.len() { p } else { p / 2 });
            d
        };
        let s = WaveletSynopsis::top_b(&data, b);
        let kept: Vec<usize> = s.coefficients().iter().map(|&(k, _)| k).collect();
        let full = haar::forward(&data);
        let base_sse = s.sse(&data);
        for swap_out in &kept {
            for (k, &c) in full.iter().enumerate() {
                if c == 0.0 || kept.contains(&k) {
                    continue;
                }
                let alt: Vec<usize> = kept
                    .iter()
                    .copied()
                    .filter(|x| x != swap_out)
                    .chain(std::iter::once(k))
                    .collect();
                let mut dense = vec![0.0; full.len()];
                for &i in &alt {
                    dense[i] = full[i];
                }
                let alt_sse = streamhist_core::sum_squared_error(
                    &data,
                    &haar::inverse(&dense)[..data.len()],
                );
                prop_assert!(
                    base_sse <= alt_sse + 1e-6,
                    "swapping {swap_out} for {k} improved SSE: {base_sse} vs {alt_sse}"
                );
                break; // one alternative per kept coefficient is enough
            }
        }
    }

    #[test]
    fn dynamic_equals_batch_after_random_updates(
        updates in prop::collection::vec((0usize..32, -100..100i64), 1..60),
    ) {
        let mut data = vec![0.0; 32];
        let mut dw = DynamicWavelet::new(32);
        for &(idx, delta) in &updates {
            data[idx] += delta as f64;
            dw.add(idx, delta as f64);
        }
        let batch = haar::forward(&data);
        for (k, (a, b)) in dw.coefficients().iter().zip(&batch).enumerate() {
            prop_assert!((a - b).abs() < 1e-7, "coefficient {k}");
        }
        for (i, &v) in data.iter().enumerate() {
            prop_assert!((dw.value(i) - v).abs() < 1e-7, "value {i}");
        }
    }

    #[test]
    fn sse_never_increases_with_budget_on_padded_lengths(data in data_strategy()) {
        // Strict monotonicity is a Parseval consequence, which holds over
        // the padded power-of-two domain; truncate accordingly.
        let data = {
            let mut d = data;
            let p = haar::pad_len(d.len());
            d.truncate(if p == d.len() { p } else { p / 2 });
            d
        };
        let mut last = f64::INFINITY;
        for b in [1usize, 2, 4, 8, 16, 32, 64] {
            let sse = WaveletSynopsis::top_b(&data, b).sse(&data);
            prop_assert!(sse <= last + 1e-6, "b={b}: {sse} > {last}");
            last = sse;
        }
    }

    #[test]
    fn padded_domain_sse_is_monotone_for_any_length(data in data_strategy()) {
        // For arbitrary lengths, Parseval guarantees monotonicity of the
        // SSE measured over the zero-padded power-of-two domain (the
        // truncated-domain SSE can wiggle — documented baseline behaviour).
        let padded = {
            let mut d = data.clone();
            d.resize(haar::pad_len(d.len()), 0.0);
            d
        };
        let mut last = f64::INFINITY;
        for b in [1usize, 2, 4, 8, 16, 32, 64] {
            let sse = WaveletSynopsis::top_b(&padded, b).sse(&padded);
            prop_assert!(sse <= last + 1e-6, "b={b}: {sse} > {last}");
            last = sse;
        }
    }
}
