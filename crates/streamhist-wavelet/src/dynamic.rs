//! Dynamic maintenance of Haar coefficients under point updates — the
//! Matias–Vitter–Wang (VLDB 2000) "dynamic maintenance of wavelet-based
//! histograms" baseline, in its deterministic exact form.
//!
//! A point update at position `t` touches exactly the root average plus the
//! `log₂ N` detail coefficients whose support contains `t`: the detail at
//! level with support `s` changes by `±delta/s` depending on which half `t`
//! falls in, and the root by `delta/N`. This gives `O(log N)` per update
//! with the full (dense) coefficient set maintained exactly; a top-`B`
//! synopsis is extracted on demand.
//!
//! Unlike the paper's histograms this is **not** a small-space stream
//! summary — it stores all `N` coefficients (the probabilistic-counting
//! small-space variants of MVW00 trade exactness for space). It exists as
//! the fair per-push wavelet comparator for the agglomerative experiments.

use crate::haar;
use crate::synopsis::WaveletSynopsis;
use streamhist_core::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use streamhist_core::{MergeableSummary, StreamSummary, StreamhistError};

/// Exact Haar coefficient set over a fixed power-of-two capacity, with
/// `O(log N)` point updates and on-demand top-`B` extraction.
#[derive(Debug, Clone)]
pub struct DynamicWavelet {
    n_padded: usize,
    coeffs: Vec<f64>,
    /// Number of positions appended so far (for the agglomerative usage).
    len: usize,
}

impl DynamicWavelet {
    /// Creates an all-zero signal of the given capacity (rounded up to a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let n_padded = haar::pad_len(capacity);
        Self {
            n_padded,
            coeffs: vec![0.0; n_padded],
            len: 0,
        }
    }

    /// Padded capacity `N`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.n_padded
    }

    /// Number of appended positions (see [`Self::push`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `delta` to the value at position `idx`. `O(log N)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity`.
    pub fn add(&mut self, idx: usize, delta: f64) {
        assert!(delta.is_finite(), "updates must be finite");
        assert!(
            idx < self.n_padded,
            "index {idx} out of capacity {}",
            self.n_padded
        );
        let n = self.n_padded;
        self.coeffs[0] += delta / n as f64;
        let mut k = 1usize;
        let mut lo = 0usize;
        let mut s = n;
        while k < n {
            let mid = lo + s / 2;
            if idx < mid {
                self.coeffs[k] += delta / s as f64;
                k *= 2;
            } else {
                self.coeffs[k] -= delta / s as f64;
                k = 2 * k + 1;
                lo = mid;
            }
            s /= 2;
        }
    }

    /// Sets the value at `idx` to `v` (an `add` of the difference, using
    /// the exact current reconstruction). `O(log N)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity`.
    pub fn set(&mut self, idx: usize, v: f64) {
        let current = self.value(idx);
        self.add(idx, v - current);
    }

    /// Appends the next stream value at position `len` (the agglomerative
    /// arrival model with a known horizon), or rejects it without mutating
    /// anything. `O(log N)`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::NonFiniteValue`] if `v` is NaN or
    /// infinite, and [`StreamhistError::CapacityExhausted`] once `len`
    /// reaches the (padded) capacity.
    pub fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        if self.len >= self.n_padded {
            return Err(StreamhistError::CapacityExhausted {
                capacity: self.n_padded,
            });
        }
        let idx = self.len;
        self.len += 1;
        self.add(idx, v);
        Ok(())
    }

    /// Appends the next stream value at position `len`. `O(log N)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite or the capacity is exhausted.
    pub fn push(&mut self, v: f64) {
        if let Err(e) = self.try_push(v) {
            panic!("{e}");
        }
    }

    /// Restores the signal to all-zero with no appended positions, keeping
    /// the capacity.
    pub fn reset(&mut self) {
        self.coeffs.fill(0.0);
        self.len = 0;
    }

    /// Exact reconstructed value at `idx` from the full coefficient set.
    /// `O(log N)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity`.
    #[must_use]
    pub fn value(&self, idx: usize) -> f64 {
        assert!(
            idx < self.n_padded,
            "index {idx} out of capacity {}",
            self.n_padded
        );
        let n = self.n_padded;
        let mut val = self.coeffs[0];
        let mut k = 1usize;
        let mut lo = 0usize;
        let mut s = n;
        while k < n {
            let mid = lo + s / 2;
            if idx < mid {
                val += self.coeffs[k];
                k *= 2;
            } else {
                val -= self.coeffs[k];
                k = 2 * k + 1;
                lo = mid;
            }
            s /= 2;
        }
        val
    }

    /// The dense coefficient array (error-tree heap layout).
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Extracts the current top-`b` synopsis over the first
    /// `domain_len` positions. `O(N)` selection.
    ///
    /// # Panics
    ///
    /// Panics if `domain_len` exceeds the capacity, or `b == 0` with a
    /// non-empty domain.
    #[must_use]
    pub fn top_b(&self, domain_len: usize, b: usize) -> WaveletSynopsis {
        assert!(domain_len <= self.n_padded, "domain exceeds capacity");
        WaveletSynopsis::from_dense(&self.coeffs, domain_len, b)
    }

    /// Convenience for the agglomerative model: synopsis over everything
    /// appended so far.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` and values have been appended.
    #[must_use]
    pub fn synopsis(&self, b: usize) -> WaveletSynopsis {
        self.top_b(self.len, b)
    }
}

/// Dense coefficient addition: by linearity of the Haar transform,
/// summing the full coefficient arrays yields the **exact** coefficient
/// set of the superimposed signal `x + y` — point updates applied on
/// separate workers over the same index domain merge losslessly
/// (DESIGN.md §7). The appended-position cursor advances to the further
/// of the two operands. Padded capacities must match.
impl MergeableSummary for DynamicWavelet {
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
        if self.n_padded != other.n_padded {
            return Err(StreamhistError::InvalidParameter {
                param: "capacity",
                message: "merge requires identical padded capacities",
            });
        }
        for (c, &o) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *c += o;
        }
        self.len = self.len.max(other.len);
        Ok(())
    }
}

impl Checkpoint for DynamicWavelet {
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::DYNAMIC_WAVELET);
        w.put_usize(self.n_padded);
        w.put_usize(self.len);
        for &c in &self.coeffs {
            w.put_f64(c);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        let mut r = FrameReader::open(bytes, tag::DYNAMIC_WAVELET)?;
        let n_padded = r.get_usize()?;
        if !n_padded.is_power_of_two() {
            return Err(corrupt("padded capacity must be a power of two"));
        }
        let len = r.get_usize()?;
        if len > n_padded {
            return Err(corrupt("length exceeds capacity"));
        }
        if r.remaining() != n_padded * 8 {
            return Err(corrupt("coefficient array does not match capacity"));
        }
        let mut coeffs = Vec::with_capacity(n_padded);
        for _ in 0..n_padded {
            coeffs.push(r.get_f64()?);
        }
        r.finish()?;
        Ok(Self {
            n_padded,
            coeffs,
            len,
        })
    }
}

impl StreamSummary for DynamicWavelet {
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        DynamicWavelet::try_push(self, v)
    }

    fn push(&mut self, v: f64) {
        DynamicWavelet::push(self, v);
    }

    /// Number of appended positions (`<= capacity`).
    fn len(&self) -> usize {
        DynamicWavelet::len(self)
    }

    fn reset(&mut self) {
        DynamicWavelet::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::forward;

    #[test]
    fn appends_match_batch_transform() {
        let data: Vec<f64> = (0..16).map(|i| ((i * 7 + 3) % 11) as f64).collect();
        let mut dw = DynamicWavelet::new(16);
        for &v in &data {
            dw.push(v);
        }
        let batch = forward(&data);
        for (k, (a, b)) in dw.coefficients().iter().zip(&batch).enumerate() {
            assert!((a - b).abs() < 1e-9, "coefficient {k}: {a} vs {b}");
        }
    }

    #[test]
    fn point_updates_match_rebuild() {
        let mut data = vec![0.0; 8];
        let mut dw = DynamicWavelet::new(8);
        let updates = [(3usize, 5.0), (0, -2.0), (7, 9.0), (3, 1.5), (4, -4.0)];
        for &(idx, delta) in &updates {
            data[idx] += delta;
            dw.add(idx, delta);
            let batch = forward(&data);
            for (a, b) in dw.coefficients().iter().zip(&batch) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn value_reconstructs_exactly() {
        let data: Vec<f64> = (0..32).map(|i| (i as f64).sin() * 7.0).collect();
        let mut dw = DynamicWavelet::new(32);
        for (i, &v) in data.iter().enumerate() {
            dw.set(i, v);
        }
        for (i, &v) in data.iter().enumerate() {
            assert!((dw.value(i) - v).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn set_overwrites() {
        let mut dw = DynamicWavelet::new(4);
        dw.set(1, 10.0);
        dw.set(1, 3.0);
        assert!((dw.value(1) - 3.0).abs() < 1e-12);
        assert!(dw.value(0).abs() < 1e-12);
    }

    #[test]
    fn synopsis_matches_batch_top_b() {
        let data: Vec<f64> = (0..16).map(|i| ((i * 13) % 7) as f64 * 3.0).collect();
        let mut dw = DynamicWavelet::new(16);
        for &v in &data {
            dw.push(v);
        }
        let dynamic = dw.synopsis(4);
        let batch = WaveletSynopsis::top_b(&data, 4);
        for i in 0..data.len() {
            assert!(
                (dynamic.reconstruct()[i] - batch.reconstruct()[i]).abs() < 1e-9,
                "i={i}"
            );
        }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let dw = DynamicWavelet::new(9);
        assert_eq!(dw.capacity(), 16);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted (4 values)")]
    fn push_past_capacity_panics() {
        let mut dw = DynamicWavelet::new(4);
        for i in 0..5 {
            dw.push(i as f64);
        }
    }

    #[test]
    fn push_is_the_single_ingest_entry_point() {
        let mut dw = DynamicWavelet::new(4);
        dw.push(2.0);
        assert_eq!(dw.len(), 1);
        assert!((dw.value(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_signals_exactly() {
        let mut a = DynamicWavelet::new(8);
        let mut b = DynamicWavelet::new(8);
        for i in 0..8 {
            a.set(i, (i % 3) as f64);
            b.set(i, ((i * 5) % 7) as f64);
        }
        let mut ab = a.clone();
        ab.merge_from(&b).expect("same capacity");
        for i in 0..8 {
            let want = a.value(i) + b.value(i);
            assert!((ab.value(i) - want).abs() < 1e-9, "i={i}");
        }
        let mut ba = b.clone();
        ba.merge_from(&a).expect("same capacity");
        for (x, y) in ab.coefficients().iter().zip(ba.coefficients()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_rejects_mismatched_capacity() {
        let mut a = DynamicWavelet::new(8);
        let b = DynamicWavelet::new(16);
        let err = a.merge_from(&b).expect_err("capacity mismatch");
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter {
                param: "capacity",
                ..
            }
        ));
    }

    #[test]
    fn stream_summary_rejects_bad_input_and_resets() {
        let mut dw = DynamicWavelet::new(4);
        let out = dw.push_batch(&[1.0, f64::NAN, 2.0, 3.0, 4.0, 5.0]);
        // One NaN, then 5.0 arrives with the capacity already exhausted.
        assert_eq!((out.accepted, out.rejected), (4, 2));
        assert!(matches!(
            dw.try_push(9.0),
            Err(StreamhistError::CapacityExhausted { capacity: 4 })
        ));
        dw.reset();
        assert!(dw.is_empty());
        assert!(dw.coefficients().iter().all(|&c| c == 0.0));
        dw.push(7.0);
        assert!((dw.value(0) - 7.0).abs() < 1e-12);
    }
}
