//! # streamhist-wavelet
//!
//! Haar-wavelet synopses — the baseline the reproduced paper (Guha &
//! Koudas, ICDE 2002) compares its fixed-window histograms against:
//! "Wavelet histograms are computed again from scratch every time a new
//! point enters and the temporally oldest point leaves the buffer" (§5.1).
//! The method is the classic Matias–Vitter–Wang construction (SIGMOD 1998):
//! compute the Haar decomposition of the sequence and retain the `B`
//! coefficients with the largest **normalized** magnitude (largest L2
//! energy), answering point and range-sum queries from the retained
//! coefficients alone.
//!
//! * [`haar`] — forward/inverse non-normalized Haar transform in error-tree
//!   ("heap index") layout, for arbitrary lengths via zero padding.
//! * [`WaveletSynopsis`] — top-`B` coefficient synopsis with `O(log n)`
//!   point and `O(B)` range-sum estimation, implementing
//!   [`streamhist_core::SequenceSummary`].
//! * [`SlidingWindowWavelet`] — the paper's §5.1 baseline protocol:
//!   buffered window, recompute-from-scratch per materialization.
//!
//! A retained coefficient costs two stored words (index, value), the same
//! as a histogram bucket (boundary, height), so equal `B` means equal space
//! budget in every comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod haar;
pub mod synopsis;

pub use dynamic::DynamicWavelet;
pub use streamhist_core::{BatchOutcome, MergeableSummary, StreamSummary};
pub use synopsis::{SlidingWindowWavelet, WaveletSynopsis};
