//! Non-normalized Haar transform in error-tree (heap-index) layout.
//!
//! For a (zero-padded) sequence of `N = 2^L` values the decomposition
//! produces `N` coefficients:
//!
//! * `c[0]` — the overall average;
//! * `c[k]` for `k >= 1` — detail coefficients in heap order: node `k` at
//!   depth `d = floor(log2 k)` has support `s = N / 2^d`, covers the block
//!   starting at `(k − 2^d)·s`, and equals
//!   `(avg(left half) − avg(right half)) / 2`.
//!
//! Reconstruction of any single value is the root average plus/minus the
//! detail coefficients along its root-to-leaf path (`+` in left halves,
//! `−` in right halves). The L2 energy contributed by a detail coefficient
//! is `c[k]²·s`, so the "largest normalized coefficient" rule of
//! Matias–Vitter–Wang keeps the `B` coefficients maximizing `|c[k]|·√s`.

/// Smallest power of two `>= n` (and `>= 1`).
#[must_use]
pub fn pad_len(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Forward transform. `data` is implicitly zero-padded to [`pad_len`];
/// returns the coefficient array of that padded length.
#[must_use]
pub fn forward(data: &[f64]) -> Vec<f64> {
    let n = pad_len(data.len());
    let mut a = vec![0.0; n];
    a[..data.len()].copy_from_slice(data);
    let mut c = vec![0.0; n];
    let mut len = n;
    let mut scratch = vec![0.0; n / 2];
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            scratch[i] = (a[2 * i] + a[2 * i + 1]) / 2.0;
            c[half + i] = (a[2 * i] - a[2 * i + 1]) / 2.0;
        }
        a[..half].copy_from_slice(&scratch[..half]);
        len = half;
    }
    c[0] = a[0];
    c
}

/// Inverse transform of a (dense) coefficient array of power-of-two length.
///
/// # Panics
///
/// Panics if `coeffs.len()` is not a power of two.
#[must_use]
pub fn inverse(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    assert!(
        n.is_power_of_two(),
        "coefficient array must have power-of-two length"
    );
    let mut a = vec![0.0; n];
    a[0] = coeffs[0];
    let mut len = 1;
    let mut scratch = vec![0.0; n];
    while len < n {
        for i in 0..len {
            let d = coeffs[len + i];
            scratch[2 * i] = a[i] + d;
            scratch[2 * i + 1] = a[i] - d;
        }
        len *= 2;
        a[..len].copy_from_slice(&scratch[..len]);
    }
    a
}

/// Support (number of covered positions) of coefficient `k` in a transform
/// of padded length `n`.
///
/// # Panics
///
/// Panics if `k >= n`.
#[must_use]
pub fn support(k: usize, n: usize) -> usize {
    assert!(k < n, "coefficient index out of range");
    if k == 0 {
        n
    } else {
        n >> k.ilog2()
    }
}

/// Start position of the block covered by coefficient `k`.
///
/// # Panics
///
/// Panics if `k >= n`.
#[must_use]
pub fn block_start(k: usize, n: usize) -> usize {
    assert!(k < n, "coefficient index out of range");
    if k == 0 {
        0
    } else {
        let d = k.ilog2();
        (k - (1usize << d)) * (n >> d)
    }
}

/// The contribution of coefficient `k` (with value `c`) to the sum of the
/// reconstructed values over the inclusive index range `[lo, hi]`:
/// `c · (|range ∩ left half| − |range ∩ right half|)` for details, and
/// `c · |range|` for the root average.
///
/// # Panics
///
/// Panics if `k >= n`.
#[must_use]
pub fn range_sum_contribution(k: usize, c: f64, n: usize, lo: usize, hi: usize) -> f64 {
    debug_assert!(lo <= hi);
    if k == 0 {
        return c * (hi.min(n - 1).saturating_sub(lo) + 1) as f64;
    }
    let s = support(k, n);
    let start = block_start(k, n);
    let mid = start + s / 2;
    let end = start + s; // exclusive
    let overlap = |a: usize, b: usize| -> f64 {
        // overlap of [lo, hi] with [a, b)
        let l = lo.max(a);
        let r = (hi + 1).min(b);
        r.saturating_sub(l) as f64
    };
    c * (overlap(start, mid) - overlap(mid, end))
}

/// Reconstructs the single value at `idx` from a *sparse* coefficient list
/// (sorted by index). `O(log n · log B)`.
///
/// # Panics
///
/// Panics if `idx >= n` or `n` is not a power of two.
#[must_use]
pub fn point_from_sparse(coeffs: &[(usize, f64)], n: usize, idx: usize) -> f64 {
    assert!(n.is_power_of_two(), "padded length must be a power of two");
    assert!(idx < n, "index out of range");
    debug_assert!(
        coeffs.windows(2).all(|w| w[0].0 < w[1].0),
        "sparse coeffs must be sorted"
    );
    let get = |k: usize| -> f64 {
        match coeffs.binary_search_by_key(&k, |&(i, _)| i) {
            Ok(p) => coeffs[p].1,
            Err(_) => 0.0,
        }
    };
    let mut val = get(0);
    let mut k = 1usize;
    let mut lo = 0usize;
    let mut s = n;
    while k < n {
        let c = get(k);
        let mid = lo + s / 2;
        if idx < mid {
            val += c;
            k *= 2;
        } else {
            val -= c;
            k = 2 * k + 1;
            lo = mid;
        }
        s /= 2;
    }
    val
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_inverse_roundtrip_power_of_two() {
        let data = [3.0, 7.0, 5.0, 8.0, 2.0, 6.0, 4.0, 9.0];
        let c = forward(&data);
        let back = inverse(&c);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_pads_with_zeros() {
        let data = [3.0, 7.0, 5.0];
        let c = forward(&data);
        assert_eq!(c.len(), 4);
        let back = inverse(&c);
        assert!((back[0] - 3.0).abs() < 1e-12);
        assert!((back[3] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn root_is_overall_average() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let c = forward(&data);
        assert!((c[0] - 2.5).abs() < 1e-12);
        // c[1] = (avg(1,2) - avg(3,4)) / 2 = (1.5 - 3.5)/2 = -1
        assert!((c[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn support_and_block_start_follow_heap_layout() {
        let n = 8;
        assert_eq!(support(0, n), 8);
        assert_eq!(support(1, n), 8);
        assert_eq!(support(2, n), 4);
        assert_eq!(support(3, n), 4);
        assert_eq!(support(4, n), 2);
        assert_eq!(support(7, n), 2);
        assert_eq!(block_start(1, n), 0);
        assert_eq!(block_start(2, n), 0);
        assert_eq!(block_start(3, n), 4);
        assert_eq!(block_start(4, n), 0);
        assert_eq!(block_start(5, n), 2);
        assert_eq!(block_start(7, n), 6);
    }

    #[test]
    fn point_from_sparse_with_full_coefficients_is_exact() {
        let data = [3.0, 7.0, 5.0, 8.0, 2.0, 6.0, 4.0, 9.0];
        let c = forward(&data);
        let sparse: Vec<(usize, f64)> = c.iter().copied().enumerate().collect();
        for (i, &v) in data.iter().enumerate() {
            assert!(
                (point_from_sparse(&sparse, 8, i) - v).abs() < 1e-12,
                "i={i}"
            );
        }
    }

    #[test]
    fn range_sum_contributions_match_reconstruction() {
        let data = [3.0, 7.0, 5.0, 8.0, 2.0, 6.0, 4.0, 9.0];
        let n = 8;
        let c = forward(&data);
        for lo in 0..n {
            for hi in lo..n {
                let direct: f64 = data[lo..=hi].iter().sum();
                let via: f64 = c
                    .iter()
                    .enumerate()
                    .map(|(k, &v)| range_sum_contribution(k, v, n, lo, hi))
                    .sum();
                assert!(
                    (direct - via).abs() < 1e-9,
                    "({lo},{hi}): {direct} vs {via}"
                );
            }
        }
    }

    #[test]
    fn dropping_zero_coefficients_changes_nothing() {
        let data = [5.0, 5.0, 5.0, 5.0];
        let c = forward(&data);
        // All detail coefficients are zero; only the root survives.
        assert!(c[1..].iter().all(|&v| v.abs() < 1e-12));
        let sparse = vec![(0usize, c[0])];
        for i in 0..4 {
            assert!((point_from_sparse(&sparse, 4, i) - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_element_input() {
        let c = forward(&[42.0]);
        assert_eq!(c, vec![42.0]);
        assert_eq!(inverse(&c), vec![42.0]);
        assert_eq!(point_from_sparse(&[(0, 42.0)], 1, 0), 42.0);
    }
}
