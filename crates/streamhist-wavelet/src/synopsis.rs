//! Top-`B` wavelet synopses and the sliding-window baseline protocol.

use crate::haar;
use std::collections::VecDeque;
use streamhist_core::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use streamhist_core::{MergeableSummary, SequenceSummary, StreamSummary, StreamhistError};

/// A sequence synopsis retaining the `B` Haar coefficients with the largest
/// normalized magnitude (`|c|·√support`, i.e. largest L2 energy) —
/// the Matias–Vitter–Wang wavelet histogram.
///
/// # Example
///
/// ```
/// use streamhist_wavelet::WaveletSynopsis;
/// use streamhist_core::SequenceSummary;
///
/// let data = [5.0, 5.0, 5.0, 5.0, 9.0, 9.0, 9.0, 9.0];
/// // One level change: root + one detail coefficient suffice.
/// let s = WaveletSynopsis::top_b(&data, 2);
/// assert_eq!(s.estimate_point(0), 5.0);
/// assert_eq!(s.estimate_range_sum(4, 7), 36.0);
/// assert!(s.sse(&data) < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct WaveletSynopsis {
    /// Original (unpadded) sequence length.
    n: usize,
    /// Padded power-of-two length the transform was computed over.
    n_padded: usize,
    /// Retained `(heap index, coefficient)` pairs, sorted by index.
    coeffs: Vec<(usize, f64)>,
}

impl WaveletSynopsis {
    /// Builds the synopsis of `data` keeping the `b` highest-energy
    /// coefficients. `O(n log n)` for the transform + selection.
    ///
    /// Note the transform is taken over the zero-padded sequence, so for
    /// non-power-of-two lengths some budget may be attracted by the
    /// artificial edge — the standard behaviour of this baseline.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` and `data` is non-empty.
    #[must_use]
    pub fn top_b(data: &[f64], b: usize) -> Self {
        if data.is_empty() {
            return Self {
                n: 0,
                n_padded: 0,
                coeffs: Vec::new(),
            };
        }
        Self::from_dense(&haar::forward(data), data.len(), b)
    }

    /// Builds the synopsis from an already-computed dense coefficient array
    /// (error-tree heap layout, power-of-two length) over an original
    /// domain of `n` values. Used by
    /// [`crate::DynamicWavelet`] to extract synopses without re-running the
    /// transform.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` with `n > 0`, `n` exceeds the padded length, or
    /// the padded length is not a power of two.
    #[must_use]
    pub fn from_dense(full: &[f64], n: usize, b: usize) -> Self {
        if n == 0 {
            return Self {
                n: 0,
                n_padded: 0,
                coeffs: Vec::new(),
            };
        }
        assert!(b > 0, "need at least one coefficient for non-empty data");
        assert!(
            full.len().is_power_of_two(),
            "coefficient array must be power-of-two sized"
        );
        assert!(n <= full.len(), "domain exceeds the coefficient array");
        let n_padded = full.len();
        let mut ranked: Vec<(usize, f64)> = full
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c != 0.0)
            .collect();
        ranked.sort_by(|a, b| {
            let wa = weight(a.0, a.1, n_padded);
            let wb = weight(b.0, b.1, n_padded);
            wb.partial_cmp(&wa)
                .expect("weights are finite")
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(b);
        ranked.sort_by_key(|&(k, _)| k);
        Self {
            n,
            n_padded,
            coeffs: ranked,
        }
    }

    /// Number of retained coefficients (may be below `b` when the sequence
    /// has fewer non-zero coefficients).
    #[must_use]
    pub fn num_coefficients(&self) -> usize {
        self.coeffs.len()
    }

    /// The retained `(heap index, value)` pairs, sorted by index.
    #[must_use]
    pub fn coefficients(&self) -> &[(usize, f64)] {
        &self.coeffs
    }

    /// Reconstructs the full approximated sequence (length `n`).
    #[must_use]
    pub fn reconstruct(&self) -> Vec<f64> {
        if self.n == 0 {
            return Vec::new();
        }
        let mut dense = vec![0.0; self.n_padded];
        for &(k, c) in &self.coeffs {
            dense[k] = c;
        }
        let mut full = haar::inverse(&dense);
        full.truncate(self.n);
        full
    }

    /// Total SSE of the synopsis against the raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n`.
    #[must_use]
    pub fn sse(&self, data: &[f64]) -> f64 {
        streamhist_core::sum_squared_error(data, &self.reconstruct())
    }
}

/// MVW selection weight: sqrt of the L2 energy a coefficient carries.
fn weight(k: usize, c: f64, n_padded: usize) -> f64 {
    c.abs() * (haar::support(k, n_padded) as f64).sqrt()
}

/// Coefficient merge + re-threshold: the Haar transform is linear, so
/// summing the retained coefficients index-wise yields a synopsis of the
/// **superimposed** signal `x + y` over the shared index domain (the
/// aggregation-tree use: per-shard frequency signals over one value domain
/// add into the fleet signal). After the sum the set is re-thresholded to
/// the larger operand's retained count by MVW energy weight; the
/// deterministic energy-then-index ordering makes the merge exactly
/// commutative (DESIGN.md §7). Both synopses must cover identical domains
/// (`n` and padded length).
impl MergeableSummary for WaveletSynopsis {
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
        if self.n != other.n || self.n_padded != other.n_padded {
            return Err(StreamhistError::InvalidParameter {
                param: "n",
                message: "merge requires identical signal domains",
            });
        }
        let budget = self.coeffs.len().max(other.coeffs.len());
        let (a, b) = (&self.coeffs, &other.coeffs);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&(ka, ca)), Some(&(kb, cb))) => {
                    if ka == kb {
                        i += 1;
                        j += 1;
                        (ka, ca + cb)
                    } else if ka < kb {
                        i += 1;
                        (ka, ca)
                    } else {
                        j += 1;
                        (kb, cb)
                    }
                }
                (Some(&(ka, ca)), None) => {
                    i += 1;
                    (ka, ca)
                }
                (None, Some(&(kb, cb))) => {
                    j += 1;
                    (kb, cb)
                }
                (None, None) => unreachable!("loop condition"),
            };
            if next.1 != 0.0 {
                merged.push(next);
            }
        }
        if merged.len() > budget {
            let n_padded = self.n_padded;
            merged.sort_by(|x, y| {
                let wx = weight(x.0, x.1, n_padded);
                let wy = weight(y.0, y.1, n_padded);
                wy.partial_cmp(&wx)
                    .expect("weights are finite")
                    .then(x.0.cmp(&y.0))
            });
            merged.truncate(budget);
            merged.sort_by_key(|&(k, _)| k);
        }
        self.coeffs = merged;
        Ok(())
    }
}

impl SequenceSummary for WaveletSynopsis {
    fn summary_len(&self) -> usize {
        self.n
    }

    fn estimate_point(&self, idx: usize) -> f64 {
        assert!(idx < self.n, "index out of domain");
        haar::point_from_sparse(&self.coeffs, self.n_padded, idx)
    }

    fn estimate_range_sum(&self, start: usize, end: usize) -> f64 {
        assert!(start <= end && end < self.n, "range out of domain");
        self.coeffs
            .iter()
            .map(|&(k, c)| haar::range_sum_contribution(k, c, self.n_padded, start, end))
            .sum()
    }
}

/// The paper's §5.1 wavelet baseline: a sliding window whose synopsis is
/// "computed again from scratch every time a new point enters and the
/// temporally oldest point leaves the buffer". Pushes are `O(1)`;
/// [`synopsis`](Self::synopsis) costs `O(n log n)`.
#[derive(Debug)]
pub struct SlidingWindowWavelet {
    capacity: usize,
    b: usize,
    window: VecDeque<f64>,
}

impl SlidingWindowWavelet {
    /// Creates an empty window of `capacity` points keeping `b`
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `b == 0`.
    #[must_use]
    pub fn new(capacity: usize, b: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(b > 0, "need at least one coefficient");
        Self {
            capacity,
            b,
            window: VecDeque::with_capacity(capacity),
        }
    }

    /// Window capacity `n`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Coefficient budget `B`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// Number of buffered points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The raw window contents, oldest first.
    #[must_use]
    pub fn window(&self) -> Vec<f64> {
        self.window.iter().copied().collect()
    }

    /// Consumes one point, evicting the oldest when full, or rejects it if
    /// it is not finite.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::NonFiniteValue`] if `v` is NaN or
    /// infinite.
    pub fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(v);
        Ok(())
    }

    /// Consumes one point, evicting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite.
    pub fn push(&mut self, v: f64) {
        if let Err(e) = self.try_push(v) {
            panic!("{e}");
        }
    }

    /// Restores the window to empty, keeping the configuration.
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Recomputes the top-`B` synopsis of the current window from scratch.
    #[must_use]
    pub fn synopsis(&self) -> WaveletSynopsis {
        WaveletSynopsis::top_b(&self.window(), self.b)
    }

    /// Pushes one point and rebuilds the synopsis.
    #[must_use]
    pub fn push_and_build(&mut self, v: f64) -> WaveletSynopsis {
        self.push(v);
        self.synopsis()
    }
}

impl Checkpoint for SlidingWindowWavelet {
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::SLIDING_WAVELET);
        w.put_usize(self.capacity);
        w.put_usize(self.b);
        w.put_usize(self.window.len());
        for &v in &self.window {
            w.put_f64(v);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        let mut r = FrameReader::open(bytes, tag::SLIDING_WAVELET)?;
        let capacity = r.get_usize()?;
        if capacity == 0 {
            return Err(corrupt("window capacity must be positive"));
        }
        let b = r.get_usize()?;
        if b == 0 {
            return Err(corrupt("need at least one coefficient"));
        }
        let len = r.get_count(8)?;
        if len > capacity {
            return Err(corrupt("more buffered points than capacity"));
        }
        let mut window = VecDeque::with_capacity(capacity);
        for _ in 0..len {
            window.push_back(r.get_f64()?);
        }
        r.finish()?;
        Ok(Self {
            capacity,
            b,
            window,
        })
    }
}

impl StreamSummary for SlidingWindowWavelet {
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        SlidingWindowWavelet::try_push(self, v)
    }

    fn push(&mut self, v: f64) {
        SlidingWindowWavelet::push(self, v);
    }

    /// Window occupancy (`<= capacity`).
    fn len(&self) -> usize {
        SlidingWindowWavelet::len(self)
    }

    fn reset(&mut self) {
        SlidingWindowWavelet::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamhist_core::Query;

    #[test]
    fn sliding_window_stream_summary_rejects_nan_and_resets() {
        let mut w = SlidingWindowWavelet::new(4, 2);
        let out = w.push_batch(&[1.0, f64::NAN, 2.0]);
        assert_eq!((out.accepted, out.rejected), (2, 1));
        assert_eq!(w.window(), vec![1.0, 2.0]);
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 4);
    }

    const DATA: [f64; 8] = [3.0, 7.0, 5.0, 8.0, 2.0, 6.0, 4.0, 9.0];

    #[test]
    fn full_budget_reconstructs_exactly() {
        let s = WaveletSynopsis::top_b(&DATA, 8);
        let r = s.reconstruct();
        for (a, b) in DATA.iter().zip(&r) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(s.sse(&DATA) < 1e-12);
    }

    #[test]
    fn point_estimates_match_reconstruction() {
        for b in 1..=8 {
            let s = WaveletSynopsis::top_b(&DATA, b);
            let r = s.reconstruct();
            for (i, &ri) in r.iter().enumerate() {
                assert!(
                    (s.estimate_point(i) - ri).abs() < 1e-12,
                    "b={b} i={i}: {} vs {ri}",
                    s.estimate_point(i),
                );
            }
        }
    }

    #[test]
    fn range_sums_match_reconstruction() {
        for b in [1, 3, 5, 8] {
            let s = WaveletSynopsis::top_b(&DATA, b);
            let r = s.reconstruct();
            for lo in 0..DATA.len() {
                for hi in lo..DATA.len() {
                    let direct: f64 = r[lo..=hi].iter().sum();
                    let est = s.estimate_range_sum(lo, hi);
                    assert!((direct - est).abs() < 1e-9, "b={b} ({lo},{hi})");
                }
            }
        }
    }

    #[test]
    fn sse_decreases_as_budget_grows() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 13 + 5) % 23) as f64).collect();
        let mut last = f64::INFINITY;
        for b in [1, 2, 4, 8, 16, 32, 64] {
            let sse = WaveletSynopsis::top_b(&data, b).sse(&data);
            assert!(sse <= last + 1e-9, "b={b}: {sse} > {last}");
            last = sse;
        }
        assert!(last < 1e-9, "full budget must be exact");
    }

    #[test]
    fn non_power_of_two_lengths() {
        let data: Vec<f64> = (0..13).map(|i| (i * i % 7) as f64).collect();
        let s = WaveletSynopsis::top_b(&data, 16);
        assert_eq!(s.summary_len(), 13);
        // With the full padded budget, reconstruction of the real region is
        // exact.
        let r = s.reconstruct();
        assert_eq!(r.len(), 13);
        for (a, b) in data.iter().zip(&r) {
            assert!((a - b).abs() < 1e-12);
        }
        // Queries address only the original domain.
        let q = Query::RangeSum { start: 3, end: 12 };
        assert!((q.estimate(&s) - q.exact(&data)).abs() < 1e-9);
    }

    #[test]
    fn constant_sequence_needs_one_coefficient() {
        let data = [6.0; 16];
        let s = WaveletSynopsis::top_b(&data, 1);
        assert_eq!(s.num_coefficients(), 1);
        assert!(s.sse(&data) < 1e-12);
    }

    #[test]
    fn selection_prefers_high_energy_coefficients() {
        // A single big level change at mid-sequence concentrates energy in
        // the top detail coefficient c[1].
        let mut data = vec![0.0; 8];
        for v in data.iter_mut().skip(4) {
            *v = 100.0;
        }
        let s = WaveletSynopsis::top_b(&data, 2);
        let idxs: Vec<usize> = s.coefficients().iter().map(|&(k, _)| k).collect();
        assert!(idxs.contains(&0) && idxs.contains(&1), "kept {idxs:?}");
        assert!(s.sse(&data) < 1e-12);
    }

    #[test]
    fn empty_data() {
        let s = WaveletSynopsis::top_b(&[], 4);
        assert_eq!(s.summary_len(), 0);
        assert!(s.reconstruct().is_empty());
    }

    #[test]
    fn merge_superimposes_signals_exactly_at_full_budget() {
        let x: Vec<f64> = (0..8).map(|i| (i % 3) as f64).collect();
        let y: Vec<f64> = (0..8).map(|i| ((i * 5) % 7) as f64).collect();
        let mut sx = WaveletSynopsis::top_b(&x, 8);
        let sy = WaveletSynopsis::top_b(&y, 8);
        sx.merge_from(&sy).expect("same domain");
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        for (got, want) in sx.reconstruct().iter().zip(&sum) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn merge_is_commutative_and_rethresholds() {
        let x: Vec<f64> = (0..16).map(|i| ((i * 13 + 2) % 11) as f64).collect();
        let y: Vec<f64> = (0..16).map(|i| ((i * 7 + 5) % 9) as f64).collect();
        let a = WaveletSynopsis::top_b(&x, 4);
        let b = WaveletSynopsis::top_b(&y, 6);
        let mut ab = a.clone();
        ab.merge_from(&b).expect("same domain");
        let mut ba = b.clone();
        ba.merge_from(&a).expect("same domain");
        assert_eq!(ab.coefficients(), ba.coefficients());
        // Budget after merge = the larger operand's retained count.
        assert!(ab.num_coefficients() <= 6);
    }

    #[test]
    fn merge_cancels_opposite_coefficients() {
        let x = [4.0; 8];
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        let mut sx = WaveletSynopsis::top_b(&x, 2);
        let sn = WaveletSynopsis::top_b(&neg, 2);
        sx.merge_from(&sn).expect("same domain");
        // x + (-x) = 0: every summed coefficient cancels away.
        assert_eq!(sx.num_coefficients(), 0);
        assert!(sx.reconstruct().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn merge_rejects_mismatched_domains() {
        let mut a = WaveletSynopsis::top_b(&DATA, 4);
        let shorter = WaveletSynopsis::top_b(&DATA[..4], 4);
        let err = a.merge_from(&shorter).expect_err("domain mismatch");
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter { param: "n", .. }
        ));
        assert_eq!(a.summary_len(), 8);
    }

    #[test]
    fn sliding_window_recomputes_per_build() {
        let mut w = SlidingWindowWavelet::new(8, 3);
        for i in 0..20 {
            let s = w.push_and_build(i as f64);
            assert_eq!(s.summary_len(), w.len());
            assert!(s.num_coefficients() <= 3);
        }
        assert_eq!(w.window().len(), 8);
        assert_eq!(w.window()[0], 12.0);
    }

    #[test]
    fn window_with_generous_budget_is_near_exact() {
        let mut w = SlidingWindowWavelet::new(8, 8);
        for v in DATA {
            w.push(v);
        }
        assert!(w.synopsis().sse(&w.window()) < 1e-12);
    }
}
