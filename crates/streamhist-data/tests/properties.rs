//! Property tests for the data generators: determinism per seed, value
//! constraints, and workload validity.

use proptest::prelude::*;
use streamhist_data::{
    collect, integerize, utilization_trace, Ar1, BurstyOnOff, Diurnal, LevelShift, RandomWalk,
    SpikeTrain, UniformNoise, WorkloadGen, Zipfian,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_generator_is_deterministic_per_seed(seed in 0u64..10_000, len in 1usize..200) {
        macro_rules! check {
            ($make:expr) => {{
                let a = collect($make, len);
                let b = collect($make, len);
                prop_assert_eq!(a, b);
            }};
        }
        check!(RandomWalk::new(seed, 0.0, 0.1, 1.0));
        check!(Ar1::new(seed, 0.9, 10.0, 2.0));
        check!(BurstyOnOff::new(seed, 0.05, 0.2, 5.0, 1.5));
        check!(LevelShift::new(seed, 0.05, 3.0));
        check!(Diurnal::new(seed, 10.0, 5.0, 32, 1.0));
        check!(SpikeTrain::new(seed, 0.1, 7.0));
        check!(UniformNoise::new(seed, -1.0, 1.0));
        check!(Zipfian::new(seed, 50, 1.0));
    }

    #[test]
    fn generators_produce_finite_values(seed in 0u64..10_000) {
        let len = 500;
        let streams: Vec<Vec<f64>> = vec![
            collect(RandomWalk::new(seed, 0.0, 0.5, 10.0), len),
            collect(Ar1::new(seed, -0.8, 0.0, 100.0), len),
            collect(BurstyOnOff::new(seed, 0.5, 0.5, 1e6, 0.8), len),
            collect(Diurnal::new(seed, 0.0, 1e4, 7, 1e3), len),
            collect(SpikeTrain::new(seed, 0.9, 1e5), len),
            utilization_trace(len, seed),
        ];
        for s in streams {
            prop_assert!(s.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn zipfian_stays_in_universe(seed in 0u64..10_000, universe in 1usize..200) {
        let v = collect(Zipfian::new(seed, universe, 0.8), 300);
        prop_assert!(v.iter().all(|&x| x >= 1.0 && x <= universe as f64));
        prop_assert!(v.iter().all(|&x| x == x.trunc()));
    }

    #[test]
    fn uniform_respects_bounds(seed in 0u64..10_000, lo in -100i64..0, hi in 1i64..100) {
        let (lo, hi) = (lo as f64, hi as f64);
        let v = collect(UniformNoise::new(seed, lo, hi), 500);
        prop_assert!(v.iter().all(|&x| x >= lo && x < hi));
    }

    #[test]
    fn integerize_output_is_integral_and_clamped(
        vals in prop::collection::vec(-1e6f64..1e6, 1..100),
        lo in -100i64..0,
        hi in 1i64..100,
    ) {
        let (lo, hi) = (lo as f64, hi as f64);
        let out = integerize(vals, lo, hi);
        for v in out {
            prop_assert!(v >= lo && v <= hi);
            prop_assert_eq!(v, v.trunc());
        }
    }

    #[test]
    fn workload_queries_are_valid(seed in 0u64..10_000, n in 1usize..500) {
        let mut g = WorkloadGen::new(seed, n);
        for q in g.mixed(200) {
            prop_assert!(q.max_index() < n, "{q:?} out of domain {n}");
            prop_assert!(q.span() >= 1);
        }
    }

    #[test]
    fn workload_respects_max_span(seed in 0u64..10_000, n in 2usize..500, cap in 1usize..50) {
        let mut g = WorkloadGen::with_max_span(seed, n, cap);
        for q in g.range_sums(200) {
            prop_assert!(q.span() <= cap.min(n));
        }
    }
}
