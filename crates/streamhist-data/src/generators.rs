//! Seeded synthetic stream processes.
//!
//! Each process is an infinite iterator over `f64` values; see the crate
//! docs for how they map onto the paper's (proprietary) evaluation traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a standard-normal variate via the Box–Muller transform.
///
/// `rand` 0.8 ships only uniform primitives; this keeps the workspace inside
/// the allowed dependency set.
fn gauss(rng: &mut StdRng) -> f64 {
    // Guard u1 away from 0 so ln() is finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Collects the first `len` values of a generator into a vector.
#[must_use]
pub fn collect<I: Iterator<Item = f64>>(gen: I, len: usize) -> Vec<f64> {
    gen.take(len).collect()
}

/// Rounds every value to the nearest integer and clamps into `[lo, hi]`.
///
/// The paper assumes "each value x_i is an integer drawn from some bounded
/// range" (§3); this converts any real-valued process into that model.
#[must_use]
pub fn integerize(mut data: Vec<f64>, lo: f64, hi: f64) -> Vec<f64> {
    for v in &mut data {
        *v = v.round().clamp(lo, hi);
    }
    data
}

/// Gaussian random walk with drift: `x_{t+1} = x_t + drift + sigma·N(0,1)`.
///
/// Models slowly-wandering aggregates (e.g. cumulative byte counters,
/// stock-like sequences mentioned in the paper's introduction).
#[derive(Debug)]
pub struct RandomWalk {
    rng: StdRng,
    level: f64,
    drift: f64,
    sigma: f64,
}

impl RandomWalk {
    /// Creates a walk starting at `start`.
    #[must_use]
    pub fn new(seed: u64, start: f64, drift: f64, sigma: f64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            level: start,
            drift,
            sigma,
        }
    }
}

impl Iterator for RandomWalk {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let out = self.level;
        self.level += self.drift + self.sigma * gauss(&mut self.rng);
        Some(out)
    }
}

/// Stationary AR(1) process: `x_{t+1} = mean + phi·(x_t − mean) + sigma·N(0,1)`.
///
/// Models short-range-correlated utilization fluctuations.
#[derive(Debug)]
pub struct Ar1 {
    rng: StdRng,
    phi: f64,
    mean: f64,
    sigma: f64,
    state: f64,
}

impl Ar1 {
    /// Creates the process started at its mean.
    ///
    /// # Panics
    ///
    /// Panics unless `|phi| < 1` (stationarity).
    #[must_use]
    pub fn new(seed: u64, phi: f64, mean: f64, sigma: f64) -> Self {
        assert!(phi.abs() < 1.0, "AR(1) requires |phi| < 1 for stationarity");
        Self {
            rng: StdRng::seed_from_u64(seed),
            phi,
            mean,
            sigma,
            state: mean,
        }
    }
}

impl Iterator for Ar1 {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let out = self.state;
        self.state =
            self.mean + self.phi * (self.state - self.mean) + self.sigma * gauss(&mut self.rng);
        Some(out)
    }
}

/// Two-state on/off burst process with Pareto-tailed burst magnitudes.
///
/// Off emits 0; transitions off→on with probability `p_on` per step and
/// on→off with probability `p_off`. While on, emits `magnitude · P` where
/// `P` is Pareto(`alpha`)-distributed (heavy tail for small `alpha`),
/// resampled per burst. Models the self-similar bursts characteristic of
/// network traffic.
#[derive(Debug)]
pub struct BurstyOnOff {
    rng: StdRng,
    p_on: f64,
    p_off: f64,
    magnitude: f64,
    alpha: f64,
    current: Option<f64>,
}

impl BurstyOnOff {
    /// Creates the process in the off state.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are outside `[0, 1]` or `alpha <= 0`.
    #[must_use]
    pub fn new(seed: u64, p_on: f64, p_off: f64, magnitude: f64, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_on) && (0.0..=1.0).contains(&p_off));
        assert!(alpha > 0.0, "Pareto shape must be positive");
        Self {
            rng: StdRng::seed_from_u64(seed),
            p_on,
            p_off,
            magnitude,
            alpha,
            current: None,
        }
    }

    fn pareto(&mut self) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        u.powf(-1.0 / self.alpha)
    }
}

impl Iterator for BurstyOnOff {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        match self.current {
            None => {
                if self.rng.gen::<f64>() < self.p_on {
                    let level = self.magnitude * self.pareto();
                    self.current = Some(level);
                    Some(level)
                } else {
                    Some(0.0)
                }
            }
            Some(level) => {
                if self.rng.gen::<f64>() < self.p_off {
                    self.current = None;
                    Some(0.0)
                } else {
                    Some(level)
                }
            }
        }
    }
}

/// Piecewise-constant regime process: holds a level, and with probability
/// `p_shift` per step jumps to a new level `± scale·N(0,1)`.
///
/// Models capacity reconfigurations / routing changes — the "shifting a
/// function downwards" phenomenon the paper's §4.4 uses to motivate the
/// fixed-window algorithm.
#[derive(Debug)]
pub struct LevelShift {
    rng: StdRng,
    p_shift: f64,
    scale: f64,
    level: f64,
}

impl LevelShift {
    /// Creates the process at level 0.
    ///
    /// # Panics
    ///
    /// Panics if `p_shift` is outside `[0, 1]`.
    #[must_use]
    pub fn new(seed: u64, p_shift: f64, scale: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_shift));
        Self {
            rng: StdRng::seed_from_u64(seed),
            p_shift,
            scale,
            level: 0.0,
        }
    }
}

impl Iterator for LevelShift {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.rng.gen::<f64>() < self.p_shift {
            self.level += self.scale * gauss(&mut self.rng);
        }
        Some(self.level)
    }
}

/// Sinusoidal baseline with Gaussian noise:
/// `base + amplitude·sin(2π t / period) + noise·N(0,1)`.
///
/// Models the diurnal cycle of service utilization.
#[derive(Debug)]
pub struct Diurnal {
    rng: StdRng,
    base: f64,
    amplitude: f64,
    period: usize,
    noise: f64,
    t: usize,
}

impl Diurnal {
    /// Creates the process at phase 0.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    #[must_use]
    pub fn new(seed: u64, base: f64, amplitude: f64, period: usize, noise: f64) -> Self {
        assert!(period > 0, "period must be positive");
        Self {
            rng: StdRng::seed_from_u64(seed),
            base,
            amplitude,
            period,
            noise,
            t: 0,
        }
    }
}

impl Iterator for Diurnal {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let phase = std::f64::consts::TAU * (self.t % self.period) as f64 / self.period as f64;
        self.t += 1;
        Some(self.base + self.amplitude * phase.sin() + self.noise * gauss(&mut self.rng))
    }
}

/// Sparse spike process: emits 0 except with probability `p_spike`, when it
/// emits `height·(1 + |N(0,1)|)`. Models fault-count sequences.
#[derive(Debug)]
pub struct SpikeTrain {
    rng: StdRng,
    p_spike: f64,
    height: f64,
}

impl SpikeTrain {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics if `p_spike` is outside `[0, 1]`.
    #[must_use]
    pub fn new(seed: u64, p_spike: f64, height: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_spike));
        Self {
            rng: StdRng::seed_from_u64(seed),
            p_spike,
            height,
        }
    }
}

impl Iterator for SpikeTrain {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.rng.gen::<f64>() < self.p_spike {
            Some(self.height * (1.0 + gauss(&mut self.rng).abs()))
        } else {
            Some(0.0)
        }
    }
}

/// Independent uniform noise on `[lo, hi)` — the adversarial "no structure"
/// case where every histogram method degrades gracefully.
#[derive(Debug)]
pub struct UniformNoise {
    rng: StdRng,
    lo: f64,
    hi: f64,
}

impl UniformNoise {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn new(seed: u64, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "need lo < hi");
        Self {
            rng: StdRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }
}

impl Iterator for UniformNoise {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        Some(self.rng.gen_range(self.lo..self.hi))
    }
}

/// Zipfian draws over the integers `1..=universe` with skew `theta`
/// (`theta = 0` is uniform; larger is more skewed). Used by the
/// value-domain (quantile/equi-depth) experiments.
///
/// Uses inverse-CDF sampling over a precomputed table, `O(log universe)`
/// per draw.
#[derive(Debug)]
pub struct Zipfian {
    rng: StdRng,
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Creates the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0` or `theta < 0`.
    #[must_use]
    pub fn new(seed: u64, universe: usize, theta: f64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(theta >= 0.0, "skew must be non-negative");
        let mut cdf = Vec::with_capacity(universe);
        let mut acc = 0.0;
        for k in 1..=universe {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
            cdf,
        }
    }
}

impl Iterator for Zipfian {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let u: f64 = self.rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        Some((idx.min(self.cdf.len() - 1) + 1) as f64)
    }
}

/// Pointwise sum of several component processes.
///
/// The crate-level [`crate::utilization_trace`] builds the default trace as
/// `Diurnal + Ar1 + BurstyOnOff + LevelShift`.
pub struct Mixture {
    parts: Vec<Box<dyn Iterator<Item = f64>>>,
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl Mixture {
    /// Creates the superposition.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    #[must_use]
    pub fn new(parts: Vec<Box<dyn Iterator<Item = f64>>>) -> Self {
        assert!(!parts.is_empty(), "mixture needs at least one component");
        Self { parts }
    }
}

impl Iterator for Mixture {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.parts.iter_mut().map(|p| p.next()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = collect(RandomWalk::new(1, 0.0, 0.1, 1.0), 100);
        let b = collect(RandomWalk::new(1, 0.0, 0.1, 1.0), 100);
        assert_eq!(a, b);
        let c = collect(RandomWalk::new(2, 0.0, 0.1, 1.0), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn random_walk_starts_at_start() {
        let v = collect(RandomWalk::new(3, 42.0, 0.0, 1.0), 1);
        assert_eq!(v[0], 42.0);
    }

    #[test]
    fn ar1_stays_near_mean() {
        let v = collect(Ar1::new(5, 0.5, 100.0, 1.0), 10_000);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            (mean - 100.0).abs() < 2.0,
            "empirical mean {mean} far from 100"
        );
    }

    #[test]
    #[should_panic(expected = "stationarity")]
    fn ar1_rejects_nonstationary_phi() {
        let _ = Ar1::new(0, 1.5, 0.0, 1.0);
    }

    #[test]
    fn bursty_emits_zero_when_off_and_constant_within_burst() {
        let v = collect(BurstyOnOff::new(7, 0.05, 0.2, 10.0, 1.5), 5000);
        assert!(v.contains(&0.0), "should spend time off");
        assert!(v.iter().any(|&x| x > 0.0), "should burst");
        // Within a burst the level is constant: consecutive positive values
        // that started together must be equal.
        let mut saw_constant_run = false;
        for w in v.windows(2) {
            if w[0] > 0.0 && w[1] > 0.0 {
                assert_eq!(w[0], w[1], "burst level must stay constant within a burst");
                saw_constant_run = true;
            }
        }
        assert!(
            saw_constant_run,
            "expected at least one burst of length >= 2"
        );
    }

    #[test]
    fn level_shift_is_piecewise_constant() {
        let v = collect(LevelShift::new(11, 0.05, 10.0), 2000);
        let distinct: std::collections::BTreeSet<u64> = v.iter().map(|x| x.to_bits()).collect();
        assert!(distinct.len() > 1, "should shift at least once");
        assert!(
            distinct.len() < 300,
            "should hold levels, not change every step"
        );
    }

    #[test]
    fn diurnal_oscillates_around_base() {
        let v = collect(Diurnal::new(13, 100.0, 50.0, 64, 0.0), 64);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 100.0).abs() < 1.0);
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 140.0, "should reach near base+amplitude, got {max}");
    }

    #[test]
    fn spike_train_is_mostly_zero() {
        let v = collect(SpikeTrain::new(17, 0.01, 100.0), 10_000);
        let zeros = v.iter().filter(|&&x| x == 0.0).count();
        assert!(zeros > 9_500, "expected mostly zeros, got {zeros}");
        assert!(
            v.iter().any(|&x| x >= 100.0),
            "spikes must reach the height"
        );
    }

    #[test]
    fn uniform_noise_respects_bounds() {
        let v = collect(UniformNoise::new(19, -2.0, 3.0), 1000);
        assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn zipfian_skew_prefers_small_values() {
        let v = collect(Zipfian::new(23, 100, 1.2), 20_000);
        assert!(v.iter().all(|&x| (1.0..=100.0).contains(&x)));
        let ones = v.iter().filter(|&&x| x == 1.0).count();
        let hundreds = v.iter().filter(|&&x| x == 100.0).count();
        assert!(ones > 10 * (hundreds + 1), "skew should favour rank 1");
    }

    #[test]
    fn zipfian_theta_zero_is_roughly_uniform() {
        let v = collect(Zipfian::new(29, 10, 0.0), 50_000);
        for k in 1..=10 {
            let cnt = v.iter().filter(|&&x| x == k as f64).count();
            assert!(
                (3_500..6_500).contains(&cnt),
                "value {k} count {cnt} not near uniform 5000"
            );
        }
    }

    #[test]
    fn mixture_sums_components() {
        let m = Mixture::new(vec![
            Box::new(std::iter::repeat(2.0)),
            Box::new(std::iter::repeat(3.0)),
        ]);
        assert_eq!(collect(m, 4), vec![5.0; 4]);
    }

    #[test]
    fn integerize_rounds_and_clamps() {
        let out = integerize(vec![1.4, 1.6, -3.0, 99.0], 0.0, 50.0);
        assert_eq!(out, vec![1.0, 2.0, 0.0, 50.0]);
    }
}
