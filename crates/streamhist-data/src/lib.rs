//! # streamhist-data
//!
//! Synthetic data-stream generators and query-workload generators for the
//! `streamhist` workspace.
//!
//! The paper (Guha & Koudas, ICDE 2002) evaluates on "real data sets
//! extracted from AT&T data warehouses, representing utilization information
//! of one of the services provided by the company" — proprietary traces we
//! cannot ship. This crate provides the substitution documented in
//! `DESIGN.md` §2: seeded synthetic processes spanning the distributional
//! shapes that drive the paper's qualitative results — smooth locally-
//! correlated segments ([`RandomWalk`], [`Ar1`]), heavy-tailed bursts
//! ([`BurstyOnOff`], [`SpikeTrain`]), regime changes ([`LevelShift`]), and
//! diurnal periodicity ([`Diurnal`]) — plus [`Mixture`] superpositions used
//! as the default "utilization trace" stand-in.
//!
//! Every generator is an infinite `Iterator<Item = f64>` driven by a
//! deterministic [`rand::rngs::StdRng`] seed, so every experiment in the
//! workspace is exactly reproducible.
//!
//! [`workload::WorkloadGen`] implements the paper's §5.1 query protocol:
//! "the starting points as well as the span of the queries (size of the
//! requested aggregation range) is chosen uniformly and independently".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod workload;

pub use generators::{
    collect, integerize, Ar1, BurstyOnOff, Diurnal, LevelShift, Mixture, RandomWalk, SpikeTrain,
    UniformNoise, Zipfian,
};
pub use workload::WorkloadGen;

/// Builds the workspace's default stand-in for the paper's AT&T utilization
/// trace: a diurnal baseline plus an AR(1) fluctuation plus heavy-tailed
/// bursts plus occasional level shifts, integerized to non-negative values.
///
/// The same `seed` always yields the same trace.
#[must_use]
pub fn utilization_trace(len: usize, seed: u64) -> Vec<f64> {
    let diurnal = Diurnal::new(seed ^ 0x9e37_79b9, 2000.0, 800.0, 4096, 50.0);
    let ar = Ar1::new(seed ^ 0x7f4a_7c15, 0.95, 0.0, 120.0);
    let bursts = BurstyOnOff::new(seed ^ 0x1656_67b1, 0.002, 0.05, 1500.0, 1.3);
    let shifts = LevelShift::new(seed ^ 0xcafe_babe, 0.0005, 600.0);
    let mixed = Mixture::new(vec![
        Box::new(diurnal),
        Box::new(ar),
        Box::new(bursts),
        Box::new(shifts),
    ]);
    integerize(collect(mixed, len), 0.0, f64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_trace_is_deterministic() {
        let a = utilization_trace(512, 7);
        let b = utilization_trace(512, 7);
        assert_eq!(a, b);
        let c = utilization_trace(512, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn utilization_trace_is_nonnegative_integers() {
        let t = utilization_trace(2048, 42);
        assert_eq!(t.len(), 2048);
        for &v in &t {
            assert!(v >= 0.0);
            assert_eq!(v, v.trunc());
        }
    }

    #[test]
    fn utilization_trace_has_variation() {
        let t = utilization_trace(4096, 1);
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let var = t.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / t.len() as f64;
        assert!(var > 0.0, "trace must not be constant");
        let max = t.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max > mean * 1.2,
            "trace should contain bursts above the mean"
        );
    }
}
