//! Random query-workload generation (the paper's §5.1 protocol).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamhist_core::Query;

/// Generates random queries over a domain of `n` indices, with "the starting
/// points as well as the span of the queries ... chosen uniformly and
/// independently" (paper §5.1).
///
/// A query is built by drawing `start ~ U[0, n)` and `span ~ U[1, max_span]`,
/// then clipping the end to the domain.
#[derive(Debug)]
pub struct WorkloadGen {
    rng: StdRng,
    domain_len: usize,
    max_span: usize,
}

impl WorkloadGen {
    /// Creates a generator over `[0, domain_len)` with spans up to the whole
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics if `domain_len == 0`.
    #[must_use]
    pub fn new(seed: u64, domain_len: usize) -> Self {
        Self::with_max_span(seed, domain_len, domain_len)
    }

    /// Creates a generator with an explicit maximum span.
    ///
    /// # Panics
    ///
    /// Panics if `domain_len == 0` or `max_span == 0`.
    #[must_use]
    pub fn with_max_span(seed: u64, domain_len: usize, max_span: usize) -> Self {
        assert!(domain_len > 0, "domain must be non-empty");
        assert!(max_span > 0, "max span must be positive");
        Self {
            rng: StdRng::seed_from_u64(seed),
            domain_len,
            max_span: max_span.min(domain_len),
        }
    }

    fn range(&mut self) -> (usize, usize) {
        let start = self.rng.gen_range(0..self.domain_len);
        let span = self.rng.gen_range(1..=self.max_span);
        let end = (start + span - 1).min(self.domain_len - 1);
        (start, end)
    }

    /// Draws one random range-sum query.
    pub fn range_sum(&mut self) -> Query {
        let (start, end) = self.range();
        Query::RangeSum { start, end }
    }

    /// Draws one random range-average query.
    pub fn range_avg(&mut self) -> Query {
        let (start, end) = self.range();
        Query::RangeAvg { start, end }
    }

    /// Draws one random point query.
    pub fn point(&mut self) -> Query {
        Query::Point {
            idx: self.rng.gen_range(0..self.domain_len),
        }
    }

    /// Draws a batch of `count` range-sum queries — the paper's evaluation
    /// workload.
    pub fn range_sums(&mut self, count: usize) -> Vec<Query> {
        (0..count).map(|_| self.range_sum()).collect()
    }

    /// Draws a mixed batch: one third each of point, range-sum and
    /// range-average queries (rounded in that priority order).
    pub fn mixed(&mut self, count: usize) -> Vec<Query> {
        (0..count)
            .map(|i| match i % 3 {
                0 => self.range_sum(),
                1 => self.range_avg(),
                _ => self.point(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_stay_in_domain() {
        let mut g = WorkloadGen::new(1, 100);
        for _ in 0..1000 {
            let q = g.range_sum();
            assert!(q.max_index() < 100, "{q:?}");
            assert!(q.span() >= 1);
        }
    }

    #[test]
    fn max_span_is_respected() {
        let mut g = WorkloadGen::with_max_span(2, 1000, 10);
        for _ in 0..1000 {
            assert!(g.range_sum().span() <= 10);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = WorkloadGen::new(9, 64).range_sums(50);
        let b: Vec<_> = WorkloadGen::new(9, 64).range_sums(50);
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_contains_all_kinds() {
        let qs = WorkloadGen::new(3, 50).mixed(30);
        assert!(qs.iter().any(|q| matches!(q, Query::Point { .. })));
        assert!(qs.iter().any(|q| matches!(q, Query::RangeSum { .. })));
        assert!(qs.iter().any(|q| matches!(q, Query::RangeAvg { .. })));
    }

    #[test]
    fn singleton_domain_works() {
        let mut g = WorkloadGen::new(4, 1);
        for _ in 0..10 {
            let q = g.range_sum();
            assert_eq!(q, Query::RangeSum { start: 0, end: 0 });
        }
    }

    #[test]
    fn starts_cover_the_domain() {
        let mut g = WorkloadGen::new(5, 8);
        let mut seen = [false; 8];
        for _ in 0..500 {
            if let Query::RangeSum { start, .. } = g.range_sum() {
                seen[start] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform starts should hit every index"
        );
    }
}
