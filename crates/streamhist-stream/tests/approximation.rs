//! The core claim of the reproduced paper, as executable properties:
//! both streaming algorithms produce histograms whose SSE is within a
//! `(1+ε)` factor of the exact V-optimal DP — the agglomerative algorithm
//! for every stream prefix, and the fixed-window algorithm for every window
//! position of a sliding stream.

use proptest::prelude::*;
use streamhist_optimal::{brute_force_optimal, optimal_histogram, optimal_sse};
use streamhist_stream::{
    approx_histogram, AgglomerativeHistogram, FixedWindowHistogram, NaiveSlidingWindow,
};

/// Approximation-ratio check with a small absolute slack for the
/// all-but-constant regions where both SSEs are ~0 and FP noise dominates.
fn within_factor(approx: f64, opt: f64, factor: f64) -> bool {
    approx <= factor * opt + 1e-6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Agglomerative SSE <= (1+eps) * optimal SSE on every prefix.
    #[test]
    fn agglomerative_is_eps_approximate(
        data in prop::collection::vec(0..64i64, 1..120),
        b in 1usize..6,
        eps in prop::sample::select(vec![0.05f64, 0.1, 0.5, 1.0]),
    ) {
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let mut agg = AgglomerativeHistogram::new(b, eps);
        for (i, &v) in data.iter().enumerate() {
            agg.push(v);
            let prefix = &data[..=i];
            let approx = agg.histogram().sse(prefix);
            let opt = optimal_sse(prefix, b);
            prop_assert!(
                within_factor(approx, opt, 1.0 + eps),
                "prefix len {}: approx {approx} vs opt {opt} (b={b}, eps={eps})",
                i + 1
            );
        }
    }

    /// Fixed-window SSE <= (1+eps) * optimal SSE of the window content, at
    /// every slide position.
    #[test]
    fn fixed_window_is_eps_approximate(
        data in prop::collection::vec(0..64i64, 1..150),
        cap in 2usize..40,
        b in 1usize..5,
        eps in prop::sample::select(vec![0.1f64, 0.5, 1.0]),
    ) {
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let mut fw = FixedWindowHistogram::new(cap, b, eps);
        for (i, &v) in data.iter().enumerate() {
            let h = fw.push_and_build(v);
            let lo = (i + 1).saturating_sub(cap);
            let window = &data[lo..=i];
            let approx = h.sse(window);
            let opt = optimal_sse(window, b);
            prop_assert!(
                within_factor(approx, opt, 1.0 + eps),
                "t={i}: approx {approx} vs opt {opt} (cap={cap}, b={b}, eps={eps})"
            );
        }
    }

    /// The offline Problem-2 construction obeys the same guarantee and
    /// produces a structurally valid histogram.
    #[test]
    fn offline_approx_histogram_guarantee(
        data in prop::collection::vec(-32..32i64, 1..100),
        b in 1usize..6,
    ) {
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let eps = 0.1;
        let h = approx_histogram(&data, b, eps);
        prop_assert!(h.num_buckets() <= b);
        prop_assert_eq!(h.domain_len(), data.len());
        let opt = optimal_sse(&data, b);
        prop_assert!(within_factor(h.sse(&data), opt, 1.0 + eps));
    }

    /// The DP agrees with brute force on small inputs (cross-validates the
    /// reference the streaming guarantees are measured against).
    #[test]
    fn dp_matches_brute_force(
        data in prop::collection::vec(-10..10i64, 1..11),
        b in 1usize..5,
    ) {
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let dp = optimal_histogram(&data, b);
        let brute = brute_force_optimal(&data, b);
        prop_assert!((dp.sse(&data) - brute.sse(&data)).abs() < 1e-9,
            "dp {} vs brute {}", dp.sse(&data), brute.sse(&data));
    }

    /// The naive per-window DP baseline is exactly optimal — and therefore
    /// never beaten by more than the guarantee by the fixed-window method.
    #[test]
    fn naive_sliding_window_is_exact(
        data in prop::collection::vec(0..32i64, 1..60),
        cap in 2usize..16,
        b in 1usize..4,
    ) {
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let mut w = NaiveSlidingWindow::new(cap, b);
        for (i, &v) in data.iter().enumerate() {
            let h = w.push_and_build(v);
            let lo = (i + 1).saturating_sub(cap);
            let window = &data[lo..=i];
            prop_assert!((h.sse(window) - optimal_sse(window, b)).abs() < 1e-9);
        }
    }

    /// Structural invariants hold for every histogram the streaming
    /// algorithms emit: buckets tile the domain, heights are bucket means.
    #[test]
    fn emitted_histograms_are_structurally_sound(
        data in prop::collection::vec(0..100i64, 1..80),
        cap in 2usize..24,
        b in 1usize..5,
    ) {
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let mut fw = FixedWindowHistogram::new(cap, b, 0.2);
        for (i, &v) in data.iter().enumerate() {
            let h = fw.push_and_build(v);
            let lo = (i + 1).saturating_sub(cap);
            let window = &data[lo..=i];
            // Tiling is validated by Histogram::new internally; check the
            // mean property per bucket.
            for bkt in h.buckets() {
                let seg = &window[bkt.start..=bkt.end];
                let mean = seg.iter().sum::<f64>() / seg.len() as f64;
                prop_assert!((bkt.height - mean).abs() < 1e-6,
                    "bucket {:?} height {} vs mean {mean}", (bkt.start, bkt.end), bkt.height);
            }
        }
    }
}

/// Deterministic regression: adversarial level-shift stream where the
/// agglomerative queues would mislead a sliding algorithm (paper §4.4's
/// motivation) — the fixed-window algorithm must stay within guarantee.
#[test]
fn fixed_window_survives_level_shifts() {
    let mut data = Vec::new();
    for block in 0..12 {
        let level = if block % 2 == 0 {
            0.0
        } else {
            100.0 + block as f64
        };
        data.extend(std::iter::repeat_n(level, 7));
    }
    let cap = 16;
    let b = 3;
    let eps = 0.1;
    let mut fw = FixedWindowHistogram::new(cap, b, eps);
    for (i, &v) in data.iter().enumerate() {
        let h = fw.push_and_build(v);
        let lo = (i + 1).saturating_sub(cap);
        let window = &data[lo..=i];
        let opt = optimal_sse(window, b);
        assert!(
            h.sse(window) <= (1.0 + eps) * opt + 1e-6,
            "t={i}: {} vs opt {opt}",
            h.sse(window)
        );
    }
}

/// Deterministic regression: the 100-dropped-from-window scenario of the
/// paper's Example 1, which exercises the "function shifted downwards"
/// re-intervalization (Figure 4).
#[test]
fn example1_downward_shift_reintervalization() {
    let stream = [100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0];
    let mut fw = FixedWindowHistogram::with_delta(8, 2, 1.0, 1.0);
    for &v in &stream {
        fw.push(v);
    }
    let h = fw.histogram();
    // The optimum for 0,0,0,1,1,1,1,1 with 2 buckets has SSE 0.
    assert_eq!(h.sse(&fw.window()), 0.0);
    assert_eq!(h.bucket_ends(), vec![2, 7]);
}
