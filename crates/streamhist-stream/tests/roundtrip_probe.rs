use streamhist_core::Checkpoint;
use streamhist_stream::AgglomerativeHistogram;

#[test]
fn agglomerative_roundtrip_small_streams() {
    // Sweep stream lengths and eps values; every encode must restore.
    for &eps in &[0.001, 0.01, 0.05, 0.1, 0.5] {
        for m in 1..128usize {
            let mut h = AgglomerativeHistogram::new(2, eps);
            for i in 0..m {
                h.push(((i * 7919) % 97) as f64);
            }
            let frame = h.encode_checkpoint();
            if let Err(e) = AgglomerativeHistogram::restore(&frame) {
                panic!("restore failed at eps={eps} m={m}: {e}");
            }
        }
    }
}
