//! Batch ingestion must be indistinguishable from per-point ingestion:
//! `push_batch` chunks slabs at rebase boundaries and defers the
//! interval-list rebuild, but the observable state — window contents,
//! rebased `SUM'`/`SQSUM'` prefix frame, the histogram the kernel builds
//! and every instrumentation counter — has to come out **bit for bit**
//! identical to driving the same values through `try_push` one at a time.
//!
//! The sweep deliberately straddles every alignment hazard: batch sizes
//! `{1, n-1, n, n+1, 3n}` against window capacity `n` (so slabs end just
//! before, exactly on, and just past both window-wrap and rebase
//! boundaries), plus NaN/infinity-laced slabs exercising the
//! partial-acceptance path.

use streamhist_stream::{
    AgglomerativeHistogram, FixedWindowHistogram, ShardedFixedWindow, TimeWindowHistogram,
};

/// Deterministic pseudo-random stream (splitmix64 → uniform in [0, 100)).
fn stream(seed: u64, len: usize) -> Vec<f64> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        })
        .collect()
}

/// Asserts two fixed-window summaries are observationally identical,
/// down to the bit pattern of every histogram boundary/height and every
/// kernel counter.
fn assert_fixed_windows_identical(seq: &FixedWindowHistogram, bat: &FixedWindowHistogram) {
    assert_eq!(seq.len(), bat.len());
    assert_eq!(seq.total_pushed(), bat.total_pushed());
    let (wa, wb) = (seq.window(), bat.window());
    assert_eq!(wa.len(), wb.len());
    for (i, (a, b)) in wa.iter().zip(&wb).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "window value {i}: {a} vs {b}");
    }
    let (ha, sa) = seq.histogram_with_stats();
    let (hb, sb) = bat.histogram_with_stats();
    assert_eq!(*ha, *hb, "histograms diverged");
    assert_eq!(sa, sb, "kernel stats diverged");
    assert_eq!(
        sa.herror.to_bits(),
        sb.herror.to_bits(),
        "HERROR bit pattern diverged: {} vs {}",
        sa.herror,
        sb.herror
    );
}

#[test]
fn fixed_window_batch_sizes_match_sequential_across_wraps() {
    let n = 64;
    let data = stream(0xBA7C, 5 * n + 7); // several full window wraps
    for batch in [1, n - 1, n, n + 1, 3 * n] {
        let mut seq = FixedWindowHistogram::new(n, 8, 0.1);
        let mut bat = FixedWindowHistogram::new(n, 8, 0.1);
        for slab in data.chunks(batch) {
            for &v in slab {
                seq.push(v);
            }
            let out = bat.push_batch(slab);
            assert_eq!((out.accepted, out.rejected), (slab.len(), 0));
            // Compare at every slab boundary, not just at the end, so a
            // divergence is pinned to the slab that introduced it.
            assert_fixed_windows_identical(&seq, &bat);
        }
    }
}

#[test]
fn fixed_window_batch_straddles_rebase_boundaries() {
    // A small explicit rebase period so modest slabs cross several rebase
    // points; push_slab must fire the rebase after exactly the same value
    // as per-point mode for the frames to stay bit-identical.
    let n = 48;
    let data = stream(0x5EED, 4 * n);
    for batch in [5, n - 1, n + 1, 2 * n + 3] {
        let mut seq = FixedWindowHistogram::with_rebase_period(n, 6, 0.2, 7);
        let mut bat = FixedWindowHistogram::with_rebase_period(n, 6, 0.2, 7);
        for slab in data.chunks(batch) {
            for &v in slab {
                seq.push(v);
            }
            bat.push_batch(slab);
        }
        assert_fixed_windows_identical(&seq, &bat);
    }
}

#[test]
fn fixed_window_rejects_non_finite_mid_slab_and_keeps_going() {
    let n = 32;
    let clean = stream(0xF00D, 3 * n);
    // Lace the stream with non-finite junk at irregular positions.
    let mut laced = Vec::new();
    for (i, &v) in clean.iter().enumerate() {
        if i % 17 == 3 {
            laced.push(f64::NAN);
        }
        if i % 29 == 11 {
            laced.push(f64::INFINITY);
        }
        laced.push(v);
        if i % 23 == 7 {
            laced.push(f64::NEG_INFINITY);
        }
    }
    let junk = laced.len() - clean.len();

    let mut seq = FixedWindowHistogram::new(n, 8, 0.1);
    for &v in &clean {
        seq.push(v);
    }

    for batch in [1, 13, n, laced.len()] {
        let mut bat = FixedWindowHistogram::new(n, 8, 0.1);
        let mut accepted = 0;
        let mut rejected = 0;
        for slab in laced.chunks(batch) {
            let out = bat.push_batch(slab);
            accepted += out.accepted;
            rejected += out.rejected;
        }
        assert_eq!(accepted, clean.len(), "batch={batch}");
        assert_eq!(rejected, junk, "batch={batch}");
        // Rejected values must leave no trace: state matches a filtered
        // sequential push of the clean values alone.
        assert_fixed_windows_identical(&seq, &bat);
    }
}

#[test]
fn all_nan_slab_is_rejected_wholesale_and_leaves_state_unchanged() {
    let mut fw = FixedWindowHistogram::new(16, 4, 0.3);
    let warm = stream(1, 40);
    fw.push_batch(&warm);
    let before = fw.histogram();
    let gen_before = fw.total_pushed();
    let out = fw.push_batch(&[f64::NAN, f64::INFINITY, f64::NAN]);
    assert_eq!((out.accepted, out.rejected), (0, 3));
    assert_eq!(fw.total_pushed(), gen_before);
    // The cached snapshot is still valid — same Arc, no rebuild.
    assert!(std::sync::Arc::ptr_eq(&before, &fw.histogram()));
}

#[test]
fn empty_slab_is_a_no_op() {
    let mut fw = FixedWindowHistogram::new(16, 4, 0.3);
    fw.push_batch(&stream(2, 20));
    let before = fw.histogram();
    let out = fw.push_batch(&[]);
    assert_eq!((out.accepted, out.rejected), (0, 0));
    assert!(std::sync::Arc::ptr_eq(&before, &fw.histogram()));
}

#[test]
fn agglomerative_batch_matches_sequential() {
    let data = stream(0xA661, 600);
    for batch in [1, 7, 64, 600] {
        let mut seq = AgglomerativeHistogram::new(8, 0.1);
        let mut bat = AgglomerativeHistogram::new(8, 0.1);
        for slab in data.chunks(batch) {
            for &v in slab {
                seq.push(v);
            }
            let out = bat.push_batch(slab);
            assert_eq!((out.accepted, out.rejected), (slab.len(), 0));
        }
        assert_eq!(seq.len(), bat.len());
        assert_eq!(*seq.histogram(), *bat.histogram(), "batch={batch}");
    }
}

#[test]
fn agglomerative_batch_partial_acceptance_counts() {
    let mut agg = AgglomerativeHistogram::new(4, 0.2);
    let out = agg.push_batch(&[1.0, f64::NAN, 2.0, f64::NEG_INFINITY, 3.0]);
    assert_eq!((out.accepted, out.rejected), (3, 2));
    assert_eq!(agg.len(), 3);
}

#[test]
fn time_window_batch_matches_sequential() {
    let data = stream(0x71AE, 500);
    for batch in [1, 9, 100] {
        let mut seq = TimeWindowHistogram::new(128, 6, 0.2);
        let mut bat = TimeWindowHistogram::new(128, 6, 0.2);
        let mut ts = 0u64;
        for slab in data.chunks(batch) {
            ts += 3; // all values in a slab share the arrival timestamp
            for &v in slab {
                seq.push_at(ts, v);
            }
            let out = bat.push_batch_at(ts, slab);
            assert_eq!((out.accepted, out.rejected), (slab.len(), 0));
        }
        assert_eq!(seq.len(), bat.len());
        assert_eq!(seq.window_with_times(), bat.window_with_times());
        assert_eq!(*seq.histogram(), *bat.histogram(), "batch={batch}");
    }
}

#[test]
fn sharded_scatter_accounts_for_every_value() {
    let shards = 3;
    let sw = ShardedFixedWindow::new(shards, 64, 6, 0.2);
    let data = stream(0x5CA7, 1_000);
    for slab in data.chunks(50) {
        sw.push_batch_scatter(slab).unwrap();
    }
    // Snapshot each shard first: the request is a barrier behind every
    // queued push, so the counters below are final.
    for s in 0..shards {
        let _ = sw.snapshot(s).unwrap();
    }
    // Scatter never drops or duplicates: accepted counts across shards sum
    // to the stream length (all values finite, lossless policy).
    let metrics = sw.metrics_all();
    assert_eq!(metrics.len(), shards);
    let accepted: u64 = metrics.iter().map(|m| m.pushes_accepted).sum();
    assert_eq!(accepted, data.len() as u64);
    let rejected: u64 = metrics.iter().map(|m| m.values_rejected).sum();
    assert_eq!(rejected, 0);
    let fws = sw.join();
    let total: u64 = fws
        .into_iter()
        .map(|r| r.expect("worker alive").total_pushed())
        .sum();
    assert_eq!(total, data.len() as u64);
}
