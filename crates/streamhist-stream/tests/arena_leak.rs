//! Leak-freedom of the chain arena under the online kernel.
//!
//! The agglomerative algorithm replaces each queue's tail endpoint on
//! almost every push, orphaning the previous endpoint's boundary chain.
//! Without collection the arena would grow with the *stream length*; the
//! generational compaction must keep it within a constant factor of the
//! live set, which the paper's chain accounting bounds by
//! `O(B · Σ queue_sizes)` nodes (each of the `Σq` retained endpoints plus
//! the top solution holds one chain of at most `B` cuts).
//!
//! The property below checks, **after every push**, the concrete
//! invariant the kernel maintains: at the start of a push the arena holds
//! fewer than `max(1024, 2 · live)` nodes (else it compacts down to the
//! live set), and one push allocates at most `1 + Σ queue_sizes` nodes —
//! so occupancy never exceeds `2048 + 3·B·(Σ queue_sizes + 1)`. Queue
//! sizes never shrink in online mode, so evaluating the bound with the
//! *current* sizes is sound.

use proptest::prelude::*;
use streamhist_stream::AgglomerativeHistogram;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arena occupancy stays `O(B · Σ queue_sizes)` (plus the generational
    /// floor) after every push — the arena never leaks.
    #[test]
    fn online_arena_occupancy_is_bounded_by_live_chains(
        data in prop::collection::vec(0..97i64, 1..2500),
        b in 2usize..6,
        eps in prop::sample::select(vec![0.05f64, 0.1, 0.5]),
    ) {
        let mut agg = AgglomerativeHistogram::new(b, eps);
        for (i, &v) in data.iter().enumerate() {
            agg.push(v as f64);
            let stats = agg.kernel_stats();
            let endpoints: usize = stats.queue_sizes.iter().sum();
            let bound = 2048 + 3 * b * (endpoints + 1);
            prop_assert!(
                stats.arena_nodes <= bound,
                "push {}: arena holds {} nodes > bound {} \
                 (b={b}, eps={eps}, endpoints={endpoints}, compactions={})",
                i + 1,
                stats.arena_nodes,
                bound,
                stats.compactions
            );
            prop_assert!(stats.arena_peak >= stats.arena_nodes);
        }
    }
}
