//! Property tests for the time-based window variant: the (1+ε) guarantee
//! and window-content correctness under arbitrary timestamp gaps and
//! batched arrivals.

use proptest::prelude::*;
use streamhist_optimal::optimal_sse;
use streamhist_stream::TimeWindowHistogram;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Window contents always equal the brute-force recount of points with
    /// timestamp inside (now − duration, now].
    #[test]
    fn window_contents_match_bruteforce(
        steps in prop::collection::vec((0u64..5, -50..50i64), 1..200),
        duration in 1u64..40,
    ) {
        let mut tw = TimeWindowHistogram::new(duration, 3, 0.5);
        let mut log: Vec<(u64, f64)> = Vec::new();
        let mut now = 0u64;
        for &(gap, v) in &steps {
            now += gap;
            let v = v as f64;
            tw.push_at(now, v);
            log.push((now, v));
            let expect: Vec<f64> = log
                .iter()
                .filter(|&&(t, _)| t + duration > now)
                .map(|&(_, v)| v)
                .collect();
            prop_assert_eq!(tw.window(), expect, "now={}", now);
        }
    }

    /// The (1+ε) guarantee holds for every materialization, regardless of
    /// arrival pattern.
    #[test]
    fn guarantee_holds_under_random_arrivals(
        steps in prop::collection::vec((0u64..4, 0..40i64), 1..120),
        duration in 2u64..30,
        b in 1usize..4,
    ) {
        let eps = 0.5;
        let mut tw = TimeWindowHistogram::new(duration, b, eps);
        let mut now = 0u64;
        for (i, &(gap, v)) in steps.iter().enumerate() {
            now += gap;
            tw.push_at(now, v as f64);
            if i % 13 == 0 {
                let win = tw.window();
                let approx = tw.histogram().sse(&win);
                let opt = optimal_sse(&win, b);
                prop_assert!(
                    approx <= (1.0 + eps) * opt + 1e-6,
                    "i={i}: {approx} vs {opt}"
                );
            }
        }
    }

    /// advance_to never adds data and is idempotent.
    #[test]
    fn advance_to_is_idempotent(
        gaps in prop::collection::vec(0u64..10, 1..50),
        duration in 1u64..20,
    ) {
        let mut tw = TimeWindowHistogram::new(duration, 2, 0.5);
        let mut now = 0u64;
        for (i, &g) in gaps.iter().enumerate() {
            now += g;
            tw.push_at(now, i as f64);
        }
        let far = now + duration * 3;
        tw.advance_to(far);
        prop_assert!(tw.is_empty());
        tw.advance_to(far);
        prop_assert!(tw.is_empty());
        prop_assert_eq!(tw.now(), Some(far));
    }
}
