//! Stress and failure-injection tests for the streaming algorithms:
//! adversarial value patterns, extreme magnitudes, degenerate parameters,
//! and rejection of invalid input.

use streamhist_optimal::optimal_sse;
use streamhist_stream::{AgglomerativeHistogram, FixedWindowHistogram, TimeWindowHistogram};

/// Several adversarial streams the interval machinery must survive.
fn adversarial_streams() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("constant", vec![7.0; 300]),
        (
            "alternating extremes",
            (0..300)
                .map(|i| if i % 2 == 0 { 0.0 } else { 1e6 })
                .collect(),
        ),
        ("single outlier", {
            let mut v = vec![1.0; 300];
            v[150] = 1e9;
            v
        }),
        ("monotone ramp", (0..300).map(|i| i as f64).collect()),
        (
            "geometric growth",
            (0..60).map(|i| 1.5f64.powi(i)).collect(),
        ),
        (
            "negative and positive",
            (0..300).map(|i| ((i * 37) % 21) as f64 - 10.0).collect(),
        ),
        (
            "tiny values",
            (0..300).map(|i| ((i * 13) % 7) as f64 * 1e-9).collect(),
        ),
        (
            "large offset",
            (0..300).map(|i| 1e10 + ((i * 13) % 7) as f64).collect(),
        ),
        ("zeros then step", {
            let mut v = vec![0.0; 150];
            v.extend(vec![5.0; 150]);
            v
        }),
    ]
}

#[test]
fn fixed_window_survives_adversarial_streams() {
    for (name, data) in adversarial_streams() {
        let b = 4;
        let eps = 0.5;
        let mut fw = FixedWindowHistogram::new(32, b, eps);
        for (i, &v) in data.iter().enumerate() {
            fw.push(v);
            if i % 37 == 0 {
                let win = fw.window();
                let h = fw.histogram();
                assert_eq!(h.domain_len(), win.len(), "{name}");
                let approx = h.sse(&win);
                let opt = optimal_sse(&win, b);
                // Large-offset data amplifies FP cancellation inside the
                // O(1) SQERROR identity; allow a magnitude-aware slack.
                let scale: f64 = win.iter().map(|v| v * v).sum();
                let slack = 1e-9 * scale.max(1.0);
                assert!(
                    approx <= (1.0 + eps) * opt + slack,
                    "{name} @ {i}: {approx} vs opt {opt}"
                );
            }
        }
    }
}

#[test]
fn agglomerative_survives_adversarial_streams() {
    for (name, data) in adversarial_streams() {
        let b = 4;
        let eps = 0.5;
        let mut agg = AgglomerativeHistogram::new(b, eps);
        for &v in &data {
            agg.push(v);
        }
        let h = agg.histogram();
        assert_eq!(h.domain_len(), data.len(), "{name}");
        let approx = h.sse(&data);
        let opt = optimal_sse(&data, b);
        let scale: f64 = data.iter().map(|v| v * v).sum();
        assert!(
            approx <= (1.0 + eps) * opt + 1e-9 * scale.max(1.0),
            "{name}: {approx} vs opt {opt}"
        );
    }
}

#[test]
fn queue_space_stays_sublinear_on_long_smooth_streams() {
    // The paper's space bound: O((B^2 / eps) log n) intervals total. On a
    // 50k-point smooth stream the queues must stay far below n.
    let data: Vec<f64> = (0..50_000).map(|i| (i as f64).sqrt() * 10.0).collect();
    let mut agg = AgglomerativeHistogram::new(6, 0.5);
    for &v in &data {
        agg.push(v);
    }
    let total: usize = agg.kernel_stats().queue_sizes.iter().sum();
    assert!(total < 5_000, "total queue size {total} for n=50000");
}

#[test]
fn window_of_one_point() {
    let mut fw = FixedWindowHistogram::new(1, 3, 0.1);
    for v in [5.0, 9.0, -2.0] {
        let h = fw.push_and_build(v);
        assert_eq!(h.domain_len(), 1);
        assert_eq!(h.point(0), v);
    }
}

#[test]
fn very_small_eps_still_terminates_and_is_tight() {
    let data: Vec<f64> = (0..200).map(|i| ((i * 31 + 5) % 23) as f64).collect();
    let b = 4;
    let mut fw = FixedWindowHistogram::new(64, b, 1e-4);
    for &v in &data {
        fw.push(v);
    }
    let win = fw.window();
    let approx = fw.histogram().sse(&win);
    let opt = optimal_sse(&win, b);
    assert!(approx <= (1.0 + 1e-4) * opt + 1e-6, "{approx} vs {opt}");
}

#[test]
fn huge_delta_still_returns_valid_histograms() {
    // delta far above 1: queues collapse to very few intervals; the result
    // degrades gracefully but stays structurally valid.
    let data: Vec<f64> = (0..200).map(|i| ((i * 7) % 31) as f64).collect();
    let mut fw = FixedWindowHistogram::with_delta(64, 4, 0.5, 100.0);
    for &v in &data {
        fw.push(v);
    }
    let h = fw.histogram();
    assert!(h.num_buckets() <= 4);
    assert_eq!(h.domain_len(), 64);
}

#[test]
#[should_panic(expected = "finite")]
fn fixed_window_rejects_nan() {
    let mut fw = FixedWindowHistogram::new(8, 2, 0.1);
    fw.push(f64::NAN);
}

#[test]
#[should_panic(expected = "finite")]
fn fixed_window_rejects_infinity() {
    let mut fw = FixedWindowHistogram::new(8, 2, 0.1);
    fw.push(f64::INFINITY);
}

#[test]
#[should_panic(expected = "finite")]
fn agglomerative_rejects_nan() {
    let mut agg = AgglomerativeHistogram::new(2, 0.1);
    agg.push(f64::NAN);
}

#[test]
#[should_panic(expected = "finite")]
fn time_window_rejects_nan() {
    let mut tw = TimeWindowHistogram::new(10, 2, 0.1);
    tw.push_at(0, f64::NAN);
}

#[test]
fn long_run_numerical_stability() {
    // 200k pushes through a small window with a large constant offset: the
    // rebase policy must keep FP drift from corrupting answers.
    let mut fw = FixedWindowHistogram::new(128, 4, 0.5);
    let offset = 1e8;
    for i in 0..200_000u64 {
        fw.push(offset + ((i * 13 + 7) % 10) as f64);
    }
    let win = fw.window();
    let h = fw.histogram();
    let approx = h.sse(&win);
    let opt = optimal_sse(&win, 4);
    // The O(1) SQERROR identity cancels (Σv)² against Σv²; at offset 1e8
    // over a 128-point window that costs up to (128·1e8)²·ε_machine ≈ 2e4
    // of absolute SSE precision — an inherent property of the paper's
    // prefix-sum formulation, not drift (drift would also move heights).
    let sum: f64 = win.iter().sum();
    let cancellation = sum * sum * f64::EPSILON;
    assert!(
        approx <= 1.5 * opt + 2.0 * cancellation,
        "{approx} vs {opt}"
    );
    // Heights must sit near the offset, not drift away from it.
    for b in h.buckets() {
        assert!(
            (b.height - offset).abs() < 100.0,
            "height {} drifted",
            b.height
        );
    }
}
