//! Resilience and concurrency tests for the sharded serving layer.
//!
//! The unit tests in `sharded.rs` pin down each mechanism in isolation;
//! these tests exercise them *together*, the way a serving deployment
//! would: malformed input and a worker death in one fleet (with recovery),
//! and many producers hammering a `DropNewest` fleet while a respawner
//! cycles a shard under it.

use std::sync::{Arc, RwLock};
use std::time::Duration;
use streamhist_obs::{parse_exposition, MetricsRegistry};
use streamhist_stream::{FixedWindowHistogram, OverloadPolicy, ShardError, ShardedFixedWindow};

/// The acceptance scenario, end to end: NaNs are rejected without killing
/// anything, an injected worker panic turns into `Err(ShardError)` on
/// exactly the dead shard, the rest of the fleet keeps serving, and
/// `respawn_shard` restores service — with every metric counter matching
/// the injected event counts exactly.
#[test]
fn injected_failures_leave_the_fleet_serving() {
    let mut sharded = ShardedFixedWindow::new(4, 32, 3, 0.2);

    // Healthy traffic to every shard, plus exactly 3 malformed records
    // aimed at shard 2.
    for shard in 0..4 {
        for i in 0..50u64 {
            sharded
                .push_to(shard, ((i * 7 + shard as u64) % 11) as f64)
                .expect("all workers alive");
        }
    }
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        sharded.push_to(2, bad).expect("rejected, not fatal");
    }
    let (h2, _) = sharded.snapshot(2).expect("shard 2 serving after NaNs");
    assert_eq!(h2.domain_len(), 32, "window holds only the finite records");

    // Kill shard 2's worker.
    sharded.inject_worker_panic(2).expect("delivered");
    assert_eq!(sharded.snapshot(2), Err(ShardError { shard: 2 }));
    assert_eq!(sharded.push_to(2, 1.0), Err(ShardError { shard: 2 }));

    // The other three shards are untouched by the death.
    for shard in [0usize, 1, 3] {
        sharded
            .push_to(shard, 5.0)
            .expect("unaffected shard ingests");
        let (h, _) = sharded.snapshot(shard).expect("unaffected shard serves");
        assert_eq!(h.domain_len(), 32, "shard {shard}");
    }

    // Recovery: the panicked worker restores from its last checkpoint —
    // the boot checkpoint here, since 50 accepted records never reached
    // the default 1024-record auto-checkpoint interval — so the whole
    // epoch is reported lost and the index serves again from empty.
    let report = sharded.respawn_shard(2);
    assert_eq!(report.restored_len, 0);
    assert_eq!(report.lost_since_checkpoint, 50);
    for i in 0..10u64 {
        sharded
            .push_to(2, i as f64)
            .expect("respawned shard ingests");
    }
    let (h2, _) = sharded.snapshot(2).expect("respawned shard serves");
    assert_eq!(h2.domain_len(), 10);

    // Counters match the injected event counts exactly (snapshots acted
    // as barriers, so every counter is quiescent).
    let m = sharded.metrics(2);
    assert_eq!(m.values_rejected, 3, "one per malformed record");
    assert_eq!(m.respawns, 1, "one per injected death");
    assert_eq!(m.records_dropped, 0, "Block policy never sheds");
    assert_eq!(m.pushes_accepted, 50 + 10, "pre-death + post-respawn");
    assert_eq!(m.queue_depth, 0);
    for shard in [0usize, 1, 3] {
        let m = sharded.metrics(shard);
        assert_eq!(m.values_rejected, 0, "shard {shard}");
        assert_eq!(m.respawns, 0, "shard {shard}");
        assert_eq!(m.pushes_accepted, 51, "shard {shard}");
    }

    let summaries = sharded.join();
    assert!(summaries.iter().all(Result::is_ok), "whole fleet joins");
}

/// Many producers, a tiny `DropNewest` queue, and a respawner cycling one
/// shard, all at once. Asserts the properties that must survive the chaos:
/// no deadlock (the test finishes), exact per-shard accounting
/// (accepted + rejected + dropped == sent), bit-identical histograms on
/// the paced shards versus an unsharded reference, drops actually observed
/// on the flooded shards, and a drained fleet at the end.
#[test]
fn concurrent_producers_respawns_and_overload_keep_the_books_straight() {
    const SHARDS: usize = 8;
    const CAPACITY: usize = 64;
    const B: usize = 4;
    const EPS: f64 = 0.1;
    const FLOOD_PER_SHARD: u64 = 50_000;

    // Attach a metrics registry so the scraped exposition can be
    // reconciled against `metrics_all()` after the chaos: both read the
    // same atomic cells, so they must agree *exactly*.
    let registry = Arc::new(MetricsRegistry::new());
    let sharded = RwLock::new(
        ShardedFixedWindow::builder(SHARDS, CAPACITY, B, EPS)
            .queue_capacity(2)
            .policy(OverloadPolicy::DropNewest)
            .registry(Arc::clone(&registry))
            .fleet_label("stress")
            .build()
            .expect("valid parameters"),
    );

    // Producers own disjoint shards (single-writer per shard, so the paced
    // shards see a deterministic record order):
    //
    // * The PACED producer (shards 0, 1) sends one batch per iteration and
    //   then snapshots the shard. The snapshot reply is a barrier, so the
    //   queue is empty before the next batch and — even with
    //   queue_capacity 2 — nothing is ever shed. Its stream includes NaNs
    //   at known positions.
    // * FLOOD producers (shards 2..8, one thread each) issue single pushes
    //   with no barrier, so the 2-slot queue sheds under pressure.
    // * The main thread RESPAWNS shard 7 repeatedly underneath its flood
    //   producer, taking the write lock each time.
    let paced_values: Vec<f64> = (0..3200)
        .map(|i| {
            if i % 37 == 0 {
                f64::NAN
            } else {
                ((i * 13 + 5) % 23) as f64
            }
        })
        .collect();

    let mut sent = [0u64; SHARDS];
    let mut respawns_done = 0u64;
    std::thread::scope(|scope| {
        let sharded = &sharded;
        let paced = &paced_values;
        let paced_handle = scope.spawn(move || {
            let mut sent_paced = 0u64;
            for shard in 0..2usize {
                for chunk in paced.chunks(16) {
                    let guard = sharded.read().expect("not poisoned");
                    guard
                        .push_batch(shard, chunk.to_vec())
                        .expect("paced shard worker alive");
                    sent_paced += chunk.len() as u64;
                    guard.snapshot(shard).expect("paced shard serves");
                }
            }
            sent_paced
        });
        let flood = |shard: usize| {
            move || {
                let mut sent_flood = 0u64;
                for i in 0..FLOOD_PER_SHARD {
                    let guard = sharded.read().expect("not poisoned");
                    guard
                        .push_to(shard, ((i * 31 + shard as u64) % 19) as f64)
                        .expect("graceful respawn never kills a worker");
                    sent_flood += 1;
                }
                sent_flood
            }
        };
        let flood_handles: Vec<_> = (2..SHARDS).map(|s| scope.spawn(flood(s))).collect();

        // Graceful respawns drain the old worker fully and seed the new
        // worker with its summary — a lossless handoff — so the
        // accounting identity below survives them.
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(5));
            let mut guard = sharded.write().expect("not poisoned");
            let report = guard.respawn_shard(7);
            assert_eq!(
                report.lost_since_checkpoint, 0,
                "graceful respawn is lossless"
            );
            respawns_done += 1;
        }

        let paced_total = paced_handle.join().expect("paced producer");
        assert_eq!(paced_total, 2 * paced_values.len() as u64);
        sent[0] = paced_values.len() as u64;
        sent[1] = paced_values.len() as u64;
        for (shard, handle) in (2..SHARDS).zip(flood_handles) {
            sent[shard] = handle.join().expect("flood producer");
        }
    });
    let sharded = sharded.into_inner().expect("not poisoned");

    // Quiesce every shard, then check the books.
    let snapshots = sharded.snapshot_all();
    assert!(snapshots.iter().all(Result::is_ok), "no worker died");
    let metrics = sharded.metrics_all();

    // Exact conservation per shard: every record sent was accepted,
    // rejected, or counted as dropped — nothing vanishes, even across
    // graceful respawns.
    for shard in 0..SHARDS {
        let m = &metrics[shard];
        assert_eq!(
            m.pushes_accepted + m.values_rejected + m.records_dropped,
            sent[shard],
            "conservation on shard {shard}: {m:?}"
        );
        assert_eq!(m.queue_depth, 0, "shard {shard} drained");
    }

    // Registry reconciliation: the Prometheus exposition is served from
    // the very same atomic cells that back `ShardMetrics`, so every
    // scraped per-shard series must equal the struct view exactly — and
    // the conservation identity must hold at the registry level too.
    let samples =
        parse_exposition(&registry.text_exposition()).expect("exposition is valid Prometheus text");
    let series = |name: &str, shard: usize| -> u64 {
        let shard_label = shard.to_string();
        let sample = samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.iter().any(|(k, v)| k == "fleet" && v == "stress")
                    && s.labels
                        .iter()
                        .any(|(k, v)| k == "shard" && *v == shard_label)
            })
            .unwrap_or_else(|| {
                panic!("missing series {name}{{fleet=\"stress\",shard=\"{shard}\"}}")
            });
        sample.value as u64
    };
    let mut scraped_accepted = 0u64;
    let mut scraped_rejected = 0u64;
    let mut scraped_dropped = 0u64;
    for shard in 0..SHARDS {
        let m = &metrics[shard];
        let accepted = series("streamhist_shard_pushes_accepted_total", shard);
        let rejected = series("streamhist_shard_values_rejected_total", shard);
        let dropped = series("streamhist_shard_records_dropped_total", shard);
        assert_eq!(
            accepted, m.pushes_accepted,
            "scraped accepted, shard {shard}"
        );
        assert_eq!(
            rejected, m.values_rejected,
            "scraped rejected, shard {shard}"
        );
        assert_eq!(dropped, m.records_dropped, "scraped dropped, shard {shard}");
        assert_eq!(
            series("streamhist_shard_respawns_total", shard),
            m.respawns,
            "scraped respawns, shard {shard}"
        );
        assert_eq!(
            series("streamhist_shard_queue_depth", shard),
            0,
            "scraped queue depth, shard {shard}"
        );
        assert_eq!(
            accepted + rejected + dropped,
            sent[shard],
            "registry-level conservation on shard {shard}"
        );
        scraped_accepted += accepted;
        scraped_rejected += rejected;
        scraped_dropped += dropped;
    }
    let total_sent: u64 = sent.iter().sum();
    assert_eq!(
        scraped_accepted + scraped_rejected + scraped_dropped,
        total_sent,
        "fleet-wide conservation from the scraped exposition alone"
    );

    // Paced shards: nothing shed, NaNs counted exactly, histogram
    // bit-identical to an unsharded single-thread reference over the same
    // (finite) stream.
    let nan_count = paced_values.iter().filter(|v| v.is_nan()).count() as u64;
    let mut reference = FixedWindowHistogram::new(CAPACITY, B, EPS);
    for &v in paced_values.iter().filter(|v| v.is_finite()) {
        reference.push(v);
    }
    let (expect_h, expect_stats) = reference.histogram_with_stats();
    for shard in 0..2usize {
        let m = &metrics[shard];
        assert_eq!(m.records_dropped, 0, "paced shard {shard} never sheds");
        assert_eq!(m.values_rejected, nan_count, "paced shard {shard}");
        let snap = snapshots[shard].as_ref().expect("alive");
        assert_eq!(snap.0, expect_h, "paced shard {shard} bit-identical");
        assert_eq!(snap.1, expect_stats, "paced shard {shard} stats");
    }

    // Flooded shards: 2-slot queues against unpaced producers must
    // actually shed somewhere in the fleet.
    let flood_dropped: u64 = (2..SHARDS).map(|s| metrics[s].records_dropped).sum();
    assert!(
        flood_dropped > 0,
        "6 x 50k unpaced pushes through 2-slot queues shed nothing"
    );

    // Respawned shard: cumulative counters survive respawns, and because
    // each graceful respawn hands the summary to the next worker
    // generation, the final summary holds every accepted record.
    assert_eq!(metrics[7].respawns, respawns_done);
    let summaries: Vec<FixedWindowHistogram> = sharded
        .join()
        .into_iter()
        .map(|r| r.expect("worker alive"))
        .collect();
    assert_eq!(
        summaries[7].total_pushed(),
        metrics[7].pushes_accepted,
        "lossless handoffs: nothing lost across worker generations"
    );
    for shard in 0..2usize {
        assert_eq!(
            summaries[shard].total_pushed(),
            metrics[shard].pushes_accepted
        );
    }
}
