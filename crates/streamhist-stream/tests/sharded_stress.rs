//! Resilience and concurrency tests for the sharded serving layer.
//!
//! The unit tests in `sharded.rs` pin down each mechanism in isolation;
//! these tests exercise them *together*, the way a serving deployment
//! would: malformed input and a worker death in one fleet (with recovery),
//! and many producers hammering a `DropNewest` fleet while a respawner
//! cycles a shard under it.

use std::sync::{Arc, RwLock};
use std::time::Duration;
use streamhist_obs::{parse_exposition, MetricsRegistry};
use streamhist_stream::{FixedWindowHistogram, OverloadPolicy, ShardError, ShardedFixedWindow};

/// The acceptance scenario, end to end: NaNs are rejected without killing
/// anything, an injected worker panic turns into `Err(ShardError)` on
/// exactly the dead shard, the rest of the fleet keeps serving, and
/// `respawn_shard` restores service — with every metric counter matching
/// the injected event counts exactly.
#[test]
fn injected_failures_leave_the_fleet_serving() {
    let mut sharded = ShardedFixedWindow::new(4, 32, 3, 0.2);

    // Healthy traffic to every shard, plus exactly 3 malformed records
    // aimed at shard 2.
    for shard in 0..4 {
        for i in 0..50u64 {
            sharded
                .push_to(shard, ((i * 7 + shard as u64) % 11) as f64)
                .expect("all workers alive");
        }
    }
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        sharded.push_to(2, bad).expect("rejected, not fatal");
    }
    let (h2, _) = sharded.snapshot(2).expect("shard 2 serving after NaNs");
    assert_eq!(h2.domain_len(), 32, "window holds only the finite records");

    // Kill shard 2's worker.
    sharded.inject_worker_panic(2).expect("delivered");
    assert_eq!(sharded.snapshot(2), Err(ShardError { shard: 2 }));
    assert_eq!(sharded.push_to(2, 1.0), Err(ShardError { shard: 2 }));

    // The other three shards are untouched by the death.
    for shard in [0usize, 1, 3] {
        sharded
            .push_to(shard, 5.0)
            .expect("unaffected shard ingests");
        let (h, _) = sharded.snapshot(shard).expect("unaffected shard serves");
        assert_eq!(h.domain_len(), 32, "shard {shard}");
    }

    // Recovery: the panicked worker restores from its last checkpoint —
    // the boot checkpoint here, since 50 accepted records never reached
    // the default 1024-record auto-checkpoint interval — so the whole
    // epoch is reported lost and the index serves again from empty.
    let report = sharded.respawn_shard(2);
    assert_eq!(report.restored_len, 0);
    assert_eq!(report.lost_since_checkpoint, 50);
    for i in 0..10u64 {
        sharded
            .push_to(2, i as f64)
            .expect("respawned shard ingests");
    }
    let (h2, _) = sharded.snapshot(2).expect("respawned shard serves");
    assert_eq!(h2.domain_len(), 10);

    // Counters match the injected event counts exactly (snapshots acted
    // as barriers, so every counter is quiescent).
    let m = sharded.metrics(2);
    assert_eq!(m.values_rejected, 3, "one per malformed record");
    assert_eq!(m.respawns, 1, "one per injected death");
    assert_eq!(m.records_dropped, 0, "Block policy never sheds");
    assert_eq!(m.pushes_accepted, 50 + 10, "pre-death + post-respawn");
    assert_eq!(m.queue_depth, 0);
    for shard in [0usize, 1, 3] {
        let m = sharded.metrics(shard);
        assert_eq!(m.values_rejected, 0, "shard {shard}");
        assert_eq!(m.respawns, 0, "shard {shard}");
        assert_eq!(m.pushes_accepted, 51, "shard {shard}");
    }

    let summaries = sharded.join();
    assert!(summaries.iter().all(Result::is_ok), "whole fleet joins");
}

/// Many producers, a tiny `DropNewest` queue, and a respawner cycling one
/// shard, all at once. Asserts the properties that must survive the chaos:
/// no deadlock (the test finishes), exact per-shard accounting
/// (accepted + rejected + dropped == sent), bit-identical histograms on
/// the paced shards versus an unsharded reference, drops actually observed
/// on the flooded shards, and a drained fleet at the end.
#[test]
fn concurrent_producers_respawns_and_overload_keep_the_books_straight() {
    const SHARDS: usize = 8;
    const CAPACITY: usize = 64;
    const B: usize = 4;
    const EPS: f64 = 0.1;
    const FLOOD_PER_SHARD: u64 = 50_000;

    // Attach a metrics registry so the scraped exposition can be
    // reconciled against `metrics_all()` after the chaos: both read the
    // same atomic cells, so they must agree *exactly*.
    let registry = Arc::new(MetricsRegistry::new());
    let sharded = RwLock::new(
        ShardedFixedWindow::builder(SHARDS, CAPACITY, B, EPS)
            .queue_capacity(2)
            .policy(OverloadPolicy::DropNewest)
            .registry(Arc::clone(&registry))
            .fleet_label("stress")
            .build()
            .expect("valid parameters"),
    );

    // Producers own disjoint shards (single-writer per shard, so the paced
    // shards see a deterministic record order):
    //
    // * The PACED producer (shards 0, 1) sends one batch per iteration and
    //   then snapshots the shard. The snapshot reply is a barrier, so the
    //   queue is empty before the next batch and — even with
    //   queue_capacity 2 — nothing is ever shed. Its stream includes NaNs
    //   at known positions.
    // * FLOOD producers (shards 2..8, one thread each) issue single pushes
    //   with no barrier, so the 2-slot queue sheds under pressure.
    // * The main thread RESPAWNS shard 7 repeatedly underneath its flood
    //   producer, taking the write lock each time.
    let paced_values: Vec<f64> = (0..3200)
        .map(|i| {
            if i % 37 == 0 {
                f64::NAN
            } else {
                ((i * 13 + 5) % 23) as f64
            }
        })
        .collect();

    let mut sent = [0u64; SHARDS];
    let mut respawns_done = 0u64;
    std::thread::scope(|scope| {
        let sharded = &sharded;
        let paced = &paced_values;
        let paced_handle = scope.spawn(move || {
            let mut sent_paced = 0u64;
            for shard in 0..2usize {
                for chunk in paced.chunks(16) {
                    let guard = sharded.read().expect("not poisoned");
                    guard
                        .push_batch(shard, chunk.to_vec())
                        .expect("paced shard worker alive");
                    sent_paced += chunk.len() as u64;
                    guard.snapshot(shard).expect("paced shard serves");
                }
            }
            sent_paced
        });
        let flood = |shard: usize| {
            move || {
                let mut sent_flood = 0u64;
                for i in 0..FLOOD_PER_SHARD {
                    let guard = sharded.read().expect("not poisoned");
                    guard
                        .push_to(shard, ((i * 31 + shard as u64) % 19) as f64)
                        .expect("graceful respawn never kills a worker");
                    sent_flood += 1;
                }
                sent_flood
            }
        };
        let flood_handles: Vec<_> = (2..SHARDS).map(|s| scope.spawn(flood(s))).collect();

        // Graceful respawns drain the old worker fully and seed the new
        // worker with its summary — a lossless handoff — so the
        // accounting identity below survives them.
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(5));
            let mut guard = sharded.write().expect("not poisoned");
            let report = guard.respawn_shard(7);
            assert_eq!(
                report.lost_since_checkpoint, 0,
                "graceful respawn is lossless"
            );
            respawns_done += 1;
        }

        let paced_total = paced_handle.join().expect("paced producer");
        assert_eq!(paced_total, 2 * paced_values.len() as u64);
        sent[0] = paced_values.len() as u64;
        sent[1] = paced_values.len() as u64;
        for (shard, handle) in (2..SHARDS).zip(flood_handles) {
            sent[shard] = handle.join().expect("flood producer");
        }
    });
    let sharded = sharded.into_inner().expect("not poisoned");

    // Quiesce every shard, then check the books.
    let snapshots = sharded.snapshot_all();
    assert!(snapshots.iter().all(Result::is_ok), "no worker died");
    let metrics = sharded.metrics_all();

    // Exact conservation per shard: every record sent was accepted,
    // rejected, or counted as dropped — nothing vanishes, even across
    // graceful respawns.
    for shard in 0..SHARDS {
        let m = &metrics[shard];
        assert_eq!(
            m.pushes_accepted + m.values_rejected + m.records_dropped,
            sent[shard],
            "conservation on shard {shard}: {m:?}"
        );
        assert_eq!(m.queue_depth, 0, "shard {shard} drained");
    }

    // Registry reconciliation: the Prometheus exposition is served from
    // the very same atomic cells that back `ShardMetrics`, so every
    // scraped per-shard series must equal the struct view exactly — and
    // the conservation identity must hold at the registry level too.
    let samples =
        parse_exposition(&registry.text_exposition()).expect("exposition is valid Prometheus text");
    let series = |name: &str, shard: usize| -> u64 {
        let shard_label = shard.to_string();
        let sample = samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.iter().any(|(k, v)| k == "fleet" && v == "stress")
                    && s.labels
                        .iter()
                        .any(|(k, v)| k == "shard" && *v == shard_label)
            })
            .unwrap_or_else(|| {
                panic!("missing series {name}{{fleet=\"stress\",shard=\"{shard}\"}}")
            });
        sample.value as u64
    };
    let mut scraped_accepted = 0u64;
    let mut scraped_rejected = 0u64;
    let mut scraped_dropped = 0u64;
    for shard in 0..SHARDS {
        let m = &metrics[shard];
        let accepted = series("streamhist_shard_pushes_accepted_total", shard);
        let rejected = series("streamhist_shard_values_rejected_total", shard);
        let dropped = series("streamhist_shard_records_dropped_total", shard);
        assert_eq!(
            accepted, m.pushes_accepted,
            "scraped accepted, shard {shard}"
        );
        assert_eq!(
            rejected, m.values_rejected,
            "scraped rejected, shard {shard}"
        );
        assert_eq!(dropped, m.records_dropped, "scraped dropped, shard {shard}");
        assert_eq!(
            series("streamhist_shard_respawns_total", shard),
            m.respawns,
            "scraped respawns, shard {shard}"
        );
        assert_eq!(
            series("streamhist_shard_queue_depth", shard),
            0,
            "scraped queue depth, shard {shard}"
        );
        assert_eq!(
            accepted + rejected + dropped,
            sent[shard],
            "registry-level conservation on shard {shard}"
        );
        scraped_accepted += accepted;
        scraped_rejected += rejected;
        scraped_dropped += dropped;
    }
    let total_sent: u64 = sent.iter().sum();
    assert_eq!(
        scraped_accepted + scraped_rejected + scraped_dropped,
        total_sent,
        "fleet-wide conservation from the scraped exposition alone"
    );

    // Paced shards: nothing shed, NaNs counted exactly, histogram
    // bit-identical to an unsharded single-thread reference over the same
    // (finite) stream.
    let nan_count = paced_values.iter().filter(|v| v.is_nan()).count() as u64;
    let mut reference = FixedWindowHistogram::new(CAPACITY, B, EPS);
    for &v in paced_values.iter().filter(|v| v.is_finite()) {
        reference.push(v);
    }
    let (expect_h, expect_stats) = reference.histogram_with_stats();
    for shard in 0..2usize {
        let m = &metrics[shard];
        assert_eq!(m.records_dropped, 0, "paced shard {shard} never sheds");
        assert_eq!(m.values_rejected, nan_count, "paced shard {shard}");
        let snap = snapshots[shard].as_ref().expect("alive");
        assert_eq!(snap.0, expect_h, "paced shard {shard} bit-identical");
        assert_eq!(snap.1, expect_stats, "paced shard {shard} stats");
    }

    // Flooded shards: 2-slot queues against unpaced producers must
    // actually shed somewhere in the fleet.
    let flood_dropped: u64 = (2..SHARDS).map(|s| metrics[s].records_dropped).sum();
    assert!(
        flood_dropped > 0,
        "6 x 50k unpaced pushes through 2-slot queues shed nothing"
    );

    // Respawned shard: cumulative counters survive respawns, and because
    // each graceful respawn hands the summary to the next worker
    // generation, the final summary holds every accepted record.
    assert_eq!(metrics[7].respawns, respawns_done);
    let summaries: Vec<FixedWindowHistogram> = sharded
        .join()
        .into_iter()
        .map(|r| r.expect("worker alive"))
        .collect();
    assert_eq!(
        summaries[7].total_pushed(),
        metrics[7].pushes_accepted,
        "lossless handoffs: nothing lost across worker generations"
    );
    for shard in 0..2usize {
        assert_eq!(
            summaries[shard].total_pushed(),
            metrics[shard].pushes_accepted
        );
    }
}

/// The supervisor under real concurrency: producers hammer every shard
/// while a killer thread injects worker panics and a reader takes
/// degraded snapshots, with the supervisor's probe thread respawning
/// shards underneath all of it. Asserts what must survive the chaos:
///
/// * the fleet settles back to all-Live once the kills stop (self-healing
///   actually heals);
/// * fleet-wide conservation — accepted records equal the surviving
///   summaries' totals plus everything the supervisor reported lost;
/// * every concurrent degraded snapshot's coverage is internally honest
///   (never claims more shards or records than the fleet total);
/// * the supervisor's counters reconcile exactly with the scraped
///   Prometheus exposition, and per-shard respawn counters match the
///   supervisor's restart ledger.
///
/// Override the seed with `RECOVERY_SEED=<u64>` to replay a CI failure.
#[test]
fn supervised_fleet_recovers_under_concurrent_chaos() {
    use streamhist_stream::{
        FleetHandle, ShardState, SnapshotPolicy, Supervisor, SupervisorOptions,
    };

    let seed: u64 = std::env::var("RECOVERY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0A5_7A15);

    const SHARDS: usize = 4;
    const PUSHES_PER_SHARD: u64 = 20_000;
    const KILLS: usize = 12;

    let registry = Arc::new(MetricsRegistry::new());
    let fleet = ShardedFixedWindow::builder(SHARDS, 64, 4, 0.1)
        .checkpoint_interval(32)
        .registry(Arc::clone(&registry))
        .fleet_label("supervised")
        .build()
        .expect("valid parameters");
    let handle = FleetHandle::new(fleet);
    let sup = Supervisor::start_with_metrics(
        handle.clone(),
        SupervisorOptions {
            probe_interval: Duration::from_millis(1),
            ping_timeout: Duration::from_millis(500),
            restart_burst: 4,
            // Always-full token bucket plus a zero flap window: this
            // harness kills on purpose, so rapid deaths are not flapping
            // and restarts must never be deferred or quarantined.
            restart_refill: Duration::ZERO,
            quarantine_after: 1_000_000,
            quarantine_backoff: Duration::ZERO,
            flap_window: Duration::ZERO,
        },
        &registry,
        "supervised",
    )
    .expect("valid supervisor options");

    let mut kills_delivered = 0u64;
    std::thread::scope(|scope| {
        let handle = &handle;
        for shard in 0..SHARDS {
            scope.spawn(move || {
                for i in 0..PUSHES_PER_SHARD {
                    // Sends to a dead-but-unrecovered shard fail; those
                    // records were never accepted, so the accepted-based
                    // conservation identity is untouched.
                    let v = ((i * 31 + shard as u64 * 7) % 19) as f64;
                    let _ = handle.push_to(shard, v).expect("valid index");
                    if i % 256 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Reader: concurrent degraded snapshots must always be honest,
        // even mid-kill — included never exceeds the fleet, represented
        // never exceeds the total, and the fraction stays in [0, 1].
        scope.spawn(move || {
            for _ in 0..200 {
                if let Ok((_h, _stats, cov)) =
                    handle.snapshot_global_with(SnapshotPolicy::Degraded { min_coverage: 0.0 })
                {
                    assert!(cov.shards_included >= 1, "an Ok gather includes a shard");
                    assert!(cov.shards_included <= cov.shards_total);
                    assert!(cov.records_represented <= cov.records_total);
                    let f = cov.fraction();
                    assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        // Killer: one panic every few milliseconds, round-robin. A kill
        // can race a supervisor respawn and find the worker already dead;
        // only delivered kills count.
        for k in 0..KILLS {
            std::thread::sleep(Duration::from_millis(3));
            if handle
                .inject_worker_panic(k % SHARDS)
                .expect("valid index")
                .is_ok()
            {
                kills_delivered += 1;
            }
        }
    });

    // Self-healing: with the kills stopped, the supervisor must walk the
    // whole fleet back to Live on its own.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if sup.health().iter().all(|h| h.state == ShardState::Live) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "seed {seed}: fleet not fully Live 10s after the last kill: {:?}",
            sup.health()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Quiesce every shard (the snapshot is a barrier), then freeze the
    // supervisor's ledger before reading it.
    for shard in 0..SHARDS {
        handle
            .snapshot_shard(shard)
            .expect("valid index")
            .expect("fleet healthy after recovery");
    }
    let health = sup.health();
    let sm = sup.metrics();
    sup.shutdown();

    assert!(sm.deaths > 0, "seed {seed}: no death was ever observed");
    assert!(
        sm.deaths <= kills_delivered,
        "seed {seed}: more deaths ({}) than delivered kills ({kills_delivered})",
        sm.deaths
    );
    assert_eq!(
        sm.restarts, sm.deaths,
        "seed {seed}: always-full bucket, no quarantine: every death restarts"
    );
    assert_eq!(sm.restarts_deferred, 0, "seed {seed}");
    assert_eq!(sm.quarantines, 0, "seed {seed}: zero flap window");
    assert_eq!(sm.probations, 0, "seed {seed}");

    // Per-shard: the supervisor is the only respawner, so the fleet's
    // respawn counters are exactly its restart ledger.
    let metrics = handle.metrics_all();
    for (h, m) in health.iter().zip(metrics.iter()) {
        assert_eq!(
            m.respawns, h.restarts,
            "seed {seed} shard {}: respawns == supervisor restarts",
            h.shard
        );
        assert_eq!(m.records_dropped, 0, "Block policy never sheds");
        assert_eq!(m.queue_depth, 0, "shard {} drained", h.shard);
    }
    let restarts_sum: u64 = health.iter().map(|h| h.restarts).sum();
    assert_eq!(restarts_sum, sm.restarts, "seed {seed}");

    // Registry reconciliation: the scraped supervisor series are served
    // from the same cells as the struct snapshot.
    let samples =
        parse_exposition(&registry.text_exposition()).expect("exposition is valid Prometheus text");
    let series = |name: &str| -> u64 {
        let sample = samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels
                        .iter()
                        .any(|(k, v)| k == "fleet" && v == "supervised")
            })
            .unwrap_or_else(|| panic!("missing series {name}{{fleet=\"supervised\"}}"));
        sample.value as u64
    };
    assert_eq!(series("streamhist_supervisor_deaths_total"), sm.deaths);
    assert_eq!(series("streamhist_supervisor_restarts_total"), sm.restarts);
    assert_eq!(
        series("streamhist_supervisor_records_lost_total"),
        sm.records_lost
    );
    assert_eq!(
        series("streamhist_supervisor_shards_live"),
        SHARDS as u64,
        "the last probe pass saw the whole fleet Live"
    );
    assert_eq!(series("streamhist_supervisor_quarantines_total"), 0);

    // Fleet-wide conservation: every accepted record is either in a
    // surviving summary or in the supervisor's loss ledger.
    let accepted_total: u64 = metrics.iter().map(|m| m.pushes_accepted).sum();
    let summaries: Vec<FixedWindowHistogram> = match handle.try_join() {
        Ok(s) => s.into_iter().map(|r| r.expect("worker alive")).collect(),
        Err(_) => panic!("seed {seed}: supervisor shutdown must drop its fleet handle"),
    };
    let surviving_total: u64 = summaries.iter().map(|s| s.total_pushed()).sum();
    assert_eq!(
        accepted_total,
        surviving_total + sm.records_lost,
        "seed {seed}: accepted == surviving + supervisor-reported losses"
    );
}
