//! Flat arena for bucket-boundary chains.
//!
//! Both streaming algorithms evaluate the dynamic program sparsely (only at
//! interval endpoints), so each endpoint carries the chain of bucket
//! boundaries realizing its approximate `HERROR`. Chains share structure:
//! extending a solution by one bucket appends a single node whose `prev`
//! points into the existing chain.
//!
//! Historically the nodes were `Rc<Cut>` cells. The arena replaces them
//! with a `Vec` of plain nodes addressed by [`CutId`] (a `u32` index):
//!
//! * extension is one `Vec::push` — no per-node heap allocation, no
//!   refcount traffic;
//! * nodes are `Copy` data with index links, so every type holding chains
//!   is `Send + 'static` and summaries can move across threads;
//! * dropped chains are reclaimed in bulk by [`compact`](CutArena::compact)
//!   (mark-and-move from the live roots), instead of by recursive `Rc`
//!   teardown.
//!
//! The queues collectively keep `O(B · q)` nodes live; the online algorithm
//! triggers compaction generationally (when the arena has doubled since the
//! last collection), keeping total footprint proportional to the live set.

use streamhist_core::{Bucket, Histogram, StreamhistError};

/// Sentinel for "no predecessor" in a node's `prev` link.
const NONE: u32 = u32::MAX;

/// Handle to one chain node in a [`CutArena`].
///
/// Plain index — `Copy`, 4 bytes, meaningful only for the arena that issued
/// it (and invalidated by that arena's [`CutArena::compact`], which returns
/// a [`CutRemap`] for translating retained handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CutId(u32);

impl CutId {
    /// The raw arena index (checkpoint serialization only — raw indices
    /// are meaningless outside the arena that issued them).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a serialized raw index. The caller is
    /// responsible for range-checking against the owning arena (the
    /// checkpoint decoder validates every link).
    pub fn from_raw(raw: u32) -> Self {
        Self(raw)
    }
}

/// One node of a boundary chain: the inclusive end index of a bucket, the
/// window-framed prefix sum of values through that index (used to derive
/// mean heights without re-reading data), and the link toward index 0.
#[derive(Debug, Clone, Copy)]
struct CutNode {
    /// Inclusive end index of this bucket.
    end: usize,
    /// Sum of values over `[0, end]` in the window frame.
    sum_through: f64,
    /// Arena index of the preceding bucket's node, or [`NONE`] when this is
    /// the first bucket (covering `[0, end]`).
    prev: u32,
}

/// Index-linked storage for every boundary chain of one summary.
#[derive(Debug, Clone, Default)]
pub(crate) struct CutArena {
    nodes: Vec<CutNode>,
    /// Largest node count ever held (across compactions).
    peak: usize,
    /// Number of compactions performed.
    compactions: usize,
}

/// Old-index → new-index translation produced by [`CutArena::compact`].
/// Every root passed to `compact` (and every node reachable from one) has
/// an entry; looking up a handle that was not retained is a logic error.
pub(crate) struct CutRemap {
    map: Vec<u32>,
}

impl CutRemap {
    /// Translates a pre-compaction handle to its post-compaction value.
    pub fn remap(&self, id: CutId) -> CutId {
        let new = self.map[id.0 as usize];
        debug_assert!(
            new != NONE,
            "remapped a chain that was not rooted at compaction"
        );
        CutId(new)
    }
}

impl CutArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of node slots currently occupied (live + garbage since the
    /// last compaction).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Largest occupancy ever reached.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of compactions performed so far.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    fn alloc(&mut self, end: usize, sum_through: f64, prev: u32) -> CutId {
        let id = self.nodes.len();
        assert!(id < NONE as usize, "cut arena exceeded u32 addressing");
        self.nodes.push(CutNode {
            end,
            sum_through,
            prev,
        });
        self.peak = self.peak.max(self.nodes.len());
        CutId(id as u32)
    }

    /// A single-bucket chain covering `[0, end]`.
    pub fn root(&mut self, end: usize, sum_through: f64) -> CutId {
        self.alloc(end, sum_through, NONE)
    }

    /// Extends `prev` with a bucket ending at `end`.
    pub fn extend(&mut self, prev: CutId, end: usize, sum_through: f64) -> CutId {
        debug_assert!(
            self.nodes[prev.0 as usize].end < end,
            "chain ends must strictly increase"
        );
        self.alloc(end, sum_through, prev.0)
    }

    /// The inclusive end index of the chain's last bucket.
    pub fn end(&self, id: CutId) -> usize {
        self.nodes[id.0 as usize].end
    }

    /// Number of buckets in the chain.
    #[cfg(test)]
    pub fn chain_len(&self, id: CutId) -> usize {
        let mut n = 1;
        let mut cur = &self.nodes[id.0 as usize];
        while cur.prev != NONE {
            n += 1;
            cur = &self.nodes[cur.prev as usize];
        }
        n
    }

    /// The longest suffix-truncation of the chain whose cuts are all
    /// strictly below `below`, or `None` if no cut survives.
    ///
    /// Used by the window algorithms' straddling-interval candidate (see
    /// `kernel.rs`): an endpoint chain describing `[0, e]` with `e >= c`
    /// must be converted into a valid partition of a shorter prefix.
    /// Truncation never increases the realized SSE of the retained region
    /// because dropping a suffix only removes buckets, and clipping the
    /// straddling bucket to a sub-range cannot increase its SSE.
    pub fn truncate_below(&self, id: CutId, below: usize) -> Option<CutId> {
        let mut cur = id.0;
        loop {
            let node = &self.nodes[cur as usize];
            if node.end < below {
                return Some(CutId(cur));
            }
            if node.prev == NONE {
                return None;
            }
            cur = node.prev;
        }
    }

    /// Materializes the chain into a [`Histogram`] over `[0, end]`,
    /// deriving each bucket's height as the mean of its values from the
    /// stored prefix sums.
    pub fn materialize(&self, id: CutId) -> Histogram {
        let mut cuts: Vec<(usize, f64)> = Vec::new();
        let mut cur = id.0;
        loop {
            let node = &self.nodes[cur as usize];
            cuts.push((node.end, node.sum_through));
            if node.prev == NONE {
                break;
            }
            cur = node.prev;
        }
        cuts.reverse();
        let mut buckets = Vec::with_capacity(cuts.len());
        let mut prev_end_plus1 = 0usize;
        let mut prev_sum = 0.0f64;
        for (end, sum_through) in cuts {
            let len = (end + 1 - prev_end_plus1) as f64;
            buckets.push(Bucket::new(
                prev_end_plus1,
                end,
                (sum_through - prev_sum) / len,
            ));
            prev_end_plus1 = end + 1;
            prev_sum = sum_through;
        }
        let domain_len = self.end(id) + 1;
        Histogram::new(domain_len, buckets).expect("chains always tile the prefix")
    }

    /// The node table as `(end, sum_through, prev)` triples (`prev` is
    /// [`NONE`] for chain heads), for checkpoint serialization. Callers
    /// compact first so the table holds exactly the live set.
    pub fn export_nodes(&self) -> Vec<(usize, f64, u32)> {
        self.nodes
            .iter()
            .map(|n| (n.end, n.sum_through, n.prev))
            .collect()
    }

    /// Rebuilds an arena from serialized parts, validating the structural
    /// invariants compaction guarantees: links point strictly backwards
    /// (topological order) and chain ends strictly increase along every
    /// link.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] on a forward/self link, an
    /// out-of-range link, or non-increasing chain ends.
    pub fn from_checkpoint_parts(
        nodes: Vec<(usize, f64, u32)>,
        peak: usize,
        compactions: usize,
    ) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        if nodes.len() >= NONE as usize {
            return Err(corrupt("arena exceeds u32 addressing"));
        }
        for (i, &(end, _, prev)) in nodes.iter().enumerate() {
            if prev != NONE {
                if prev as usize >= i {
                    return Err(corrupt("arena link is not topologically ordered"));
                }
                if nodes[prev as usize].0 >= end {
                    return Err(corrupt("chain ends must strictly increase"));
                }
            }
        }
        Ok(Self {
            nodes: nodes
                .into_iter()
                .map(|(end, sum_through, prev)| CutNode {
                    end,
                    sum_through,
                    prev,
                })
                .collect(),
            peak,
            compactions,
        })
    }

    /// Mark-and-move collection: retains exactly the nodes reachable from
    /// `roots`, preserving topological order (a node's `prev` always moves
    /// before the node), and returns the index translation for the
    /// surviving handles. `O(len)` time and space.
    pub fn compact(&mut self, roots: &[CutId]) -> CutRemap {
        let mut map = vec![NONE; self.nodes.len()];
        let mut kept: Vec<CutNode> = Vec::new();
        let mut pending: Vec<u32> = Vec::new();
        for &root in roots {
            // Walk toward index 0 until an already-moved ancestor (or the
            // chain head), then move the collected run ancestors-first so
            // every `prev` is remapped before its dependents.
            let mut cur = root.0;
            while map[cur as usize] == NONE {
                pending.push(cur);
                let prev = self.nodes[cur as usize].prev;
                if prev == NONE {
                    break;
                }
                cur = prev;
            }
            while let Some(old) = pending.pop() {
                let node = self.nodes[old as usize];
                let new_prev = if node.prev == NONE {
                    NONE
                } else {
                    map[node.prev as usize]
                };
                debug_assert!(node.prev == NONE || new_prev != NONE);
                map[old as usize] = kept.len() as u32;
                kept.push(CutNode {
                    prev: new_prev,
                    ..node
                });
            }
        }
        self.nodes = kept;
        self.compactions += 1;
        CutRemap { map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_chain_is_single_bucket() {
        let mut a = CutArena::new();
        let c = a.root(4, 10.0);
        let h = a.materialize(c);
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.buckets()[0].height, 2.0);
        assert_eq!(h.domain_len(), 5);
    }

    #[test]
    fn extend_builds_mean_heights_from_prefix_sums() {
        // data: [1, 1, 4, 4, 4] -> cuts at 1 (sum 2) and 4 (sum 14)
        let mut a = CutArena::new();
        let base = a.root(1, 2.0);
        let c = a.extend(base, 4, 14.0);
        let h = a.materialize(c);
        assert_eq!(h.bucket_ends(), vec![1, 4]);
        assert_eq!(h.buckets()[0].height, 1.0);
        assert_eq!(h.buckets()[1].height, 4.0);
    }

    #[test]
    fn chain_len_counts_buckets() {
        let mut a = CutArena::new();
        let c0 = a.root(0, 1.0);
        let c1 = a.extend(c0, 2, 3.0);
        let c2 = a.extend(c1, 5, 9.0);
        assert_eq!(a.chain_len(c2), 3);
    }

    #[test]
    fn truncate_below_keeps_strictly_smaller_cuts() {
        let mut a = CutArena::new();
        let c0 = a.root(1, 2.0);
        let c1 = a.extend(c0, 3, 6.0);
        let c2 = a.extend(c1, 7, 20.0);
        assert_eq!(a.truncate_below(c2, 7).map(|t| a.end(t)), Some(3));
        assert_eq!(a.truncate_below(c2, 4).map(|t| a.end(t)), Some(3));
        assert_eq!(a.truncate_below(c2, 3).map(|t| a.end(t)), Some(1));
        assert_eq!(a.truncate_below(c2, 1).map(|t| a.end(t)), None);
        assert_eq!(a.truncate_below(c2, 0).map(|t| a.end(t)), None);
    }

    #[test]
    fn sharing_is_structural() {
        let mut a = CutArena::new();
        let base = a.root(0, 1.0);
        let x = a.extend(base, 3, 4.0);
        let y = a.extend(base, 5, 6.0);
        // Two extensions of the same base add one node each.
        assert_eq!(a.len(), 3);
        assert_eq!(a.chain_len(x), 2);
        assert_eq!(a.chain_len(y), 2);
    }

    #[test]
    fn compact_drops_garbage_and_preserves_chains() {
        let mut a = CutArena::new();
        let g1 = a.root(9, 90.0); // garbage
        let base = a.root(1, 2.0);
        let _g2 = a.extend(g1, 12, 100.0); // garbage
        let live = a.extend(base, 4, 14.0);
        assert_eq!(a.len(), 4);

        let before = a.materialize(live);
        let remap = a.compact(&[live]);
        let live = remap.remap(live);
        assert_eq!(a.len(), 2);
        assert_eq!(a.peak(), 4);
        assert_eq!(a.compactions(), 1);
        assert_eq!(a.materialize(live), before);

        // The arena stays fully usable after compaction.
        let ext = a.extend(live, 7, 20.0);
        assert_eq!(a.materialize(ext).bucket_ends(), vec![1, 4, 7]);
    }

    #[test]
    fn compact_shares_common_prefixes_once() {
        let mut a = CutArena::new();
        let base = a.root(0, 1.0);
        let x = a.extend(base, 3, 4.0);
        let y = a.extend(base, 5, 6.0);
        let remap = a.compact(&[x, y]);
        assert_eq!(a.len(), 3); // base kept once
        assert_eq!(a.materialize(remap.remap(x)).bucket_ends(), vec![0, 3]);
        assert_eq!(a.materialize(remap.remap(y)).bucket_ends(), vec![0, 5]);
    }

    #[test]
    fn compact_with_duplicate_roots() {
        let mut a = CutArena::new();
        let c = a.root(2, 6.0);
        let remap = a.compact(&[c, c, c]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.end(remap.remap(c)), 2);
    }
}
