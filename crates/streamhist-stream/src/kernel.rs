//! The shared streaming-DP kernel.
//!
//! Every streaming algorithm in this crate approximates the same dynamic
//! program — `HERROR[c, k]`, the minimum SSE of representing the prefix
//! `[0, c]` with at most `k` buckets — evaluated sparsely over per-level
//! interval queues with `(1+δ)` error growth (paper §4.2.1). Historically
//! the agglomerative (§4.3) and fixed-window (§4.5) implementations each
//! carried their own copy of the minimization and queue maintenance; this
//! module is the single implementation both build on, generic over a
//! [`PrefixProvider`] (absolute running totals for the whole-stream
//! algorithm, rebased `SUM'`/`SQSUM'` stores for the window algorithms).
//!
//! Two driving modes share [`Kernel::herror_eval`]:
//!
//! * **online** ([`Kernel::push_point`]) — the agglomerative recurrence:
//!   each arriving point evaluates every level at the newest index only,
//!   seeding the minimization with the level-`(k−1)` value ("fewer buckets
//!   are always admissible"), then extends-or-starts the tail interval of
//!   each queue. Queues persist across pushes.
//! * **batch** ([`Kernel::build`]) — the fixed-window `CreateList`
//!   procedure: queues are rebuilt per materialization by binary search
//!   over the monotone `HERROR[·, k]`, and the minimization additionally
//!   considers the single-bucket candidate and the clipped candidate of
//!   the interval straddling the query position.
//!
//! Boundary chains live in a [`CutArena`] — flat, index-linked, `Send` —
//! and the online mode reclaims dropped chains generationally via
//! [`CutArena::compact`]. All work is accounted in [`KernelStats`].

use crate::arena::{CutArena, CutId};
use std::sync::{Arc, Mutex, PoisonError};
use streamhist_core::checkpoint::{FrameReader, FrameWriter};
use streamhist_core::{BatchOutcome, Histogram, PrefixProvider, StreamhistError};

/// Compaction is considered once the arena holds at least this many nodes
/// (below that, garbage is cheaper than collecting it).
const COMPACT_MIN_NODES: usize = 1024;

/// An interval endpoint retained in a queue: the point's index, the DP
/// cumulative sums through it (paper: "store the values SUM[j] and
/// SQSUM[j]"; captured in the provider's DP frame so endpoint-vs-query
/// differences are exact), its approximate `HERROR` at this queue's level,
/// and the boundary chain realizing that error.
#[derive(Debug, Clone)]
pub(crate) struct Endpoint {
    pub idx: usize,
    pub sum: f64,
    pub sqsum: f64,
    pub herror: f64,
    pub chain: CutId,
}

/// One queue interval `[a_ℓ, b_ℓ]`: the `HERROR` at its start (the `(1+δ)`
/// growth anchor) and the full endpoint record at its (advancing) end.
#[derive(Debug, Clone)]
pub(crate) struct Interval {
    pub start_herror: f64,
    pub end: Endpoint,
}

/// Diagnostics for one kernel — cumulative since creation for the online
/// mode, per-materialization for the batch mode.
///
/// The `Default` value is the all-zero record, which is the identity for
/// [`absorb`](Self::absorb)-based fleet aggregation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Interval count per level queue (`B−1` entries); the paper bounds
    /// each by `O(δ⁻¹ log n)` with "hidden constant about 3".
    pub queue_sizes: Vec<usize>,
    /// Number of `HERROR[c, k]` evaluations performed.
    pub herror_evals: usize,
    /// Number of binary searches performed (one per interval created;
    /// always 0 in the online mode, which never searches).
    pub binary_searches: usize,
    /// The current (approximate) `HERROR[n, B]` of the summary.
    pub herror: f64,
    /// Boundary-chain nodes currently held by the arena (live chains plus
    /// garbage not yet collected).
    pub arena_nodes: usize,
    /// Largest arena occupancy ever reached.
    pub arena_peak: usize,
    /// Number of arena compactions performed.
    pub compactions: usize,
    /// Number of prefix-sum anchor rebases performed by the backing store.
    pub rebases: usize,
}

impl KernelStats {
    /// Folds another kernel's stats into this one, for fleet-level
    /// reporting across shards (the sharded serving layer and the
    /// `sharded_scaling` bench aggregate per-shard stats this way).
    ///
    /// Work counters (`herror_evals`, `binary_searches`, `compactions`,
    /// `rebases`) and `arena_nodes` add; `queue_sizes` add elementwise
    /// (levels the shorter record lacks count as 0); `herror` adds (the
    /// shards partition the key space, so total SSE across the fleet is
    /// the sum of per-shard SSEs); `arena_peak` takes the maximum (it is a
    /// high-water mark, not a flow).
    pub fn absorb(&mut self, other: &KernelStats) {
        if self.queue_sizes.len() < other.queue_sizes.len() {
            self.queue_sizes.resize(other.queue_sizes.len(), 0);
        }
        for (mine, theirs) in self.queue_sizes.iter_mut().zip(&other.queue_sizes) {
            *mine += theirs;
        }
        self.herror_evals += other.herror_evals;
        self.binary_searches += other.binary_searches;
        self.herror += other.herror;
        self.arena_nodes += other.arena_nodes;
        self.arena_peak = self.arena_peak.max(other.arena_peak);
        self.compactions += other.compactions;
        self.rebases += other.rebases;
    }
}

/// One materialized build keyed by the generation that produced it.
#[derive(Debug, Clone)]
struct CachedBuild {
    generation: u64,
    hist: Arc<Histogram>,
    stats: KernelStats,
}

/// Generation-counted snapshot cache: `histogram()` between mutations
/// returns a cheap [`Arc`] clone of the last build instead of re-running
/// the DP / re-extracting buckets.
///
/// Each summary keeps a monotone `generation` counter bumped on **every**
/// mutation (push, slab, eviction, reset); a cached build is served only
/// while the counter still matches the one it was built under, so staleness
/// is impossible by construction. The slot lives behind a [`Mutex`] (not a
/// `RefCell`) so summaries stay `Send`/`Sync`-compatible; the lock is
/// uncontended in practice because queries and mutations already require
/// `&self`/`&mut self` on the owning summary.
#[derive(Debug, Default)]
pub(crate) struct SnapshotCache {
    slot: Mutex<Option<CachedBuild>>,
}

impl Clone for SnapshotCache {
    fn clone(&self) -> Self {
        let slot = self
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        Self {
            slot: Mutex::new(slot),
        }
    }
}

impl SnapshotCache {
    /// Returns the cached build for `generation`, or runs `build`, caches
    /// its result under `generation`, and returns it.
    pub fn get_or_build(
        &self,
        generation: u64,
        build: impl FnOnce() -> (Histogram, KernelStats),
    ) -> (Arc<Histogram>, KernelStats) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(c) = slot.as_ref() {
            if c.generation == generation {
                return (Arc::clone(&c.hist), c.stats.clone());
            }
        }
        let (h, stats) = build();
        let hist = Arc::new(h);
        *slot = Some(CachedBuild {
            generation,
            hist: Arc::clone(&hist),
            stats: stats.clone(),
        });
        (hist, stats)
    }

    /// Returns the cached build only if it was produced under
    /// `generation`, without building anything on a miss. The sharded
    /// gather path uses this to skip the cross-shard snapshot barrier
    /// entirely when nothing has changed since the last global build.
    pub fn try_get(&self, generation: u64) -> Option<(Arc<Histogram>, KernelStats)> {
        let slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        slot.as_ref()
            .filter(|c| c.generation == generation)
            .map(|c| (Arc::clone(&c.hist), c.stats.clone()))
    }

    /// Drops any cached build (used by `reset`, whose generation bump
    /// already suffices — clearing additionally releases the memory).
    pub fn clear(&self) {
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Whole-stream running totals: the [`PrefixProvider`] of the online mode.
///
/// The agglomerative recurrence only ever evaluates the DP at the newest
/// index, so absolute `SUM[j]`/`SQSUM[j]` need not be stored per index —
/// three scalars suffice. Consequently this provider answers queries **only
/// at the newest index** (`len() − 1`); the online kernel never asks for
/// any other.
#[derive(Debug, Clone, Default)]
pub(crate) struct StreamTotals {
    count: usize,
    sum: f64,
    sqsum: f64,
}

impl StreamTotals {
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sqsum += v * v;
    }

    /// Serializes the running totals into an open checkpoint frame.
    pub fn encode_state(&self, w: &mut FrameWriter) {
        w.put_usize(self.count);
        w.put_f64(self.sum);
        w.put_f64(self.sqsum);
    }

    /// Reads running totals back out of a checkpoint frame.
    pub fn decode_state(r: &mut FrameReader<'_>) -> Result<Self, StreamhistError> {
        let count = r.get_usize()?;
        let sum = r.get_f64()?;
        let sqsum = r.get_f64()?;
        if sqsum < 0.0 {
            return Err(StreamhistError::CorruptCheckpoint {
                reason: "negative sum of squares",
            });
        }
        Ok(Self { count, sum, sqsum })
    }
}

impl PrefixProvider for StreamTotals {
    fn len(&self) -> usize {
        self.count
    }

    fn dp_sums(&self, idx: usize) -> (f64, f64) {
        debug_assert_eq!(
            idx + 1,
            self.count,
            "StreamTotals only serves the newest index"
        );
        (self.sum, self.sqsum)
    }

    fn chain_sum(&self, idx: usize) -> f64 {
        debug_assert_eq!(
            idx + 1,
            self.count,
            "StreamTotals only serves the newest index"
        );
        self.sum
    }

    fn head_sqerror(&self, idx: usize) -> f64 {
        debug_assert_eq!(
            idx + 1,
            self.count,
            "StreamTotals only serves the newest index"
        );
        (self.sqsum - self.sum * self.sum / self.count as f64).max(0.0)
    }
}

/// Interval queues + chain arena + work counters: the state of one
/// streaming DP.
#[derive(Debug, Clone)]
pub(crate) struct Kernel {
    b: usize,
    delta: f64,
    pub arena: CutArena,
    /// `queues[k-1]` is the interval queue for level `k` (`k = 1 ..= b−1`):
    /// preallocated and persistent in online mode, grown level by level in
    /// batch mode.
    queues: Vec<Vec<Interval>>,
    /// `(HERROR[j, B], chain)` at the most recent evaluation point `j`.
    pub top: Option<(f64, CutId)>,
    evals: usize,
    searches: usize,
    /// Arena occupancy right after the last compaction (the generational
    /// baseline: collect again once the arena has doubled).
    last_live: usize,
}

impl Kernel {
    /// An online-mode kernel: `b−1` persistent (initially empty) queues.
    pub fn new_online(b: usize, delta: f64) -> Self {
        Self {
            b,
            delta,
            arena: CutArena::new(),
            queues: (1..b).map(|_| Vec::new()).collect(),
            top: None,
            evals: 0,
            searches: 0,
            last_live: 0,
        }
    }

    /// A batch-mode kernel: queues are appended by [`Self::build`] as each
    /// level's `CreateList` finishes.
    fn new_batch(b: usize, delta: f64) -> Self {
        Self {
            b,
            delta,
            arena: CutArena::new(),
            queues: Vec::with_capacity(b.saturating_sub(1)),
            top: None,
            evals: 0,
            searches: 0,
            last_live: 0,
        }
    }

    /// The bucket budget `B` this kernel was configured with.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The interval growth factor `δ` this kernel was configured with.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Current interval-queue lengths per level (`B−1` entries).
    pub fn queue_sizes(&self) -> Vec<usize> {
        self.queues.iter().map(Vec::len).collect()
    }

    /// Snapshot of the work counters; `rebases` is supplied by the caller
    /// (the backing store owns that counter).
    pub fn stats(&self, rebases: usize) -> KernelStats {
        KernelStats {
            queue_sizes: self.queue_sizes(),
            herror_evals: self.evals,
            binary_searches: self.searches,
            herror: self.top.as_ref().map_or(0.0, |(h, _)| *h),
            arena_nodes: self.arena.len(),
            arena_peak: self.arena.peak(),
            compactions: self.arena.compactions(),
            rebases,
        }
    }

    /// Approximate `HERROR[c, k]` (window-relative, 0-based `c`): the
    /// minimum SSE of representing `[0, c]` with at most `k` buckets,
    /// together with a boundary chain whose realized SSE never exceeds the
    /// returned value.
    ///
    /// Candidates, in evaluation order:
    /// 1. the seed: either the caller-provided `init` (online mode passes
    ///    the level-`(k−1)` value — fewer buckets are always admissible
    ///    under at-most-B semantics) or, when `init` is `None` (batch
    ///    mode), the single bucket `[0, c]` (the `i = −1` split);
    /// 2. with `straddle` (batch mode only), for the first level-`k−1`
    ///    interval whose endpoint is at or past `c` (the interval
    ///    *straddling* the query position), the split `i = c−1`: its true
    ///    `HERROR[c−1, k−1]` is not stored, but the queue invariant bounds
    ///    it by the interval's endpoint error, and the final bucket `{c}`
    ///    costs 0 — so `e.herror` itself is a sound upper-bound candidate.
    ///    Its chain is the endpoint chain clipped below `c−1` (clipping a
    ///    bucket to a sub-range cannot increase its SSE, so chain soundness
    ///    is preserved). Without this candidate the approximation guarantee
    ///    breaks whenever the true split falls inside a straddling
    ///    interval, because candidates 3 stop one full interval short of
    ///    `c`;
    /// 3. every level-`k−1` endpoint `e` with `e.idx < c`, costed as
    ///    `HERROR[e, k−1] + SQERROR[e+1, c]`, scanned nearest-first:
    ///    `SQERROR[e+1, c]` is non-increasing in `e.idx`, so once it alone
    ///    reaches the best value so far, every farther candidate is
    ///    provably no better and the scan stops without affecting the
    ///    computed minimum.
    pub fn herror_eval<P: PrefixProvider>(
        &mut self,
        p: &P,
        c: usize,
        k: usize,
        init: Option<(f64, CutId)>,
        straddle: bool,
    ) -> (f64, CutId) {
        let Self {
            queues,
            arena,
            evals,
            ..
        } = self;
        *evals += 1;
        let sum0c = p.chain_sum(c);
        let (s_c, q_c) = p.dp_sums(c);
        let (mut best, mut best_chain) = match init {
            Some(seed) => seed,
            None => (p.head_sqerror(c), arena.root(c, sum0c)),
        };
        if k >= 2 {
            let queue = &queues[k - 2];
            // Endpoints are sorted by index; pp = first endpoint at or past
            // c (in online mode every endpoint precedes c, so pp = len).
            let pp = queue.partition_point(|iv| iv.end.idx < c);
            if straddle {
                // Straddling interval (needs c >= 1; for c == 0 the
                // single-bucket candidate is the whole search space).
                if let Some(iv) = queue.get(pp) {
                    let e = &iv.end;
                    if c >= 1 && e.herror < best {
                        best = e.herror;
                        let sum_prev = p.chain_sum(c - 1);
                        let clipped = match arena.truncate_below(e.chain, c - 1) {
                            Some(t) => arena.extend(t, c - 1, sum_prev),
                            None => arena.root(c - 1, sum_prev),
                        };
                        best_chain = arena.extend(clipped, c, sum0c);
                    }
                }
            }
            for iv in queue[..pp].iter().rev() {
                let e = &iv.end;
                debug_assert!(e.idx < c);
                let len = (c - e.idx) as f64;
                let s = s_c - e.sum;
                let q = q_c - e.sqsum;
                let sq = (q - s * s / len).max(0.0);
                if sq >= best {
                    break;
                }
                let val = e.herror + sq;
                if val < best {
                    best = val;
                    best_chain = arena.extend(e.chain, c, sum0c);
                }
            }
        }
        (best, best_chain)
    }

    /// Online mode: consumes the newest point of `p` (index `len − 1`),
    /// re-evaluating every level there and extending-or-starting each
    /// queue's tail interval (paper Fig. 3 lines 7-10). Cost `O(B · q)`.
    pub fn push_point<P: PrefixProvider>(&mut self, p: &P) {
        // Phase tracing (`obs` feature): one relaxed load when no tracer
        // is installed; timing + eval-delta accounting when one is.
        #[cfg(feature = "obs")]
        let trace = crate::telemetry::active_kernel_tracer()
            .map(|t| (t, self.evals, std::time::Instant::now()));

        let c = p.len() - 1;
        self.maybe_compact();

        // HERROR[c, k] and its realizing chain, for k = 1 ..= b.
        let mut herrs: Vec<(f64, CutId)> = Vec::with_capacity(self.b);
        let h1 = p.head_sqerror(c);
        herrs.push((h1, self.arena.root(c, p.chain_sum(c))));
        for k in 2..=self.b {
            let hk = self.herror_eval(p, c, k, Some(herrs[k - 2]), false);
            herrs.push(hk);
        }

        // Update the queues: start a new interval when the error has grown
        // past the (1+δ) anchor, else advance the last interval's endpoint.
        let (s_c, q_c) = p.dp_sums(c);
        for k in 1..self.b {
            let (h, chain) = herrs[k - 1];
            let ep = Endpoint {
                idx: c,
                sum: s_c,
                sqsum: q_c,
                herror: h,
                chain,
            };
            let queue = &mut self.queues[k - 1];
            match queue.last_mut() {
                Some(last) if h <= (1.0 + self.delta) * last.start_herror => last.end = ep,
                _ => queue.push(Interval {
                    start_herror: h,
                    end: ep,
                }),
            }
        }

        self.top = Some(herrs[self.b - 1]);

        #[cfg(feature = "obs")]
        if let Some((t, evals0, start)) = trace {
            t.pushes.inc();
            t.evals.inc_by((self.evals - evals0) as u64);
            t.push_seconds.record(start.elapsed());
        }
    }

    /// Online mode, slab-driven: absorbs a batch of values into `totals`
    /// and the queues with partial-acceptance semantics (non-finite values
    /// are rejected and counted, the rest ingested in order).
    ///
    /// The online recurrence must still evaluate every level at every new
    /// index — skipping points would change the queues and break the
    /// bit-identity with per-point pushes — so the win here is the hoisted
    /// per-value validation/dispatch, not a deferred rebuild. (The deferred
    /// `CreateList`-at-query-time rebuild is the *batch* driving mode,
    /// [`Kernel::build`], which the window summaries already use; their
    /// slab fast path lives in the prefix stores.)
    pub fn push_slab(&mut self, totals: &mut StreamTotals, values: &[f64]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for &v in values {
            if v.is_finite() {
                totals.push(v);
                self.push_point(totals);
                out.accepted += 1;
            } else {
                out.rejected += 1;
            }
        }
        out
    }

    /// Materializes the chain of the current best solution (empty-domain
    /// histogram before any point was pushed).
    pub fn materialize_top(&self) -> Histogram {
        match &self.top {
            None => Histogram::new(0, Vec::new()).expect("empty domain is always valid"),
            Some((_, chain)) => self.arena.materialize(*chain),
        }
    }

    /// Collects arena garbage once the arena has doubled since the last
    /// collection (and is past [`COMPACT_MIN_NODES`]). Replaced endpoints
    /// and superseded `top` chains are the garbage; roots are every queue
    /// endpoint's chain plus `top`.
    fn maybe_compact(&mut self) {
        if self.arena.len() < COMPACT_MIN_NODES.max(2 * self.last_live) {
            return;
        }
        self.compact_now();
    }

    /// Collects arena garbage immediately, remapping every retained handle.
    pub fn compact_now(&mut self) {
        #[cfg(feature = "obs")]
        if let Some(t) = crate::telemetry::active_kernel_tracer() {
            t.compactions.inc();
        }
        let mut roots: Vec<CutId> = self
            .queues
            .iter()
            .flat_map(|q| q.iter().map(|iv| iv.end.chain))
            .collect();
        if let Some((_, chain)) = self.top {
            roots.push(chain);
        }
        let remap = self.arena.compact(&roots);
        for queue in &mut self.queues {
            for iv in queue {
                iv.end.chain = remap.remap(iv.end.chain);
            }
        }
        if let Some((_, chain)) = &mut self.top {
            *chain = remap.remap(*chain);
        }
        self.last_live = self.arena.len();
    }

    /// Serializes the full online-DP state into an open checkpoint frame.
    ///
    /// The kernel is cloned and compacted first so the node table holds
    /// exactly the live chain set in topological order — the restored
    /// arena is garbage-free, which changes *occupancy statistics* but not
    /// a single DP value: every queue endpoint's `herror`/`sum`/`sqsum`
    /// and every chain's boundary indices round-trip bit-exactly, so the
    /// restored kernel's histograms and all future pushes are
    /// bit-identical to the original's. The original's `peak`/
    /// `compactions` counters are carried through for stat continuity.
    pub fn encode_state(&self, w: &mut FrameWriter) {
        let mut live = self.clone();
        live.compact_now();
        w.put_usize(self.b);
        w.put_f64(self.delta);
        w.put_usize(self.evals);
        w.put_usize(self.searches);
        w.put_usize(self.arena.peak());
        w.put_usize(self.arena.compactions());
        let nodes = live.arena.export_nodes();
        w.put_usize(nodes.len());
        for (end, sum_through, prev) in nodes {
            w.put_usize(end);
            w.put_f64(sum_through);
            // NONE maps to 0 so live links stay compact varints.
            w.put_varint(if prev == u32::MAX {
                0
            } else {
                u64::from(prev) + 1
            });
        }
        w.put_usize(live.queues.len());
        for queue in &live.queues {
            w.put_usize(queue.len());
            for iv in queue {
                w.put_f64(iv.start_herror);
                w.put_usize(iv.end.idx);
                w.put_f64(iv.end.sum);
                w.put_f64(iv.end.sqsum);
                w.put_f64(iv.end.herror);
                w.put_varint(u64::from(iv.end.chain.raw()));
            }
        }
        match live.top {
            None => w.put_u8(0),
            Some((h, chain)) => {
                w.put_u8(1);
                w.put_f64(h);
                w.put_varint(u64::from(chain.raw()));
            }
        }
    }

    /// Rebuilds an online-mode kernel from a checkpoint frame, validating
    /// every structural invariant the DP relies on (queue count matches
    /// `b`, endpoint indices strictly increase per queue, every chain
    /// handle addresses a node, errors are non-negative).
    ///
    /// # Errors
    ///
    /// [`StreamhistError::CorruptCheckpoint`] on any violated invariant.
    pub fn decode_state(r: &mut FrameReader<'_>) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        let b = r.get_usize()?;
        if b == 0 {
            return Err(corrupt("kernel bucket budget must be positive"));
        }
        let delta = r.get_f64()?;
        if delta <= 0.0 {
            return Err(corrupt("kernel delta must be positive"));
        }
        let evals = r.get_usize()?;
        let searches = r.get_usize()?;
        let peak = r.get_usize()?;
        let compactions = r.get_usize()?;
        let node_count = r.get_count(3)?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let end = r.get_usize()?;
            let sum_through = r.get_f64()?;
            let prev = match r.get_varint()? {
                0 => u32::MAX,
                p => u32::try_from(p - 1).map_err(|_| corrupt("arena link exceeds u32 range"))?,
            };
            nodes.push((end, sum_through, prev));
        }
        let arena = CutArena::from_checkpoint_parts(nodes, peak, compactions)?;
        let chain_of = |raw: u64| -> Result<CutId, StreamhistError> {
            if raw >= arena.len() as u64 {
                return Err(corrupt("chain handle addresses no arena node"));
            }
            #[allow(clippy::cast_possible_truncation)]
            Ok(CutId::from_raw(raw as u32))
        };
        let queue_count = r.get_count(1)?;
        if queue_count != b - 1 {
            return Err(corrupt("queue count does not match bucket budget"));
        }
        let mut queues = Vec::with_capacity(queue_count);
        for _ in 0..queue_count {
            // An interval's minimum encoding is 34 bytes: four f64s plus
            // two varints of at least one byte each (idx and chain are
            // both small for early positions). 35 falsely rejected valid
            // frames with dense queues (tiny eps => interval per point).
            let len = r.get_count(34)?;
            let mut queue: Vec<Interval> = Vec::with_capacity(len);
            for _ in 0..len {
                let start_herror = r.get_f64()?;
                let idx = r.get_usize()?;
                let sum = r.get_f64()?;
                let sqsum = r.get_f64()?;
                let herror = r.get_f64()?;
                let chain = chain_of(r.get_varint()?)?;
                if start_herror < 0.0 || herror < 0.0 {
                    return Err(corrupt("negative DP error"));
                }
                if let Some(last) = queue.last() {
                    if idx <= last.end.idx {
                        return Err(corrupt("queue endpoints must strictly increase"));
                    }
                }
                queue.push(Interval {
                    start_herror,
                    end: Endpoint {
                        idx,
                        sum,
                        sqsum,
                        herror,
                        chain,
                    },
                });
            }
            queues.push(queue);
        }
        let top = match r.get_u8()? {
            0 => None,
            1 => {
                let h = r.get_f64()?;
                if h < 0.0 {
                    return Err(corrupt("negative DP error"));
                }
                Some((h, chain_of(r.get_varint()?)?))
            }
            _ => return Err(corrupt("invalid top-presence byte")),
        };
        let last_live = arena.len();
        Ok(Self {
            b,
            delta,
            arena,
            queues,
            top,
            evals,
            searches,
            last_live,
        })
    }

    /// `CreateList[0, m−1, k]` (paper Fig. 5), iteratively: cover `[0, m)`
    /// with maximal intervals inside which `HERROR[·, k]` stays within a
    /// `(1+δ)` factor of its value at the interval start, locating each
    /// endpoint by binary search over the monotone `HERROR[·, k]`.
    fn create_list<P: PrefixProvider>(&mut self, p: &P, k: usize, m: usize) -> Vec<Interval> {
        // Probe count is accumulated locally and flushed once per call so
        // tracing adds no atomics inside the search loop.
        #[cfg(feature = "obs")]
        let mut probes: u64 = 0;
        let mut queue: Vec<Interval> = Vec::new();
        let mut a = 0usize;
        while a < m {
            let (t, chain_a) = self.herror_eval(p, a, k, None, true);
            let threshold = (1.0 + self.delta) * t;
            // Binary search for the maximal c in [a, m-1] with
            // HERROR[c, k] <= threshold. HERROR[a, k] = t qualifies, so the
            // loop invariant "lo qualifies" holds from the start.
            self.searches += 1;
            let mut lo = a;
            let mut hi = m - 1;
            let mut lo_val: (f64, CutId) = (t, chain_a);
            while lo < hi {
                #[cfg(feature = "obs")]
                {
                    probes += 1;
                }
                let mid = lo + (hi - lo).div_ceil(2);
                let hv = self.herror_eval(p, mid, k, None, true);
                if hv.0 <= threshold {
                    lo = mid;
                    lo_val = hv;
                } else {
                    hi = mid - 1;
                }
            }
            let (s, q) = p.dp_sums(lo);
            queue.push(Interval {
                start_herror: t,
                end: Endpoint {
                    idx: lo,
                    sum: s,
                    sqsum: q,
                    herror: lo_val.0,
                    chain: lo_val.1,
                },
            });
            a = lo + 1;
        }
        #[cfg(feature = "obs")]
        if let Some(t) = crate::telemetry::active_kernel_tracer() {
            t.probes.inc_by(probes);
            t.intervals.inc_by(queue.len() as u64);
        }
        queue
    }

    /// Batch mode: the full `CreateList` construction against a window-sum
    /// provider — interval lists bottom-up for each level `k = 1 .. B−1`,
    /// then the level-`B` minimization at the window end produces the
    /// histogram. Shared by the count-based and time-based window types.
    pub fn build<P: PrefixProvider>(p: &P, b: usize, delta: f64) -> (Histogram, KernelStats) {
        #[cfg(feature = "obs")]
        let trace =
            crate::telemetry::active_kernel_tracer().map(|t| (t, std::time::Instant::now()));

        let m = p.len();
        let mut kernel = Kernel::new_batch(b, delta);
        if m > 0 {
            for k in 1..b {
                let q = kernel.create_list(p, k, m);
                kernel.queues.push(q);
            }
            let top = kernel.herror_eval(p, m - 1, b, None, true);
            kernel.top = Some(top);
        }

        // A fresh batch kernel starts its work counters at zero, so the
        // totals here are exactly this build's work.
        #[cfg(feature = "obs")]
        if let Some((t, start)) = trace {
            t.builds.inc();
            t.evals.inc_by(kernel.evals as u64);
            t.build_seconds.record(start.elapsed());
        }

        (kernel.materialize_top(), kernel.stats(p.rebases()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn online_over(data: &[f64], b: usize, delta: f64) -> (Kernel, StreamTotals) {
        let mut kernel = Kernel::new_online(b, delta);
        let mut totals = StreamTotals::default();
        for &v in data {
            totals.push(v);
            kernel.push_point(&totals);
        }
        (kernel, totals)
    }

    #[test]
    fn online_and_batch_agree_on_piecewise_constant_data() {
        // Both modes must represent a 3-regime sequence exactly with B=3.
        let data = [5.0, 5.0, 5.0, 9.0, 9.0, 9.0, 9.0, 2.0, 2.0, 2.0];
        let (kernel, _) = online_over(&data, 3, 0.05);
        let online = kernel.materialize_top();
        let p = streamhist_core::PrefixSums::new(&data);
        let (batch, stats) = Kernel::build(&p, 3, 0.05);
        assert_eq!(online.bucket_ends(), vec![2, 6, 9]);
        assert_eq!(batch.bucket_ends(), vec![2, 6, 9]);
        assert_eq!(stats.herror, 0.0);
    }

    #[test]
    fn batch_over_prefix_sums_matches_single_bucket_mean() {
        let p = streamhist_core::PrefixSums::new(&[1.0, 2.0, 3.0, 4.0]);
        let (h, stats) = Kernel::build(&p, 1, 0.1);
        assert_eq!(h.num_buckets(), 1);
        assert!((h.buckets()[0].height - 2.5).abs() < 1e-12);
        assert!((stats.herror - 5.0).abs() < 1e-9);
        assert_eq!(stats.queue_sizes, Vec::<usize>::new());
    }

    #[test]
    fn empty_batch_build() {
        let p = streamhist_core::PrefixSums::new(&[]);
        let (h, stats) = Kernel::build(&p, 4, 0.1);
        assert_eq!(h.domain_len(), 0);
        assert_eq!(stats.herror_evals, 0);
        assert_eq!(stats.herror, 0.0);
    }

    #[test]
    fn online_stats_track_work_and_arena() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 13 + 7) % 31) as f64).collect();
        let (kernel, _) = online_over(&data, 4, 0.1);
        let stats = kernel.stats(0);
        assert_eq!(stats.queue_sizes.len(), 3);
        // One eval per level k >= 2 per push.
        assert_eq!(stats.herror_evals, data.len() * 3);
        assert_eq!(stats.binary_searches, 0);
        assert!(stats.arena_nodes > 0);
        assert!(stats.arena_peak >= stats.arena_nodes);
    }

    #[test]
    fn compaction_keeps_live_set_bounded_and_histogram_intact() {
        // Data with steadily growing error keeps replacing queue tails,
        // generating garbage; after a forced collection the live set must
        // be within the O(B · Σ queue_sizes) chain bound and the current
        // solution must be unchanged.
        let data: Vec<f64> = (0..3000).map(|i| ((i * 29 + 11) % 97) as f64).collect();
        let b = 5;
        let mut kernel = Kernel::new_online(b, 0.05);
        let mut totals = StreamTotals::default();
        for &v in &data {
            totals.push(v);
            kernel.push_point(&totals);
        }
        let before = kernel.materialize_top();
        let before_sse = kernel.top.expect("nonempty").0;
        kernel.compact_now();
        let total_endpoints: usize = kernel.queue_sizes().iter().sum();
        assert!(
            kernel.arena.len() <= b * (total_endpoints + 1),
            "live {} > bound {}",
            kernel.arena.len(),
            b * (total_endpoints + 1)
        );
        assert_eq!(kernel.materialize_top(), before);
        assert_eq!(kernel.top.expect("nonempty").0, before_sse);
    }

    #[test]
    fn stats_absorb_aggregates_fleet_totals() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 13 + 7) % 31) as f64).collect();
        let (a, _) = online_over(&data[..100], 4, 0.1);
        let (b, _) = online_over(&data[100..], 3, 0.1);
        let (sa, sb) = (a.stats(2), b.stats(5));
        let mut fleet = KernelStats::default();
        fleet.absorb(&sa);
        fleet.absorb(&sb);
        assert_eq!(fleet.herror_evals, sa.herror_evals + sb.herror_evals);
        assert_eq!(fleet.rebases, 7);
        assert!((fleet.herror - (sa.herror + sb.herror)).abs() < 1e-12);
        assert_eq!(fleet.arena_peak, sa.arena_peak.max(sb.arena_peak));
        // Elementwise queue totals, padded to the deeper record (B=4 has 3
        // levels, B=3 has 2).
        assert_eq!(fleet.queue_sizes.len(), 3);
        assert_eq!(fleet.queue_sizes[0], sa.queue_sizes[0] + sb.queue_sizes[0]);
        assert_eq!(fleet.queue_sizes[2], sa.queue_sizes[2]);
    }

    #[test]
    fn online_push_slab_matches_per_point_and_counts_rejects() {
        let data: Vec<f64> = (0..400).map(|i| ((i * 13 + 7) % 31) as f64).collect();
        let (per_point, _) = online_over(&data, 4, 0.1);
        let mut kernel = Kernel::new_online(4, 0.1);
        let mut totals = StreamTotals::default();
        let mut outcome = BatchOutcome::default();
        for chunk in data.chunks(37) {
            outcome.absorb(kernel.push_slab(&mut totals, chunk));
        }
        assert_eq!(outcome.accepted, data.len());
        assert_eq!(outcome.rejected, 0);
        assert_eq!(kernel.materialize_top(), per_point.materialize_top());
        assert_eq!(kernel.stats(0), per_point.stats(0));

        // NaN-laced slab: rejected values leave totals and queues untouched.
        let dirty: Vec<f64> = vec![1.0, f64::NAN, 2.0, f64::INFINITY];
        let mut a = Kernel::new_online(3, 0.1);
        let mut ta = StreamTotals::default();
        let got = a.push_slab(&mut ta, &dirty);
        assert_eq!(got.accepted, 2);
        assert_eq!(got.rejected, 2);
        let mut b = Kernel::new_online(3, 0.1);
        let mut tb = StreamTotals::default();
        b.push_slab(&mut tb, &[1.0, 2.0]);
        assert_eq!(a.materialize_top(), b.materialize_top());
    }

    #[test]
    fn snapshot_cache_serves_same_arc_until_generation_changes() {
        let cache = SnapshotCache::default();
        let p = streamhist_core::PrefixSums::new(&[1.0, 2.0, 3.0, 4.0]);
        let mut builds = 0usize;
        let (h1, s1) = cache.get_or_build(7, || {
            builds += 1;
            Kernel::build(&p, 2, 0.1)
        });
        let (h2, s2) = cache.get_or_build(7, || {
            builds += 1;
            Kernel::build(&p, 2, 0.1)
        });
        assert_eq!(builds, 1, "second query must be served from the cache");
        assert!(Arc::ptr_eq(&h1, &h2));
        assert_eq!(s1, s2);
        let (h3, _) = cache.get_or_build(8, || {
            builds += 1;
            Kernel::build(&p, 2, 0.1)
        });
        assert_eq!(builds, 2, "a new generation must rebuild");
        assert!(!Arc::ptr_eq(&h1, &h3));
        assert_eq!(*h1, *h3);
        cache.clear();
        let _ = cache.get_or_build(8, || {
            builds += 1;
            Kernel::build(&p, 2, 0.1)
        });
        assert_eq!(builds, 3, "clear drops the cached build");
    }

    #[test]
    fn generational_compaction_fires_on_long_streams() {
        let data: Vec<f64> = (0..20_000).map(|i| ((i * 17 + 5) % 83) as f64).collect();
        let (kernel, _) = online_over(&data, 4, 0.1);
        let stats = kernel.stats(0);
        assert!(stats.compactions > 0, "no compaction on a 20k-point stream");
        // The generational policy keeps occupancy within a constant factor
        // of the live set, far below the total allocation count.
        assert!(stats.arena_nodes < stats.arena_peak.max(2 * COMPACT_MIN_NODES) * 4);
    }
}
