//! The agglomerative (whole-stream) algorithm — paper §4.3, Figure 3
//! (originally Guha, Koudas & Shim, STOC 2001).
//!
//! For every level `k = 1 .. B−1` the algorithm maintains a queue of
//! intervals covering the prefix indices seen so far, with the property
//! (paper Eq. 4, for `δ = ε/(2B)`):
//!
//! ```text
//! a_ℓ = b_{ℓ−1} + 1,   HERROR[b_ℓ, k] ≤ (1+δ)·HERROR[a_ℓ, k],   b_ℓ maximal
//! ```
//!
//! On a new point `j`, `HERROR[j, k]` is (approximately) computed by
//! minimizing only over the interval *endpoints* of the level `k−1` queue —
//! `O((1/δ) log n)` candidates instead of `j−1`. The point then either
//! extends the last interval of each queue or starts a new one. Prefix sums
//! are stored only at interval endpoints, giving total space
//! `O((B²/ε) log n)`.
//!
//! The queue maintenance and minimization live in the shared
//! [`crate::kernel`]; this type drives it in online mode over whole-stream
//! running totals.

use crate::kernel::{Kernel, KernelStats, SnapshotCache, StreamTotals};
use std::sync::Arc;
use streamhist_core::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use streamhist_core::{BatchOutcome, Histogram, PrefixProvider, StreamSummary, StreamhistError};

/// One-pass `(1+ε)`-approximate V-optimal histogram of an entire stream.
///
/// The summary is `Send + 'static` (its boundary chains live in a flat
/// index-linked arena), so it can be built on one thread and handed to
/// another — see `ShardedFixedWindow` for the sharded-deployment pattern.
///
/// # Example
///
/// ```
/// use streamhist_stream::AgglomerativeHistogram;
///
/// let mut agg = AgglomerativeHistogram::new(2, 0.1);
/// for v in [10.0, 10.0, 10.0, 50.0, 50.0] {
///     agg.push(v);
/// }
/// let h = agg.histogram();
/// assert_eq!(h.bucket_ends(), vec![2, 4]); // split at the level change
/// assert!(h.sse(&[10.0, 10.0, 10.0, 50.0, 50.0]) < 1e-9);
/// ```
#[derive(Debug)]
pub struct AgglomerativeHistogram {
    b: usize,
    eps: f64,
    delta: f64,
    totals: StreamTotals,
    kernel: Kernel,
    /// Mutation counter keying the snapshot cache.
    generation: u64,
    cache: SnapshotCache,
}

/// Validating builder for [`AgglomerativeHistogram`] — the non-panicking
/// constructor surface.
#[derive(Debug, Clone)]
pub struct AgglomerativeBuilder {
    b: usize,
    eps: f64,
    delta: Option<f64>,
}

impl AgglomerativeBuilder {
    /// Overrides the paper's default interval growth factor `δ = ε/(2B)`
    /// (ABL-DELTA ablation).
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Validates every parameter and constructs the summary.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::InvalidParameter`] if `b == 0`, `eps` is
    /// not positive, or an overridden `delta` is not positive.
    pub fn build(self) -> Result<AgglomerativeHistogram, StreamhistError> {
        if self.b == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "b",
                message: "need at least one bucket",
            });
        }
        if self.eps.is_nan() || self.eps <= 0.0 {
            return Err(StreamhistError::InvalidParameter {
                param: "eps",
                message: "eps must be positive",
            });
        }
        let delta = self.delta.unwrap_or(self.eps / (2.0 * self.b as f64));
        if delta.is_nan() || delta <= 0.0 {
            return Err(StreamhistError::InvalidParameter {
                param: "delta",
                message: "delta must be positive",
            });
        }
        Ok(AgglomerativeHistogram {
            b: self.b,
            eps: self.eps,
            delta,
            totals: StreamTotals::default(),
            kernel: Kernel::new_online(self.b, delta),
            generation: 0,
            cache: SnapshotCache::default(),
        })
    }
}

impl AgglomerativeHistogram {
    /// Starts a validating builder for at most `b` buckets and
    /// approximation parameter `eps` (paper default `δ = ε/(2B)` unless
    /// overridden).
    #[must_use]
    pub fn builder(b: usize, eps: f64) -> AgglomerativeBuilder {
        AgglomerativeBuilder {
            b,
            eps,
            delta: None,
        }
    }

    /// Creates the summary for at most `b` buckets and approximation
    /// parameter `eps`, using the paper's interval growth factor
    /// `δ = ε/(2B)`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` or `eps <= 0`; use [`builder`](Self::builder)
    /// for the validating, non-panicking form.
    #[must_use]
    pub fn new(b: usize, eps: f64) -> Self {
        Self::builder(b, eps)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates the summary with an explicit interval growth factor `delta`
    /// (the ABL-DELTA ablation; the paper's Example 1 effectively uses
    /// `delta = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`, `eps <= 0`, or `delta <= 0`.
    #[must_use]
    pub fn with_delta(b: usize, eps: f64, delta: f64) -> Self {
        Self::builder(b, eps)
            .delta(delta)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the summary by pushing every value of `data` (a convenience
    /// for the offline Problem 2 use).
    #[must_use]
    pub fn from_slice(data: &[f64], b: usize, eps: f64) -> Self {
        let mut agg = Self::new(b, eps);
        for &v in data {
            agg.push(v);
        }
        agg
    }

    /// The bucket budget `B`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The approximation parameter `ε`.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The interval growth factor `δ` in use.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of stream points consumed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// Whether any points have been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.totals.len() == 0
    }

    /// Cumulative kernel diagnostics since creation: queue sizes, `HERROR`
    /// evaluations, arena occupancy/peak and compactions, and the current
    /// `HERROR` estimate. (`binary_searches` and `rebases` are always 0 in
    /// this mode.)
    #[must_use]
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel.stats(0)
    }

    /// Consumes one stream point, or rejects it if it is not finite
    /// (NaN/infinity would silently corrupt the running totals and every
    /// later answer). On rejection the summary is unchanged and remains
    /// fully usable. Cost `O(B · q)` where `q` is the current queue length.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::NonFiniteValue`] if `v` is NaN or
    /// infinite.
    pub fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        self.totals.push(v);
        self.kernel.push_point(&self.totals);
        self.generation += 1;
        Ok(())
    }

    /// Consumes a slab of stream points with partial-acceptance semantics
    /// (non-finite values rejected and counted, the rest ingested in
    /// order); equivalent to per-point [`try_push`](Self::try_push).
    ///
    /// The agglomerative recurrence must evaluate every level at every new
    /// index, so unlike the fixed-window summary there is no deferred
    /// rebuild here — the batched entry point hoists validation/dispatch
    /// overhead and keeps slab producers (the sharded serving layer) on
    /// one call per slab.
    pub fn push_batch(&mut self, values: &[f64]) -> BatchOutcome {
        let out = self.kernel.push_slab(&mut self.totals, values);
        if out.accepted > 0 {
            self.generation += 1;
        }
        out
    }

    /// Restores the summary to its freshly-constructed state, keeping the
    /// configuration (`B`, `ε`, `δ`).
    pub fn reset(&mut self) {
        self.totals = StreamTotals::default();
        self.kernel = Kernel::new_online(self.b, self.delta);
        self.generation += 1;
        self.cache.clear();
    }

    /// Consumes one stream point. Cost `O(B · q)` where `q` is the current
    /// queue length.
    ///
    /// Thin panicking wrapper around [`try_push`](Self::try_push), for
    /// callers that control their input; serving paths use `try_push` and
    /// count rejects instead.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite (NaN/infinity would silently corrupt
    /// the prefix sums and every later answer).
    pub fn push(&mut self, v: f64) {
        if let Err(e) = self.try_push(v) {
            panic!("{e}");
        }
    }

    /// Materializes the current `(1+ε)`-approximate B-histogram of
    /// everything pushed so far — `O(B)`, the winning chain is maintained
    /// incrementally — or returns the cached snapshot as a cheap [`Arc`]
    /// clone when nothing changed since the last materialization.
    #[must_use]
    pub fn histogram(&self) -> Arc<Histogram> {
        self.cache
            .get_or_build(self.generation, || {
                (self.kernel.materialize_top(), self.kernel.stats(0))
            })
            .0
    }
}

impl Checkpoint for AgglomerativeHistogram {
    /// Serializes the running totals plus the full online-DP state
    /// (queues, boundary-chain arena, work counters) via
    /// [`Kernel::encode_state`]. The whole-stream recurrence cannot be
    /// replayed from buffered points — the points are gone — so unlike the
    /// window summaries the DP state itself is the checkpoint payload; the
    /// kernel clones-and-compacts on encode so the frame holds exactly the
    /// live chain set, and every DP value round-trips bit-exactly.
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::AGGLOMERATIVE);
        w.put_f64(self.eps);
        w.put_varint(self.generation);
        self.totals.encode_state(&mut w);
        self.kernel.encode_state(&mut w);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        let mut r = FrameReader::open(bytes, tag::AGGLOMERATIVE)?;
        let eps = r.get_f64()?;
        if eps <= 0.0 {
            return Err(corrupt("eps must be positive"));
        }
        let generation = r.get_varint()?;
        let totals = StreamTotals::decode_state(&mut r)?;
        let kernel = Kernel::decode_state(&mut r)?;
        r.finish()?;
        if (totals.len() == 0) != kernel.top.is_none() {
            return Err(corrupt("totals and DP state disagree on emptiness"));
        }
        Ok(Self {
            b: kernel.b(),
            eps,
            delta: kernel.delta(),
            totals,
            kernel,
            generation,
            cache: SnapshotCache::default(),
        })
    }
}

impl StreamSummary for AgglomerativeHistogram {
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        AgglomerativeHistogram::try_push(self, v)
    }

    fn push(&mut self, v: f64) {
        AgglomerativeHistogram::push(self, v);
    }

    fn push_batch(&mut self, values: &[f64]) -> BatchOutcome {
        AgglomerativeHistogram::push_batch(self, values)
    }

    /// Whole-stream length: every point ever accepted.
    fn len(&self) -> usize {
        AgglomerativeHistogram::len(self)
    }

    fn reset(&mut self) {
        AgglomerativeHistogram::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_yields_empty_histogram() {
        let agg = AgglomerativeHistogram::new(3, 0.1);
        assert!(agg.is_empty());
        assert_eq!(agg.histogram().domain_len(), 0);
        assert_eq!(agg.kernel_stats().herror, 0.0);
    }

    #[test]
    fn single_point() {
        let mut agg = AgglomerativeHistogram::new(3, 0.1);
        agg.push(42.0);
        let h = agg.histogram();
        assert_eq!(h.domain_len(), 1);
        assert_eq!(h.point(0), 42.0);
        assert_eq!(agg.kernel_stats().herror, 0.0);
    }

    #[test]
    fn one_bucket_budget_tracks_global_mean() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let mut agg = AgglomerativeHistogram::new(1, 0.5);
        for &v in &data {
            agg.push(v);
        }
        let h = agg.histogram();
        assert_eq!(h.num_buckets(), 1);
        assert!((h.buckets()[0].height - 2.5).abs() < 1e-12);
        assert!((agg.kernel_stats().herror - 5.0).abs() < 1e-9);
    }

    #[test]
    fn detects_exact_two_level_split() {
        let mut data = vec![7.0; 20];
        data.extend(vec![90.0; 20]);
        let agg = AgglomerativeHistogram::from_slice(&data, 2, 0.1);
        let h = agg.histogram();
        assert_eq!(h.bucket_ends(), vec![19, 39]);
        assert!(h.sse(&data) < 1e-9);
    }

    #[test]
    fn domain_tracks_stream_length() {
        let mut agg = AgglomerativeHistogram::new(4, 0.2);
        for i in 0..57 {
            agg.push((i % 5) as f64);
            assert_eq!(agg.histogram().domain_len(), i + 1);
        }
        assert_eq!(agg.len(), 57);
    }

    #[test]
    fn respects_bucket_budget() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 31) % 19) as f64).collect();
        for b in 1..=6 {
            let agg = AgglomerativeHistogram::from_slice(&data, b, 0.1);
            assert!(agg.histogram().num_buckets() <= b, "b={b}");
        }
    }

    #[test]
    fn sse_estimate_upper_bounds_realized_sse() {
        // The maintained HERROR value must be >= the SSE the materialized
        // chain actually achieves (the chain-soundness invariant).
        let data: Vec<f64> = (0..200).map(|i| ((i * 17 + 3) % 23) as f64).collect();
        for b in [2, 3, 5] {
            for eps in [0.05, 0.2, 1.0] {
                let agg = AgglomerativeHistogram::from_slice(&data, b, eps);
                let realized = agg.histogram().sse(&data);
                let estimate = agg.kernel_stats().herror;
                assert!(
                    realized <= estimate + 1e-6,
                    "b={b} eps={eps}: realized {realized} > estimate {estimate}"
                );
            }
        }
    }

    #[test]
    fn queue_sizes_stay_sublinear_on_smooth_data() {
        // A slowly growing sequence: HERROR grows steadily, so queue sizes
        // should be far below n.
        let data: Vec<f64> = (0..2000).map(|i| (i as f64).sqrt()).collect();
        let agg = AgglomerativeHistogram::from_slice(&data, 4, 0.5);
        for (k, qs) in agg.kernel_stats().queue_sizes.iter().enumerate() {
            assert!(*qs < 400, "level {k} queue has {qs} intervals for n=2000");
        }
    }

    #[test]
    fn monotone_improvement_with_more_buckets() {
        let data: Vec<f64> = (0..150)
            .map(|i| ((i * 7) % 13) as f64 + (i / 50) as f64 * 40.0)
            .collect();
        let mut last = f64::INFINITY;
        for b in 1..=6 {
            let agg = AgglomerativeHistogram::from_slice(&data, b, 0.1);
            let sse = agg.histogram().sse(&data);
            assert!(sse <= last * 1.05 + 1e-9, "b={b}: {sse} vs {last}");
            last = last.min(sse);
        }
    }

    #[test]
    fn kernel_stats_expose_dp_work() {
        let data: Vec<f64> = (0..300).map(|i| ((i * 31) % 19) as f64).collect();
        let agg = AgglomerativeHistogram::from_slice(&data, 4, 0.1);
        let stats = agg.kernel_stats();
        // The stats record is the one home for the kernel diagnostics the
        // removed free-standing getters used to mirror: per-level queue
        // sizes and the maintained HERROR estimate.
        assert_eq!(stats.queue_sizes.len(), 3, "B-1 interval-queue levels");
        assert!(stats.queue_sizes.iter().all(|&q| q > 0));
        assert!(stats.herror >= 0.0 && stats.herror.is_finite());
        // One HERROR evaluation per level k >= 2 per push.
        assert_eq!(stats.herror_evals, data.len() * 3);
        assert_eq!(stats.binary_searches, 0);
        assert_eq!(stats.rebases, 0);
        assert!(stats.arena_nodes > 0);
        assert!(stats.arena_peak >= stats.arena_nodes);
    }

    #[test]
    fn builder_validates_and_push_batch_matches_per_point() {
        assert!(matches!(
            AgglomerativeHistogram::builder(0, 0.1).build(),
            Err(StreamhistError::InvalidParameter { param: "b", .. })
        ));
        assert!(matches!(
            AgglomerativeHistogram::builder(3, -0.5).build(),
            Err(StreamhistError::InvalidParameter { param: "eps", .. })
        ));
        let data: Vec<f64> = (0..250).map(|i| ((i * 19 + 3) % 29) as f64).collect();
        let mut seq = AgglomerativeHistogram::new(4, 0.1);
        let mut bat = AgglomerativeHistogram::builder(4, 0.1)
            .build()
            .expect("valid parameters");
        for &v in &data {
            seq.push(v);
        }
        let mut slab = data.clone();
        slab.insert(100, f64::NAN);
        let out = bat.push_batch(&slab);
        assert_eq!(out.accepted, data.len());
        assert_eq!(out.rejected, 1);
        assert_eq!(*seq.histogram(), *bat.histogram());
        assert_eq!(seq.kernel_stats(), bat.kernel_stats());
    }

    #[test]
    fn snapshot_cache_and_reset() {
        let mut agg = AgglomerativeHistogram::new(3, 0.2);
        agg.push_batch(&[1.0, 5.0, 5.0, 9.0]);
        let h1 = agg.histogram();
        assert!(std::sync::Arc::ptr_eq(&h1, &agg.histogram()));
        agg.push(2.0);
        assert!(!std::sync::Arc::ptr_eq(&h1, &agg.histogram()));
        agg.reset();
        assert!(agg.is_empty());
        assert_eq!(agg.histogram().domain_len(), 0);
        assert_eq!(agg.kernel_stats().herror, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = AgglomerativeHistogram::new(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn zero_eps_rejected() {
        let _ = AgglomerativeHistogram::new(2, 0.0);
    }
}
