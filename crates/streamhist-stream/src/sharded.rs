//! Sharded deployment of the fixed-window summary.
//!
//! The paper's data-stream setting (§1) is explicitly operational —
//! networking equipment emitting measurements "at link speeds" — and a
//! single summary per core is the natural scale-out: partition the key
//! space (one summary per interface, per flow group, per sensor), pin each
//! shard to a worker thread, and fan records out by key. Nothing in the
//! algorithm has to change; what the refactor to the arena-backed
//! [`crate::kernel`] bought is that every summary is `Send + 'static`, so
//! shards can be *moved* to workers and their finished summaries moved
//! back.
//!
//! [`ShardedFixedWindow`] packages that pattern with plain `std::thread`
//! workers and `mpsc` channels — no extra dependencies, no locking on the
//! hot path (each shard is single-writer by construction). It is a
//! demonstrator and bench target (`sharded_scaling`), not a general
//! stream-processing framework: routing is a fixed key hash and
//! backpressure is unbounded-channel.

use crate::fixed_window::FixedWindowHistogram;
use crate::kernel::KernelStats;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;
use streamhist_core::Histogram;

enum Cmd {
    Push(f64),
    PushBatch(Vec<f64>),
    Snapshot(Sender<(Histogram, KernelStats)>),
}

/// `K` independent [`FixedWindowHistogram`]s, each owned by a dedicated
/// worker thread and fed through a channel.
///
/// Records are routed by key ([`push`](Self::push)) or addressed to a shard
/// directly ([`push_to`](Self::push_to), [`push_batch`](Self::push_batch)).
/// Pushes are fire-and-forget; [`snapshot`](Self::snapshot) round-trips a
/// reply channel and therefore also acts as a barrier for everything sent
/// to that shard before it.
///
/// # Example
///
/// ```
/// use streamhist_stream::ShardedFixedWindow;
///
/// let sharded = ShardedFixedWindow::new(2, 64, 4, 0.1);
/// for i in 0..200u64 {
///     sharded.push(i, (i % 7) as f64);
/// }
/// let (hist, stats) = sharded.snapshot(0);
/// assert!(hist.num_buckets() <= 4);
/// assert!(stats.herror_evals > 0);
/// let summaries = sharded.join();
/// assert_eq!(summaries.len(), 2);
/// ```
pub struct ShardedFixedWindow {
    senders: Vec<Sender<Cmd>>,
    handles: Vec<JoinHandle<FixedWindowHistogram>>,
}

impl ShardedFixedWindow {
    /// Spawns `shards` worker threads, each owning a
    /// `FixedWindowHistogram::new(capacity, b, eps)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or on the parameter conditions of
    /// [`FixedWindowHistogram::new`].
    #[must_use]
    pub fn new(shards: usize, capacity: usize, b: usize, eps: f64) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel::<Cmd>();
            let mut fw = FixedWindowHistogram::new(capacity, b, eps);
            handles.push(std::thread::spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Push(v) => fw.push(v),
                        Cmd::PushBatch(vs) => {
                            for v in vs {
                                fw.push(v);
                            }
                        }
                        Cmd::Snapshot(reply) => {
                            // A dropped reply receiver just means the
                            // requester stopped waiting.
                            let _ = reply.send(fw.histogram_with_stats());
                        }
                    }
                }
                // Channel closed: hand the summary back to `join`.
                fw
            }));
            senders.push(tx);
        }
        Self { senders, handles }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard a key routes to (Fibonacci hash of the key, so adjacent
    /// keys spread across shards).
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (mixed % self.senders.len() as u64) as usize
    }

    /// Routes one record to its key's shard. Fire-and-forget.
    ///
    /// # Panics
    ///
    /// Panics if the target worker has died (a worker only dies if a push
    /// panicked, e.g. on a non-finite value).
    pub fn push(&self, key: u64, v: f64) {
        self.push_to(self.shard_of(key), v);
    }

    /// Pushes one record to an explicit shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or the worker has died.
    pub fn push_to(&self, shard: usize, v: f64) {
        self.senders[shard]
            .send(Cmd::Push(v))
            .expect("shard worker died");
    }

    /// Pushes a batch of records to an explicit shard in order (one channel
    /// send — the preferred high-throughput entry point).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or the worker has died.
    pub fn push_batch(&self, shard: usize, values: Vec<f64>) {
        self.senders[shard]
            .send(Cmd::PushBatch(values))
            .expect("shard worker died");
    }

    /// Materializes shard `shard`'s current histogram (with kernel stats),
    /// after everything previously sent to that shard has been absorbed.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or the worker has died.
    #[must_use]
    pub fn snapshot(&self, shard: usize) -> (Histogram, KernelStats) {
        let (reply_tx, reply_rx) = channel();
        self.senders[shard]
            .send(Cmd::Snapshot(reply_tx))
            .expect("shard worker died");
        reply_rx.recv().expect("shard worker died")
    }

    /// Snapshots every shard, in shard order.
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<(Histogram, KernelStats)> {
        (0..self.shards()).map(|s| self.snapshot(s)).collect()
    }

    /// Shuts the workers down and returns the shard summaries, in shard
    /// order — possible precisely because [`FixedWindowHistogram`] is
    /// `Send`.
    ///
    /// # Panics
    ///
    /// Panics if a worker has died.
    #[must_use]
    pub fn join(self) -> Vec<FixedWindowHistogram> {
        drop(self.senders);
        self.handles
            .into_iter()
            .map(|h| h.join().expect("shard worker died"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_match_unsharded_summaries() {
        // Per-shard streams fed through the workers must produce exactly
        // the histogram a single-threaded summary produces on the same
        // stream.
        let shards = 3;
        let streams: Vec<Vec<f64>> = (0..shards)
            .map(|s| (0..200).map(|i| ((i * 13 + s * 7) % 23) as f64).collect())
            .collect();
        let sharded = ShardedFixedWindow::new(shards, 64, 4, 0.1);
        for (s, stream) in streams.iter().enumerate() {
            sharded.push_batch(s, stream.clone());
        }
        let snapshots = sharded.snapshot_all();
        let summaries = sharded.join();
        for (s, stream) in streams.iter().enumerate() {
            let mut reference = FixedWindowHistogram::new(64, 4, 0.1);
            for &v in stream {
                reference.push(v);
            }
            let (expect_h, expect_stats) = reference.histogram_with_stats();
            assert_eq!(snapshots[s].0, expect_h, "shard {s} snapshot");
            assert_eq!(snapshots[s].1, expect_stats, "shard {s} stats");
            assert_eq!(summaries[s].histogram(), expect_h, "shard {s} joined");
            assert_eq!(summaries[s].total_pushed(), stream.len() as u64);
        }
    }

    #[test]
    fn key_routing_covers_all_shards() {
        let sharded = ShardedFixedWindow::new(4, 16, 2, 0.5);
        let mut hit = [false; 4];
        for key in 0..64u64 {
            hit[sharded.shard_of(key)] = true;
            sharded.push(key, (key % 5) as f64);
        }
        assert!(hit.iter().all(|&h| h), "64 keys left a shard of 4 unused");
        let total: u64 = sharded
            .join()
            .iter()
            .map(FixedWindowHistogram::total_pushed)
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn snapshot_acts_as_barrier() {
        let sharded = ShardedFixedWindow::new(1, 8, 2, 0.5);
        for v in [1.0, 1.0, 9.0, 9.0] {
            sharded.push_to(0, v);
        }
        let (h, _) = sharded.snapshot(0);
        assert_eq!(h.domain_len(), 4);
        assert_eq!(h.bucket_ends(), vec![1, 3]);
        let _ = sharded.join();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedFixedWindow::new(0, 8, 2, 0.5);
    }
}
