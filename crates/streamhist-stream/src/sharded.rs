//! Sharded serving layer for the fixed-window summary.
//!
//! The paper's data-stream setting (§1) is explicitly operational —
//! networking equipment emitting measurements "at link speeds" — and a
//! single summary per core is the natural scale-out: partition the key
//! space (one summary per interface, per flow group, per sensor), pin each
//! shard to a worker thread, and fan records out by key. Nothing in the
//! algorithm has to change; what the refactor to the arena-backed
//! [`crate::kernel`] bought is that every summary is `Send + 'static`, so
//! shards can be *moved* to workers and their finished summaries moved
//! back.
//!
//! [`ShardedFixedWindow`] packages that pattern as a robust serving
//! subsystem over plain `std::thread` workers — no extra dependencies, no
//! locking on the hot path (each shard is single-writer by construction).
//! Three production concerns are first-class:
//!
//! * **Failure model.** Malformed records (NaN/infinity) are
//!   counted-and-rejected by the worker via
//!   [`FixedWindowHistogram::try_push`] — they never kill a shard. A
//!   worker can still die (a bug, or deliberate fault injection through
//!   [`inject_worker_panic`](ShardedFixedWindow::inject_worker_panic));
//!   every API that talks to a shard returns `Result<_, `[`ShardError`]`>`
//!   instead of panicking, so one dead shard is detectable and reportable
//!   while the rest of the fleet keeps serving, and
//!   [`respawn_shard`](ShardedFixedWindow::respawn_shard) restores service
//!   on the dead index with a fresh (empty) summary.
//! * **Backpressure.** Each shard's command queue is a *bounded*
//!   `sync_channel` ([`ShardedOptions::queue_capacity`] commands deep).
//!   When a shard falls behind, the configured [`OverloadPolicy`] decides:
//!   [`Block`](OverloadPolicy::Block) stalls the producer (lossless,
//!   memory-bounded), [`DropNewest`](OverloadPolicy::DropNewest) sheds the
//!   incoming record(s) and counts them. Memory can no longer grow without
//!   bound under a slow consumer.
//! * **Observability.** Every shard keeps atomic counters —
//!   [`ShardMetrics`]: pushes accepted, values rejected, records dropped
//!   under overload, snapshots served, respawns, current queue depth —
//!   readable through [`metrics`](ShardedFixedWindow::metrics) without a
//!   barrier round-trip (counters are `Relaxed` atomics, exact once the
//!   shard is quiescent). The `sharded_scaling` bench prints them per run.
//!
//! Routing is a fixed key hash ([`shard_of`](ShardedFixedWindow::shard_of));
//! re-sharding and replication remain out of scope.

use crate::fixed_window::FixedWindowHistogram;
use crate::kernel::KernelStats;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use streamhist_core::{Histogram, StreamhistError};

/// A shard's worker thread is gone: it panicked (only possible through a
/// bug or injected fault — malformed values are rejected, not fatal) and
/// every operation addressed to that shard now fails fast with this error
/// until [`ShardedFixedWindow::respawn_shard`] restores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the shard whose worker has died.
    pub shard: usize,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} worker has died", self.shard)
    }
}

impl std::error::Error for ShardError {}

/// What a producer-side push does when the target shard's bounded command
/// queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the producer until the worker drains a slot — lossless
    /// backpressure, the default.
    #[default]
    Block,
    /// Drop the incoming record(s) and add them to
    /// [`ShardMetrics::records_dropped`]. The push still returns `Ok`:
    /// shedding under overload is the configured behavior, not a failure.
    DropNewest,
}

/// Tuning for [`ShardedFixedWindow`]'s ingestion path.
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Bound of each shard's command queue, in *commands* (a
    /// [`push_batch`](ShardedFixedWindow::push_batch) of any size occupies
    /// one slot). Must be positive.
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub policy: OverloadPolicy,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
        }
    }
}

/// Point-in-time copy of one shard's counters. Counters are cumulative for
/// the lifetime of the shard *index* — they survive
/// [`respawn_shard`](ShardedFixedWindow::respawn_shard) (except
/// `queue_depth`, which is reset to 0 because the dead worker's queue is
/// discarded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Values absorbed into the summary.
    pub pushes_accepted: u64,
    /// Values rejected as malformed (NaN/infinity).
    pub values_rejected: u64,
    /// Records shed at enqueue time under [`OverloadPolicy::DropNewest`].
    pub records_dropped: u64,
    /// Snapshot requests the worker has answered.
    pub snapshots_served: u64,
    /// Times this shard index has been respawned.
    pub respawns: u64,
    /// Commands currently enqueued (or in flight) to the worker.
    pub queue_depth: usize,
}

/// The shared atomic counters behind [`ShardMetrics`]. `Relaxed` ordering
/// everywhere: each counter is independently monotone and reads are
/// statistical unless the shard is quiescent (e.g. after a snapshot
/// barrier), where channel synchronization makes them exact.
#[derive(Debug, Default)]
struct MetricsInner {
    pushes_accepted: AtomicU64,
    values_rejected: AtomicU64,
    records_dropped: AtomicU64,
    snapshots_served: AtomicU64,
    respawns: AtomicU64,
    queue_depth: AtomicUsize,
}

impl MetricsInner {
    fn read(&self) -> ShardMetrics {
        ShardMetrics {
            pushes_accepted: self.pushes_accepted.load(Ordering::Relaxed),
            values_rejected: self.values_rejected.load(Ordering::Relaxed),
            records_dropped: self.records_dropped.load(Ordering::Relaxed),
            snapshots_served: self.snapshots_served.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
        }
    }
}

enum Cmd {
    Push(f64),
    PushBatch(Vec<f64>),
    Snapshot(Sender<(Arc<Histogram>, KernelStats)>),
    /// Fault injection: the worker panics on receipt (see
    /// [`ShardedFixedWindow::inject_worker_panic`]).
    InjectPanic,
}

struct Shard {
    sender: SyncSender<Cmd>,
    handle: JoinHandle<FixedWindowHistogram>,
    metrics: Arc<MetricsInner>,
}

/// `K` independent [`FixedWindowHistogram`]s, each owned by a dedicated
/// worker thread and fed through a bounded channel.
///
/// Records are routed by key ([`push`](Self::push)) or addressed to a shard
/// directly ([`push_to`](Self::push_to), [`push_batch`](Self::push_batch)).
/// [`snapshot`](Self::snapshot) round-trips a reply channel and therefore
/// also acts as a barrier for everything sent to that shard before it.
/// Every shard-addressed operation returns `Err(`[`ShardError`]`)` instead
/// of panicking when the worker has died; see the module docs for the full
/// failure model, overload policies, and metrics.
///
/// All ingestion methods take `&self` and the type is `Sync`, so any
/// number of producer threads may push concurrently (per-shard record
/// order is whatever order their sends interleave in).
///
/// # Example
///
/// ```
/// use streamhist_stream::{ShardError, ShardedFixedWindow};
///
/// fn main() -> Result<(), ShardError> {
///     let sharded = ShardedFixedWindow::new(2, 64, 4, 0.1);
///     for i in 0..200u64 {
///         sharded.push(i, (i % 7) as f64)?;
///     }
///     let (hist, stats) = sharded.snapshot(0)?;
///     assert!(hist.num_buckets() <= 4);
///     assert!(stats.herror_evals > 0);
///     assert!(sharded.metrics(0).pushes_accepted > 0);
///     let summaries = sharded.join();
///     assert_eq!(summaries.len(), 2);
///     assert!(summaries.iter().all(Result::is_ok));
///     Ok(())
/// }
/// ```
pub struct ShardedFixedWindow {
    shards: Vec<Shard>,
    capacity: usize,
    b: usize,
    eps: f64,
    options: ShardedOptions,
    /// Rotating start shard for [`push_batch_scatter`](Self::push_batch_scatter),
    /// so successive scattered slabs do not all lead with shard 0.
    scatter_cursor: AtomicUsize,
}

impl ShardedFixedWindow {
    /// Spawns `shards` worker threads, each owning a
    /// `FixedWindowHistogram::new(capacity, b, eps)`, with default
    /// [`ShardedOptions`] (queue of 1024 commands,
    /// [`OverloadPolicy::Block`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or on the parameter conditions of
    /// [`FixedWindowHistogram::new`]. Use [`Self::builder`] for the
    /// non-panicking surface.
    #[must_use]
    pub fn new(shards: usize, capacity: usize, b: usize, eps: f64) -> Self {
        Self::with_options(shards, capacity, b, eps, ShardedOptions::default())
    }

    /// [`Self::new`] with explicit queue bound and overload policy.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, `options.queue_capacity == 0`, or on the
    /// parameter conditions of [`FixedWindowHistogram::new`]. Use
    /// [`Self::builder`] for the non-panicking surface.
    #[must_use]
    pub fn with_options(
        shards: usize,
        capacity: usize,
        b: usize,
        eps: f64,
        options: ShardedOptions,
    ) -> Self {
        Self::builder(shards, capacity, b, eps)
            .options(options)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Starts a validating builder. [`ShardedOptions`] are folded into the
    /// builder surface ([`queue_capacity`](ShardedFixedWindowBuilder::queue_capacity),
    /// [`policy`](ShardedFixedWindowBuilder::policy)); `build` returns
    /// `Err` instead of panicking on bad parameters.
    #[must_use]
    pub fn builder(
        shards: usize,
        capacity: usize,
        b: usize,
        eps: f64,
    ) -> ShardedFixedWindowBuilder {
        ShardedFixedWindowBuilder {
            shards,
            capacity,
            b,
            eps,
            options: ShardedOptions::default(),
        }
    }

    /// Spawns one worker owning a fresh summary. The summary is built on
    /// the caller's thread so parameter panics surface here, not inside a
    /// silently-dead worker.
    fn spawn_worker(
        &self,
        metrics: Arc<MetricsInner>,
    ) -> (SyncSender<Cmd>, JoinHandle<FixedWindowHistogram>) {
        let mut fw = FixedWindowHistogram::new(self.capacity, self.b, self.eps);
        let (tx, rx) = sync_channel::<Cmd>(self.options.queue_capacity);
        let handle = std::thread::spawn(move || {
            while let Ok(cmd) = rx.recv() {
                metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                match cmd {
                    Cmd::Push(v) => match fw.try_push(v) {
                        Ok(()) => {
                            metrics.pushes_accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            metrics.values_rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    Cmd::PushBatch(vs) => {
                        // The slab fast path: one prefix-store write pass
                        // per run of finite values, interval work deferred
                        // to the next snapshot, exact reject accounting.
                        let out = fw.push_batch(&vs);
                        if out.accepted > 0 {
                            metrics
                                .pushes_accepted
                                .fetch_add(out.accepted as u64, Ordering::Relaxed);
                        }
                        if out.rejected > 0 {
                            metrics
                                .values_rejected
                                .fetch_add(out.rejected as u64, Ordering::Relaxed);
                        }
                    }
                    Cmd::Snapshot(reply) => {
                        metrics.snapshots_served.fetch_add(1, Ordering::Relaxed);
                        // A dropped reply receiver just means the
                        // requester stopped waiting.
                        let _ = reply.send(fw.histogram_with_stats());
                    }
                    Cmd::InjectPanic => panic!("injected shard worker panic (fault injection)"),
                }
            }
            // Channel closed: hand the summary back to `join`/`respawn`.
            fw
        });
        (tx, handle)
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The ingestion options in effect.
    #[must_use]
    pub fn options(&self) -> &ShardedOptions {
        &self.options
    }

    /// The shard a key routes to (Fibonacci hash of the key, so adjacent
    /// keys spread across shards).
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (mixed % self.shards.len() as u64) as usize
    }

    /// Enqueues a command, maintaining the depth gauge and applying the
    /// overload policy (`records` is what `records_dropped` grows by if
    /// the command is shed).
    fn send(&self, shard: usize, cmd: Cmd, records: u64) -> Result<(), ShardError> {
        let s = &self.shards[shard];
        // Increment before the send so the worker's decrement (which can
        // race ahead of this thread the instant the send lands) never
        // underflows the gauge.
        s.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        let undeliverable = match self.options.policy {
            OverloadPolicy::Block => s.sender.send(cmd).is_err(),
            OverloadPolicy::DropNewest => match s.sender.try_send(cmd) {
                Ok(()) => false,
                Err(TrySendError::Full(_)) => {
                    s.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    s.metrics
                        .records_dropped
                        .fetch_add(records, Ordering::Relaxed);
                    return Ok(());
                }
                Err(TrySendError::Disconnected(_)) => true,
            },
        };
        if undeliverable {
            s.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return Err(ShardError { shard });
        }
        Ok(())
    }

    /// Routes one record to its key's shard, blocking or shedding per the
    /// overload policy.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the target worker has died.
    pub fn push(&self, key: u64, v: f64) -> Result<(), ShardError> {
        self.push_to(self.shard_of(key), v)
    }

    /// Pushes one record to an explicit shard, blocking or shedding per
    /// the overload policy.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the worker has died.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range (an addressing bug, not a runtime
    /// condition).
    pub fn push_to(&self, shard: usize, v: f64) -> Result<(), ShardError> {
        self.send(shard, Cmd::Push(v), 1)
    }

    /// Pushes a batch of records to an explicit shard in order (one
    /// channel send and one queue slot — the preferred high-throughput
    /// entry point). Under [`OverloadPolicy::DropNewest`] a full queue
    /// sheds the *whole batch*, counting `values.len()` dropped records.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the worker has died.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn push_batch(&self, shard: usize, values: Vec<f64>) -> Result<(), ShardError> {
        let records = values.len() as u64;
        if records == 0 {
            // An empty batch is a no-op and should not occupy a queue slot,
            // but an out-of-range shard is still an addressing bug.
            assert!(shard < self.shards.len(), "shard {shard} out of range");
            return Ok(());
        }
        self.send(shard, Cmd::PushBatch(values), records)
    }

    /// Scatters one slab across *all* shards: the slab is split into up to
    /// `shards()` contiguous chunks, chunk `i` going to shard
    /// `(cursor + i) % shards()` where `cursor` rotates per call so load
    /// spreads evenly across calls. Each chunk is a single channel send
    /// (one queue slot), and because chunks are contiguous sub-slices, the
    /// values a given shard receives arrive in slab order — per-shard
    /// record order is preserved.
    ///
    /// # Errors
    ///
    /// Returns the first [`ShardError`] hit; chunks already dispatched to
    /// healthy shards stay dispatched (the slab is a transport unit, not a
    /// transaction — mirroring [`BatchOutcome`](streamhist_core::BatchOutcome)
    /// semantics at the shard level).
    pub fn push_batch_scatter(&self, values: &[f64]) -> Result<(), ShardError> {
        if values.is_empty() {
            return Ok(());
        }
        let k = self.shards.len();
        let start = self.scatter_cursor.fetch_add(1, Ordering::Relaxed);
        let chunk = values.len().div_ceil(k);
        for (i, slab) in values.chunks(chunk).enumerate() {
            self.push_batch((start + i) % k, slab.to_vec())?;
        }
        Ok(())
    }

    /// Materializes shard `shard`'s current histogram (with kernel stats),
    /// after everything previously enqueued to that shard has been
    /// absorbed — a per-shard barrier. The snapshot request always uses a
    /// blocking send (it is control plane, never shed), even under
    /// [`OverloadPolicy::DropNewest`].
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the worker has died (including death
    /// after the request was enqueued but before it was answered).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn snapshot(&self, shard: usize) -> Result<(Arc<Histogram>, KernelStats), ShardError> {
        let s = &self.shards[shard];
        let (reply_tx, reply_rx) = channel();
        s.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        if s.sender.send(Cmd::Snapshot(reply_tx)).is_err() {
            s.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return Err(ShardError { shard });
        }
        reply_rx.recv().map_err(|_| ShardError { shard })
    }

    /// Snapshots every shard, in shard order. Dead shards yield their
    /// `Err` entry without disturbing the others.
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<Result<(Arc<Histogram>, KernelStats), ShardError>> {
        (0..self.shards()).map(|s| self.snapshot(s)).collect()
    }

    /// Point-in-time metrics for one shard, read directly from shared
    /// atomics — no barrier, no channel round-trip, works on dead shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn metrics(&self, shard: usize) -> ShardMetrics {
        self.shards[shard].metrics.read()
    }

    /// Metrics for every shard, in shard order.
    #[must_use]
    pub fn metrics_all(&self) -> Vec<ShardMetrics> {
        self.shards.iter().map(|s| s.metrics.read()).collect()
    }

    /// Fault injection for resilience testing: makes the shard's worker
    /// panic when it dequeues this command, simulating an in-worker bug.
    /// Commands already queued ahead of it are still processed; commands
    /// behind it are lost with the worker.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the worker is already dead.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn inject_worker_panic(&self, shard: usize) -> Result<(), ShardError> {
        let s = &self.shards[shard];
        s.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        if s.sender.send(Cmd::InjectPanic).is_err() {
            s.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return Err(ShardError { shard });
        }
        Ok(())
    }

    /// Replaces shard `shard`'s worker with a fresh one owning an *empty*
    /// summary, restoring service on that index after a worker death — the
    /// fleet degrades gracefully instead of cascading panics.
    ///
    /// The old worker's channel is closed first: if it is still alive it
    /// drains every queued command and its final summary is returned
    /// (`Some`), so respawning a healthy shard loses nothing but the
    /// summary's continuity; if it had died, `None` is returned and any
    /// commands stranded in its queue are discarded. Cumulative metrics
    /// survive; `queue_depth` is reset for the new (empty) queue and
    /// `respawns` increments.
    ///
    /// Takes `&mut self`, so producers (which hold `&self`) can never race
    /// a respawn — wrap the whole value in an `RwLock` to respawn while
    /// producers are live (see `tests/sharded_stress.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn respawn_shard(&mut self, shard: usize) -> Option<FixedWindowHistogram> {
        let metrics = Arc::clone(&self.shards[shard].metrics);
        let (sender, handle) = self.spawn_worker(Arc::clone(&metrics));
        let old = std::mem::replace(
            &mut self.shards[shard],
            Shard {
                sender,
                handle,
                metrics: Arc::clone(&metrics),
            },
        );
        drop(old.sender); // close the old channel so a live worker exits
        let recovered = old.handle.join().ok();
        // The old queue is gone (drained or discarded); the gauge restarts
        // for the new worker's queue. No producer can race this store:
        // `&mut self` is exclusive.
        metrics.queue_depth.store(0, Ordering::Relaxed);
        metrics.respawns.fetch_add(1, Ordering::Relaxed);
        recovered
    }

    /// Shuts the workers down and returns the shard summaries, in shard
    /// order — possible precisely because [`FixedWindowHistogram`] is
    /// `Send`. A shard whose worker died yields `Err(`[`ShardError`]`)`
    /// in its slot; the others are unaffected.
    #[must_use]
    pub fn join(self) -> Vec<Result<FixedWindowHistogram, ShardError>> {
        self.shards
            .into_iter()
            .enumerate()
            .map(|(shard, s)| {
                drop(s.sender);
                s.handle.join().map_err(|_| ShardError { shard })
            })
            .collect()
    }
}

/// Validating builder for [`ShardedFixedWindow`], folding the
/// [`ShardedOptions`] knobs into the same surface as the per-summary
/// builders.
#[derive(Debug, Clone)]
pub struct ShardedFixedWindowBuilder {
    shards: usize,
    capacity: usize,
    b: usize,
    eps: f64,
    options: ShardedOptions,
}

impl ShardedFixedWindowBuilder {
    /// Overrides the per-shard command queue bound (default 1024).
    #[must_use]
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.options.queue_capacity = queue_capacity;
        self
    }

    /// Overrides the overload policy (default [`OverloadPolicy::Block`]).
    #[must_use]
    pub fn policy(mut self, policy: OverloadPolicy) -> Self {
        self.options.policy = policy;
        self
    }

    /// Replaces the options wholesale (legacy [`ShardedOptions`] surface).
    #[must_use]
    pub fn options(mut self, options: ShardedOptions) -> Self {
        self.options = options;
        self
    }

    /// Validates every parameter, then spawns the workers.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::InvalidParameter`] if `shards == 0`, the
    /// queue capacity is zero, or the per-shard summary parameters fail
    /// [`FixedWindowHistogram::builder`] validation.
    pub fn build(self) -> Result<ShardedFixedWindow, StreamhistError> {
        if self.shards == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "shards",
                message: "need at least one shard",
            });
        }
        if self.options.queue_capacity == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "queue_capacity",
                message: "queue capacity must be positive",
            });
        }
        // Validate the per-shard summary parameters on the caller's thread
        // so bad configs fail here, not inside a silently-dead worker.
        drop(FixedWindowHistogram::builder(self.capacity, self.b, self.eps).build()?);
        let mut this = ShardedFixedWindow {
            shards: Vec::with_capacity(self.shards),
            capacity: self.capacity,
            b: self.b,
            eps: self.eps,
            options: self.options,
            scatter_cursor: AtomicUsize::new(0),
        };
        for _ in 0..self.shards {
            let metrics = Arc::new(MetricsInner::default());
            let (sender, handle) = this.spawn_worker(Arc::clone(&metrics));
            this.shards.push(Shard {
                sender,
                handle,
                metrics,
            });
        }
        Ok(this)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joined_ok(sharded: ShardedFixedWindow) -> Vec<FixedWindowHistogram> {
        sharded
            .join()
            .into_iter()
            .map(|r| r.expect("worker alive"))
            .collect()
    }

    #[test]
    fn shards_match_unsharded_summaries() {
        // Per-shard streams fed through the workers must produce exactly
        // the histogram a single-threaded summary produces on the same
        // stream.
        let shards = 3;
        let streams: Vec<Vec<f64>> = (0..shards)
            .map(|s| (0..200).map(|i| ((i * 13 + s * 7) % 23) as f64).collect())
            .collect();
        let sharded = ShardedFixedWindow::new(shards, 64, 4, 0.1);
        for (s, stream) in streams.iter().enumerate() {
            sharded.push_batch(s, stream.clone()).expect("worker alive");
        }
        let snapshots = sharded.snapshot_all();
        let metrics = sharded.metrics_all();
        let summaries = joined_ok(sharded);
        for (s, stream) in streams.iter().enumerate() {
            let mut reference = FixedWindowHistogram::new(64, 4, 0.1);
            for &v in stream {
                reference.push(v);
            }
            let (expect_h, expect_stats) = reference.histogram_with_stats();
            let snap = snapshots[s].as_ref().expect("worker alive");
            assert_eq!(snap.0, expect_h, "shard {s} snapshot");
            assert_eq!(snap.1, expect_stats, "shard {s} stats");
            assert_eq!(summaries[s].histogram(), expect_h, "shard {s} joined");
            assert_eq!(summaries[s].total_pushed(), stream.len() as u64);
            // The snapshot barrier makes the counters exact.
            assert_eq!(metrics[s].pushes_accepted, stream.len() as u64);
            assert_eq!(metrics[s].values_rejected, 0);
            assert_eq!(metrics[s].records_dropped, 0);
            assert_eq!(metrics[s].snapshots_served, 1);
            assert_eq!(metrics[s].queue_depth, 0);
        }
    }

    #[test]
    fn key_routing_covers_all_shards() {
        let sharded = ShardedFixedWindow::new(4, 16, 2, 0.5);
        let mut hit = [false; 4];
        for key in 0..64u64 {
            hit[sharded.shard_of(key)] = true;
            sharded.push(key, (key % 5) as f64).expect("worker alive");
        }
        assert!(hit.iter().all(|&h| h), "64 keys left a shard of 4 unused");
        let total: u64 = joined_ok(sharded)
            .iter()
            .map(FixedWindowHistogram::total_pushed)
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn snapshot_acts_as_barrier() {
        let sharded = ShardedFixedWindow::new(1, 8, 2, 0.5);
        for v in [1.0, 1.0, 9.0, 9.0] {
            sharded.push_to(0, v).expect("worker alive");
        }
        let (h, _) = sharded.snapshot(0).expect("worker alive");
        assert_eq!(h.domain_len(), 4);
        assert_eq!(h.bucket_ends(), vec![1, 3]);
        let _ = sharded.join();
    }

    #[test]
    fn nan_is_rejected_and_the_shard_keeps_serving() {
        // Regression: a single NaN used to panic the worker via
        // `FixedWindowHistogram::push`'s finiteness assert, after which
        // every call to the shard panicked with "shard worker died".
        let sharded = ShardedFixedWindow::new(2, 8, 2, 0.5);
        sharded.push_to(0, 1.0).expect("worker alive");
        sharded.push_to(0, f64::NAN).expect("rejected, not fatal");
        sharded
            .push_batch(0, vec![2.0, f64::INFINITY, 3.0])
            .expect("rejected, not fatal");
        let (h, _) = sharded.snapshot(0).expect("shard still serving");
        assert_eq!(h.domain_len(), 3, "only the finite values were absorbed");
        let m = sharded.metrics(0);
        assert_eq!(m.pushes_accepted, 3);
        assert_eq!(m.values_rejected, 2);
        assert_eq!(m.queue_depth, 0);
        let summaries = joined_ok(sharded);
        assert_eq!(summaries[0].window(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dead_worker_is_an_error_not_a_panic_and_respawn_restores_service() {
        let mut sharded = ShardedFixedWindow::new(2, 8, 2, 0.5);
        sharded.push_to(1, 4.0).expect("worker alive");
        sharded.inject_worker_panic(1).expect("delivered");
        // The panic command is behind the push, so the snapshot request is
        // guaranteed to find a dead worker (its queued command is dropped
        // with the channel, which closes the reply).
        assert_eq!(sharded.snapshot(1), Err(ShardError { shard: 1 }));
        // Once death is observed, sends fail fast...
        assert_eq!(sharded.push_to(1, 5.0), Err(ShardError { shard: 1 }));
        assert_eq!(
            sharded.push_batch(1, vec![6.0]),
            Err(ShardError { shard: 1 })
        );
        assert_eq!(sharded.inject_worker_panic(1), Err(ShardError { shard: 1 }));
        // ...while the other shard keeps serving.
        sharded.push_to(0, 7.0).expect("other shard unaffected");
        assert!(sharded.snapshot(0).is_ok());
        // Respawn: the panicked worker's summary is unrecoverable (None),
        // the index serves again from empty, counters survive.
        assert!(sharded.respawn_shard(1).is_none());
        sharded.push_to(1, 8.0).expect("respawned shard serves");
        let (h, _) = sharded.snapshot(1).expect("respawned shard serves");
        assert_eq!(h.domain_len(), 1);
        let m = sharded.metrics(1);
        assert_eq!(m.respawns, 1);
        assert_eq!(m.pushes_accepted, 2, "pre-death push + post-respawn push");
        assert_eq!(m.queue_depth, 0);
        let results = sharded.join();
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn respawning_a_live_shard_returns_its_summary() {
        let mut sharded = ShardedFixedWindow::new(1, 8, 2, 0.5);
        sharded.push_batch(0, vec![1.0, 2.0, 3.0]).expect("alive");
        let old = sharded
            .respawn_shard(0)
            .expect("live worker drains and hands back its summary");
        assert_eq!(old.window(), vec![1.0, 2.0, 3.0]);
        assert_eq!(sharded.metrics(0).respawns, 1);
        let fresh = joined_ok(sharded);
        assert_eq!(fresh[0].total_pushed(), 0, "respawned summary is empty");
    }

    #[test]
    fn drop_newest_sheds_when_the_queue_is_full_and_counts_exactly() {
        // Flood a single shard with a queue of 1: whether each record
        // lands or is shed is timing-dependent, but the accounting
        // identity accepted + rejected + dropped == sent must hold
        // exactly once the snapshot barrier quiesces the shard.
        let sharded = ShardedFixedWindow::with_options(
            1,
            8,
            2,
            0.5,
            ShardedOptions {
                queue_capacity: 1,
                policy: OverloadPolicy::DropNewest,
            },
        );
        let mut sent = 0u64;
        for i in 0..20_000u64 {
            sharded.push_to(0, (i % 13) as f64).expect("never an error");
            sent += 1;
        }
        let _ = sharded.snapshot(0).expect("barrier");
        let m = sharded.metrics(0);
        assert_eq!(
            m.pushes_accepted + m.values_rejected + m.records_dropped,
            sent
        );
        assert_eq!(m.values_rejected, 0);
        assert_eq!(m.queue_depth, 0);
        let summaries = joined_ok(sharded);
        assert_eq!(summaries[0].total_pushed(), m.pushes_accepted);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let sharded = ShardedFixedWindow::new(1, 8, 2, 0.5);
        sharded.push_batch(0, Vec::new()).expect("no-op");
        let m = sharded.metrics(0);
        assert_eq!(m.queue_depth, 0);
        assert_eq!(joined_ok(sharded)[0].total_pushed(), 0);
    }

    #[test]
    fn scatter_spreads_a_slab_across_all_shards_in_order() {
        let shards = 4;
        let sharded = ShardedFixedWindow::new(shards, 64, 4, 0.1);
        let slab: Vec<f64> = (0..40).map(f64::from).collect();
        sharded.push_batch_scatter(&slab).expect("workers alive");
        let _ = sharded.snapshot_all(); // barrier
        let total: u64 = sharded
            .metrics_all()
            .iter()
            .map(|m| m.pushes_accepted)
            .sum();
        assert_eq!(total, slab.len() as u64, "every value landed somewhere");
        let summaries = joined_ok(sharded);
        let mut nonempty = 0;
        for fw in &summaries {
            let w = fw.window();
            // Contiguous chunks: each shard's window is a strictly
            // ascending run of the 0..40 ramp.
            assert!(w.windows(2).all(|p| p[0] < p[1]), "per-shard order kept");
            if !w.is_empty() {
                nonempty += 1;
            }
        }
        assert_eq!(nonempty, shards, "a 40-value slab reaches all 4 shards");
    }

    #[test]
    fn scatter_cursor_rotates_the_leading_shard() {
        // With a slab smaller than the shard count, each call produces one
        // single-chunk dispatch; the rotating cursor must move it to a
        // different shard each time.
        let sharded = ShardedFixedWindow::new(3, 8, 2, 0.5);
        for _ in 0..3 {
            sharded.push_batch_scatter(&[1.0]).expect("workers alive");
        }
        let _ = sharded.snapshot_all(); // barrier
        for (s, m) in sharded.metrics_all().iter().enumerate() {
            assert_eq!(m.pushes_accepted, 1, "shard {s} got exactly one value");
        }
        let _ = sharded.join();
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        assert!(matches!(
            ShardedFixedWindow::builder(0, 8, 2, 0.5).build(),
            Err(StreamhistError::InvalidParameter {
                param: "shards",
                ..
            })
        ));
        assert!(matches!(
            ShardedFixedWindow::builder(1, 8, 2, 0.5)
                .queue_capacity(0)
                .build(),
            Err(StreamhistError::InvalidParameter {
                param: "queue_capacity",
                ..
            })
        ));
        assert!(matches!(
            ShardedFixedWindow::builder(1, 0, 2, 0.5).build(),
            Err(StreamhistError::InvalidParameter {
                param: "capacity",
                ..
            })
        ));
        assert!(matches!(
            ShardedFixedWindow::builder(1, 8, 2, f64::NAN).build(),
            Err(StreamhistError::InvalidParameter { param: "eps", .. })
        ));
        let built = ShardedFixedWindow::builder(2, 8, 2, 0.5)
            .queue_capacity(4)
            .policy(OverloadPolicy::DropNewest)
            .build()
            .expect("valid parameters");
        assert_eq!(built.shards(), 2);
        assert_eq!(built.options().queue_capacity, 4);
        assert_eq!(built.options().policy, OverloadPolicy::DropNewest);
        let _ = built.join();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedFixedWindow::new(0, 8, 2, 0.5);
    }

    #[test]
    #[should_panic(expected = "queue capacity must be positive")]
    fn zero_queue_capacity_rejected() {
        let _ = ShardedFixedWindow::with_options(
            1,
            8,
            2,
            0.5,
            ShardedOptions {
                queue_capacity: 0,
                policy: OverloadPolicy::Block,
            },
        );
    }
}
