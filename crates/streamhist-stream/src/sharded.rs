//! Sharded serving layer for the fixed-window summary.
//!
//! The paper's data-stream setting (§1) is explicitly operational —
//! networking equipment emitting measurements "at link speeds" — and a
//! single summary per core is the natural scale-out: partition the key
//! space (one summary per interface, per flow group, per sensor), pin each
//! shard to a worker thread, and fan records out by key. Nothing in the
//! algorithm has to change; what the refactor to the arena-backed
//! [`crate::kernel`] bought is that every summary is `Send + 'static`, so
//! shards can be *moved* to workers and their finished summaries moved
//! back.
//!
//! [`ShardedFixedWindow`] packages that pattern as a robust serving
//! subsystem over plain `std::thread` workers — no extra dependencies, no
//! locking on the hot path (each shard is single-writer by construction).
//! Three production concerns are first-class:
//!
//! * **Failure model.** Malformed records (NaN/infinity) are
//!   counted-and-rejected by the worker via
//!   [`FixedWindowHistogram::try_push`] — they never kill a shard. A
//!   worker can still die (a bug, or deliberate fault injection through
//!   [`inject_worker_panic`](ShardedFixedWindow::inject_worker_panic));
//!   every API that talks to a shard returns `Result<_, `[`ShardError`]`>`
//!   instead of panicking, so one dead shard is detectable and reportable
//!   while the rest of the fleet keeps serving, and
//!   [`respawn_shard`](ShardedFixedWindow::respawn_shard) restores service
//!   on the dead index from its last checkpoint.
//! * **Durability.** Every worker auto-checkpoints its summary every
//!   [`ShardedOptions::checkpoint_interval`] accepted records — a
//!   versioned, CRC-checksummed [`Checkpoint`] frame kept in memory.
//!   [`respawn_shard`](ShardedFixedWindow::respawn_shard) seeds the
//!   replacement worker from a live worker's drained summary (lossless
//!   handoff) or, after a death, from the last checkpoint, and reports
//!   exactly how many accepted records were lost since that checkpoint was
//!   taken ([`RecoveryReport`]).
//!   [`checkpoint_all`](ShardedFixedWindow::checkpoint_all) /
//!   [`restore_all`](ShardedFixedWindow::restore_all) save and load the
//!   whole fleet through any [`Write`]/[`Read`] sink.
//! * **Backpressure.** Each shard's command queue is a *bounded*
//!   `sync_channel` ([`ShardedOptions::queue_capacity`] commands deep).
//!   When a shard falls behind, the configured [`OverloadPolicy`] decides:
//!   [`Block`](OverloadPolicy::Block) stalls the producer (lossless,
//!   memory-bounded), [`DropNewest`](OverloadPolicy::DropNewest) sheds the
//!   incoming record(s) and counts them. Memory can no longer grow without
//!   bound under a slow consumer.
//! * **Observability.** Every shard keeps atomic counters —
//!   [`ShardMetrics`]: pushes accepted, values rejected, records dropped
//!   under overload, snapshots served, respawns, current queue depth —
//!   readable through [`metrics`](ShardedFixedWindow::metrics) without a
//!   barrier round-trip (counters are `Relaxed` atomics, exact once the
//!   shard is quiescent). The `sharded_scaling` bench prints them per run.
//!
//! Routing is a fixed key hash ([`shard_of`](ShardedFixedWindow::shard_of));
//! re-sharding and replication remain out of scope.

use crate::durability::{
    recover_shard, DurabilityOptions, FleetDurability, ShardWal, WalMetricsInner, WalStatus,
};
use crate::fixed_window::FixedWindowHistogram;
use crate::kernel::{KernelStats, SnapshotCache};
use crate::merge::merge_histograms;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;
use streamhist_core::{Checkpoint, CheckpointStore, Histogram, StreamhistError};
use streamhist_obs::{Counter, EventKind, FlightRecorder, FloatGauge, Gauge, MetricsRegistry};

#[cfg(feature = "obs")]
use crate::telemetry::{FleetTiming, KernelTracer};
#[cfg(feature = "obs")]
use std::time::Instant;

/// Leading byte of a fleet save produced by
/// [`ShardedFixedWindow::checkpoint_all`] (`'S'` for *sharded*; per-shard
/// frames inside carry their own magic and CRC).
const FLEET_MAGIC: u8 = 0x53;

/// Fleet frame format version written by `checkpoint_all`.
const FLEET_VERSION: u8 = 1;

/// Upper bound on one scatter chunk, in records. A scattered slab used to
/// split into exactly `shards()` chunks of `len / k` records each; for
/// large slabs those chunks are big enough that every worker spends its
/// whole quantum inside one `push_batch`, serializing the fleet behind the
/// slowest chunk (the `bench_batch` speedup inversion: batch-1024 slower
/// than batch-64). Capping the chunk keeps large slabs flowing round-robin
/// across all shards in queue-slot-sized pieces that pipeline. The cap is
/// deliberately small: an A/B sweep over caps {8, 16, 32, 128} showed the
/// inversion re-appearing from 32 up (large slabs 10-25% behind 64-record
/// slabs), while at 16 the two are at parity from smoke scale to 64k-record
/// slabs — and per-command channel overhead is still two orders of
/// magnitude below per-record absorption cost, so small chunks cost
/// nothing at the large end.
const SCATTER_CHUNK_MAX: usize = 16;

/// A shard's worker thread is gone: it panicked (only possible through a
/// bug or injected fault — malformed values are rejected, not fatal) and
/// every operation addressed to that shard now fails fast with this error
/// until [`ShardedFixedWindow::respawn_shard`] restores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the shard whose worker has died.
    pub shard: usize,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} worker has died", self.shard)
    }
}

impl std::error::Error for ShardError {}

/// How [`ShardedFixedWindow::snapshot_global_with`] treats dead shards.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SnapshotPolicy {
    /// All shards or nothing: any dead worker fails the whole gather with
    /// its [`ShardError`]. This is [`ShardedFixedWindow::snapshot_global`]'s
    /// behavior and the default.
    #[default]
    Strict,
    /// Gather whatever answers: dead shards are skipped, and the snapshot
    /// ships with an exact [`Coverage`] report. The gather still fails if
    /// the covered fraction of accepted records falls below
    /// `min_coverage` (clamped to `[0, 1]`) or no shard answered at all —
    /// a snapshot representing too little is worse than an error.
    Degraded {
        /// Minimum acceptable [`Coverage::fraction`], clamped to `[0, 1]`.
        min_coverage: f64,
    },
}

/// What fraction of the fleet a (possibly degraded) global snapshot
/// actually represents.
///
/// Record counts live in the *cumulative accepted* domain — each shard's
/// `pushes_accepted` counter, which includes records accepted by earlier
/// worker epochs and lost across a crash. That is deliberate: coverage
/// answers "how much of what the fleet admitted is this snapshot standing
/// in for", and a record lost by a dead shard is exactly the kind of
/// absence the report must not hide (DESIGN.md invariant 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Shards whose snapshots made it into the gather.
    pub shards_included: usize,
    /// Total shards in the fleet.
    pub shards_total: usize,
    /// Accepted records represented by the included shards (worker-reported
    /// at each shard's snapshot barrier).
    pub records_represented: u64,
    /// Accepted records fleet-wide: the included shards' worker-reported
    /// counts plus the excluded shards' last counter values.
    pub records_total: u64,
}

impl Coverage {
    /// Covered fraction of accepted records, `1.0` for an empty fleet.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.records_total == 0 {
            1.0
        } else {
            self.records_represented as f64 / self.records_total as f64
        }
    }

    /// `true` when nothing was skipped: every shard is in and every
    /// accepted record is represented.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.shards_included == self.shards_total && self.records_represented == self.records_total
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} shards, {}/{} records ({:.1}%)",
            self.shards_included,
            self.shards_total,
            self.records_represented,
            self.records_total,
            self.fraction() * 100.0
        )
    }
}

/// What a producer-side push does when the target shard's bounded command
/// queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the producer until the worker drains a slot — lossless
    /// backpressure, the default.
    #[default]
    Block,
    /// Drop the incoming record(s) and add them to
    /// [`ShardMetrics::records_dropped`]. The push still returns `Ok`:
    /// shedding under overload is the configured behavior, not a failure.
    DropNewest,
}

/// Tuning for [`ShardedFixedWindow`]'s ingestion path.
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Bound of each shard's command queue, in *commands* (a
    /// [`push_batch`](ShardedFixedWindow::push_batch) of any size occupies
    /// one slot). Must be positive.
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub policy: OverloadPolicy,
    /// A worker takes an automatic in-memory checkpoint of its summary
    /// after every this many accepted records. Must be positive; the
    /// default is 1024. Smaller values tighten the worst-case loss window
    /// of [`ShardedFixedWindow::respawn_shard`] at the cost of more encode
    /// work per record.
    pub checkpoint_interval: usize,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
            checkpoint_interval: 1024,
        }
    }
}

/// What [`ShardedFixedWindow::respawn_shard`] recovered.
///
/// The conservation identity the recovery protocol guarantees (and
/// `tests/recovery.rs` fuzzes): at any quiescent point, a shard's
/// `pushes_accepted` metric equals the current summary's `total_pushed()`
/// plus the sum of every `lost_since_checkpoint` it has ever reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `total_pushed()` of the summary the replacement worker starts from:
    /// the drained summary of a live worker, or the decoded checkpoint of
    /// a dead one (0 if no usable checkpoint existed).
    pub restored_len: u64,
    /// Accepted records that died with the worker: everything accepted
    /// after the restored checkpoint was taken. Always 0 when the old
    /// worker was still alive (lossless handoff).
    pub lost_since_checkpoint: u64,
}

/// Point-in-time copy of one shard's counters. Counters are cumulative for
/// the lifetime of the shard *index* — they survive
/// [`respawn_shard`](ShardedFixedWindow::respawn_shard) (except
/// `queue_depth`, which is reset to 0 because the dead worker's queue is
/// discarded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Values absorbed into the summary.
    pub pushes_accepted: u64,
    /// Values rejected as malformed (NaN/infinity).
    pub values_rejected: u64,
    /// Records shed at enqueue time under [`OverloadPolicy::DropNewest`].
    pub records_dropped: u64,
    /// Snapshot requests the worker has answered.
    pub snapshots_served: u64,
    /// Times this shard index has been respawned.
    pub respawns: u64,
    /// Checkpoints taken for this shard index (automatic interval
    /// checkpoints plus explicit [`ShardedFixedWindow::checkpoint_all`]
    /// requests).
    pub checkpoints_taken: u64,
    /// Cumulative encoded size of every checkpoint frame taken, in bytes.
    pub checkpoint_bytes: u64,
    /// Times this shard index has been restored from a checkpoint frame
    /// (dead-worker respawns and [`ShardedFixedWindow::restore_all`] loads;
    /// lossless live handoffs do not count).
    pub restores: u64,
    /// Commands currently enqueued (or in flight) to the worker.
    pub queue_depth: usize,
}

/// Point-in-time copy of the fleet's gather/merge counters, maintained by
/// [`ShardedFixedWindow::snapshot_global`]. Like [`ShardMetrics`], the
/// cells are registered `streamhist_fleet_*{fleet}` series when the fleet
/// is built with a registry attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeMetrics {
    /// Histogram merges run by global-snapshot gathers: one per gather in
    /// flat mode, one per group plus one final in
    /// [`gather_fanout`](ShardedFixedWindowBuilder::gather_fanout) mode.
    pub merges: u64,
    /// Buckets fed into those merges (per-shard snapshot buckets, plus
    /// intermediate buckets in fanout mode).
    pub merge_buckets_in: u64,
    /// Buckets the merges produced (each output is at most `B` wide).
    pub merge_buckets_out: u64,
    /// Global snapshot requests answered from the generation cache without
    /// any cross-shard gather.
    pub cache_hits: u64,
}

/// The cells behind [`MergeMetrics`] — one set per fleet, touched only by
/// snapshot callers (never by workers).
#[derive(Debug, Default)]
struct MergeMetricsInner {
    merges: Counter,
    buckets_in: Counter,
    buckets_out: Counter,
    cache_hits: Counter,
    /// Live accuracy audit, refreshed by every real (non-cache-hit)
    /// global gather: the fleet-global SSE estimate, the DESIGN.md §7
    /// gather bound evaluated on the same measured inputs, and their
    /// quotient (≤ 1 by construction — the estimate is the bound with
    /// the `√(1+ε)·√G` cross term dropped).
    sse_estimate: FloatGauge,
    error_bound: FloatGauge,
    error_ratio: FloatGauge,
}

impl MergeMetricsInner {
    /// Cells registered into `registry` as `streamhist_fleet_*` series
    /// labeled `{fleet}`.
    fn registered(registry: &MetricsRegistry, fleet: &str) -> Self {
        let labels = &[("fleet", fleet)];
        Self {
            merges: registry.counter_with(
                "streamhist_fleet_merges_total",
                "Histogram merges run by global-snapshot gathers (group and final stages).",
                labels,
            ),
            buckets_in: registry.counter_with(
                "streamhist_fleet_merge_buckets_in_total",
                "Buckets fed into global-snapshot merges.",
                labels,
            ),
            buckets_out: registry.counter_with(
                "streamhist_fleet_merge_buckets_out_total",
                "Buckets produced by global-snapshot merges.",
                labels,
            ),
            cache_hits: registry.counter_with(
                "streamhist_fleet_snapshot_cache_hits_total",
                "Global snapshots served from the generation cache without a gather.",
                labels,
            ),
            sse_estimate: registry.float_gauge_with(
                "streamhist_snapshot_sse_estimate",
                "Fleet-global SSE estimate of the last gathered snapshot: \
                 (sqrt(merge herror) + sqrt(sum of per-shard herrors))^2.",
                labels,
            ),
            error_bound: registry.float_gauge_with(
                "streamhist_snapshot_error_bound",
                "DESIGN.md section-7 gather bound on the last snapshot's SSE, evaluated \
                 on the same measured herror inputs as the estimate.",
                labels,
            ),
            error_ratio: registry.float_gauge_with(
                "streamhist_snapshot_error_ratio",
                "sse_estimate / error_bound of the last gathered snapshot (<= 1; 0 when \
                 the bound is 0, i.e. a perfectly representable window).",
                labels,
            ),
        }
    }

    /// Publishes the accuracy audit for one gathered global snapshot.
    ///
    /// `shard_herror_sum` is `G`, the summed per-shard `KernelStats.herror`
    /// captured at each shard's snapshot barrier; `merged_herror` is `H`,
    /// the final merge's own `HERROR` over its (bucketized) input. The SSE
    /// estimate composes them as `(√H + √G)²` (triangle inequality in the
    /// L2 norm: the fleet's residual is the shards' residual plus the
    /// merge's). The §7 bound `(√G + √(1+ε)·(√G + √OPT_B))²` is evaluated
    /// with the conservative substitution `OPT_B ≥ H/(1+ε)` (the merge is
    /// `(1+ε)`-optimal over its input), which makes
    /// `bound = (√G + √(1+ε)·√G + √H)² ≥ estimate` — the published ratio
    /// is ≤ 1 identically, and strictly below 1 whenever the shards carry
    /// any residual error.
    fn record_audit(&self, shard_herror_sum: f64, merged_herror: f64, eps: f64) {
        let g = shard_herror_sum.max(0.0);
        let h = merged_herror.max(0.0);
        let estimate = (h.sqrt() + g.sqrt()).powi(2);
        let bound = (g.sqrt() + ((1.0 + eps).sqrt() * g.sqrt()) + h.sqrt()).powi(2);
        self.sse_estimate.set(estimate);
        self.error_bound.set(bound);
        self.error_ratio
            .set(if bound > 0.0 { estimate / bound } else { 0.0 });
    }

    fn read(&self) -> MergeMetrics {
        MergeMetrics {
            merges: self.merges.get(),
            merge_buckets_in: self.buckets_in.get(),
            merge_buckets_out: self.buckets_out.get(),
            cache_hits: self.cache_hits.get(),
        }
    }
}

/// The shared lock-free cells behind [`ShardMetrics`]: `streamhist-obs`
/// [`Counter`]/[`Gauge`] handles (`Relaxed` atomics inside). Each counter
/// is independently monotone and reads are statistical unless the shard
/// is quiescent (e.g. after a snapshot barrier), where channel
/// synchronization makes them exact.
///
/// A default instance's cells are private to the fleet. When the fleet is
/// built with [`ShardedFixedWindowBuilder::registry`], the cells are
/// *registered* series (`streamhist_shard_*{fleet, shard}`), so the
/// registry's exposition and the [`ShardMetrics`] view read the exact
/// same atomics — they cannot disagree.
#[derive(Debug, Default)]
struct MetricsInner {
    pushes_accepted: Counter,
    values_rejected: Counter,
    records_dropped: Counter,
    snapshots_served: Counter,
    respawns: Counter,
    checkpoints_taken: Counter,
    checkpoint_bytes: Counter,
    restores: Counter,
    queue_depth: Gauge,
    /// Per-fleet latency recorders (queue wait, checkpoint encode,
    /// restore, scatter), present only when tracing is compiled in *and*
    /// a registry is attached. Shared by every shard of the fleet.
    #[cfg(feature = "obs")]
    timing: Option<Arc<FleetTiming>>,
}

impl MetricsInner {
    /// Cells registered into `registry` as `streamhist_shard_*` series
    /// labeled `{fleet, shard}`.
    fn registered(registry: &MetricsRegistry, fleet: &str, shard: usize) -> Self {
        let shard = shard.to_string();
        let labels = &[("fleet", fleet), ("shard", shard.as_str())];
        let counter = |name: &str, help: &str| {
            registry.counter_with(&format!("streamhist_shard_{name}"), help, labels)
        };
        Self {
            pushes_accepted: counter(
                "pushes_accepted_total",
                "Values absorbed into the shard's summary.",
            ),
            values_rejected: counter(
                "values_rejected_total",
                "Values rejected as malformed (NaN/infinity).",
            ),
            records_dropped: counter(
                "records_dropped_total",
                "Records shed at enqueue time under OverloadPolicy::DropNewest.",
            ),
            snapshots_served: counter(
                "snapshots_served_total",
                "Snapshot requests the worker has answered.",
            ),
            respawns: counter(
                "respawns_total",
                "Times this shard index has been respawned.",
            ),
            checkpoints_taken: counter(
                "checkpoints_total",
                "Checkpoints taken for this shard index (automatic and explicit).",
            ),
            checkpoint_bytes: counter(
                "checkpoint_bytes_total",
                "Cumulative encoded size of every checkpoint frame taken.",
            ),
            restores: counter(
                "restores_total",
                "Times this shard index has been restored from a checkpoint frame.",
            ),
            queue_depth: registry.gauge_with(
                "streamhist_shard_queue_depth",
                "Commands currently enqueued (or in flight) to the worker.",
                labels,
            ),
            #[cfg(feature = "obs")]
            timing: None,
        }
    }

    fn read(&self) -> ShardMetrics {
        ShardMetrics {
            pushes_accepted: self.pushes_accepted.get(),
            values_rejected: self.values_rejected.get(),
            records_dropped: self.records_dropped.get(),
            snapshots_served: self.snapshots_served.get(),
            respawns: self.respawns.get(),
            checkpoints_taken: self.checkpoints_taken.get(),
            checkpoint_bytes: self.checkpoint_bytes.get(),
            restores: self.restores.get(),
            // The gauge can transiently dip below zero in a reader's view
            // (worker decrement racing ahead of a producer's increment);
            // clamp for the unsigned public field.
            queue_depth: usize::try_from(self.queue_depth.get().max(0)).unwrap_or(0),
        }
    }

    /// Wraps a command for a shard queue, stamping the enqueue instant
    /// when queue-wait tracing is live.
    fn envelope(&self, cmd: Cmd) -> Envelope {
        Envelope {
            cmd,
            #[cfg(feature = "obs")]
            sent_at: self.timing.as_ref().map(|_| Instant::now()),
        }
    }
}

/// The last checkpoint taken for one shard index: the encoded frame plus
/// the value of the shard's `pushes_accepted` counter at the instant it
/// was taken (the anchor for `lost_since_checkpoint` accounting). The slot
/// outlives individual workers — it is what a dead shard restores from.
struct CheckpointSlot {
    frame: Vec<u8>,
    accepted_at: u64,
}

/// Encodes the worker's current summary into the shared slot, maintaining
/// the checkpoint metrics, and returns the frame (for callers that also
/// ship it somewhere). Runs on the worker thread, so `pushes_accepted` is
/// exact: the worker is its only writer.
fn checkpoint_now(
    fw: &FixedWindowHistogram,
    metrics: &MetricsInner,
    slot: &Mutex<CheckpointSlot>,
) -> Vec<u8> {
    #[cfg(feature = "obs")]
    let encode_start = metrics.timing.as_ref().map(|_| Instant::now());
    let frame = fw.encode_checkpoint();
    #[cfg(feature = "obs")]
    if let (Some(t), Some(start)) = (&metrics.timing, encode_start) {
        t.checkpoint_encode.record(start.elapsed());
    }
    metrics.checkpoints_taken.inc();
    metrics.checkpoint_bytes.inc_by(frame.len() as u64);
    let accepted_at = metrics.pushes_accepted.get();
    *slot.lock().unwrap_or_else(PoisonError::into_inner) = CheckpointSlot {
        frame: frame.clone(),
        accepted_at,
    };
    frame
}

enum Cmd {
    Push(f64),
    PushBatch(Vec<f64>),
    /// Reply carries the histogram, kernel stats, and the shard's
    /// `pushes_accepted` as read on the worker thread at serve time — the
    /// worker is the counter's only writer, so the count is *exactly* the
    /// number of records inside the returned histogram (the per-shard
    /// generation the global snapshot cache keys by).
    Snapshot(Sender<(Arc<Histogram>, KernelStats, u64)>),
    /// Take a checkpoint right now (after everything queued before it) and
    /// reply with the encoded frame plus the summary's `total_pushed` (the
    /// frame's store sequence number) — the building block of
    /// [`ShardedFixedWindow::checkpoint_all`] and
    /// [`ShardedFixedWindow::save_to_store`].
    Checkpoint(Sender<(Vec<u8>, u64)>),
    /// Fault injection: the worker panics on receipt (see
    /// [`ShardedFixedWindow::inject_worker_panic`]).
    InjectPanic,
    /// Liveness probe: the worker replies `()` as soon as it dequeues
    /// this, proving the thread is alive *and* draining its queue. The
    /// supervisor's health probe ([`ShardedFixedWindow::ping`]) is built
    /// on it.
    Ping(Sender<()>),
}

/// What actually travels on a shard queue: the command, plus (when
/// queue-wait tracing is live) the instant it was enqueued. With the
/// `obs` feature off this is exactly a [`Cmd`].
struct Envelope {
    cmd: Cmd,
    #[cfg(feature = "obs")]
    sent_at: Option<Instant>,
}

struct Shard {
    sender: SyncSender<Envelope>,
    /// `None` only transiently inside `retire_worker`; every public entry
    /// point sees `Some`.
    handle: Option<JoinHandle<FixedWindowHistogram>>,
    metrics: Arc<MetricsInner>,
    checkpoint: Arc<Mutex<CheckpointSlot>>,
    /// `pushes_accepted` at the current worker's install minus its seed
    /// summary's `total_pushed`: translates between the cumulative metric
    /// domain (which counts records lost in earlier epochs) and the
    /// summary/WAL `total_pushed` domain. Signed because a store-backed
    /// load into a fresh fleet can seed a summary *larger* than the
    /// metric. Written only under `&mut self` (`install_worker`).
    epoch_offset: i64,
}

/// `K` independent [`FixedWindowHistogram`]s, each owned by a dedicated
/// worker thread and fed through a bounded channel.
///
/// Records are routed by key ([`push`](Self::push)) or addressed to a shard
/// directly ([`push_to`](Self::push_to), [`push_batch`](Self::push_batch)).
/// [`snapshot`](Self::snapshot) round-trips a reply channel and therefore
/// also acts as a barrier for everything sent to that shard before it.
/// Every shard-addressed operation returns `Err(`[`ShardError`]`)` instead
/// of panicking when the worker has died; see the module docs for the full
/// failure model, overload policies, and metrics.
///
/// All ingestion methods take `&self` and the type is `Sync`, so any
/// number of producer threads may push concurrently (per-shard record
/// order is whatever order their sends interleave in).
///
/// # Example
///
/// ```
/// use streamhist_stream::{ShardError, ShardedFixedWindow};
///
/// fn main() -> Result<(), ShardError> {
///     let sharded = ShardedFixedWindow::new(2, 64, 4, 0.1);
///     for i in 0..200u64 {
///         sharded.push(i, (i % 7) as f64)?;
///     }
///     let (hist, stats) = sharded.snapshot(0)?;
///     assert!(hist.num_buckets() <= 4);
///     assert!(stats.herror_evals > 0);
///     assert!(sharded.metrics(0).pushes_accepted > 0);
///     let summaries = sharded.join();
///     assert_eq!(summaries.len(), 2);
///     assert!(summaries.iter().all(Result::is_ok));
///     Ok(())
/// }
/// ```
pub struct ShardedFixedWindow {
    shards: Vec<Shard>,
    capacity: usize,
    b: usize,
    eps: f64,
    options: ShardedOptions,
    /// Rotating start shard for [`push_batch_scatter`](Self::push_batch_scatter),
    /// so successive scattered slabs do not all lead with shard 0.
    scatter_cursor: AtomicUsize,
    /// Group size for two-level global gathers; `None` merges every shard
    /// snapshot in one flat pass.
    gather_fanout: Option<usize>,
    /// Generation-keyed cache of the last merged global snapshot, keyed by
    /// [`global_generation`](Self::global_generation).
    global_cache: SnapshotCache,
    merge_metrics: MergeMetricsInner,
    /// The flight recorder fleet-level lifecycle events land in: overload
    /// sheds, degraded gathers, durability uploads, and (via the
    /// supervisor and serve layer, which share this recorder through
    /// [`recorder`](Self::recorder)) death/restart/quarantine transitions
    /// and slow queries. Always present — a fleet built without
    /// [`recorder`](ShardedFixedWindowBuilder::recorder) gets a private
    /// default-capacity ring.
    recorder: Arc<FlightRecorder>,
    /// The kernel tracer worker threads self-install (thread-scoped), when
    /// the fleet was built with
    /// [`kernel_tracer`](ShardedFixedWindowBuilder::kernel_tracer).
    #[cfg(feature = "obs")]
    kernel_tracer: Option<Arc<KernelTracer>>,
    /// The durability pipeline, when the fleet was built with
    /// [`durability`](ShardedFixedWindowBuilder::durability). Declared
    /// after `shards` so workers (which hold uploader handles) shut down
    /// before the uploader is joined.
    durability: Option<FleetDurability>,
}

impl ShardedFixedWindow {
    /// Spawns `shards` worker threads, each owning a
    /// `FixedWindowHistogram::new(capacity, b, eps)`, with default
    /// [`ShardedOptions`] (queue of 1024 commands,
    /// [`OverloadPolicy::Block`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or on the parameter conditions of
    /// [`FixedWindowHistogram::new`]. Use [`Self::builder`] for the
    /// non-panicking surface.
    #[must_use]
    pub fn new(shards: usize, capacity: usize, b: usize, eps: f64) -> Self {
        Self::with_options(shards, capacity, b, eps, ShardedOptions::default())
    }

    /// [`Self::new`] with explicit queue bound and overload policy.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, `options.queue_capacity == 0`, or on the
    /// parameter conditions of [`FixedWindowHistogram::new`]. Use
    /// [`Self::builder`] for the non-panicking surface.
    #[must_use]
    pub fn with_options(
        shards: usize,
        capacity: usize,
        b: usize,
        eps: f64,
        options: ShardedOptions,
    ) -> Self {
        Self::builder(shards, capacity, b, eps)
            .options(options)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Starts a validating builder. [`ShardedOptions`] are folded into the
    /// builder surface ([`queue_capacity`](ShardedFixedWindowBuilder::queue_capacity),
    /// [`policy`](ShardedFixedWindowBuilder::policy)); `build` returns
    /// `Err` instead of panicking on bad parameters.
    #[must_use]
    pub fn builder(
        shards: usize,
        capacity: usize,
        b: usize,
        eps: f64,
    ) -> ShardedFixedWindowBuilder {
        ShardedFixedWindowBuilder {
            shards,
            capacity,
            b,
            eps,
            options: ShardedOptions::default(),
            registry: None,
            fleet: None,
            gather_fanout: None,
            durability: None,
            recorder: None,
            #[cfg(feature = "obs")]
            kernel_tracer: None,
        }
    }

    /// Spawns one worker owning `fw` (a fresh, drained, or
    /// checkpoint-restored summary — the caller decides). The worker
    /// auto-checkpoints into `slot` every checkpoint interval's worth of
    /// accepted records; with durability configured (`wal` is `Some`) it
    /// additionally logs every accepted record to the WAL and ships each
    /// interval frame to the store, and the interval comes from
    /// [`DurabilityOptions::checkpoint_interval`].
    fn spawn_worker(
        &self,
        mut fw: FixedWindowHistogram,
        metrics: Arc<MetricsInner>,
        slot: Arc<Mutex<CheckpointSlot>>,
        mut wal: Option<ShardWal>,
    ) -> (SyncSender<Envelope>, JoinHandle<FixedWindowHistogram>) {
        let interval = self
            .durability
            .as_ref()
            .map_or(self.options.checkpoint_interval, |d| {
                d.options.checkpoint_interval
            });
        let (tx, rx) = sync_channel::<Envelope>(self.options.queue_capacity);
        #[cfg(feature = "obs")]
        let tracer = self.kernel_tracer.clone();
        let handle = std::thread::spawn(move || {
            // The worker self-installs the fleet's kernel tracer as its
            // thread-scoped tracer: every kernel hook this thread fires
            // reports to the fleet's registry, with no process-global
            // state involved.
            #[cfg(feature = "obs")]
            crate::telemetry::set_thread_kernel_tracer(tracer);
            let mut since_checkpoint = 0usize;
            while let Ok(env) = rx.recv() {
                metrics.queue_depth.dec();
                #[cfg(feature = "obs")]
                if let (Some(t), Some(sent_at)) = (&metrics.timing, env.sent_at) {
                    t.queue_wait.record(sent_at.elapsed());
                }
                match env.cmd {
                    Cmd::Push(v) => match fw.try_push(v) {
                        Ok(()) => {
                            metrics.pushes_accepted.inc();
                            since_checkpoint += 1;
                            if let Some(w) = wal.as_mut() {
                                w.record(v);
                            }
                        }
                        Err(_) => {
                            metrics.values_rejected.inc();
                        }
                    },
                    Cmd::PushBatch(vs) => {
                        // The slab fast path: one prefix-store write pass
                        // per run of finite values, interval work deferred
                        // to the next snapshot, exact reject accounting.
                        let out = fw.push_batch(&vs);
                        if out.accepted > 0 {
                            metrics.pushes_accepted.inc_by(out.accepted as u64);
                            since_checkpoint += out.accepted;
                            if let Some(w) = wal.as_mut() {
                                // The WAL logs exactly what the summary
                                // accepted: the finite values, in order.
                                w.record_batch(&vs);
                            }
                        }
                        if out.rejected > 0 {
                            metrics.values_rejected.inc_by(out.rejected as u64);
                        }
                    }
                    Cmd::Snapshot(reply) => {
                        metrics.snapshots_served.inc();
                        let (h, stats) = fw.histogram_with_stats();
                        // A dropped reply receiver just means the
                        // requester stopped waiting.
                        let _ = reply.send((h, stats, metrics.pushes_accepted.get()));
                    }
                    Cmd::Checkpoint(reply) => {
                        let frame = checkpoint_now(&fw, &metrics, &slot);
                        since_checkpoint = 0;
                        if let Some(w) = wal.as_mut() {
                            w.on_frame(fw.total_pushed(), frame.clone());
                        }
                        let _ = reply.send((frame, fw.total_pushed()));
                    }
                    Cmd::InjectPanic => panic!("injected shard worker panic (fault injection)"),
                    Cmd::Ping(reply) => {
                        // A dropped reply receiver means the prober gave
                        // up waiting; the worker is fine either way.
                        let _ = reply.send(());
                    }
                }
                if since_checkpoint >= interval {
                    let frame = checkpoint_now(&fw, &metrics, &slot);
                    since_checkpoint = 0;
                    if let Some(w) = wal.as_mut() {
                        w.on_frame(fw.total_pushed(), frame);
                    }
                }
            }
            // Channel closed: hand the summary back to `join`/`respawn`.
            fw
        });
        (tx, handle)
    }

    /// A fresh, empty per-shard summary with this fleet's configuration.
    fn fresh_summary(&self) -> FixedWindowHistogram {
        FixedWindowHistogram::new(self.capacity, self.b, self.eps)
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The ingestion options in effect.
    #[must_use]
    pub fn options(&self) -> &ShardedOptions {
        &self.options
    }

    /// The fleet's [`FlightRecorder`] — the shared ring its lifecycle
    /// events land in. Clone the `Arc` into anything that should read or
    /// co-write the same timeline (supervisor, serve layer, admin
    /// endpoints).
    #[must_use]
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The shard a key routes to (Fibonacci hash of the key, so adjacent
    /// keys spread across shards).
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (mixed % self.shards.len() as u64) as usize
    }

    /// Enqueues a command, maintaining the depth gauge and applying the
    /// overload policy (`records` is what `records_dropped` grows by if
    /// the command is shed).
    fn send(&self, shard: usize, cmd: Cmd, records: u64) -> Result<(), ShardError> {
        let s = &self.shards[shard];
        let env = s.metrics.envelope(cmd);
        // Increment before the send so the worker's decrement (which can
        // race ahead of this thread the instant the send lands) never
        // drives the gauge negative for long.
        s.metrics.queue_depth.inc();
        let undeliverable = match self.options.policy {
            OverloadPolicy::Block => s.sender.send(env).is_err(),
            OverloadPolicy::DropNewest => match s.sender.try_send(env) {
                Ok(()) => false,
                Err(TrySendError::Full(_)) => {
                    s.metrics.queue_depth.dec();
                    // Log-sampled flight-recorder event: one record per
                    // power-of-two cumulative drop count, so a sustained
                    // overload cannot flood the ring while the first shed
                    // and every doubling are still on the timeline. The
                    // counter has concurrent writers, so a racing producer
                    // may claim the same power twice — acceptable for a
                    // sampled signal (the exact total is the counter).
                    let before = s.metrics.records_dropped.get();
                    s.metrics.records_dropped.inc_by(records);
                    let after = before.saturating_add(records);
                    let next_pow = before
                        .checked_add(1)
                        .map_or(u64::MAX, u64::next_power_of_two);
                    if next_pow <= after {
                        self.recorder.record(EventKind::Overloaded {
                            shard: Some(shard),
                            dropped: after,
                        });
                    }
                    return Ok(());
                }
                Err(TrySendError::Disconnected(_)) => true,
            },
        };
        if undeliverable {
            s.metrics.queue_depth.dec();
            return Err(ShardError { shard });
        }
        Ok(())
    }

    /// Routes one record to its key's shard, blocking or shedding per the
    /// overload policy.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the target worker has died.
    pub fn push(&self, key: u64, v: f64) -> Result<(), ShardError> {
        self.push_to(self.shard_of(key), v)
    }

    /// Pushes one record to an explicit shard, blocking or shedding per
    /// the overload policy.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the worker has died.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range (an addressing bug, not a runtime
    /// condition).
    pub fn push_to(&self, shard: usize, v: f64) -> Result<(), ShardError> {
        self.send(shard, Cmd::Push(v), 1)
    }

    /// Pushes a batch of records to an explicit shard in order (one
    /// channel send and one queue slot — the preferred high-throughput
    /// entry point). Under [`OverloadPolicy::DropNewest`] a full queue
    /// sheds the *whole batch*, counting `values.len()` dropped records.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the worker has died.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn push_batch(&self, shard: usize, values: Vec<f64>) -> Result<(), ShardError> {
        let records = values.len() as u64;
        if records == 0 {
            // An empty batch is a no-op and should not occupy a queue slot,
            // but an out-of-range shard is still an addressing bug.
            assert!(shard < self.shards.len(), "shard {shard} out of range");
            return Ok(());
        }
        self.send(shard, Cmd::PushBatch(values), records)
    }

    /// Scatters one slab across *all* shards: the slab is split into
    /// contiguous chunks of at most `min(⌈len / shards()⌉, 16)` records,
    /// chunk `i` going to shard `(cursor + i) % shards()` where `cursor`
    /// rotates per call so load spreads evenly across calls. Small slabs
    /// produce one chunk per shard; large slabs wrap round-robin, so every
    /// shard receives several pipeline-sized chunks instead of one
    /// monolithic slice (the monolithic split serialized the fleet behind
    /// its slowest worker). Each chunk is a single channel send (one queue
    /// slot), and because a shard's chunks are sub-slices dispatched in
    /// slab order, per-shard record order is preserved.
    ///
    /// # Errors
    ///
    /// Returns the first [`ShardError`] hit. **Every** chunk addressed to a
    /// healthy shard is still dispatched — a dead shard in the rotation no
    /// longer silently starves the chunks that would have followed it — so
    /// the error means exactly "the chunks for the named shard (and any
    /// other dead shard) were lost", never "dispatch stopped midway" (the
    /// slab is a transport unit, not a transaction — mirroring
    /// [`BatchOutcome`](streamhist_core::BatchOutcome) semantics at the
    /// shard level).
    pub fn push_batch_scatter(&self, values: &[f64]) -> Result<(), ShardError> {
        if values.is_empty() {
            return Ok(());
        }
        let k = self.shards.len();
        #[cfg(feature = "obs")]
        let scatter_start = self.shards[0]
            .metrics
            .timing
            .as_ref()
            .map(|t| (Arc::clone(t), Instant::now()));
        let start = self.scatter_cursor.fetch_add(1, Ordering::Relaxed);
        let chunk = values.len().div_ceil(k).min(SCATTER_CHUNK_MAX);
        let mut first_err = None;
        for (i, slab) in values.chunks(chunk).enumerate() {
            if let Err(e) = self.push_batch((start + i) % k, slab.to_vec()) {
                first_err.get_or_insert(e);
            }
        }
        #[cfg(feature = "obs")]
        if let Some((t, at)) = scatter_start {
            t.scatter.record(at.elapsed());
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Materializes shard `shard`'s current histogram (with kernel stats),
    /// after everything previously enqueued to that shard has been
    /// absorbed — a per-shard barrier. The snapshot request always uses a
    /// blocking send (it is control plane, never shed), even under
    /// [`OverloadPolicy::DropNewest`].
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the worker has died (including death
    /// after the request was enqueued but before it was answered).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn snapshot(&self, shard: usize) -> Result<(Arc<Histogram>, KernelStats), ShardError> {
        self.snapshot_with_gen(shard)
            .map(|(h, stats, _)| (h, stats))
    }

    /// [`snapshot`](Self::snapshot) plus the shard's accepted-record count
    /// as observed by the worker at serve time (exactly the records inside
    /// the returned histogram).
    fn snapshot_with_gen(
        &self,
        shard: usize,
    ) -> Result<(Arc<Histogram>, KernelStats, u64), ShardError> {
        let s = &self.shards[shard];
        let (reply_tx, reply_rx) = channel();
        let env = s.metrics.envelope(Cmd::Snapshot(reply_tx));
        s.metrics.queue_depth.inc();
        if s.sender.send(env).is_err() {
            s.metrics.queue_depth.dec();
            return Err(ShardError { shard });
        }
        reply_rx.recv().map_err(|_| ShardError { shard })
    }

    /// Snapshots every shard, in shard order. Dead shards yield their
    /// `Err` entry without disturbing the others.
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<Result<(Arc<Histogram>, KernelStats), ShardError>> {
        (0..self.shards()).map(|s| self.snapshot(s)).collect()
    }

    /// Liveness probe: `true` iff the shard's worker dequeued and answered
    /// a ping within `timeout`.
    ///
    /// The probe never blocks on a full queue: a full-but-connected queue
    /// reports *live* immediately (the worker exists and is backpressured
    /// — restarting it would destroy queued records), while a
    /// disconnected queue (the worker's receiver is dropped, full or not)
    /// reports dead without waiting. Between those, the worker must drain
    /// to the ping within `timeout`, so a wedged-but-alive thread
    /// eventually reads as dead to its supervisor.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn ping(&self, shard: usize, timeout: Duration) -> bool {
        let s = &self.shards[shard];
        let (reply_tx, reply_rx) = channel();
        let env = s.metrics.envelope(Cmd::Ping(reply_tx));
        s.metrics.queue_depth.inc();
        match s.sender.try_send(env) {
            Ok(()) => reply_rx.recv_timeout(timeout).is_ok(),
            Err(TrySendError::Full(_)) => {
                s.metrics.queue_depth.dec();
                true
            }
            Err(TrySendError::Disconnected(_)) => {
                s.metrics.queue_depth.dec();
                false
            }
        }
    }

    /// The generation key of the fleet's current logical state: total
    /// records absorbed plus every respawn and restore event (a respawn
    /// can *lose* records and a restore can *rewind* them without moving
    /// `pushes_accepted`, so both must perturb the key).
    fn global_generation(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.metrics
                    .pushes_accepted
                    .get()
                    .wrapping_add(s.metrics.respawns.get())
                    .wrapping_add(s.metrics.restores.get())
            })
            .fold(0u64, u64::wrapping_add)
    }

    /// Respawn/restore perturbation shared by [`global_generation`]
    /// (live-counter view) and the gather (worker-reported view); these
    /// events require `&mut self`, so they cannot race either reader.
    fn epoch_perturbation(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.metrics
                    .respawns
                    .get()
                    .wrapping_add(s.metrics.restores.get())
            })
            .fold(0u64, u64::wrapping_add)
    }

    /// Gathers every shard into one fleet-global `B`-bucket histogram: a
    /// scatter/gather snapshot of everything the fleet currently holds,
    /// with the shard windows concatenated in shard order.
    ///
    /// Each per-shard snapshot is a barrier for that shard (everything
    /// enqueued to it before this call is absorbed first); the gathered
    /// parts are then merged through [`merge_histograms`] — in one flat
    /// pass, or through a two-level aggregation tree when the fleet was
    /// built with
    /// [`gather_fanout`](ShardedFixedWindowBuilder::gather_fanout). The
    /// result is cached under the fleet's state generation: calling again
    /// with no intervening absorbed record, respawn, or restore returns
    /// the same [`Arc`] without any cross-shard traffic (and without the
    /// per-shard barriers — a cache hit is a point-in-time view, not a
    /// flush). The returned [`KernelStats`] carry the final merge's state
    /// with work counters accumulated across every merge stage.
    ///
    /// The merged histogram obeys the DESIGN.md §7 gather bound:
    /// `√SSE ≤ √G + √(1+ε)·(√G + √OPT_B)` over the concatenated fleet
    /// window, where `G` is the summed per-shard SSE (each extra tree
    /// level in fanout mode composes the bound once more).
    ///
    /// # Errors
    ///
    /// Returns the first [`ShardError`] if any worker has died — a global
    /// snapshot is all shards or nothing (respawn the dead shard first).
    pub fn snapshot_global(&self) -> Result<(Arc<Histogram>, KernelStats), ShardError> {
        // Hit path: if the live counters still sum to the cached build's
        // key, nothing has been absorbed (or respawned/restored) since
        // that build — it is current, serve it without touching a shard.
        if let Some(hit) = self.global_cache.try_get(self.global_generation()) {
            self.merge_metrics.cache_hits.inc();
            return Ok(hit);
        }
        #[cfg(feature = "obs")]
        let merge_start = self.shards[0]
            .metrics
            .timing
            .as_ref()
            .map(|t| (Arc::clone(t), Instant::now()));
        // The cache key uses the worker-reported accepted counts, read on
        // each worker thread at the instant it served its snapshot: the
        // key describes exactly the records inside the gathered parts,
        // even while producers race this gather (records absorbed after a
        // shard's snapshot bump the live counters, so the next call
        // misses and regathers — the cache can serve newer-than-key data
        // never staler).
        let mut generation = self.epoch_perturbation();
        let mut shard_herror_sum = 0.0f64;
        let snaps = (0..self.shards())
            .map(|s| {
                self.snapshot_with_gen(s).map(|(h, stats, gen)| {
                    generation = generation.wrapping_add(gen);
                    // `G` of the §7 gather bound: the summed per-shard
                    // residual, captured at each shard's barrier.
                    shard_herror_sum += stats.herror;
                    h
                })
            })
            .collect::<Result<Vec<_>, ShardError>>()?;
        let parts: Vec<&Histogram> = snaps.iter().map(AsRef::as_ref).collect();
        let built = self.gather(&parts);
        self.merge_metrics
            .record_audit(shard_herror_sum, built.1.herror, self.eps);
        #[cfg(feature = "obs")]
        if let Some((t, at)) = merge_start {
            t.merge.record(at.elapsed());
        }
        Ok(self.global_cache.get_or_build(generation, || built))
    }

    /// [`snapshot_global`](Self::snapshot_global) with an explicit
    /// dead-shard policy, returning the gathered histogram *plus* an exact
    /// [`Coverage`] report.
    ///
    /// Under [`SnapshotPolicy::Strict`] this is `snapshot_global` (cached,
    /// all shards or nothing) with a complete coverage report whose record
    /// counts are the live accepted counters at call time.
    ///
    /// Under [`SnapshotPolicy::Degraded`] the gather snapshots each shard
    /// independently, skips the ones whose workers are dead, and merges
    /// the rest. `records_represented` sums the included shards'
    /// worker-reported counts (read at each shard's snapshot barrier);
    /// `records_total` adds the excluded shards' last counter values — a
    /// dead worker's counter is exact, it has no writer left. The degraded
    /// path never touches the snapshot cache (a partial gather must not be
    /// served later as a complete one, and must not evict a complete one).
    ///
    /// # Errors
    ///
    /// Strict: the first dead shard's [`ShardError`]. Degraded: the first
    /// *excluded* shard's [`ShardError`] when no shard answered or the
    /// covered record fraction is below `min_coverage`.
    pub fn snapshot_global_with(
        &self,
        policy: SnapshotPolicy,
    ) -> Result<(Arc<Histogram>, KernelStats, Coverage), ShardError> {
        let min_coverage = match policy {
            SnapshotPolicy::Strict => {
                let (hist, stats) = self.snapshot_global()?;
                let records = self
                    .shards
                    .iter()
                    .map(|s| s.metrics.pushes_accepted.get())
                    .sum();
                let coverage = Coverage {
                    shards_included: self.shards(),
                    shards_total: self.shards(),
                    records_represented: records,
                    records_total: records,
                };
                return Ok((hist, stats, coverage));
            }
            SnapshotPolicy::Degraded { min_coverage } => min_coverage.clamp(0.0, 1.0),
        };
        let mut snaps: Vec<Arc<Histogram>> = Vec::with_capacity(self.shards());
        let mut coverage = Coverage {
            shards_included: 0,
            shards_total: self.shards(),
            records_represented: 0,
            records_total: 0,
        };
        let mut first_excluded: Option<usize> = None;
        let mut shard_herror_sum = 0.0f64;
        for shard in 0..self.shards() {
            match self.snapshot_with_gen(shard) {
                Ok((h, stats, gen)) => {
                    coverage.shards_included += 1;
                    coverage.records_represented += gen;
                    coverage.records_total += gen;
                    shard_herror_sum += stats.herror;
                    snaps.push(h);
                }
                Err(_) => {
                    coverage.records_total += self.shards[shard].metrics.pushes_accepted.get();
                    if first_excluded.is_none() {
                        first_excluded = Some(shard);
                    }
                }
            }
        }
        if let Some(shard) = first_excluded {
            if coverage.shards_included == 0 || coverage.fraction() < min_coverage {
                return Err(ShardError { shard });
            }
        }
        if coverage.shards_included < coverage.shards_total {
            // Flight-record every *served* partial gather (refused ones
            // surface as the error above): readers of the snapshot need
            // to know it under-represents the fleet.
            self.recorder.record(EventKind::SnapshotDegraded {
                shards_included: coverage.shards_included,
                shards_total: coverage.shards_total,
            });
        }
        let parts: Vec<&Histogram> = snaps.iter().map(AsRef::as_ref).collect();
        let (hist, stats) = self.gather(&parts);
        self.merge_metrics
            .record_audit(shard_herror_sum, stats.herror, self.eps);
        Ok((Arc::new(hist), stats, coverage))
    }

    /// Merges the gathered per-shard parts down to `B` buckets, flat or
    /// through one intermediate tree level per
    /// [`gather_fanout`](ShardedFixedWindowBuilder::gather_fanout) group.
    fn gather(&self, parts: &[&Histogram]) -> (Histogram, KernelStats) {
        match self.gather_fanout {
            Some(fanout) if parts.len() > fanout => {
                let groups: Vec<(Histogram, KernelStats)> = parts
                    .chunks(fanout)
                    .map(|group| self.merge_group(group))
                    .collect();
                let tops: Vec<&Histogram> = groups.iter().map(|(h, _)| h).collect();
                let (h, mut stats) = self.merge_group(&tops);
                // State-style fields (herror, queue sizes, arena occupancy)
                // describe the final merge; work counters accumulate over
                // every stage so the gather's total cost is visible.
                for (_, gs) in &groups {
                    stats.herror_evals += gs.herror_evals;
                    stats.binary_searches += gs.binary_searches;
                }
                (h, stats)
            }
            _ => self.merge_group(parts),
        }
    }

    /// One merge stage, with bucket-flow accounting.
    fn merge_group(&self, parts: &[&Histogram]) -> (Histogram, KernelStats) {
        self.merge_metrics.merges.inc();
        self.merge_metrics
            .buckets_in
            .inc_by(parts.iter().map(|h| h.num_buckets() as u64).sum());
        let (h, stats) = merge_histograms(parts, self.b, self.eps)
            .expect("fleet histogram parameters were validated at build time");
        self.merge_metrics
            .buckets_out
            .inc_by(h.num_buckets() as u64);
        (h, stats)
    }

    /// Point-in-time copy of the fleet's gather/merge counters.
    #[must_use]
    pub fn merge_metrics(&self) -> MergeMetrics {
        self.merge_metrics.read()
    }

    /// Point-in-time metrics for one shard, read directly from shared
    /// atomics — no barrier, no channel round-trip, works on dead shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn metrics(&self, shard: usize) -> ShardMetrics {
        self.shards[shard].metrics.read()
    }

    /// Metrics for every shard, in shard order.
    #[must_use]
    pub fn metrics_all(&self) -> Vec<ShardMetrics> {
        self.shards.iter().map(|s| s.metrics.read()).collect()
    }

    /// Fault injection for resilience testing: makes the shard's worker
    /// panic when it dequeues this command, simulating an in-worker bug.
    /// Commands already queued ahead of it are still processed; commands
    /// behind it are lost with the worker.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the worker is already dead.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn inject_worker_panic(&self, shard: usize) -> Result<(), ShardError> {
        let s = &self.shards[shard];
        let env = s.metrics.envelope(Cmd::InjectPanic);
        s.metrics.queue_depth.inc();
        if s.sender.send(env).is_err() {
            s.metrics.queue_depth.dec();
            return Err(ShardError { shard });
        }
        Ok(())
    }

    /// Closes shard `shard`'s channel and joins its worker: `Some(summary)`
    /// if the worker was alive (it drains every queued command first),
    /// `None` if it had died (stranded commands are discarded). Leaves the
    /// shard without a worker — callers must follow with `install_worker`.
    fn retire_worker(&mut self, shard: usize) -> Option<FixedWindowHistogram> {
        // A dummy disconnected sender stands in so the real one can be
        // dropped (closing the queue) before the join. Nothing can race the
        // stand-in: `&mut self` is exclusive.
        let (dummy_tx, _) = sync_channel::<Envelope>(1);
        drop(std::mem::replace(&mut self.shards[shard].sender, dummy_tx));
        let handle = self.shards[shard]
            .handle
            .take()
            .expect("retire_worker called twice without install_worker");
        handle.join().ok()
    }

    /// Spawns a replacement worker on shard `shard` seeded with `seed`,
    /// refreshing the checkpoint slot to `frame` (the encoding of `seed`)
    /// so per-epoch loss accounting restarts from the seed state, and
    /// resetting the queue-depth gauge for the new (empty) queue.
    fn install_worker(&mut self, shard: usize, seed: FixedWindowHistogram, frame: Vec<u8>) {
        let metrics = Arc::clone(&self.shards[shard].metrics);
        let slot = Arc::clone(&self.shards[shard].checkpoint);
        let accepted = metrics.pushes_accepted.get();
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = CheckpointSlot {
            frame,
            accepted_at: accepted,
        };
        // Re-anchor the metric-domain ↔ summary-domain translation: from
        // here on, `accepted - (epoch_offset + total_pushed)` counts
        // exactly the records accepted by dead workers and never made
        // durable.
        #[allow(clippy::cast_possible_wrap)]
        {
            self.shards[shard].epoch_offset = accepted as i64 - seed.total_pushed() as i64;
        }
        let wal = self.shard_wal(shard, seed.total_pushed());
        let (sender, handle) = self.spawn_worker(seed, Arc::clone(&metrics), slot, wal);
        self.shards[shard].sender = sender;
        self.shards[shard].handle = Some(handle);
        metrics.queue_depth.set(0);
    }

    /// A fresh per-shard WAL buffer starting at sequence `base`, or `None`
    /// when the fleet has no durability pipeline.
    fn shard_wal(&self, shard: usize, base: u64) -> Option<ShardWal> {
        self.durability.as_ref().map(|d| d.shard_wal(shard, base))
    }

    /// Replaces shard `shard`'s worker, restoring service on that index
    /// after a worker death — the fleet degrades gracefully instead of
    /// cascading panics.
    ///
    /// The old worker's channel is closed first. If it is still alive it
    /// drains every queued command and the replacement worker is seeded
    /// with its final summary — a **lossless handoff**
    /// (`lost_since_checkpoint == 0`). If it had died, the replacement is
    /// seeded from the shard's last in-memory checkpoint, and the report
    /// says exactly how many accepted records died with the worker
    /// (everything accepted after that checkpoint was taken); with no
    /// usable checkpoint the shard restarts empty and the whole epoch is
    /// reported lost. Cumulative metrics survive; `queue_depth` is reset
    /// for the new (empty) queue, `respawns` increments, and `restores`
    /// increments when a checkpoint frame was decoded.
    ///
    /// Takes `&mut self`, so producers (which hold `&self`) can never race
    /// a respawn — wrap the whole value in an `RwLock` to respawn while
    /// producers are live (see `tests/sharded_stress.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn respawn_shard(&mut self, shard: usize) -> RecoveryReport {
        let metrics = Arc::clone(&self.shards[shard].metrics);
        let (seed, report) = match self.retire_worker(shard) {
            Some(fw) => {
                let report = RecoveryReport {
                    restored_len: fw.total_pushed(),
                    lost_since_checkpoint: 0,
                };
                (fw, report)
            }
            None => {
                // Read the counter only after the join above: a dying
                // worker can still accept queued records (and even take an
                // auto-checkpoint) right up to its death, so any earlier
                // read would undercount the loss. Post-join both the
                // counter and the slot are frozen.
                let accepted = metrics.pushes_accepted.get();
                if let Some(recovered) = self.recover_from_store(shard, accepted) {
                    recovered
                } else {
                    let slot = Arc::clone(&self.shards[shard].checkpoint);
                    let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
                    let accepted_at = guard.accepted_at;
                    #[cfg(feature = "obs")]
                    let restore_start = metrics.timing.as_ref().map(|_| Instant::now());
                    let decoded = FixedWindowHistogram::restore(&guard.frame);
                    #[cfg(feature = "obs")]
                    if let (Some(t), Some(start)) = (&metrics.timing, restore_start) {
                        t.restore.record(start.elapsed());
                    }
                    drop(guard);
                    let lost_since_checkpoint = accepted.saturating_sub(accepted_at);
                    match decoded {
                        Ok(fw) => {
                            metrics.restores.inc();
                            let report = RecoveryReport {
                                restored_len: fw.total_pushed(),
                                lost_since_checkpoint,
                            };
                            (fw, report)
                        }
                        // Unreachable through this module's own frames, but a
                        // corrupt slot must degrade to an empty shard, not a
                        // panic.
                        Err(_) => {
                            let report = RecoveryReport {
                                restored_len: 0,
                                lost_since_checkpoint,
                            };
                            (self.fresh_summary(), report)
                        }
                    }
                }
            }
        };
        let frame = seed.encode_checkpoint();
        self.install_worker(shard, seed, frame);
        metrics.respawns.inc();
        report
    }

    /// Durability-backed dead-shard recovery: flush the uploader so every
    /// WAL segment the dead worker shipped is in the store, then rebuild
    /// the summary from the newest frame plus its WAL tail. Returns `None`
    /// when the fleet has no durability pipeline or the store itself is
    /// unreadable (the caller falls back to the in-memory slot). Loss is
    /// exact: the records the dead worker accepted (metric domain) minus
    /// those the recovered summary holds (translated via the shard's
    /// epoch offset) — zero for every record synced before the crash.
    fn recover_from_store(
        &self,
        shard: usize,
        accepted: u64,
    ) -> Option<(FixedWindowHistogram, RecoveryReport)> {
        let d = self.durability.as_ref()?;
        d.flush();
        let metrics = &self.shards[shard].metrics;
        #[cfg(feature = "obs")]
        let restore_start = metrics.timing.as_ref().map(|_| Instant::now());
        let fresh = self.fresh_summary();
        let fw = recover_shard(d.options.store.as_ref(), shard, &d.metrics.retries, || {
            fresh
        })
        .ok()?;
        #[cfg(feature = "obs")]
        if let (Some(t), Some(start)) = (&metrics.timing, restore_start) {
            t.restore.record(start.elapsed());
        }
        metrics.restores.inc();
        #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
        let lost = (accepted as i64 - (self.shards[shard].epoch_offset + fw.total_pushed() as i64))
            .max(0) as u64;
        let report = RecoveryReport {
            restored_len: fw.total_pushed(),
            lost_since_checkpoint: lost,
        };
        Some((fw, report))
    }

    /// Saves the whole fleet to `sink`: a checkpoint of every shard's
    /// current summary, each taken after everything previously enqueued to
    /// that shard has been absorbed (the checkpoint request is a per-shard
    /// barrier, like [`snapshot`](Self::snapshot)). The format is a small
    /// fleet header (magic, version, shard count) followed by one
    /// length-prefixed, self-checksummed [`Checkpoint`] frame per shard,
    /// in shard order. Taking the checkpoints also refreshes each shard's
    /// in-memory recovery slot. Returns the number of bytes written.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from `sink`, or an [`io::Error`] wrapping
    /// [`ShardError`] if a worker has died (save the healthy shards by
    /// respawning the dead one first).
    pub fn checkpoint_all<W: Write>(&self, sink: &mut W) -> io::Result<u64> {
        let mut frames = Vec::with_capacity(self.shards.len());
        for (shard, s) in self.shards.iter().enumerate() {
            let (reply_tx, reply_rx) = channel();
            let env = s.metrics.envelope(Cmd::Checkpoint(reply_tx));
            s.metrics.queue_depth.inc();
            if s.sender.send(env).is_err() {
                s.metrics.queue_depth.dec();
                return Err(io::Error::other(ShardError { shard }));
            }
            let (frame, _total) = reply_rx
                .recv()
                .map_err(|_| io::Error::other(ShardError { shard }))?;
            frames.push(frame);
        }
        let mut written = 0u64;
        sink.write_all(&[FLEET_MAGIC, FLEET_VERSION])?;
        written += 2;
        let count =
            u32::try_from(frames.len()).map_err(|_| io::Error::other("shard count exceeds u32"))?;
        sink.write_all(&count.to_le_bytes())?;
        written += 4;
        for frame in &frames {
            sink.write_all(&(frame.len() as u64).to_le_bytes())?;
            sink.write_all(frame)?;
            written += 8 + frame.len() as u64;
        }
        sink.flush()?;
        Ok(written)
    }

    /// Loads a fleet save produced by [`checkpoint_all`](Self::checkpoint_all),
    /// replacing every shard's worker with one seeded from its saved
    /// summary. The load is all-or-nothing: every frame is validated
    /// (header, per-frame CRC, full structural decode) before any worker
    /// is replaced, so a corrupt save leaves the fleet untouched. The
    /// shard count must match this fleet's. Each shard's `restores`
    /// counter increments; other cumulative metrics are kept.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from `source`, or [`io::ErrorKind::InvalidData`]
    /// wrapping the [`StreamhistError`] if a frame fails validation or the
    /// header/shard count does not match.
    pub fn restore_all<R: Read>(&mut self, source: &mut R) -> io::Result<()> {
        let invalid = |reason: &str| io::Error::new(io::ErrorKind::InvalidData, reason.to_owned());
        let mut header = [0u8; 2];
        source.read_exact(&mut header)?;
        if header[0] != FLEET_MAGIC {
            return Err(invalid("fleet frame magic mismatch"));
        }
        if header[1] != FLEET_VERSION {
            return Err(invalid("unsupported fleet frame version"));
        }
        let mut count_bytes = [0u8; 4];
        source.read_exact(&mut count_bytes)?;
        let count = u32::from_le_bytes(count_bytes) as usize;
        if count != self.shards.len() {
            return Err(invalid("fleet shard count does not match this fleet"));
        }
        #[cfg(feature = "obs")]
        let timing = self.shards[0].metrics.timing.clone();
        let mut restored = Vec::with_capacity(count);
        for _ in 0..count {
            let mut len_bytes = [0u8; 8];
            source.read_exact(&mut len_bytes)?;
            let len = u64::from_le_bytes(len_bytes);
            let mut frame = Vec::new();
            // `take` bounds the read so a corrupt length cannot overread;
            // a length past EOF surfaces as a short frame below.
            source.take(len).read_to_end(&mut frame)?;
            if frame.len() as u64 != len {
                return Err(invalid("truncated shard frame in fleet save"));
            }
            #[cfg(feature = "obs")]
            let restore_start = timing.as_ref().map(|_| Instant::now());
            let fw = FixedWindowHistogram::restore(&frame)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            #[cfg(feature = "obs")]
            if let (Some(t), Some(start)) = (&timing, restore_start) {
                t.restore.record(start.elapsed());
            }
            restored.push((frame, fw));
        }
        // With durability, the restored state must become the store's
        // canonical anchor too: ship each frame and truncate away any
        // stale higher-sequence objects a pre-restore run left behind, or
        // a later crash recovery would resurrect the overwritten state.
        let anchors: Vec<(usize, u64, Vec<u8>)> = if self.durability.is_some() {
            restored
                .iter()
                .enumerate()
                .map(|(shard, (frame, fw))| (shard, fw.total_pushed(), frame.clone()))
                .collect()
        } else {
            Vec::new()
        };
        for (shard, (frame, fw)) in restored.into_iter().enumerate() {
            let _ = self.retire_worker(shard);
            self.install_worker(shard, fw, frame);
            self.shards[shard].metrics.restores.inc();
        }
        if let Some(d) = &self.durability {
            let handle = d.handle();
            for (shard, seq, frame) in anchors {
                handle.send_frame(shard, seq, frame);
            }
            handle.flush();
        }
        Ok(())
    }

    /// Saves every shard's current summary straight into `store` as one
    /// checkpoint frame per shard, each taken behind the same per-shard
    /// barrier as [`checkpoint_all`](Self::checkpoint_all), then truncates
    /// each shard's WAL up to the saved frame (the frame supersedes the
    /// log). Unlike the sink-based save this addresses frames by shard and
    /// sequence number, so a later [`load_from_store`](Self::load_from_store)
    /// — or a durability-enabled fleet's own crash recovery — picks up
    /// exactly these frames. Returns the total frame bytes written.
    ///
    /// # Errors
    ///
    /// [`io::Error`] wrapping [`ShardError`] if a worker has died, or
    /// wrapping the [`StoreError`](streamhist_core::StoreError) if the
    /// store rejects a write.
    pub fn save_to_store(&self, store: &dyn CheckpointStore) -> io::Result<u64> {
        let mut written = 0u64;
        for (shard, s) in self.shards.iter().enumerate() {
            let (reply_tx, reply_rx) = channel();
            let env = s.metrics.envelope(Cmd::Checkpoint(reply_tx));
            s.metrics.queue_depth.inc();
            if s.sender.send(env).is_err() {
                s.metrics.queue_depth.dec();
                return Err(io::Error::other(ShardError { shard }));
            }
            let (frame, total) = reply_rx
                .recv()
                .map_err(|_| io::Error::other(ShardError { shard }))?;
            store
                .put_frame(shard, total, &frame)
                .map_err(io::Error::other)?;
            store.truncate(shard, total).map_err(io::Error::other)?;
            written += frame.len() as u64;
        }
        Ok(written)
    }

    /// Rebuilds every shard from `store`: newest checkpoint frame plus WAL
    /// replay per shard, via the same recovery path a durability-enabled
    /// fleet uses after a crash ([`respawn_shard`](Self::respawn_shard)).
    /// A shard with no objects in the store restarts empty. The load is
    /// all-or-nothing: every shard's state is recovered and validated
    /// before any worker is replaced, so a corrupt store leaves the fleet
    /// untouched. Each recovered shard's `restores` counter increments.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] wrapping the
    /// [`StoreError`](streamhist_core::StoreError) if a frame or WAL
    /// segment fails validation.
    pub fn load_from_store(&mut self, store: &dyn CheckpointStore) -> io::Result<()> {
        let retries = self
            .durability
            .as_ref()
            .map(|d| d.metrics.retries.clone())
            .unwrap_or_default();
        let mut recovered = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let fresh = self.fresh_summary();
            let fw = recover_shard(store, shard, &retries, || fresh)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            recovered.push(fw);
        }
        for (shard, fw) in recovered.into_iter().enumerate() {
            let _ = self.retire_worker(shard);
            let frame = fw.encode_checkpoint();
            self.install_worker(shard, fw, frame);
            self.shards[shard].metrics.restores.inc();
        }
        Ok(())
    }

    /// The fleet's durability status: WAL/frame counters, checkpoint
    /// amplification, uploader retry/failure totals, and the configured
    /// knobs. A fleet built without
    /// [`durability`](ShardedFixedWindowBuilder::durability) reports the
    /// all-zero default with `enabled == false`.
    #[must_use]
    pub fn wal_status(&self) -> WalStatus {
        self.durability
            .as_ref()
            .map_or_else(WalStatus::default, |d| d.metrics.status(&d.options))
    }

    /// Blocks until every durability upload enqueued so far has been
    /// written to the store (a WAL barrier). No-op without durability.
    pub fn flush_wal(&self) {
        if let Some(d) = &self.durability {
            d.flush();
        }
    }

    /// Shuts the workers down and returns the shard summaries, in shard
    /// order — possible precisely because [`FixedWindowHistogram`] is
    /// `Send`. A shard whose worker died yields `Err(`[`ShardError`]`)`
    /// in its slot; the others are unaffected.
    #[must_use]
    pub fn join(self) -> Vec<Result<FixedWindowHistogram, ShardError>> {
        self.shards
            .into_iter()
            .enumerate()
            .map(|(shard, s)| {
                drop(s.sender);
                s.handle
                    .ok_or(ShardError { shard })
                    .and_then(|h| h.join().map_err(|_| ShardError { shard }))
            })
            .collect()
    }
}

/// Validating builder for [`ShardedFixedWindow`], folding the
/// [`ShardedOptions`] knobs into the same surface as the per-summary
/// builders.
#[derive(Debug, Clone)]
pub struct ShardedFixedWindowBuilder {
    shards: usize,
    capacity: usize,
    b: usize,
    eps: f64,
    options: ShardedOptions,
    registry: Option<Arc<MetricsRegistry>>,
    fleet: Option<String>,
    gather_fanout: Option<usize>,
    durability: Option<DurabilityOptions>,
    recorder: Option<Arc<FlightRecorder>>,
    #[cfg(feature = "obs")]
    kernel_tracer: Option<Arc<KernelTracer>>,
}

impl ShardedFixedWindowBuilder {
    /// Attaches a metrics registry: every shard's [`ShardMetrics`]
    /// counters become registered `streamhist_shard_*{fleet, shard}`
    /// series backed by the *same* cells the [`ShardMetrics`] view reads,
    /// so `registry.text_exposition()` reconciles with
    /// [`ShardedFixedWindow::metrics_all`] exactly. With the `obs` cargo
    /// feature enabled this also registers the fleet's latency summaries
    /// (queue wait, checkpoint encode, restore, scatter dispatch).
    #[must_use]
    pub fn registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Overrides the `fleet` label value used for this fleet's registered
    /// series. Defaults to a process-unique `fleet<N>` so two fleets
    /// sharing a registry never write to each other's cells.
    #[must_use]
    pub fn fleet_label(mut self, fleet: impl Into<String>) -> Self {
        self.fleet = Some(fleet.into());
        self
    }
    /// Overrides the per-shard command queue bound (default 1024).
    #[must_use]
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.options.queue_capacity = queue_capacity;
        self
    }

    /// Overrides the overload policy (default [`OverloadPolicy::Block`]).
    #[must_use]
    pub fn policy(mut self, policy: OverloadPolicy) -> Self {
        self.options.policy = policy;
        self
    }

    /// Overrides the auto-checkpoint interval: a shard checkpoints itself
    /// after every `checkpoint_interval` accepted records (default 1024).
    #[must_use]
    pub fn checkpoint_interval(mut self, checkpoint_interval: usize) -> Self {
        self.options.checkpoint_interval = checkpoint_interval;
        self
    }

    /// Replaces the options wholesale (legacy [`ShardedOptions`] surface).
    #[must_use]
    pub fn options(mut self, options: ShardedOptions) -> Self {
        self.options = options;
        self
    }

    /// Makes [`ShardedFixedWindow::snapshot_global`] gather through a
    /// two-level aggregation tree: shard snapshots are merged in groups of
    /// `fanout`, then the group results are merged once more. Every merge
    /// re-optimizes to `B` buckets, so the tree bounds each merge's input
    /// to `fanout · B` buckets regardless of fleet width — the flat gather
    /// re-optimizes over all `K · B` at once. The extra level composes the
    /// DESIGN.md §7 error bound one more time (a wider but still bounded
    /// gather term). Must be at least 2; fleets no wider than `fanout`
    /// gather flat.
    #[must_use]
    pub fn gather_fanout(mut self, fanout: usize) -> Self {
        self.gather_fanout = Some(fanout);
        self
    }

    /// Attaches a shared [`FlightRecorder`]: the fleet's lifecycle events
    /// (overload sheds, degraded gathers, durability uploads and retries)
    /// land in this ring, and anything holding the same `Arc` — the
    /// supervisor, the serve layer, an admin endpoint — reads them back
    /// in sequence order. Without this the fleet still records into a
    /// private default-capacity ring reachable via
    /// [`ShardedFixedWindow::recorder`].
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches a [`KernelTracer`] that every worker thread self-installs
    /// as its thread-scoped tracer (see
    /// [`telemetry::set_thread_kernel_tracer`](crate::telemetry::set_thread_kernel_tracer)):
    /// the kernel's phase hooks on those threads report to this tracer's
    /// registry, replacing the deprecated process-global
    /// `install_kernel_tracer`. Requires the `obs` cargo feature.
    #[cfg(feature = "obs")]
    #[must_use]
    pub fn kernel_tracer(mut self, tracer: Arc<KernelTracer>) -> Self {
        self.kernel_tracer = Some(tracer);
        self
    }

    /// Enables incremental durability: every accepted record is appended
    /// to a per-shard write-ahead log shipped to
    /// [`DurabilityOptions::store`] as CRC-framed segments of
    /// [`wal_sync`](DurabilityOptions::wal_sync) records, a full
    /// checkpoint frame is cut every
    /// [`checkpoint_interval`](DurabilityOptions::checkpoint_interval)
    /// accepted records (after which the covered log is truncated), and
    /// [`respawn_shard`](ShardedFixedWindow::respawn_shard) recovers a
    /// dead shard from the newest frame plus WAL replay — bit-identical
    /// to a summary that ingested the same prefix directly, with
    /// `lost_since_checkpoint == 0` for every synced record. With
    /// durability configured, the auto-checkpoint interval comes from
    /// these options, not
    /// [`checkpoint_interval`](Self::checkpoint_interval).
    #[must_use]
    pub fn durability(mut self, options: DurabilityOptions) -> Self {
        self.durability = Some(options);
        self
    }

    /// Validates every parameter, then spawns the workers.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::InvalidParameter`] if `shards == 0`, the
    /// queue capacity is zero, or the per-shard summary parameters fail
    /// [`FixedWindowHistogram::builder`] validation.
    pub fn build(self) -> Result<ShardedFixedWindow, StreamhistError> {
        if self.shards == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "shards",
                message: "need at least one shard",
            });
        }
        if self.options.queue_capacity == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "queue_capacity",
                message: "queue capacity must be positive",
            });
        }
        if self.options.checkpoint_interval == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "checkpoint_interval",
                message: "checkpoint interval must be positive",
            });
        }
        if self.gather_fanout.is_some_and(|f| f < 2) {
            return Err(StreamhistError::InvalidParameter {
                param: "gather_fanout",
                message: "aggregation-tree fanout must be at least 2",
            });
        }
        if let Some(d) = &self.durability {
            if d.wal_sync == 0 {
                return Err(StreamhistError::InvalidParameter {
                    param: "wal_sync",
                    message: "WAL sync interval must be positive",
                });
            }
            if d.checkpoint_interval == 0 {
                return Err(StreamhistError::InvalidParameter {
                    param: "durability.checkpoint_interval",
                    message: "checkpoint interval must be positive",
                });
            }
            if d.upload_queue_capacity == 0 {
                return Err(StreamhistError::InvalidParameter {
                    param: "upload_queue_capacity",
                    message: "upload queue capacity must be positive",
                });
            }
        }
        // Validate the per-shard summary parameters on the caller's thread
        // so bad configs fail here, not inside a silently-dead worker.
        drop(FixedWindowHistogram::builder(self.capacity, self.b, self.eps).build()?);
        // The fleet label defaults to a process-unique value: two fleets
        // registering into one registry must get distinct series, or
        // their counter handles would silently alias the same cells.
        let fleet_label = self.registry.as_ref().map(|_| {
            self.fleet.clone().unwrap_or_else(|| {
                static NEXT_FLEET: AtomicU64 = AtomicU64::new(0);
                format!("fleet{}", NEXT_FLEET.fetch_add(1, Ordering::Relaxed))
            })
        });
        #[cfg(feature = "obs")]
        let timing = self
            .registry
            .as_ref()
            .zip(fleet_label.as_deref())
            .map(|(reg, fleet)| Arc::new(FleetTiming::register(reg, fleet)));
        let merge_metrics = match (&self.registry, &fleet_label) {
            (Some(reg), Some(fleet)) => MergeMetricsInner::registered(reg, fleet),
            _ => MergeMetricsInner::default(),
        };
        // The recorder exists before the durability pipeline: the uploader
        // thread starts recording upload events the moment it spawns.
        let recorder = self.recorder.unwrap_or_default();
        let durability = self.durability.map(|opts| {
            let wal_metrics = match (&self.registry, &fleet_label) {
                (Some(reg), Some(fleet)) => Arc::new(WalMetricsInner::registered(reg, fleet)),
                _ => Arc::new(WalMetricsInner::default()),
            };
            FleetDurability::new(opts, wal_metrics, Arc::clone(&recorder))
        });
        let mut this = ShardedFixedWindow {
            shards: Vec::with_capacity(self.shards),
            capacity: self.capacity,
            b: self.b,
            eps: self.eps,
            options: self.options,
            scatter_cursor: AtomicUsize::new(0),
            gather_fanout: self.gather_fanout,
            global_cache: SnapshotCache::default(),
            merge_metrics,
            recorder,
            #[cfg(feature = "obs")]
            kernel_tracer: self.kernel_tracer,
            durability,
        };
        for shard in 0..self.shards {
            #[allow(unused_mut)]
            let mut inner = match (&self.registry, &fleet_label) {
                (Some(reg), Some(fleet)) => MetricsInner::registered(reg, fleet, shard),
                _ => MetricsInner::default(),
            };
            #[cfg(feature = "obs")]
            {
                inner.timing = timing.clone();
            }
            let metrics = Arc::new(inner);
            let fw = this.fresh_summary();
            let slot = Arc::new(Mutex::new(CheckpointSlot {
                frame: fw.encode_checkpoint(),
                accepted_at: 0,
            }));
            let wal = this.shard_wal(shard, 0);
            let (sender, handle) =
                this.spawn_worker(fw, Arc::clone(&metrics), Arc::clone(&slot), wal);
            this.shards.push(Shard {
                sender,
                handle: Some(handle),
                metrics,
                checkpoint: slot,
                epoch_offset: 0,
            });
        }
        Ok(this)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joined_ok(sharded: ShardedFixedWindow) -> Vec<FixedWindowHistogram> {
        sharded
            .join()
            .into_iter()
            .map(|r| r.expect("worker alive"))
            .collect()
    }

    #[test]
    fn shards_match_unsharded_summaries() {
        // Per-shard streams fed through the workers must produce exactly
        // the histogram a single-threaded summary produces on the same
        // stream.
        let shards = 3;
        let streams: Vec<Vec<f64>> = (0..shards)
            .map(|s| (0..200).map(|i| ((i * 13 + s * 7) % 23) as f64).collect())
            .collect();
        let sharded = ShardedFixedWindow::new(shards, 64, 4, 0.1);
        for (s, stream) in streams.iter().enumerate() {
            sharded.push_batch(s, stream.clone()).expect("worker alive");
        }
        let snapshots = sharded.snapshot_all();
        let metrics = sharded.metrics_all();
        let summaries = joined_ok(sharded);
        for (s, stream) in streams.iter().enumerate() {
            let mut reference = FixedWindowHistogram::new(64, 4, 0.1);
            for &v in stream {
                reference.push(v);
            }
            let (expect_h, expect_stats) = reference.histogram_with_stats();
            let snap = snapshots[s].as_ref().expect("worker alive");
            assert_eq!(snap.0, expect_h, "shard {s} snapshot");
            assert_eq!(snap.1, expect_stats, "shard {s} stats");
            assert_eq!(summaries[s].histogram(), expect_h, "shard {s} joined");
            assert_eq!(summaries[s].total_pushed(), stream.len() as u64);
            // The snapshot barrier makes the counters exact.
            assert_eq!(metrics[s].pushes_accepted, stream.len() as u64);
            assert_eq!(metrics[s].values_rejected, 0);
            assert_eq!(metrics[s].records_dropped, 0);
            assert_eq!(metrics[s].snapshots_served, 1);
            assert_eq!(metrics[s].queue_depth, 0);
        }
    }

    #[test]
    fn key_routing_covers_all_shards() {
        let sharded = ShardedFixedWindow::new(4, 16, 2, 0.5);
        let mut hit = [false; 4];
        for key in 0..64u64 {
            hit[sharded.shard_of(key)] = true;
            sharded.push(key, (key % 5) as f64).expect("worker alive");
        }
        assert!(hit.iter().all(|&h| h), "64 keys left a shard of 4 unused");
        let total: u64 = joined_ok(sharded)
            .iter()
            .map(FixedWindowHistogram::total_pushed)
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn snapshot_acts_as_barrier() {
        let sharded = ShardedFixedWindow::new(1, 8, 2, 0.5);
        for v in [1.0, 1.0, 9.0, 9.0] {
            sharded.push_to(0, v).expect("worker alive");
        }
        let (h, _) = sharded.snapshot(0).expect("worker alive");
        assert_eq!(h.domain_len(), 4);
        assert_eq!(h.bucket_ends(), vec![1, 3]);
        let _ = sharded.join();
    }

    #[test]
    fn nan_is_rejected_and_the_shard_keeps_serving() {
        // Regression: a single NaN used to panic the worker via
        // `FixedWindowHistogram::push`'s finiteness assert, after which
        // every call to the shard panicked with "shard worker died".
        let sharded = ShardedFixedWindow::new(2, 8, 2, 0.5);
        sharded.push_to(0, 1.0).expect("worker alive");
        sharded.push_to(0, f64::NAN).expect("rejected, not fatal");
        sharded
            .push_batch(0, vec![2.0, f64::INFINITY, 3.0])
            .expect("rejected, not fatal");
        let (h, _) = sharded.snapshot(0).expect("shard still serving");
        assert_eq!(h.domain_len(), 3, "only the finite values were absorbed");
        let m = sharded.metrics(0);
        assert_eq!(m.pushes_accepted, 3);
        assert_eq!(m.values_rejected, 2);
        assert_eq!(m.queue_depth, 0);
        let summaries = joined_ok(sharded);
        assert_eq!(summaries[0].window(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dead_worker_is_an_error_not_a_panic_and_respawn_restores_service() {
        let mut sharded = ShardedFixedWindow::new(2, 8, 2, 0.5);
        sharded.push_to(1, 4.0).expect("worker alive");
        sharded.inject_worker_panic(1).expect("delivered");
        // The panic command is behind the push, so the snapshot request is
        // guaranteed to find a dead worker (its queued command is dropped
        // with the channel, which closes the reply).
        assert_eq!(sharded.snapshot(1), Err(ShardError { shard: 1 }));
        // Once death is observed, sends fail fast...
        assert_eq!(sharded.push_to(1, 5.0), Err(ShardError { shard: 1 }));
        assert_eq!(
            sharded.push_batch(1, vec![6.0]),
            Err(ShardError { shard: 1 })
        );
        assert_eq!(sharded.inject_worker_panic(1), Err(ShardError { shard: 1 }));
        // ...while the other shard keeps serving.
        sharded.push_to(0, 7.0).expect("other shard unaffected");
        assert!(sharded.snapshot(0).is_ok());
        // Respawn: the panicked worker restores from its last checkpoint
        // (the empty boot checkpoint here — the one accepted push came
        // after it and is reported lost), the index serves again, counters
        // survive.
        assert_eq!(
            sharded.respawn_shard(1),
            RecoveryReport {
                restored_len: 0,
                lost_since_checkpoint: 1,
            }
        );
        sharded.push_to(1, 8.0).expect("respawned shard serves");
        let (h, _) = sharded.snapshot(1).expect("respawned shard serves");
        assert_eq!(h.domain_len(), 1);
        let m = sharded.metrics(1);
        assert_eq!(m.respawns, 1);
        assert_eq!(m.restores, 1, "the boot checkpoint was decoded");
        assert_eq!(m.pushes_accepted, 2, "pre-death push + post-respawn push");
        assert_eq!(m.queue_depth, 0);
        let results = sharded.join();
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn respawning_a_live_shard_is_a_lossless_handoff() {
        let mut sharded = ShardedFixedWindow::new(1, 8, 2, 0.5);
        sharded.push_batch(0, vec![1.0, 2.0, 3.0]).expect("alive");
        let report = sharded.respawn_shard(0);
        assert_eq!(
            report,
            RecoveryReport {
                restored_len: 3,
                lost_since_checkpoint: 0,
            },
            "a live worker drains its queue and hands its summary over"
        );
        let m = sharded.metrics(0);
        assert_eq!(m.respawns, 1);
        assert_eq!(m.restores, 0, "a lossless handoff is not a restore");
        sharded.push_to(0, 4.0).expect("respawned shard serves");
        let fresh = joined_ok(sharded);
        assert_eq!(fresh[0].window(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(fresh[0].total_pushed(), 4, "nothing was lost");
    }

    #[test]
    fn drop_newest_sheds_when_the_queue_is_full_and_counts_exactly() {
        // Flood a single shard with a queue of 1: whether each record
        // lands or is shed is timing-dependent, but the accounting
        // identity accepted + rejected + dropped == sent must hold
        // exactly once the snapshot barrier quiesces the shard.
        let sharded = ShardedFixedWindow::with_options(
            1,
            8,
            2,
            0.5,
            ShardedOptions {
                queue_capacity: 1,
                policy: OverloadPolicy::DropNewest,
                ..ShardedOptions::default()
            },
        );
        let mut sent = 0u64;
        for i in 0..20_000u64 {
            sharded.push_to(0, (i % 13) as f64).expect("never an error");
            sent += 1;
        }
        let _ = sharded.snapshot(0).expect("barrier");
        let m = sharded.metrics(0);
        assert_eq!(
            m.pushes_accepted + m.values_rejected + m.records_dropped,
            sent
        );
        assert_eq!(m.values_rejected, 0);
        assert_eq!(m.queue_depth, 0);
        let summaries = joined_ok(sharded);
        assert_eq!(summaries[0].total_pushed(), m.pushes_accepted);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let sharded = ShardedFixedWindow::new(1, 8, 2, 0.5);
        sharded.push_batch(0, Vec::new()).expect("no-op");
        let m = sharded.metrics(0);
        assert_eq!(m.queue_depth, 0);
        assert_eq!(joined_ok(sharded)[0].total_pushed(), 0);
    }

    #[test]
    fn scatter_spreads_a_slab_across_all_shards_in_order() {
        let shards = 4;
        let sharded = ShardedFixedWindow::new(shards, 64, 4, 0.1);
        let slab: Vec<f64> = (0..40).map(f64::from).collect();
        sharded.push_batch_scatter(&slab).expect("workers alive");
        let _ = sharded.snapshot_all(); // barrier
        let total: u64 = sharded
            .metrics_all()
            .iter()
            .map(|m| m.pushes_accepted)
            .sum();
        assert_eq!(total, slab.len() as u64, "every value landed somewhere");
        let summaries = joined_ok(sharded);
        let mut nonempty = 0;
        for fw in &summaries {
            let w = fw.window();
            // Contiguous chunks: each shard's window is a strictly
            // ascending run of the 0..40 ramp.
            assert!(w.windows(2).all(|p| p[0] < p[1]), "per-shard order kept");
            if !w.is_empty() {
                nonempty += 1;
            }
        }
        assert_eq!(nonempty, shards, "a 40-value slab reaches all 4 shards");
    }

    #[test]
    fn scatter_cursor_rotates_the_leading_shard() {
        // With a slab smaller than the shard count, each call produces one
        // single-chunk dispatch; the rotating cursor must move it to a
        // different shard each time.
        let sharded = ShardedFixedWindow::new(3, 8, 2, 0.5);
        for _ in 0..3 {
            sharded.push_batch_scatter(&[1.0]).expect("workers alive");
        }
        let _ = sharded.snapshot_all(); // barrier
        for (s, m) in sharded.metrics_all().iter().enumerate() {
            assert_eq!(m.pushes_accepted, 1, "shard {s} got exactly one value");
        }
        let _ = sharded.join();
    }

    #[test]
    fn scatter_caps_chunks_so_large_slabs_wrap_all_shards() {
        let shards = 4;
        let sharded = ShardedFixedWindow::new(shards, 2048, 4, 0.1);
        let slab: Vec<f64> = (0..2048).map(|i| f64::from(i % 997)).collect();
        sharded.push_batch_scatter(&slab).expect("workers alive");
        let _ = sharded.snapshot_all(); // barrier
        let m = sharded.metrics_all();
        let total: u64 = m.iter().map(|x| x.pushes_accepted).sum();
        assert_eq!(total, slab.len() as u64, "every value landed somewhere");
        // 2048 values at a 16-record cap is 128 chunks round-robin over 4
        // shards: each shard gets exactly 32 chunks of 16.
        for (s, sm) in m.iter().enumerate() {
            assert_eq!(sm.pushes_accepted, 512, "shard {s} share");
        }
        // Round-robin dispatch in slab order keeps per-shard order: each
        // shard's window is an ascending subsequence of the 0..2048 ramp
        // (values mod 997 — compare positions via a strictly increasing
        // reconstruction instead).
        let summaries = joined_ok(sharded);
        let mut cursor = vec![0usize; slab.len()];
        for (i, &v) in slab.iter().enumerate() {
            cursor[i] = v as usize;
        }
        for fw in &summaries {
            let w = fw.window();
            assert_eq!(w.len(), 512);
            // Each shard's chunks are cap-aligned sub-slices of the slab in
            // slab order; verify by matching them against the slab greedily.
            let mut pos = 0usize;
            for chunk in w.chunks(16) {
                let found = (pos..=slab.len() - chunk.len())
                    .find(|&p| slab[p..p + chunk.len()] == *chunk)
                    .expect("chunk is a contiguous sub-slice of the slab");
                pos = found + chunk.len();
            }
        }
    }

    #[test]
    fn global_snapshot_concatenates_every_shard_in_shard_order() {
        let shards = 3;
        let sharded = ShardedFixedWindow::new(shards, 64, 4, 0.1);
        let streams: Vec<Vec<f64>> = (0..shards)
            .map(|s| (0..50).map(|i| ((i * 7 + s * 11) % 19) as f64).collect())
            .collect();
        for (s, stream) in streams.iter().enumerate() {
            sharded.push_batch(s, stream.clone()).expect("alive");
        }
        let (global, stats) = sharded.snapshot_global().expect("fleet healthy");
        assert!(global.num_buckets() <= 4);
        assert_eq!(global.domain_len(), 150);
        // The gather is exactly merge_histograms over the per-shard
        // snapshots in shard order.
        let parts: Vec<Arc<Histogram>> = (0..shards)
            .map(|s| sharded.snapshot(s).expect("alive").0)
            .collect();
        let part_refs: Vec<&Histogram> = parts.iter().map(AsRef::as_ref).collect();
        let (expect, _) = merge_histograms(&part_refs, 4, 0.1).expect("valid");
        assert_eq!(*global, expect);
        assert!(stats.herror >= 0.0);
        let mm = sharded.merge_metrics();
        assert_eq!(mm.merges, 1);
        assert!(mm.merge_buckets_in >= mm.merge_buckets_out);
        assert!(mm.merge_buckets_out <= 4);
        let _ = sharded.join();
    }

    #[test]
    fn global_snapshot_is_cached_until_the_fleet_state_changes() {
        let mut sharded = ShardedFixedWindow::new(2, 16, 2, 0.5);
        sharded.push_batch(0, vec![1.0, 2.0]).expect("alive");
        sharded.push_batch(1, vec![3.0]).expect("alive");
        let (h1, _) = sharded.snapshot_global().expect("healthy");
        let (h2, _) = sharded.snapshot_global().expect("healthy");
        assert!(Arc::ptr_eq(&h1, &h2), "unchanged fleet serves the cache");
        assert_eq!(sharded.merge_metrics().cache_hits, 1);
        // An absorbed record invalidates...
        sharded.push_to(0, 4.0).expect("alive");
        let _ = sharded.snapshot(0).expect("barrier");
        let (h3, _) = sharded.snapshot_global().expect("healthy");
        assert!(!Arc::ptr_eq(&h1, &h3));
        assert_eq!(h3.domain_len(), 4);
        // ...and so does a respawn even though pushes_accepted is frozen.
        let before = sharded.merge_metrics().merges;
        let _ = sharded.respawn_shard(1);
        let (h4, _) = sharded.snapshot_global().expect("healthy");
        assert!(!Arc::ptr_eq(&h3, &h4));
        assert_eq!(sharded.merge_metrics().merges, before + 1);
        let _ = sharded.join();
    }

    #[test]
    fn strict_policy_snapshot_reports_complete_coverage() {
        let sharded = ShardedFixedWindow::new(2, 16, 2, 0.5);
        sharded.push_batch(0, vec![1.0, 2.0]).expect("alive");
        sharded.push_batch(1, vec![3.0]).expect("alive");
        let (strict_h, _, coverage) = sharded
            .snapshot_global_with(SnapshotPolicy::Strict)
            .expect("healthy");
        assert!(coverage.is_complete());
        assert_eq!(coverage.shards_included, 2);
        assert_eq!(coverage.shards_total, 2);
        assert_eq!(coverage.records_represented, 3);
        assert_eq!(coverage.records_total, 3);
        assert!((coverage.fraction() - 1.0).abs() < 1e-12);
        // Strict-with-coverage is the same cached snapshot.
        let (plain_h, _) = sharded.snapshot_global().expect("healthy");
        assert!(Arc::ptr_eq(&strict_h, &plain_h));
        let _ = sharded.join();
    }

    #[test]
    fn degraded_snapshot_skips_the_dead_shard_and_never_touches_the_cache() {
        let sharded = ShardedFixedWindow::new(2, 16, 2, 0.5);
        sharded
            .push_batch(0, (0..6).map(f64::from).collect())
            .expect("alive");
        sharded
            .push_batch(1, (0..2).map(f64::from).collect())
            .expect("alive");
        // Warm the cache while healthy, then kill shard 1.
        let (healthy, _) = sharded.snapshot_global().expect("healthy");
        sharded.inject_worker_panic(1).expect("alive");
        assert!(!sharded.ping(1, Duration::from_secs(5)), "worker is dead");
        // Degraded serves shard 0 only, with exact accounting.
        let (degraded, _, coverage) = sharded
            .snapshot_global_with(SnapshotPolicy::Degraded { min_coverage: 0.5 })
            .expect("above the floor");
        assert_eq!(coverage.shards_included, 1);
        assert_eq!(coverage.records_represented, 6);
        assert_eq!(coverage.records_total, 8);
        assert!(!coverage.is_complete());
        assert_eq!(degraded.domain_len(), 6, "only shard 0's window");
        // A floor above 6/8 refuses and names the dead shard.
        assert_eq!(
            sharded
                .snapshot_global_with(SnapshotPolicy::Degraded { min_coverage: 0.9 })
                .unwrap_err(),
            ShardError { shard: 1 }
        );
        // The cache still holds the *healthy* build: the degraded gather
        // must not have replaced it (the live-counter generation is
        // unchanged, so a strict caller would still be served `healthy`).
        let hit = sharded
            .global_cache
            .try_get(sharded.global_generation())
            .expect("cache intact");
        assert!(Arc::ptr_eq(&healthy, &hit.0));
        let _ = sharded.join();
    }

    #[test]
    fn ping_distinguishes_live_and_dead_workers() {
        let sharded = ShardedFixedWindow::new(2, 16, 2, 0.5);
        assert!(sharded.ping(0, Duration::from_secs(5)));
        sharded.inject_worker_panic(0).expect("alive");
        assert!(!sharded.ping(0, Duration::from_secs(5)));
        // The other shard is untouched.
        assert!(sharded.ping(1, Duration::from_secs(5)));
        let _ = sharded.join();
    }

    #[test]
    fn gather_fanout_builds_a_two_level_tree_with_the_same_window() {
        let shards = 4;
        let build = |fanout: Option<usize>| {
            let mut b = ShardedFixedWindow::builder(shards, 64, 3, 0.1);
            if let Some(f) = fanout {
                b = b.gather_fanout(f);
            }
            let fleet = b.build().expect("valid");
            for s in 0..shards {
                let stream: Vec<f64> = (0..40).map(|i| ((i * 5 + s * 13) % 23) as f64).collect();
                fleet.push_batch(s, stream).expect("alive");
            }
            fleet
        };
        let flat = build(None);
        let tree = build(Some(2));
        let (hf, _) = flat.snapshot_global().expect("healthy");
        let (ht, _) = tree.snapshot_global().expect("healthy");
        // Same domain, same budget; bucket boundaries may differ (the tree
        // re-optimizes twice).
        assert_eq!(hf.domain_len(), ht.domain_len());
        assert!(ht.num_buckets() <= 3);
        // 4 shards at fanout 2: two group merges plus the final one.
        assert_eq!(tree.merge_metrics().merges, 3);
        assert_eq!(flat.merge_metrics().merges, 1);
        let _ = flat.join();
        let _ = tree.join();
    }

    #[test]
    fn global_snapshot_on_a_dead_shard_is_an_error() {
        let mut sharded = ShardedFixedWindow::new(2, 8, 2, 0.5);
        sharded.push_to(0, 1.0).expect("alive");
        sharded.inject_worker_panic(1).expect("delivered");
        assert_eq!(sharded.snapshot(1), Err(ShardError { shard: 1 }));
        assert_eq!(
            sharded.snapshot_global().map(|_| ()),
            Err(ShardError { shard: 1 }),
            "a global snapshot is all shards or nothing"
        );
        let _ = sharded.respawn_shard(1);
        assert!(sharded.snapshot_global().is_ok());
        let _ = sharded.join();
    }

    #[test]
    fn gather_fanout_must_be_at_least_two() {
        assert!(matches!(
            ShardedFixedWindow::builder(2, 8, 2, 0.5)
                .gather_fanout(1)
                .build(),
            Err(StreamhistError::InvalidParameter {
                param: "gather_fanout",
                ..
            })
        ));
        let ok = ShardedFixedWindow::builder(2, 8, 2, 0.5)
            .gather_fanout(2)
            .build()
            .expect("valid fanout");
        let _ = ok.join();
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        assert!(matches!(
            ShardedFixedWindow::builder(0, 8, 2, 0.5).build(),
            Err(StreamhistError::InvalidParameter {
                param: "shards",
                ..
            })
        ));
        assert!(matches!(
            ShardedFixedWindow::builder(1, 8, 2, 0.5)
                .queue_capacity(0)
                .build(),
            Err(StreamhistError::InvalidParameter {
                param: "queue_capacity",
                ..
            })
        ));
        assert!(matches!(
            ShardedFixedWindow::builder(1, 0, 2, 0.5).build(),
            Err(StreamhistError::InvalidParameter {
                param: "capacity",
                ..
            })
        ));
        assert!(matches!(
            ShardedFixedWindow::builder(1, 8, 2, f64::NAN).build(),
            Err(StreamhistError::InvalidParameter { param: "eps", .. })
        ));
        let built = ShardedFixedWindow::builder(2, 8, 2, 0.5)
            .queue_capacity(4)
            .policy(OverloadPolicy::DropNewest)
            .build()
            .expect("valid parameters");
        assert_eq!(built.shards(), 2);
        assert_eq!(built.options().queue_capacity, 4);
        assert_eq!(built.options().policy, OverloadPolicy::DropNewest);
        let _ = built.join();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedFixedWindow::new(0, 8, 2, 0.5);
    }

    #[test]
    #[should_panic(expected = "queue capacity must be positive")]
    fn zero_queue_capacity_rejected() {
        let _ = ShardedFixedWindow::with_options(
            1,
            8,
            2,
            0.5,
            ShardedOptions {
                queue_capacity: 0,
                policy: OverloadPolicy::Block,
                ..ShardedOptions::default()
            },
        );
    }

    #[test]
    fn scatter_to_a_fleet_with_a_dead_shard_surfaces_the_error_exactly() {
        // Regression: `push_batch_scatter` used to abort mid-loop on the
        // first dead shard, silently skipping the healthy shards after it.
        // Now every chunk is dispatched and the error still surfaces.
        let mut sharded = ShardedFixedWindow::new(3, 64, 4, 0.1);
        sharded.inject_worker_panic(1).expect("delivered");
        // Observe the death so the send path fails deterministically.
        assert_eq!(sharded.snapshot(1), Err(ShardError { shard: 1 }));
        let slab: Vec<f64> = (0..30).map(f64::from).collect();
        assert_eq!(
            sharded.push_batch_scatter(&slab),
            Err(ShardError { shard: 1 }),
            "the dead shard's chunk is reported, not swallowed"
        );
        let _ = sharded.snapshot(0).expect("barrier on shard 0");
        let _ = sharded.snapshot(2).expect("barrier on shard 2");
        let m = sharded.metrics_all();
        // The 30-value slab splits into 10-value contiguous chunks; the
        // healthy shards must have received theirs despite the error.
        assert_eq!(m[0].pushes_accepted, 10, "healthy shard 0 got its chunk");
        assert_eq!(m[1].pushes_accepted, 0, "dead shard absorbed nothing");
        assert_eq!(m[2].pushes_accepted, 10, "healthy shard 2 got its chunk");
        // After a respawn the same slab spreads with no error.
        let _ = sharded.respawn_shard(1);
        sharded
            .push_batch_scatter(&slab)
            .expect("fleet healthy again");
        let _ = sharded.snapshot_all();
        let total: u64 = sharded
            .metrics_all()
            .iter()
            .map(|m| m.pushes_accepted)
            .sum();
        assert_eq!(total, 50, "20 from the failed scatter + 30 after respawn");
        let _ = sharded.join();
    }

    #[test]
    fn metrics_survive_respawn_and_count_checkpoints() {
        let mut sharded = ShardedFixedWindow::builder(1, 8, 2, 0.5)
            .checkpoint_interval(2)
            .build()
            .expect("valid parameters");
        sharded.push_batch(0, vec![1.0, 2.0, 3.0]).expect("alive");
        sharded.push_to(0, f64::NAN).expect("rejected, not fatal");
        let _ = sharded.snapshot(0).expect("barrier");
        let before = sharded.metrics(0);
        assert_eq!(before.pushes_accepted, 3);
        assert_eq!(before.values_rejected, 1);
        assert_eq!(before.snapshots_served, 1);
        assert!(
            before.checkpoints_taken >= 1,
            "3 accepted records with interval 2 auto-checkpoint at least once"
        );
        assert!(before.checkpoint_bytes > 0);
        let _ = sharded.respawn_shard(0);
        let after = sharded.metrics(0);
        // Cumulative counters carry across the respawn; only the gauge
        // resets with the new queue.
        assert_eq!(after.pushes_accepted, before.pushes_accepted);
        assert_eq!(after.values_rejected, before.values_rejected);
        assert_eq!(after.snapshots_served, before.snapshots_served);
        assert_eq!(after.checkpoints_taken, before.checkpoints_taken);
        assert_eq!(after.checkpoint_bytes, before.checkpoint_bytes);
        assert_eq!(after.respawns, before.respawns + 1);
        assert_eq!(after.queue_depth, 0);
        let _ = sharded.join();
    }

    #[test]
    fn auto_checkpoint_bounds_loss_after_a_crash() {
        let mut sharded = ShardedFixedWindow::builder(1, 64, 4, 0.1)
            .checkpoint_interval(10)
            .build()
            .expect("valid parameters");
        // Individual pushes, so the interval is honoured per record (a
        // batch is one command and checkpoints at the batch boundary).
        for i in 0..25 {
            sharded.push_to(0, f64::from(i % 7)).expect("alive");
        }
        let _ = sharded.snapshot(0).expect("barrier");
        sharded.inject_worker_panic(0).expect("delivered");
        assert_eq!(sharded.snapshot(0), Err(ShardError { shard: 0 }));
        let report = sharded.respawn_shard(0);
        // 25 accepted with interval 10: the last auto-checkpoint covered
        // 20 records, so exactly 5 died with the worker.
        assert_eq!(
            report,
            RecoveryReport {
                restored_len: 20,
                lost_since_checkpoint: 5,
            }
        );
        let m = sharded.metrics(0);
        assert_eq!(m.restores, 1);
        assert_eq!(
            m.pushes_accepted,
            report.restored_len + report.lost_since_checkpoint,
            "conservation: accepted == restored + lost at quiescence"
        );
        let fresh = joined_ok(sharded);
        assert_eq!(fresh[0].total_pushed(), 20);
        assert_eq!(
            fresh[0].window(),
            (0..20).map(|i| f64::from(i % 7)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fleet_save_and_load_round_trips_every_shard() {
        let mut sharded = ShardedFixedWindow::new(3, 16, 2, 0.5);
        for (s, n) in [(0usize, 5u64), (1, 7), (2, 3)] {
            let stream: Vec<f64> = (0..n).map(|i| (i % 4) as f64).collect();
            sharded.push_batch(s, stream).expect("alive");
        }
        let mut save = Vec::new();
        let written = sharded.checkpoint_all(&mut save).expect("fleet healthy");
        assert_eq!(written, save.len() as u64);
        let snaps_before = sharded.snapshot_all();
        // Diverge, then load the save back: the divergence is erased.
        sharded.push_batch(0, vec![9.0, 9.0]).expect("alive");
        sharded
            .restore_all(&mut save.as_slice())
            .expect("valid save");
        let snaps_after = sharded.snapshot_all();
        assert_eq!(snaps_before, snaps_after, "load rewinds to the save");
        for m in sharded.metrics_all() {
            assert_eq!(m.restores, 1);
            assert!(m.checkpoints_taken >= 1, "checkpoint_all counts");
        }
        // Corrupt saves are rejected wholesale without touching workers.
        let mut flipped = save.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(sharded.restore_all(&mut flipped.as_slice()).is_err());
        assert!(
            sharded
                .restore_all(&mut save[..save.len() - 3].as_ref())
                .is_err(),
            "truncated fleet save rejected"
        );
        let snaps_final = sharded.snapshot_all();
        assert_eq!(snaps_final, snaps_after, "failed loads change nothing");
        // A save from a differently-sized fleet is rejected up front.
        let other = ShardedFixedWindow::new(2, 16, 2, 0.5);
        let mut other_save = Vec::new();
        other.checkpoint_all(&mut other_save).expect("healthy");
        let _ = other.join();
        assert!(sharded.restore_all(&mut other_save.as_slice()).is_err());
        let _ = sharded.join();
    }

    #[test]
    fn checkpoint_all_on_a_dead_shard_is_an_error() {
        let sharded = ShardedFixedWindow::new(2, 8, 2, 0.5);
        sharded.inject_worker_panic(1).expect("delivered");
        assert_eq!(sharded.snapshot(1), Err(ShardError { shard: 1 }));
        let mut sink = Vec::new();
        assert!(sharded.checkpoint_all(&mut sink).is_err());
        let _ = sharded.join();
    }

    fn durable_fleet(
        shards: usize,
        store: Arc<streamhist_core::MemStore>,
        wal_sync: usize,
        interval: usize,
    ) -> ShardedFixedWindow {
        ShardedFixedWindow::builder(shards, 32, 2, 0.5)
            .durability(
                DurabilityOptions::new(store)
                    .wal_sync(wal_sync)
                    .checkpoint_interval(interval),
            )
            .build()
            .expect("valid durable fleet")
    }

    #[test]
    fn builder_validates_durability_knobs() {
        let store = Arc::new(streamhist_core::MemStore::new());
        for bad in [
            DurabilityOptions::new(Arc::clone(&store) as _).wal_sync(0),
            DurabilityOptions::new(Arc::clone(&store) as _).checkpoint_interval(0),
            DurabilityOptions::new(Arc::clone(&store) as _).upload_queue_capacity(0),
        ] {
            assert!(ShardedFixedWindow::builder(1, 8, 2, 0.5)
                .durability(bad)
                .build()
                .is_err());
        }
    }

    #[test]
    fn wal_status_reports_progress_and_defaults_off() {
        let plain = ShardedFixedWindow::new(1, 8, 2, 0.5);
        assert!(!plain.wal_status().enabled);
        let _ = plain.join();

        let store = Arc::new(streamhist_core::MemStore::new());
        let sharded = durable_fleet(1, Arc::clone(&store), 4, 8);
        sharded
            .push_batch(0, (0..10).map(f64::from).collect())
            .expect("alive");
        let _ = sharded.snapshot(0).expect("barrier");
        sharded.flush_wal();
        let status = sharded.wal_status();
        assert!(status.enabled);
        assert_eq!(status.wal_sync, 4);
        assert_eq!(status.checkpoint_interval, 8);
        assert_eq!(status.bytes_ingested, 80, "10 records × 8 bytes");
        assert!(status.segments_written >= 2, "two full 4-record segments");
        assert!(status.frames_written >= 1, "interval of 8 was crossed");
        assert!(status.amplification > 0.0);
        assert_eq!(status.failures, 0);
        let _ = sharded.join();
    }

    #[test]
    fn dead_worker_recovers_from_the_store_with_zero_loss_for_synced_records() {
        let store = Arc::new(streamhist_core::MemStore::new());
        let mut sharded = durable_fleet(1, Arc::clone(&store), 4, 1024);
        // 8 records = two full WAL segments, no frame yet (interval 1024).
        sharded
            .push_batch(0, (0..8).map(f64::from).collect())
            .expect("alive");
        let _ = sharded.snapshot(0).expect("barrier quiesces the shard");
        sharded.inject_worker_panic(0).expect("delivered");
        assert_eq!(sharded.snapshot(0), Err(ShardError { shard: 0 }));
        let report = sharded.respawn_shard(0);
        assert_eq!(
            report,
            RecoveryReport {
                restored_len: 8,
                lost_since_checkpoint: 0,
            },
            "every record was synced to the WAL before the crash"
        );
        let m = sharded.metrics(0);
        assert_eq!(m.restores, 1);
        // The recovered summary is bit-identical to a never-crashed one.
        let mut reference = FixedWindowHistogram::new(32, 2, 0.5);
        for v in 0..8 {
            reference.push(f64::from(v));
        }
        let summaries = joined_ok(sharded);
        assert_eq!(
            summaries[0].encode_checkpoint(),
            reference.encode_checkpoint()
        );
    }

    #[test]
    fn dead_worker_loss_accounting_is_exact_for_unsynced_tail() {
        let store = Arc::new(streamhist_core::MemStore::new());
        let mut sharded = durable_fleet(1, Arc::clone(&store), 4, 1024);
        // 10 records: segments cover [0,8); the 2-record tail is only in
        // the dead worker's buffer and must be reported lost.
        sharded
            .push_batch(0, (0..10).map(f64::from).collect())
            .expect("alive");
        let _ = sharded.snapshot(0).expect("barrier");
        sharded.inject_worker_panic(0).expect("delivered");
        assert_eq!(sharded.snapshot(0), Err(ShardError { shard: 0 }));
        let report = sharded.respawn_shard(0);
        assert_eq!(
            report,
            RecoveryReport {
                restored_len: 8,
                lost_since_checkpoint: 2,
            }
        );
        // Loss restarts cleanly: another crash after more synced records
        // still counts only the new unsynced tail.
        sharded
            .push_batch(0, (10..14).map(f64::from).collect())
            .expect("respawned shard serves");
        let _ = sharded.snapshot(0).expect("barrier");
        sharded.inject_worker_panic(0).expect("delivered");
        assert_eq!(sharded.snapshot(0), Err(ShardError { shard: 0 }));
        let report = sharded.respawn_shard(0);
        assert_eq!(
            report,
            RecoveryReport {
                restored_len: 12,
                lost_since_checkpoint: 0,
            },
            "the post-respawn records formed one full segment"
        );
        let _ = sharded.join();
    }

    #[test]
    fn save_and_load_from_store_roundtrip() {
        let store = Arc::new(streamhist_core::MemStore::new());
        let sharded = ShardedFixedWindow::new(2, 16, 2, 0.5);
        sharded.push_batch(0, vec![1.0, 2.0, 3.0]).expect("alive");
        sharded.push_batch(1, vec![9.0, 8.0]).expect("alive");
        let written = sharded
            .save_to_store(store.as_ref())
            .expect("healthy fleet saves");
        assert!(written > 0);
        let snaps_before = sharded.snapshot_all();
        let _ = sharded.join();

        // A brand-new fleet (no durability required) loads the same state.
        let mut restored = ShardedFixedWindow::new(2, 16, 2, 0.5);
        restored
            .load_from_store(store.as_ref())
            .expect("store is valid");
        assert_eq!(restored.snapshot_all(), snaps_before);
        assert_eq!(restored.metrics(0).restores, 1);
        let summaries = joined_ok(restored);
        assert_eq!(summaries[0].window(), vec![1.0, 2.0, 3.0]);
        assert_eq!(summaries[1].window(), vec![9.0, 8.0]);
    }

    #[test]
    fn load_from_store_replays_the_wal_tail_beyond_the_frame() {
        let store = Arc::new(streamhist_core::MemStore::new());
        let sharded = durable_fleet(1, Arc::clone(&store), 4, 8);
        // The first batch cuts a frame at seq 8 (truncating its segments);
        // the second forms one synced WAL segment beyond the frame.
        sharded
            .push_batch(0, (0..8).map(f64::from).collect())
            .expect("alive");
        sharded
            .push_batch(0, (8..12).map(f64::from).collect())
            .expect("alive");
        let _ = sharded.snapshot(0).expect("barrier");
        sharded.flush_wal();
        let _ = sharded.join();

        let mut restored = ShardedFixedWindow::new(1, 32, 2, 0.5);
        restored
            .load_from_store(store.as_ref())
            .expect("store is valid");
        let summaries = joined_ok(restored);
        assert_eq!(summaries[0].total_pushed(), 12, "frame + WAL tail");
    }
}
