//! # streamhist-stream
//!
//! One-pass `(1+ε)`-approximate V-optimal histogram construction over data
//! streams — the primary contribution of *Guha & Koudas, "Approximating a
//! Data Stream for Querying and Estimation" (ICDE 2002)* and its companion
//! *Guha, Koudas & Shim, "Data Streams and Histograms" (STOC 2001)*.
//!
//! Two stream models (paper §3, Figure 1):
//!
//! * [`AgglomerativeHistogram`] — summarizes the **entire stream** seen so
//!   far (paper §4.3, Figure 3). Per-point cost `O(B · q)` where `q` is the
//!   interval-queue length, bounded by `O((B/ε) log n)`; total time
//!   `O((n B²/ε) log n)` and space `O((B²/ε) log n)`.
//! * [`FixedWindowHistogram`] — summarizes the **last `n` points** (paper
//!   §4.5, Figure 5), the paper's headline algorithm. Pushes are amortized
//!   `O(1)` (circular buffer + sliding prefix sums); materializing the
//!   histogram runs the `CreateList` procedure, which rebuilds the interval
//!   queues via binary search over the monotone `HERROR[·, k]` in
//!   `O((B³/ε²) log³ n)` (paper Theorem 1).
//!
//! Both algorithms (and the time-based [`TimeWindowHistogram`]) drive one
//! shared dynamic-programming kernel (`kernel` module): a single
//! `herror_eval` minimization and interval-queue maintenance
//! implementation, generic over a
//! [`PrefixProvider`](streamhist_core::PrefixProvider) (absolute running
//! totals for the whole-stream algorithm, rebased `SUM'`/`SQSUM'` stores
//! for the windows). For every bucket-count level `k < B` the kernel
//! maintains a queue of index intervals such that the `(≤k)`-bucket error
//! `HERROR[·, k]` grows by at most a factor `(1+δ)`, `δ = ε/(2B)`, across
//! each interval; minimizations are then evaluated only at the
//! `O((1/δ) log n)` interval endpoints instead of at all `n` positions
//! (paper §4.2.1). Work is reported through [`KernelStats`].
//!
//! Bucket-boundary chains live in a flat index-linked arena (`arena`
//! module) rather than `Rc` cells, so **every summary is `Send +
//! 'static`** — asserted at compile time below — and summaries can be
//! built on worker threads and moved; [`ShardedFixedWindow`] packages that
//! deployment pattern over plain `std::thread` workers, with bounded
//! backpressure ([`ShardedOptions`], [`OverloadPolicy`]), a
//! `Result`-returning API over dead shards ([`ShardError`]) with
//! per-shard respawn, and lock-free per-shard counters ([`ShardMetrics`]).
//! Every summary implements the versioned, checksummed
//! [`Checkpoint`](streamhist_core::Checkpoint) frame format; the sharded
//! layer auto-checkpoints each shard and restores from the last checkpoint
//! on respawn, reporting the loss window in a [`RecoveryReport`].
//! Malformed input is rejected, not fatal: every summary implements the
//! [`StreamSummary`](streamhist_core::StreamSummary) trait with a fallible
//! `try_push` returning
//! [`StreamhistError`](streamhist_core::StreamhistError) alongside the
//! panicking convenience wrappers, and every summary is constructed either
//! through a legacy panicking constructor or a validating `builder()`.
//! Slabs of points go through `push_batch` (one prefix-store write pass,
//! interval maintenance deferred to the next histogram request — bit-for-bit
//! identical to per-point pushes), and `histogram()` returns a
//! generation-cached [`Arc`](std::sync::Arc) snapshot that is free to
//! re-request between mutations.
//!
//! [`NaiveSlidingWindow`] re-runs the exact `O(n²B)` DP per window — the
//! strawman of paper §3 ("excessive" per-update time) used as a baseline by
//! the benches.
//!
//! [`approx_histogram`] solves the offline ε-approximation (paper
//! Problem 2) by running the agglomerative algorithm over a stored slice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
mod arena;
pub mod baseline;
pub mod durability;
pub mod fixed_window;
mod kernel;
pub mod merge;
pub mod serve;
pub mod sharded;
pub mod supervisor;
pub mod telemetry;
pub mod time_window;

pub use agglomerative::{AgglomerativeBuilder, AgglomerativeHistogram};
pub use baseline::{NaiveSlidingWindow, NaiveSlidingWindowBuilder};
pub use durability::{DurabilityOptions, WalStatus};
pub use fixed_window::{FixedWindowBuilder, FixedWindowHistogram};
pub use kernel::KernelStats;
pub use merge::merge_histograms;
pub use serve::FleetHandle;
pub use sharded::{
    Coverage, MergeMetrics, OverloadPolicy, RecoveryReport, ShardError, ShardMetrics,
    ShardedFixedWindow, ShardedFixedWindowBuilder, ShardedOptions, SnapshotPolicy,
};
pub use streamhist_core::{BatchOutcome, Checkpoint, MergeableSummary, StreamSummary};
pub use supervisor::{
    ShardHealth, ShardState, Supervisor, SupervisorEvent, SupervisorHandle, SupervisorMetrics,
    SupervisorOptions,
};
pub use time_window::{TimeWindowBuilder, TimeWindowHistogram};

// The `Send + 'static` contract of the streaming summaries, checked at
// compile time: regressing it (e.g. by reintroducing an `Rc` into a chain
// or queue) fails the build, not a test at runtime.
const _: () = {
    const fn assert_send<T: Send + 'static>() {}
    assert_send::<AgglomerativeHistogram>();
    assert_send::<FixedWindowHistogram>();
    assert_send::<TimeWindowHistogram>();
    assert_send::<NaiveSlidingWindow>();
    assert_send::<KernelStats>();
    assert_send::<ShardedFixedWindow>();
    // Ingestion takes `&self`, so producers on many threads share one
    // handle: the sharded front-end must also be `Sync`.
    const fn assert_sync<T: Sync>() {}
    assert_sync::<ShardedFixedWindow>();
};

/// Offline `(1+ε)`-approximate V-optimal histogram of a stored sequence
/// (paper Problem 2): a single agglomerative pass over `data`, time
/// `O((n B²/ε) log n)`.
///
/// # Panics
///
/// Panics if `b == 0` for non-empty data, or `eps <= 0`.
#[must_use]
pub fn approx_histogram(data: &[f64], b: usize, eps: f64) -> streamhist_core::Histogram {
    let mut agg = AgglomerativeHistogram::new(b, eps);
    for &v in data {
        agg.push(v);
    }
    agg.histogram().as_ref().clone()
}
