//! Serve-facing seam over a sharded fleet: shared, `&self` access to the
//! snapshot and admin surface.
//!
//! [`ShardedFixedWindow`] deliberately puts its mutating admin operations
//! (`respawn_shard`, `restore_all`) behind `&mut self` so they can never
//! race producers. A network front-end, though, is many threads by
//! construction: connection workers answering queries concurrently with
//! ingest, plus the occasional admin request. [`FleetHandle`] packages the
//! canonical locking discipline (the same `RwLock` pattern the stress
//! tests use) behind a cloneable handle:
//!
//! * queries and ingestion take the **read** lock — unbounded concurrency,
//!   exactly as cheap as calling the fleet directly (the fleet's own
//!   channels do the synchronization);
//! * `respawn_shard` / `restore_all` take the **write** lock — admin
//!   operations serialize against everything, which is what the fleet's
//!   `&mut self` contract demands.
//!
//! Shard indices arriving from outside the process are *data*, not
//! addressing bugs, so every shard-indexed method here validates the index
//! and returns [`StreamhistError::InvalidParameter`] instead of panicking —
//! the front-end turns that into an error frame.

use crate::fixed_window::FixedWindowHistogram;
use crate::kernel::KernelStats;
use crate::sharded::{
    Coverage, MergeMetrics, RecoveryReport, ShardError, ShardMetrics, ShardedFixedWindow,
    SnapshotPolicy,
};
use std::io;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;
use streamhist_core::{Histogram, StreamhistError};
use streamhist_obs::FlightRecorder;

/// A cloneable, thread-safe handle to a sharded fleet, exposing the
/// query/snapshot surface under a read lock and the admin surface under a
/// write lock. See the [module docs](self).
///
/// # Example
///
/// ```
/// use streamhist_stream::{FleetHandle, ShardedFixedWindow};
///
/// let fleet = ShardedFixedWindow::new(2, 64, 4, 0.1);
/// let handle = FleetHandle::new(fleet);
/// let ingest = handle.clone();
/// for i in 0..100u64 {
///     ingest.push(i, (i % 7) as f64).unwrap();
/// }
/// let (hist, _stats) = handle.snapshot_global().unwrap();
/// assert!(hist.num_buckets() <= 4);
/// ```
#[derive(Clone)]
pub struct FleetHandle {
    fleet: Arc<RwLock<ShardedFixedWindow>>,
}

impl FleetHandle {
    /// Wraps a fleet. The handle (and its clones) become the fleet's only
    /// access path.
    #[must_use]
    pub fn new(fleet: ShardedFixedWindow) -> Self {
        Self {
            fleet: Arc::new(RwLock::new(fleet)),
        }
    }

    /// Read access for queries and ingestion. A poisoned lock is recovered
    /// rather than propagated: the fleet's own state is never left
    /// half-mutated by a panicking *reader*, and the serving path must not
    /// turn one panicked worker thread into a fleet-wide outage.
    fn read(&self) -> RwLockReadGuard<'_, ShardedFixedWindow> {
        self.fleet.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, ShardedFixedWindow> {
        self.fleet.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn check_shard(&self, shard: usize) -> Result<(), StreamhistError> {
        if shard >= self.shards() {
            return Err(StreamhistError::InvalidParameter {
                param: "shard",
                message: "shard index out of range for this fleet",
            });
        }
        Ok(())
    }

    /// Number of shards in the fleet.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.read().shards()
    }

    /// The fleet's shared [`FlightRecorder`]
    /// (see [`ShardedFixedWindow::recorder`]) — clone of the `Arc`, so the
    /// caller can read (or co-write) the event timeline without holding
    /// the fleet lock.
    #[must_use]
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(self.read().recorder())
    }

    /// Routes one record to its key's shard
    /// (see [`ShardedFixedWindow::push`]).
    ///
    /// # Errors
    ///
    /// [`ShardError`] if the target worker has died.
    pub fn push(&self, key: u64, v: f64) -> Result<(), ShardError> {
        self.read().push(key, v)
    }

    /// Addresses one record to an explicit shard
    /// (see [`ShardedFixedWindow::push_to`]) — chaos harnesses and tests
    /// use this to aim traffic at a shard whose health they control.
    ///
    /// # Errors
    ///
    /// Outer [`StreamhistError::InvalidParameter`] for an out-of-range
    /// index; inner [`ShardError`] when the addressed worker has died.
    pub fn push_to(&self, shard: usize, v: f64) -> Result<Result<(), ShardError>, StreamhistError> {
        self.check_shard(shard)?;
        Ok(self.read().push_to(shard, v))
    }

    /// Scatters a slab across all shards
    /// (see [`ShardedFixedWindow::push_batch_scatter`]).
    ///
    /// # Errors
    ///
    /// The first [`ShardError`] hit; healthy shards still receive their
    /// chunks.
    pub fn push_batch_scatter(&self, values: &[f64]) -> Result<(), ShardError> {
        self.read().push_batch_scatter(values)
    }

    /// Fleet-global gathered snapshot
    /// (see [`ShardedFixedWindow::snapshot_global`]): one `B`-bucket
    /// histogram over the concatenated shard windows, generation-cached.
    ///
    /// # Errors
    ///
    /// The first [`ShardError`] if any worker has died.
    pub fn snapshot_global(&self) -> Result<(Arc<Histogram>, KernelStats), ShardError> {
        self.read().snapshot_global()
    }

    /// Fleet-global snapshot under an explicit dead-shard policy, with an
    /// exact [`Coverage`] report
    /// (see [`ShardedFixedWindow::snapshot_global_with`]).
    ///
    /// # Errors
    ///
    /// Strict: the first [`ShardError`]. Degraded: the first excluded
    /// shard's error when coverage falls below the policy's floor.
    pub fn snapshot_global_with(
        &self,
        policy: SnapshotPolicy,
    ) -> Result<(Arc<Histogram>, KernelStats, Coverage), ShardError> {
        self.read().snapshot_global_with(policy)
    }

    /// Liveness probe for one shard (see [`ShardedFixedWindow::ping`]):
    /// `true` iff the worker answered within `timeout`.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] for an out-of-range index.
    pub fn ping(&self, shard: usize, timeout: Duration) -> Result<bool, StreamhistError> {
        self.check_shard(shard)?;
        Ok(self.read().ping(shard, timeout))
    }

    /// One shard's materialized histogram (a per-shard barrier, see
    /// [`ShardedFixedWindow::snapshot`]).
    ///
    /// # Errors
    ///
    /// Outer [`StreamhistError::InvalidParameter`] for an out-of-range
    /// index; inner [`ShardError`] when the addressed worker has died.
    /// Neither is a panic — both layers are data when the index came off
    /// the wire.
    pub fn snapshot_shard(
        &self,
        shard: usize,
    ) -> Result<Result<(Arc<Histogram>, KernelStats), ShardError>, StreamhistError> {
        self.check_shard(shard)?;
        Ok(self.read().snapshot(shard))
    }

    /// Point-in-time counters for one shard, validated.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] for an out-of-range index.
    pub fn metrics(&self, shard: usize) -> Result<ShardMetrics, StreamhistError> {
        self.check_shard(shard)?;
        Ok(self.read().metrics(shard))
    }

    /// Metrics for every shard, in shard order.
    #[must_use]
    pub fn metrics_all(&self) -> Vec<ShardMetrics> {
        self.read().metrics_all()
    }

    /// The fleet's gather/merge counters.
    #[must_use]
    pub fn merge_metrics(&self) -> MergeMetrics {
        self.read().merge_metrics()
    }

    /// Respawns one shard's worker under the write lock
    /// (see [`ShardedFixedWindow::respawn_shard`]): queries and ingestion
    /// drain first, then the swap happens with the fleet quiescent.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] for an out-of-range index.
    pub fn respawn_shard(&self, shard: usize) -> Result<RecoveryReport, StreamhistError> {
        self.check_shard(shard)?;
        Ok(self.write().respawn_shard(shard))
    }

    /// Serializes a whole-fleet checkpoint into memory
    /// (see [`ShardedFixedWindow::checkpoint_all`]).
    ///
    /// # Errors
    ///
    /// The underlying [`io::Error`] (which wraps a [`ShardError`] when a
    /// worker has died).
    pub fn checkpoint_all(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.read().checkpoint_all(&mut out)?;
        Ok(out)
    }

    /// Loads a fleet save under the write lock
    /// (see [`ShardedFixedWindow::restore_all`]); all-or-nothing.
    ///
    /// # Errors
    ///
    /// [`io::Error`] as [`ShardedFixedWindow::restore_all`].
    pub fn restore_all(&self, bytes: &[u8]) -> io::Result<()> {
        self.write().restore_all(&mut io::Cursor::new(bytes))
    }

    /// Saves every shard's summary straight into a durable store
    /// (see [`ShardedFixedWindow::save_to_store`]).
    ///
    /// # Errors
    ///
    /// [`io::Error`] as [`ShardedFixedWindow::save_to_store`].
    pub fn save_to_store(&self, store: &dyn streamhist_core::CheckpointStore) -> io::Result<u64> {
        self.read().save_to_store(store)
    }

    /// Rebuilds every shard from a durable store under the write lock
    /// (see [`ShardedFixedWindow::load_from_store`]); all-or-nothing.
    ///
    /// # Errors
    ///
    /// [`io::Error`] as [`ShardedFixedWindow::load_from_store`].
    pub fn load_from_store(&self, store: &dyn streamhist_core::CheckpointStore) -> io::Result<()> {
        self.write().load_from_store(store)
    }

    /// The fleet's durability status
    /// (see [`ShardedFixedWindow::wal_status`]).
    #[must_use]
    pub fn wal_status(&self) -> crate::durability::WalStatus {
        self.read().wal_status()
    }

    /// Fault injection passthrough for resilience tests
    /// (see [`ShardedFixedWindow::inject_worker_panic`]).
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] for an out-of-range index;
    /// `Ok(Err(ShardError))` if the worker was already dead.
    pub fn inject_worker_panic(
        &self,
        shard: usize,
    ) -> Result<Result<(), ShardError>, StreamhistError> {
        self.check_shard(shard)?;
        Ok(self.read().inject_worker_panic(shard))
    }

    /// Shuts the fleet down and returns the shard summaries, if this is
    /// the last handle; otherwise returns `Err(self)` unchanged.
    ///
    /// # Errors
    ///
    /// `Err(self)` when other clones are still alive.
    #[allow(clippy::missing_errors_doc)]
    pub fn try_join(self) -> Result<Vec<Result<FixedWindowHistogram, ShardError>>, Self> {
        match Arc::try_unwrap(self.fleet) {
            Ok(lock) => Ok(lock
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .join()),
            Err(fleet) => Err(Self { fleet }),
        }
    }
}

impl std::fmt::Debug for FleetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetHandle")
            .field("shards", &self.shards())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_shard_is_an_error_not_a_panic() {
        let handle = FleetHandle::new(ShardedFixedWindow::new(2, 16, 2, 0.5));
        assert!(matches!(
            handle.metrics(2),
            Err(StreamhistError::InvalidParameter { param: "shard", .. })
        ));
        assert!(handle.respawn_shard(99).is_err());
        assert!(handle.snapshot_shard(7).is_err());
        assert!(handle.inject_worker_panic(5).is_err());
        assert!(handle.metrics(1).is_ok());
    }

    #[test]
    fn concurrent_ingest_respawn_and_snapshot() {
        let handle = FleetHandle::new(ShardedFixedWindow::new(2, 32, 4, 0.2));
        let pushers: Vec<_> = (0..3)
            .map(|t| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        // A respawn can momentarily kill a shard mid-push;
                        // the error is the documented contract, not a bug.
                        let _ = h.push(i.wrapping_mul(t + 1), (i % 11) as f64);
                    }
                })
            })
            .collect();
        for _ in 0..4 {
            let _ = handle.respawn_shard(0).unwrap();
            let _ = handle.snapshot_global();
        }
        for p in pushers {
            p.join().unwrap();
        }
        let (hist, _) = handle.snapshot_global().unwrap();
        assert!(hist.domain_len() <= 64, "two 32-capacity windows");
        let joined = handle.try_join().expect("last handle");
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn checkpoint_roundtrip_through_handle() {
        let handle = FleetHandle::new(ShardedFixedWindow::new(2, 16, 2, 0.5));
        for i in 0..50u64 {
            handle.push(i, (i % 5) as f64).unwrap();
        }
        let (before, _) = handle.snapshot_global().unwrap();
        let save = handle.checkpoint_all().unwrap();
        handle.push_batch_scatter(&[99.0; 8]).unwrap();
        handle.restore_all(&save).unwrap();
        let (after, _) = handle.snapshot_global().unwrap();
        assert_eq!(before, after, "restore rewinds to the checkpoint");
    }
}
