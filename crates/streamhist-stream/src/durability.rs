//! Incremental durability for sharded fleets: per-shard WAL + full frames
//! behind a pluggable [`CheckpointStore`].
//!
//! A full checkpoint frame costs `O(window)` to encode; cutting one every
//! `checkpoint_interval` accepted records makes durability cost linear in
//! window size per interval. This module turns that cost into
//! `O(records since the last frame)`: workers append accepted records to a
//! per-shard write-ahead log ([`WalSegment`] frames, cut every
//! [`DurabilityOptions::wal_sync`] records), still cut a full frame every
//! [`DurabilityOptions::checkpoint_interval`], and a single background
//! **uploader thread** per fleet drains both to the configured store with
//! bounded-queue backpressure and capped-backoff retries. When a frame
//! lands durably, the log it supersedes is truncated.
//!
//! Recovery (`respawn_shard` after a worker death, or
//! `load_from_store`) is *last frame + WAL replay*: restore the newest
//! frame, then re-push every logged record past it, in order. Frame
//! restore is bit-identical by the [`Checkpoint`](streamhist_core::Checkpoint)
//! contract and pushes are bit-deterministic, so the recovered summary is
//! bit-identical to one that never crashed — only the records accepted
//! after the last durable segment (strictly fewer than `wal_sync`, absent
//! drops) can be lost.
//!
//! Everything here is fleet plumbing: the public surface is
//! [`DurabilityOptions`] (handed to
//! `ShardedFixedWindow::builder(..).durability(..)`) and [`WalStatus`]
//! (the observability snapshot, also served over the wire as the
//! `wal-status` admin verb).

use crate::fixed_window::FixedWindowHistogram;
use crate::sharded::OverloadPolicy;
use std::fmt;
use std::sync::mpsc::{channel, sync_channel, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use streamhist_core::{Checkpoint, CheckpointStore, ObjectKind, StoreError, WalSegment};
use streamhist_obs::{Counter, EventKind, FlightRecorder, Gauge, MetricsRegistry, RatioTracker};

/// Bytes of ingest each accepted record represents (one `f64`), the
/// denominator unit of checkpoint amplification.
pub(crate) const BYTES_PER_RECORD: u64 = 8;

/// Attempts a store operation makes before giving up (first try + 7
/// retries). Against transient faults ([`streamhist_core::FailingStore`]
/// included) one retry usually suffices; the cap bounds worst-case stall.
const MAX_ATTEMPTS: u32 = 8;

/// First retry backoff; doubles per attempt up to [`BACKOFF_CAP`].
const BACKOFF_START: Duration = Duration::from_millis(1);

/// Ceiling on the per-attempt retry backoff.
const BACKOFF_CAP: Duration = Duration::from_millis(50);

/// Deterministic per-attempt jitter fraction in `[0, 0.5)`, derived from
/// `(seed, attempt)` by a splitmix64 finalizer. No RNG state, no
/// nondeterminism: the same shard retries with the same delays every run,
/// but *different* shards hitting the same failing store desynchronize
/// instead of hammering it in lockstep.
fn jitter_fraction(seed: u64, attempt: u32) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(attempt));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 * 0.5
}

/// Runs `op` with capped exponential backoff, counting extra attempts into
/// `retries`. Shared by the uploader (writes) and recovery (reads). `seed`
/// (the shard index) spreads each attempt's sleep by a deterministic
/// jitter of up to +50%, so a fleet's uploaders back off on staggered
/// schedules against a commonly-failing store.
pub(crate) fn with_retry<T>(
    retries: &Counter,
    seed: u64,
    op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    with_retry_observed(retries, seed, |_| {}, op)
}

/// [`with_retry`] with a per-retry observer: `on_retry(attempt)` fires
/// just before each re-attempt (attempt ≥ 1), which is where the uploader
/// hangs its flight-recorder [`EventKind::UploadRetried`] events — the
/// counter tells *how many*, the recorder tells *when and which shard*.
pub(crate) fn with_retry_observed<T>(
    retries: &Counter,
    seed: u64,
    mut on_retry: impl FnMut(u32),
    mut op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    let mut backoff = BACKOFF_START;
    let mut last = None;
    for attempt in 0..MAX_ATTEMPTS {
        if attempt > 0 {
            retries.inc();
            on_retry(attempt);
            std::thread::sleep(backoff.mul_f64(1.0 + jitter_fraction(seed, attempt)));
            backoff = (backoff * 2).min(BACKOFF_CAP);
        }
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("MAX_ATTEMPTS > 0 guarantees at least one error"))
}

/// Configuration for a fleet's durability pipeline, passed to
/// `ShardedFixedWindow::builder(..).durability(..)`.
///
/// Construct with [`DurabilityOptions::new`] and adjust via the chainable
/// setters; the defaults (64-record segments, 1024-record frames, a
/// 256-job upload queue that blocks when full) fit the committed
/// `BENCH_wal.json` amplification gate.
#[derive(Clone)]
pub struct DurabilityOptions {
    /// Where frames and WAL segments go.
    pub store: Arc<dyn CheckpointStore>,
    /// Accepted records per WAL segment: a shard's records become durable
    /// (enqueued to the uploader) in runs of this many. Smaller values
    /// tighten the crash-loss window; larger values amortize per-segment
    /// envelope overhead. Must be positive. Default 64.
    pub wal_sync: usize,
    /// Accepted records between full checkpoint frames; each durable frame
    /// truncates the log it supersedes. Must be positive. Default 1024.
    pub checkpoint_interval: usize,
    /// Bound of the uploader's job queue (segments + frames). Must be
    /// positive. Default 256.
    pub upload_queue_capacity: usize,
    /// What a worker does when the upload queue is full:
    /// [`OverloadPolicy::Block`] stalls ingest until the uploader drains
    /// (lossless durability, the default);
    /// [`OverloadPolicy::DropNewest`] sheds the segment — its records stay
    /// in the summary but are at risk until the next frame.
    pub upload_policy: OverloadPolicy,
}

impl DurabilityOptions {
    /// Defaults over `store`: `wal_sync` 64, `checkpoint_interval` 1024,
    /// a 256-job upload queue, [`OverloadPolicy::Block`].
    #[must_use]
    pub fn new(store: Arc<dyn CheckpointStore>) -> Self {
        Self {
            store,
            wal_sync: 64,
            checkpoint_interval: 1024,
            upload_queue_capacity: 256,
            upload_policy: OverloadPolicy::Block,
        }
    }

    /// Overrides the records-per-segment cut size.
    #[must_use]
    pub fn wal_sync(mut self, wal_sync: usize) -> Self {
        self.wal_sync = wal_sync;
        self
    }

    /// Overrides the records-per-frame interval.
    #[must_use]
    pub fn checkpoint_interval(mut self, checkpoint_interval: usize) -> Self {
        self.checkpoint_interval = checkpoint_interval;
        self
    }

    /// Overrides the uploader queue bound.
    #[must_use]
    pub fn upload_queue_capacity(mut self, upload_queue_capacity: usize) -> Self {
        self.upload_queue_capacity = upload_queue_capacity;
        self
    }

    /// Overrides the full-queue policy.
    #[must_use]
    pub fn upload_policy(mut self, upload_policy: OverloadPolicy) -> Self {
        self.upload_policy = upload_policy;
        self
    }
}

impl fmt::Debug for DurabilityOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurabilityOptions")
            .field("wal_sync", &self.wal_sync)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("upload_queue_capacity", &self.upload_queue_capacity)
            .field("upload_policy", &self.upload_policy)
            .finish_non_exhaustive()
    }
}

/// Point-in-time view of a fleet's durability pipeline — the payload of
/// the serve-layer `wal-status` admin verb. For a fleet built without
/// durability, `enabled` is `false` and every other field is zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WalStatus {
    /// Whether the fleet was built with
    /// [`durability`](crate::ShardedFixedWindowBuilder::durability).
    pub enabled: bool,
    /// Configured records per WAL segment.
    pub wal_sync: u64,
    /// Configured records per full frame.
    pub checkpoint_interval: u64,
    /// WAL segments durably written.
    pub segments_written: u64,
    /// Bytes of WAL segments durably written.
    pub segment_bytes: u64,
    /// Full frames durably written.
    pub frames_written: u64,
    /// Bytes of full frames durably written.
    pub frame_bytes: u64,
    /// Bytes ingested by the fleet's workers (8 per accepted record) —
    /// the amplification denominator.
    pub bytes_ingested: u64,
    /// Total bytes durably written (segments + frames) — the
    /// amplification numerator.
    pub bytes_written: u64,
    /// Checkpoint amplification: `bytes_written / bytes_ingested`
    /// (`0.0` before any ingest).
    pub amplification: f64,
    /// Store calls retried after a transient failure.
    pub retries: u64,
    /// Jobs abandoned after exhausting retries (records at risk until the
    /// next durable frame).
    pub failures: u64,
    /// Segments shed at enqueue time under [`OverloadPolicy::DropNewest`].
    pub segments_dropped: u64,
    /// Jobs currently queued to (or in flight on) the uploader.
    pub queue_depth: u64,
}

/// The shared cells behind [`WalStatus`]: obs counters/gauges, registered
/// as `streamhist_wal_*{fleet}` series when the fleet has a registry
/// attached, private cells otherwise — either way the exposition and the
/// [`WalStatus`] view read the same atomics.
#[derive(Debug, Default)]
pub(crate) struct WalMetricsInner {
    pub segments_written: Counter,
    pub segment_bytes: Counter,
    pub frames_written: Counter,
    pub frame_bytes: Counter,
    pub retries: Counter,
    pub failures: Counter,
    pub segments_dropped: Counter,
    pub queue_depth: Gauge,
    /// numerator = bytes durably written, denominator = bytes ingested,
    /// gauge = checkpoint amplification.
    pub amplification: RatioTracker,
}

impl WalMetricsInner {
    pub(crate) fn registered(registry: &MetricsRegistry, fleet: &str) -> Self {
        let labels = &[("fleet", fleet)];
        let counter = |name: &str, help: &str| {
            registry.counter_with(&format!("streamhist_wal_{name}"), help, labels)
        };
        Self {
            segments_written: counter(
                "segments_written_total",
                "WAL segments durably written to the checkpoint store.",
            ),
            segment_bytes: counter(
                "segment_bytes_total",
                "Bytes of WAL segments durably written.",
            ),
            frames_written: counter(
                "frames_written_total",
                "Full checkpoint frames durably written to the checkpoint store.",
            ),
            frame_bytes: counter(
                "frame_bytes_total",
                "Bytes of full checkpoint frames durably written.",
            ),
            retries: counter(
                "store_retries_total",
                "Checkpoint-store calls retried after a transient failure.",
            ),
            failures: counter(
                "upload_failures_total",
                "Upload jobs abandoned after exhausting retries.",
            ),
            segments_dropped: counter(
                "segments_dropped_total",
                "WAL segments shed at enqueue time under OverloadPolicy::DropNewest.",
            ),
            queue_depth: registry.gauge_with(
                "streamhist_wal_queue_depth",
                "Jobs currently queued to (or in flight on) the uploader.",
                labels,
            ),
            amplification: RatioTracker::new(
                counter(
                    "bytes_written_total",
                    "Total bytes durably written (segments + frames).",
                ),
                counter(
                    "bytes_ingested_total",
                    "Bytes ingested by the fleet's workers (8 per accepted record).",
                ),
                registry.float_gauge_with(
                    "streamhist_wal_amplification",
                    "Checkpoint amplification: bytes written / bytes ingested.",
                    labels,
                ),
            ),
        }
    }

    pub(crate) fn status(&self, opts: &DurabilityOptions) -> WalStatus {
        WalStatus {
            enabled: true,
            wal_sync: opts.wal_sync as u64,
            checkpoint_interval: opts.checkpoint_interval as u64,
            segments_written: self.segments_written.get(),
            segment_bytes: self.segment_bytes.get(),
            frames_written: self.frames_written.get(),
            frame_bytes: self.frame_bytes.get(),
            bytes_ingested: self.amplification.denominator(),
            bytes_written: self.amplification.numerator(),
            amplification: self.amplification.ratio(),
            retries: self.retries.get(),
            failures: self.failures.get(),
            segments_dropped: self.segments_dropped.get(),
            queue_depth: u64::try_from(self.queue_depth.get().max(0)).unwrap_or(0),
        }
    }
}

/// One unit of uploader work. Jobs are processed strictly in enqueue
/// order, so a [`Job::Flush`] reply proves everything enqueued before it
/// has been attempted (durable, or counted as a failure).
enum Job {
    /// Write one WAL segment.
    Segment {
        shard: usize,
        seq: u64,
        bytes: Vec<u8>,
    },
    /// Write one full frame; on success, truncate the log it supersedes.
    Frame {
        shard: usize,
        seq: u64,
        bytes: Vec<u8>,
    },
    /// Barrier: reply once every prior job has been processed.
    Flush(Sender<()>),
}

/// A worker's handle to the fleet's uploader: the bounded job queue plus
/// the shared metrics. Clone-per-shard.
#[derive(Clone)]
pub(crate) struct UploadHandle {
    tx: SyncSender<Job>,
    policy: OverloadPolicy,
    pub(crate) metrics: Arc<WalMetricsInner>,
}

impl UploadHandle {
    /// Enqueues a segment, honoring the overload policy: `Block` applies
    /// backpressure to the worker; `DropNewest` sheds the segment (its
    /// records remain at risk until the next frame) and counts it.
    fn send_segment(&self, shard: usize, seq: u64, bytes: Vec<u8>) {
        let job = Job::Segment { shard, seq, bytes };
        self.metrics.queue_depth.inc();
        match self.policy {
            OverloadPolicy::Block => {
                if self.tx.send(job).is_err() {
                    self.metrics.queue_depth.dec();
                }
            }
            OverloadPolicy::DropNewest => match self.tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.metrics.queue_depth.dec();
                    self.metrics.segments_dropped.inc();
                }
            },
        }
    }

    /// Enqueues a frame. Frames are control plane: always a blocking send,
    /// never shed, regardless of policy. Also used by `restore_all` to
    /// re-anchor the store after a rewinding load.
    pub(crate) fn send_frame(&self, shard: usize, seq: u64, bytes: Vec<u8>) {
        self.metrics.queue_depth.inc();
        if self.tx.send(Job::Frame { shard, seq, bytes }).is_err() {
            self.metrics.queue_depth.dec();
        }
    }

    /// Blocks until every job enqueued before this call has been
    /// processed. The barrier recovery relies on: after a flush, every
    /// segment a dead worker managed to enqueue is durable (or counted in
    /// `failures`).
    pub(crate) fn flush(&self) {
        let (reply_tx, reply_rx) = channel();
        self.metrics.queue_depth.inc();
        if self.tx.send(Job::Flush(reply_tx)).is_err() {
            self.metrics.queue_depth.dec();
            return;
        }
        let _ = reply_rx.recv();
    }
}

/// The fleet's background uploader: one thread draining the job queue to
/// the store with capped-backoff retries. Dropping the uploader closes the
/// queue and joins the thread (after the workers holding handle clones
/// have exited).
pub(crate) struct Uploader {
    handle: Option<JoinHandle<()>>,
    /// Kept so `UploadHandle`s can be minted; dropped with the uploader.
    tx: Option<SyncSender<Job>>,
}

impl Uploader {
    pub(crate) fn spawn(
        store: Arc<dyn CheckpointStore>,
        queue_capacity: usize,
        metrics: Arc<WalMetricsInner>,
        recorder: Arc<FlightRecorder>,
    ) -> Self {
        let (tx, rx) = sync_channel::<Job>(queue_capacity);
        let thread_metrics = Arc::clone(&metrics);
        let handle = std::thread::spawn(move || {
            let m = thread_metrics;
            let retried = |shard: usize| {
                let r = &recorder;
                move |attempt: u32| {
                    r.record(EventKind::UploadRetried { shard, attempt });
                }
            };
            while let Ok(job) = rx.recv() {
                m.queue_depth.dec();
                match job {
                    Job::Segment { shard, seq, bytes } => {
                        match with_retry_observed(&m.retries, shard as u64, retried(shard), || {
                            store.put_wal_segment(shard, seq, &bytes)
                        }) {
                            Ok(()) => {
                                m.segments_written.inc();
                                m.segment_bytes.inc_by(bytes.len() as u64);
                                m.amplification.add_numerator(bytes.len() as u64);
                            }
                            Err(_) => m.failures.inc(),
                        }
                    }
                    Job::Frame { shard, seq, bytes } => {
                        match with_retry_observed(&m.retries, shard as u64, retried(shard), || {
                            store.put_frame(shard, seq, &bytes)
                        }) {
                            Ok(()) => {
                                m.frames_written.inc();
                                m.frame_bytes.inc_by(bytes.len() as u64);
                                m.amplification.add_numerator(bytes.len() as u64);
                                recorder.record(EventKind::CheckpointUploaded {
                                    shard,
                                    upload_seq: seq,
                                    bytes: bytes.len() as u64,
                                });
                                // Truncate only once the frame is durable:
                                // if the frame had been lost, deleting the
                                // log it supersedes would lose data.
                                if with_retry_observed(
                                    &m.retries,
                                    shard as u64,
                                    retried(shard),
                                    || store.truncate(shard, seq),
                                )
                                .is_err()
                                {
                                    m.failures.inc();
                                }
                            }
                            Err(_) => m.failures.inc(),
                        }
                    }
                    Job::Flush(reply) => {
                        let _ = reply.send(());
                    }
                }
            }
        });
        Self {
            handle: Some(handle),
            tx: Some(tx),
        }
    }

    /// A worker-side handle sharing this uploader's queue and metrics.
    pub(crate) fn handle(
        &self,
        policy: OverloadPolicy,
        metrics: Arc<WalMetricsInner>,
    ) -> UploadHandle {
        UploadHandle {
            tx: self.tx.as_ref().expect("uploader is live").clone(),
            policy,
            metrics,
        }
    }
}

impl Drop for Uploader {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            // The thread exits once every handle clone (held by workers,
            // which exit when their command channels close) is gone and
            // the queue is drained — everything enqueued still lands.
            let _ = handle.join();
        }
    }
}

/// A fleet's durability pipeline: the configuration, the shared metric
/// cells, and the owning handle on the uploader thread. One per fleet,
/// dropped (joining the uploader) after the shards.
pub(crate) struct FleetDurability {
    pub(crate) options: DurabilityOptions,
    pub(crate) metrics: Arc<WalMetricsInner>,
    uploader: Uploader,
}

impl FleetDurability {
    pub(crate) fn new(
        options: DurabilityOptions,
        metrics: Arc<WalMetricsInner>,
        recorder: Arc<FlightRecorder>,
    ) -> Self {
        let uploader = Uploader::spawn(
            Arc::clone(&options.store),
            options.upload_queue_capacity,
            Arc::clone(&metrics),
            recorder,
        );
        Self {
            options,
            metrics,
            uploader,
        }
    }

    pub(crate) fn handle(&self) -> UploadHandle {
        self.uploader
            .handle(self.options.upload_policy, Arc::clone(&self.metrics))
    }

    /// The WAL state a freshly installed worker starts from: `base` is the
    /// seed summary's `total_pushed`.
    pub(crate) fn shard_wal(&self, shard: usize, base: u64) -> ShardWal {
        ShardWal::new(self.handle(), shard, self.options.wal_sync, base)
    }

    /// Blocks until everything currently enqueued to the uploader has been
    /// processed — the recovery barrier.
    pub(crate) fn flush(&self) {
        self.handle().flush();
    }
}

/// Per-worker WAL state: the buffer of accepted-but-not-yet-cut records
/// and its position in the shard's accepted-record sequence. Lives on the
/// worker thread; cuts segments into the uploader queue.
pub(crate) struct ShardWal {
    handle: UploadHandle,
    shard: usize,
    wal_sync: usize,
    /// Accepted records not yet cut into a segment. `pending[0]` is record
    /// `base` of the summary's `total_pushed` sequence.
    pending: Vec<f64>,
    base: u64,
}

impl ShardWal {
    pub(crate) fn new(handle: UploadHandle, shard: usize, wal_sync: usize, base: u64) -> Self {
        Self {
            handle,
            shard,
            wal_sync,
            pending: Vec::with_capacity(wal_sync),
            base,
        }
    }

    /// Logs one accepted record, cutting a segment when the buffer fills.
    pub(crate) fn record(&mut self, v: f64) {
        self.handle
            .metrics
            .amplification
            .add_denominator(BYTES_PER_RECORD);
        self.pending.push(v);
        self.cut_full_segments();
    }

    /// Logs the accepted (finite) records of a batch, in order.
    pub(crate) fn record_batch(&mut self, values: &[f64]) {
        let before = self.pending.len();
        self.pending
            .extend(values.iter().copied().filter(|v| v.is_finite()));
        let accepted = (self.pending.len() - before) as u64;
        if accepted > 0 {
            self.handle
                .metrics
                .amplification
                .add_denominator(accepted * BYTES_PER_RECORD);
        }
        self.cut_full_segments();
    }

    fn cut_full_segments(&mut self) {
        while self.pending.len() >= self.wal_sync {
            let records: Vec<f64> = self.pending.drain(..self.wal_sync).collect();
            let seg = WalSegment {
                shard: self.shard as u64,
                base: self.base,
                records,
            };
            let bytes = seg.encode();
            self.handle.send_segment(self.shard, self.base, bytes);
            self.base += self.wal_sync as u64;
        }
    }

    /// A full frame at `seq` (= the summary's `total_pushed`) was just
    /// encoded: ship it, and drop the pending buffer — everything in it is
    /// covered by the frame. The uploader truncates the superseded log
    /// once the frame lands.
    pub(crate) fn on_frame(&mut self, seq: u64, frame: Vec<u8>) {
        self.handle.send_frame(self.shard, seq, frame);
        self.pending.clear();
        self.base = seq;
    }
}

/// Reconstructs one shard's summary from the store: newest frame + ordered
/// WAL replay. Returns a summary bit-identical to the never-crashed one up
/// to the last contiguously durable record. Every store read retries with
/// backoff (counting into `retries`); replay stops at the first gap or
/// undecodable segment — records past a discontinuity cannot be replayed
/// in order.
///
/// `fresh` supplies the empty summary used when no frame exists yet.
pub(crate) fn recover_shard(
    store: &dyn CheckpointStore,
    shard: usize,
    retries: &Counter,
    fresh: impl FnOnce() -> FixedWindowHistogram,
) -> Result<FixedWindowHistogram, StoreError> {
    let ids = with_retry(retries, shard as u64, || store.list(shard))?;
    let newest_frame = ids
        .iter()
        .filter(|id| id.kind == ObjectKind::Frame)
        .max_by_key(|id| id.seq);
    let mut fw = match newest_frame {
        Some(id) => {
            let bytes = with_retry(retries, shard as u64, || store.get(id))?;
            FixedWindowHistogram::restore(&bytes).map_err(|e| StoreError {
                op: "get",
                detail: format!("stored frame failed restore: {e}"),
            })?
        }
        None => fresh(),
    };
    let mut expected = fw.total_pushed();
    for id in ids.iter().filter(|id| id.kind == ObjectKind::WalSegment) {
        if id.seq > expected {
            break; // gap: nothing past it is contiguous
        }
        let bytes = with_retry(retries, shard as u64, || store.get(id))?;
        let Ok(seg) = WalSegment::decode(&bytes) else {
            break; // undecodable: stop at the last trustworthy record
        };
        if seg.end() <= expected {
            continue; // fully covered by the frame or an earlier segment
        }
        let skip = (expected - seg.base) as usize;
        for &v in &seg.records[skip..] {
            fw.push(v);
        }
        expected = seg.end();
    }
    Ok(fw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamhist_core::{FailingStore, MemStore};

    fn fresh() -> FixedWindowHistogram {
        FixedWindowHistogram::new(64, 4, 0.1)
    }

    /// Reference: the summary a never-crashed worker would hold.
    fn reference(records: &[f64]) -> FixedWindowHistogram {
        let mut fw = fresh();
        for &v in records {
            fw.push(v);
        }
        fw
    }

    fn seg(shard: u64, base: u64, records: &[f64]) -> Vec<u8> {
        WalSegment {
            shard,
            base,
            records: records.to_vec(),
        }
        .encode()
    }

    #[test]
    fn recover_from_empty_store_is_a_fresh_summary() {
        let store = MemStore::new();
        let fw = recover_shard(&store, 0, &Counter::default(), fresh).unwrap();
        assert_eq!(fw.total_pushed(), 0);
    }

    #[test]
    fn recover_replays_frame_plus_tail_segments() {
        let store = MemStore::new();
        let all: Vec<f64> = (0..24).map(|i| f64::from(i % 7)).collect();
        // Frame covers the first 16 records; two 4-record segments follow.
        store
            .put_frame(2, 16, &reference(&all[..16]).encode_checkpoint())
            .unwrap();
        store
            .put_wal_segment(2, 16, &seg(2, 16, &all[16..20]))
            .unwrap();
        store
            .put_wal_segment(2, 20, &seg(2, 20, &all[20..24]))
            .unwrap();
        let fw = recover_shard(&store, 2, &Counter::default(), fresh).unwrap();
        assert_eq!(fw.total_pushed(), 24);
        assert_eq!(
            fw.encode_checkpoint(),
            reference(&all).encode_checkpoint(),
            "bit-identical to the never-crashed summary"
        );
    }

    #[test]
    fn recover_skips_segments_the_frame_covers_and_partially_covered_ones() {
        let store = MemStore::new();
        let all: Vec<f64> = (0..12).map(|i| f64::from(i * 3 % 11)).collect();
        // Stale segments under the frame (an unfinished truncate), plus one
        // segment straddling the frame boundary.
        store.put_wal_segment(0, 0, &seg(0, 0, &all[..4])).unwrap();
        store
            .put_wal_segment(0, 4, &seg(0, 4, &all[4..10]))
            .unwrap();
        store
            .put_frame(0, 8, &reference(&all[..8]).encode_checkpoint())
            .unwrap();
        store
            .put_wal_segment(0, 10, &seg(0, 10, &all[10..]))
            .unwrap();
        let fw = recover_shard(&store, 0, &Counter::default(), fresh).unwrap();
        assert_eq!(fw.total_pushed(), 12);
        assert_eq!(fw.encode_checkpoint(), reference(&all).encode_checkpoint());
    }

    #[test]
    fn recover_stops_at_a_gap() {
        let store = MemStore::new();
        let all: Vec<f64> = (0..20).map(f64::from).collect();
        store
            .put_frame(1, 8, &reference(&all[..8]).encode_checkpoint())
            .unwrap();
        // 8..12 is missing; 12..16 must not be replayed out of order.
        store
            .put_wal_segment(1, 12, &seg(1, 12, &all[12..16]))
            .unwrap();
        let fw = recover_shard(&store, 1, &Counter::default(), fresh).unwrap();
        assert_eq!(fw.total_pushed(), 8, "replay stops at the discontinuity");
    }

    #[test]
    fn recover_retries_through_transient_store_faults() {
        let inner = MemStore::new();
        let all: Vec<f64> = (0..10).map(f64::from).collect();
        inner
            .put_frame(0, 8, &reference(&all[..8]).encode_checkpoint())
            .unwrap();
        inner.put_wal_segment(0, 8, &seg(0, 8, &all[8..])).unwrap();
        // Every second call fails; with_retry absorbs each fault.
        let store = FailingStore::every_nth(inner, 2);
        let retries = Counter::default();
        let fw = recover_shard(&store, 0, &retries, fresh).unwrap();
        assert_eq!(fw.total_pushed(), 10);
        assert!(retries.get() > 0, "the faults were retried, not fatal");
        assert_eq!(fw.encode_checkpoint(), reference(&all).encode_checkpoint());
    }

    #[test]
    fn uploader_writes_segments_frames_and_truncates() {
        let store: Arc<MemStore> = Arc::new(MemStore::new());
        let metrics = Arc::new(WalMetricsInner::default());
        let recorder = Arc::new(FlightRecorder::default());
        let uploader = Uploader::spawn(
            Arc::clone(&store) as Arc<dyn CheckpointStore>,
            16,
            Arc::clone(&metrics),
            Arc::clone(&recorder),
        );
        let handle = uploader.handle(OverloadPolicy::Block, Arc::clone(&metrics));
        let mut wal = ShardWal::new(handle.clone(), 0, 4, 0);
        let values: Vec<f64> = (0..10).map(f64::from).collect();
        wal.record_batch(&values); // cuts segments [0..4) and [4..8)
        handle.flush();
        assert_eq!(metrics.segments_written.get(), 2);
        assert_eq!(store.list(0).unwrap().len(), 2);
        // A frame at 10 supersedes both segments.
        wal.on_frame(10, reference(&values).encode_checkpoint());
        handle.flush();
        assert_eq!(metrics.frames_written.get(), 1);
        let ids = store.list(0).unwrap();
        assert_eq!(ids.len(), 1, "the durable frame truncated the log");
        assert_eq!(ids[0].kind, ObjectKind::Frame);
        assert_eq!(ids[0].seq, 10);
        let status = metrics.status(&DurabilityOptions::new(store).wal_sync(4));
        assert_eq!(status.bytes_ingested, 80);
        assert!(status.amplification > 0.0);
        assert_eq!(status.failures, 0);
        // The durable frame landed in the flight recorder with its store
        // sequence and encoded size.
        let uploads: Vec<_> = recorder
            .all_events()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::CheckpointUploaded {
                    shard,
                    upload_seq,
                    bytes,
                } => Some((shard, upload_seq, bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(uploads.len(), 1);
        assert_eq!(uploads[0].0, 0);
        assert_eq!(uploads[0].1, 10);
        assert!(uploads[0].2 > 0);
        // Drop the tx clones before the uploader: its Drop joins the
        // thread, which only exits once every handle is gone.
        drop(wal);
        drop(handle);
        drop(uploader);
    }

    #[test]
    fn uploader_retries_against_an_injected_fault_store() {
        let store = Arc::new(FailingStore::every_nth(MemStore::new(), 3));
        let metrics = Arc::new(WalMetricsInner::default());
        let recorder = Arc::new(FlightRecorder::default());
        let uploader = Uploader::spawn(
            Arc::clone(&store) as Arc<dyn CheckpointStore>,
            16,
            Arc::clone(&metrics),
            Arc::clone(&recorder),
        );
        let handle = uploader.handle(OverloadPolicy::Block, Arc::clone(&metrics));
        let mut wal = ShardWal::new(handle.clone(), 0, 2, 0);
        for i in 0..20 {
            wal.record(f64::from(i));
        }
        handle.flush();
        assert_eq!(metrics.segments_written.get(), 10, "every segment landed");
        assert_eq!(metrics.failures.get(), 0);
        assert!(metrics.retries.get() > 0, "faults were absorbed by retries");
        assert_eq!(store.inner().list(0).unwrap().len(), 10);
        // Each retry the counter saw is also on the flight-recorder
        // timeline, attributed to the shard that retried.
        let retried = recorder
            .all_events()
            .into_iter()
            .filter(|e| matches!(e.kind, EventKind::UploadRetried { shard: 0, .. }))
            .count() as u64;
        assert_eq!(retried, metrics.retries.get());
        drop(wal);
        drop(handle);
        drop(uploader);
    }
}
