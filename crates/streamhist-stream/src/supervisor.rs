//! Self-healing for a sharded fleet: health probing, automatic respawn,
//! and quarantine.
//!
//! A [`ShardedFixedWindow`](crate::ShardedFixedWindow) already *tolerates*
//! a dead shard — every operation addressed to it fails fast with a
//! [`ShardError`](crate::ShardError) — but until this module, *repair* was
//! manual: someone had to notice and call `respawn_shard`. The
//! [`Supervisor`] closes that loop. It probes each shard with a liveness
//! ping ([`ShardedFixedWindow::ping`](crate::ShardedFixedWindow::ping)
//! piggybacks on the shard queues, so a positive answer proves the worker
//! is draining, not merely scheduled), and drives each shard through a
//! small state machine:
//!
//! ```text
//!              ping ok                 ping fails
//!    ┌──────────────────────┐   ┌─────────────────────┐
//!    ▼                      │   ▼                     │
//! [Live] ──ping fails──▶ [Dead] ──respawn──▶ [Recovering] ──ping ok──▶ [Live]
//!                           │ N consecutive               (failures reset
//!                           │ fast failures                after the shard
//!                           ▼                              outlives the
//!                     [Quarantined] ──backoff elapsed──▶ [Recovering]
//! ```
//!
//! Respawns go through the store-backed recovery path
//! ([`FleetHandle::respawn_shard`] under the fleet's write lock) and are
//! **rate-limited** by a token bucket: a crash loop cannot turn the
//! supervisor into a `respawn_shard` busy-loop that starves producers of
//! the lock. A shard that keeps dying within
//! [`flap_window`](SupervisorOptions::flap_window) of its restart is
//! **quarantined** after
//! [`quarantine_after`](SupervisorOptions::quarantine_after) consecutive
//! failures: the supervisor stops restarting it until
//! [`quarantine_backoff`](SupervisorOptions::quarantine_backoff) elapses,
//! then grants one probation restart. While a shard sits in quarantine the
//! fleet keeps serving *degraded* global snapshots
//! ([`SnapshotPolicy::Degraded`](crate::SnapshotPolicy)) whose
//! [`Coverage`](crate::Coverage) report says exactly what is missing.
//!
//! Everything the background thread does is also available synchronously:
//! [`Supervisor::probe_once`] runs one full probe pass and returns the
//! transitions it made, which is how the chaos tests drive the state
//! machine deterministically (no thread, no timing races).

use crate::serve::FleetHandle;
use crate::sharded::RecoveryReport;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use streamhist_core::StreamhistError;
use streamhist_obs::{Counter, EventKind, FlightRecorder, Gauge, MetricsRegistry};

/// Where a shard sits in the supervisor's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The worker answered its last probe.
    Live,
    /// The worker is gone and a restart has not happened yet (detected
    /// this pass, or deferred because the token bucket is empty).
    Dead,
    /// Restarted; not yet re-probed alive.
    Recovering,
    /// Too many consecutive fast failures; restarts are suspended until
    /// the quarantine backoff elapses.
    Quarantined,
}

impl ShardState {
    /// Stable small-integer encoding (wire and metrics): Live=0, Dead=1,
    /// Recovering=2, Quarantined=3.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            Self::Live => 0,
            Self::Dead => 1,
            Self::Recovering => 2,
            Self::Quarantined => 3,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8).
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Live),
            1 => Some(Self::Dead),
            2 => Some(Self::Recovering),
            3 => Some(Self::Quarantined),
            _ => None,
        }
    }

    /// Lowercase human name (CLI and exposition).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Live => "live",
            Self::Dead => "dead",
            Self::Recovering => "recovering",
            Self::Quarantined => "quarantined",
        }
    }
}

impl fmt::Display for ShardState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning for a [`Supervisor`]. The defaults suit a serving fleet probed
/// every 25ms; chaos tests override almost everything (e.g. a zero
/// `quarantine_backoff` for deterministic probation).
#[derive(Debug, Clone, Copy)]
pub struct SupervisorOptions {
    /// How often the background thread runs a probe pass (manual
    /// [`probe_once`](Supervisor::probe_once) callers ignore it).
    /// Validated ≥ 1ms.
    pub probe_interval: Duration,
    /// How long a probed worker gets to answer its ping before it reads
    /// as dead. Must be nonzero.
    pub ping_timeout: Duration,
    /// Token-bucket capacity: how many restarts may happen back-to-back
    /// before the supervisor has to wait for refills. Validated ≥ 1.
    pub restart_burst: u32,
    /// One restart token refills per this much elapsed time. A zero
    /// refill period means an always-full bucket (no rate limit).
    pub restart_refill: Duration,
    /// Consecutive fast failures before a shard is quarantined.
    /// Validated ≥ 1.
    pub quarantine_after: u32,
    /// How long a quarantined shard waits before its probation restart.
    /// Zero means probation on the very next probe pass.
    pub quarantine_backoff: Duration,
    /// A death within this much time of the shard's last restart counts
    /// as a *consecutive* failure; surviving a probe past it resets the
    /// count. Zero disables flap tracking entirely (every successful
    /// probe resets the count, so quarantine never triggers) — useful
    /// when a harness kills shards on purpose, e.g. `bench_recovery`.
    pub flap_window: Duration,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        Self {
            probe_interval: Duration::from_millis(25),
            ping_timeout: Duration::from_millis(100),
            restart_burst: 4,
            restart_refill: Duration::from_millis(250),
            quarantine_after: 5,
            quarantine_backoff: Duration::from_secs(2),
            flap_window: Duration::from_secs(1),
        }
    }
}

impl SupervisorOptions {
    fn validate(&self) -> Result<(), StreamhistError> {
        if self.probe_interval < Duration::from_millis(1) {
            return Err(StreamhistError::InvalidParameter {
                param: "probe_interval",
                message: "supervisor probe interval must be at least 1ms",
            });
        }
        if self.ping_timeout.is_zero() {
            return Err(StreamhistError::InvalidParameter {
                param: "ping_timeout",
                message: "supervisor ping timeout must be nonzero",
            });
        }
        if self.restart_burst == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "restart_burst",
                message: "restart token bucket needs capacity for at least one restart",
            });
        }
        if self.quarantine_after == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "quarantine_after",
                message: "quarantine threshold must be at least one failure",
            });
        }
        Ok(())
    }
}

/// One shard's supervisor-visible health, as reported by
/// [`Supervisor::health`] and the serve layer's `health` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Current state-machine position.
    pub state: ShardState,
    /// Consecutive fast failures counted toward quarantine.
    pub consecutive_failures: u64,
    /// Restarts this supervisor has performed on the shard.
    pub restarts: u64,
}

/// A state transition made by one probe pass — returned by
/// [`Supervisor::probe_once`] so tests can assert the exact sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorEvent {
    /// A live/recovering shard failed its probe.
    Died {
        /// Shard index.
        shard: usize,
    },
    /// A dead shard was respawned through store-backed recovery.
    Restarted {
        /// Shard index.
        shard: usize,
        /// The recovery path's own report.
        report: RecoveryReport,
    },
    /// A dead shard's restart was deferred: the token bucket is empty.
    RestartDeferred {
        /// Shard index.
        shard: usize,
    },
    /// A shard crossed the consecutive-failure threshold.
    Quarantined {
        /// Shard index.
        shard: usize,
    },
    /// A quarantined shard's backoff elapsed and it got its probation
    /// restart.
    Probation {
        /// Shard index.
        shard: usize,
        /// The recovery path's own report — probation restarts lose
        /// records exactly like ordinary restarts, and the chaos sweeps
        /// account for both.
        report: RecoveryReport,
    },
    /// A recovering shard answered a probe and is live again.
    Recovered {
        /// Shard index.
        shard: usize,
    },
}

/// Supervisor counters, `streamhist_supervisor_*{fleet}` when registered.
#[derive(Default)]
struct SupervisorMetricsInner {
    probes: Counter,
    deaths: Counter,
    restarts: Counter,
    restarts_deferred: Counter,
    quarantines: Counter,
    probations: Counter,
    records_lost: Counter,
    shards_live: Gauge,
    shards_quarantined: Gauge,
}

impl SupervisorMetricsInner {
    fn registered(registry: &MetricsRegistry, fleet: &str) -> Self {
        let labels = &[("fleet", fleet)];
        let counter = |name: &str, help: &str| {
            registry.counter_with(&format!("streamhist_supervisor_{name}"), help, labels)
        };
        Self {
            probes: counter("probes_total", "Liveness probes sent to shard workers."),
            deaths: counter("deaths_total", "Probe passes that found a worker dead."),
            restarts: counter(
                "restarts_total",
                "Automatic respawns performed (probation restarts included).",
            ),
            restarts_deferred: counter(
                "restarts_deferred_total",
                "Restarts postponed because the token bucket was empty.",
            ),
            quarantines: counter(
                "quarantines_total",
                "Shards quarantined after consecutive fast failures.",
            ),
            probations: counter(
                "probations_total",
                "Quarantine exits: probation restarts after the backoff elapsed.",
            ),
            records_lost: counter(
                "records_lost_total",
                "Accepted records reported lost by supervisor-driven recoveries.",
            ),
            shards_live: registry.gauge_with(
                "streamhist_supervisor_shards_live",
                "Shards currently in the Live state.",
                labels,
            ),
            shards_quarantined: registry.gauge_with(
                "streamhist_supervisor_shards_quarantined",
                "Shards currently in the Quarantined state.",
                labels,
            ),
        }
    }
}

/// Point-in-time copy of the supervisor's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorMetrics {
    /// Liveness probes sent.
    pub probes: u64,
    /// Probe passes that found a worker dead.
    pub deaths: u64,
    /// Automatic respawns performed (probations included).
    pub restarts: u64,
    /// Restarts postponed by the empty token bucket.
    pub restarts_deferred: u64,
    /// Quarantine entries.
    pub quarantines: u64,
    /// Quarantine exits (probation restarts).
    pub probations: u64,
    /// Accepted records reported lost by supervisor-driven recoveries.
    pub records_lost: u64,
}

/// Per-shard mutable control state (behind the control mutex).
struct ShardControl {
    state: ShardState,
    consecutive_failures: u64,
    restarts: u64,
    last_restart: Option<Instant>,
    quarantined_at: Option<Instant>,
}

struct ControlState {
    /// Restart tokens currently available (fractional while refilling).
    tokens: f64,
    last_refill: Instant,
    shards: Vec<ShardControl>,
}

struct SupervisorInner {
    fleet: FleetHandle,
    options: SupervisorOptions,
    control: Mutex<ControlState>,
    stop: AtomicBool,
    metrics: SupervisorMetricsInner,
    /// The fleet's flight recorder, cloned at attach time: every state
    /// transition a probe pass makes is recorded exactly once, at the
    /// pass's single exit — the chaos suite reconstructs whole sweeps
    /// from this timeline alone.
    recorder: Arc<FlightRecorder>,
}

impl SupervisorInner {
    fn control(&self) -> std::sync::MutexGuard<'_, ControlState> {
        self.control.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Refills the token bucket for the time elapsed since the last
    /// refill, capped at the burst capacity.
    fn refill_tokens(&self, control: &mut ControlState) {
        let burst = f64::from(self.options.restart_burst);
        if self.options.restart_refill.is_zero() {
            control.tokens = burst;
            return;
        }
        let elapsed = control.last_refill.elapsed();
        control.last_refill = Instant::now();
        control.tokens = (control.tokens
            + elapsed.as_secs_f64() / self.options.restart_refill.as_secs_f64())
        .min(burst);
    }

    /// Restarts `shard` through the fleet's store-backed recovery path,
    /// spending one token (the caller has checked one is available).
    fn restart(&self, control: &mut ControlState, shard: usize) -> Option<RecoveryReport> {
        control.tokens -= 1.0;
        // The shard index came from our own iteration bounds, so the only
        // error `respawn_shard` can return (out of range) cannot happen.
        let report = self.fleet.respawn_shard(shard).ok()?;
        let c = &mut control.shards[shard];
        c.restarts += 1;
        c.last_restart = Some(Instant::now());
        c.quarantined_at = None;
        c.state = ShardState::Recovering;
        self.metrics.restarts.inc();
        self.metrics
            .records_lost
            .inc_by(report.lost_since_checkpoint);
        Some(report)
    }

    /// One full probe pass over every shard. See
    /// [`Supervisor::probe_once`].
    fn probe_once(&self) -> Vec<SupervisorEvent> {
        let mut events = Vec::new();
        let shards = self.fleet.shards();
        let mut control = self.control();
        self.refill_tokens(&mut control);
        for shard in 0..shards {
            match control.shards[shard].state {
                ShardState::Live | ShardState::Recovering => {
                    self.metrics.probes.inc();
                    // `ping` takes the fleet's read lock only; the index
                    // came from our own bounds, so the validation error
                    // cannot happen.
                    let alive = self
                        .fleet
                        .ping(shard, self.options.ping_timeout)
                        .unwrap_or(false);
                    let c = &mut control.shards[shard];
                    if alive {
                        if c.state == ShardState::Recovering {
                            c.state = ShardState::Live;
                            events.push(SupervisorEvent::Recovered { shard });
                        }
                        let outlived_flap = self.options.flap_window.is_zero()
                            || c.last_restart
                                .is_none_or(|t| t.elapsed() >= self.options.flap_window);
                        if outlived_flap {
                            c.consecutive_failures = 0;
                        }
                    } else {
                        self.metrics.deaths.inc();
                        c.state = ShardState::Dead;
                        c.consecutive_failures += 1;
                        events.push(SupervisorEvent::Died { shard });
                        // Fall through to the Dead arm's restart decision
                        // in this same pass, so MTTR is one probe cycle,
                        // not two.
                        events.extend(self.decide_dead(&mut control, shard));
                    }
                }
                ShardState::Dead => {
                    events.extend(self.decide_dead(&mut control, shard));
                }
                ShardState::Quarantined => {
                    let elapsed = control.shards[shard]
                        .quarantined_at
                        .is_none_or(|t| t.elapsed() >= self.options.quarantine_backoff);
                    if elapsed && control.tokens >= 1.0 {
                        if let Some(report) = self.restart(&mut control, shard) {
                            self.metrics.probations.inc();
                            events.push(SupervisorEvent::Probation { shard, report });
                        }
                    }
                }
            }
        }
        let (live, quarantined) =
            control
                .shards
                .iter()
                .fold((0i64, 0i64), |(l, q), c| match c.state {
                    ShardState::Live => (l + 1, q),
                    ShardState::Quarantined => (l, q + 1),
                    _ => (l, q),
                });
        self.metrics.shards_live.set(live);
        self.metrics.shards_quarantined.set(quarantined);
        // Flight-record every transition at the pass's single exit — one
        // recorder event per SupervisorEvent, in the order the pass made
        // them, so the chaos suite can replay a whole sweep from the ring.
        for event in &events {
            self.recorder.record(match *event {
                SupervisorEvent::Died { shard } => EventKind::ShardDied { shard },
                SupervisorEvent::Restarted { shard, report } => EventKind::ShardRestarted {
                    shard,
                    restored_len: report.restored_len,
                    lost: report.lost_since_checkpoint,
                },
                SupervisorEvent::RestartDeferred { shard } => EventKind::RestartDeferred { shard },
                SupervisorEvent::Quarantined { shard } => EventKind::ShardQuarantined { shard },
                SupervisorEvent::Probation { shard, .. } => EventKind::ShardProbation { shard },
                SupervisorEvent::Recovered { shard } => EventKind::ShardRecovered { shard },
            });
        }
        events
    }

    /// The restart-or-quarantine decision for a shard in the Dead state.
    fn decide_dead(&self, control: &mut ControlState, shard: usize) -> Vec<SupervisorEvent> {
        let c = &mut control.shards[shard];
        if c.consecutive_failures >= u64::from(self.options.quarantine_after) {
            c.state = ShardState::Quarantined;
            c.quarantined_at = Some(Instant::now());
            self.metrics.quarantines.inc();
            return vec![SupervisorEvent::Quarantined { shard }];
        }
        if control.tokens >= 1.0 {
            match self.restart(control, shard) {
                Some(report) => vec![SupervisorEvent::Restarted { shard, report }],
                None => Vec::new(),
            }
        } else {
            self.metrics.restarts_deferred.inc();
            vec![SupervisorEvent::RestartDeferred { shard }]
        }
    }

    fn health(&self) -> Vec<ShardHealth> {
        self.control()
            .shards
            .iter()
            .enumerate()
            .map(|(shard, c)| ShardHealth {
                shard,
                state: c.state,
                consecutive_failures: c.consecutive_failures,
                restarts: c.restarts,
            })
            .collect()
    }

    fn metrics(&self) -> SupervisorMetrics {
        SupervisorMetrics {
            probes: self.metrics.probes.get(),
            deaths: self.metrics.deaths.get(),
            restarts: self.metrics.restarts.get(),
            restarts_deferred: self.metrics.restarts_deferred.get(),
            quarantines: self.metrics.quarantines.get(),
            probations: self.metrics.probations.get(),
            records_lost: self.metrics.records_lost.get(),
        }
    }
}

/// A cloneable, read-only view of a running supervisor, for the serve
/// layer's `health` verb (the [`Supervisor`] itself owns the probe thread
/// and is not `Clone`).
#[derive(Clone)]
pub struct SupervisorHandle {
    inner: Arc<SupervisorInner>,
}

impl SupervisorHandle {
    /// Per-shard health, in shard order.
    #[must_use]
    pub fn health(&self) -> Vec<ShardHealth> {
        self.inner.health()
    }

    /// Point-in-time supervisor counters.
    #[must_use]
    pub fn metrics(&self) -> SupervisorMetrics {
        self.inner.metrics()
    }
}

impl fmt::Debug for SupervisorHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SupervisorHandle")
            .field("shards", &self.inner.fleet.shards())
            .finish()
    }
}

/// The fleet supervisor. See the [module docs](self) for the state
/// machine and rate-limiting model.
///
/// Two modes share one implementation:
///
/// * [`start`](Self::start) spawns the background probe thread —
///   production mode; dropping the supervisor (or calling
///   [`shutdown`](Self::shutdown)) stops and joins it.
/// * [`attach`](Self::attach) creates the supervisor without a thread;
///   the caller drives it with [`probe_once`](Self::probe_once) — the
///   deterministic mode the chaos tests use.
pub struct Supervisor {
    inner: Arc<SupervisorInner>,
    thread: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Creates a supervisor over `fleet` without spawning the probe
    /// thread; drive it manually with [`probe_once`](Self::probe_once).
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] for out-of-range options.
    pub fn attach(fleet: FleetHandle, options: SupervisorOptions) -> Result<Self, StreamhistError> {
        Self::build(fleet, options, None)
    }

    /// [`attach`](Self::attach), registering
    /// `streamhist_supervisor_*{fleet}` series into `registry`.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] for out-of-range options.
    pub fn attach_with_metrics(
        fleet: FleetHandle,
        options: SupervisorOptions,
        registry: &MetricsRegistry,
        fleet_label: &str,
    ) -> Result<Self, StreamhistError> {
        Self::build(fleet, options, Some((registry, fleet_label)))
    }

    fn build(
        fleet: FleetHandle,
        options: SupervisorOptions,
        registry: Option<(&MetricsRegistry, &str)>,
    ) -> Result<Self, StreamhistError> {
        options.validate()?;
        let shards = (0..fleet.shards())
            .map(|_| ShardControl {
                state: ShardState::Live,
                consecutive_failures: 0,
                restarts: 0,
                last_restart: None,
                quarantined_at: None,
            })
            .collect();
        let metrics = match registry {
            Some((reg, label)) => SupervisorMetricsInner::registered(reg, label),
            None => SupervisorMetricsInner::default(),
        };
        let recorder = fleet.recorder();
        Ok(Self {
            inner: Arc::new(SupervisorInner {
                fleet,
                recorder,
                options,
                control: Mutex::new(ControlState {
                    tokens: f64::from(options.restart_burst),
                    last_refill: Instant::now(),
                    shards,
                }),
                stop: AtomicBool::new(false),
                metrics,
            }),
            thread: None,
        })
    }

    /// [`attach`](Self::attach) plus the background probe thread: one
    /// probe pass every [`probe_interval`](SupervisorOptions::probe_interval)
    /// until shutdown.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] for out-of-range options; an
    /// [`io::Error`](std::io::Error)-shaped spawn failure surfaces as a
    /// panic (thread spawn only fails on resource exhaustion).
    pub fn start(fleet: FleetHandle, options: SupervisorOptions) -> Result<Self, StreamhistError> {
        let mut this = Self::attach(fleet, options)?;
        this.spawn_probe_thread();
        Ok(this)
    }

    /// [`start`](Self::start) with registered metrics.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::InvalidParameter`] for out-of-range options.
    pub fn start_with_metrics(
        fleet: FleetHandle,
        options: SupervisorOptions,
        registry: &MetricsRegistry,
        fleet_label: &str,
    ) -> Result<Self, StreamhistError> {
        let mut this = Self::attach_with_metrics(fleet, options, registry, fleet_label)?;
        this.spawn_probe_thread();
        Ok(this)
    }

    fn spawn_probe_thread(&mut self) {
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("streamhist-supervisor".to_string())
            .spawn(move || {
                while !inner.stop.load(Ordering::Relaxed) {
                    let _ = inner.probe_once();
                    std::thread::sleep(inner.options.probe_interval);
                }
            })
            .expect("spawning the supervisor probe thread");
        self.thread = Some(handle);
    }

    /// Runs one synchronous probe pass over every shard and returns the
    /// transitions it made (empty when all is well). Safe to call
    /// concurrently with a running probe thread — passes serialize on the
    /// control mutex.
    pub fn probe_once(&self) -> Vec<SupervisorEvent> {
        self.inner.probe_once()
    }

    /// Per-shard health, in shard order.
    #[must_use]
    pub fn health(&self) -> Vec<ShardHealth> {
        self.inner.health()
    }

    /// Point-in-time supervisor counters.
    #[must_use]
    pub fn metrics(&self) -> SupervisorMetrics {
        self.inner.metrics()
    }

    /// A cloneable view for the serve layer.
    #[must_use]
    pub fn handle(&self) -> SupervisorHandle {
        SupervisorHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The supervised fleet handle.
    #[must_use]
    pub fn fleet(&self) -> &FleetHandle {
        &self.inner.fleet
    }

    /// Stops and joins the probe thread (no-op in manual mode). Dropping
    /// the supervisor does the same.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("shards", &self.inner.fleet.shards())
            .field("threaded", &self.thread.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::{ShardedFixedWindow, SnapshotPolicy};

    /// Deterministic manual-mode options: unlimited restart rate, huge
    /// flap window (every death is consecutive), instant probation.
    fn chaos_options() -> SupervisorOptions {
        SupervisorOptions {
            restart_burst: 1_000,
            restart_refill: Duration::ZERO,
            quarantine_after: 3,
            quarantine_backoff: Duration::ZERO,
            flap_window: Duration::from_secs(3600),
            ..SupervisorOptions::default()
        }
    }

    fn fleet(shards: usize) -> FleetHandle {
        FleetHandle::new(ShardedFixedWindow::new(shards, 32, 2, 0.5))
    }

    #[test]
    fn options_are_validated() {
        let f = fleet(1);
        for bad in [
            SupervisorOptions {
                probe_interval: Duration::ZERO,
                ..SupervisorOptions::default()
            },
            SupervisorOptions {
                ping_timeout: Duration::ZERO,
                ..SupervisorOptions::default()
            },
            SupervisorOptions {
                restart_burst: 0,
                ..SupervisorOptions::default()
            },
            SupervisorOptions {
                quarantine_after: 0,
                ..SupervisorOptions::default()
            },
        ] {
            assert!(matches!(
                Supervisor::attach(f.clone(), bad),
                Err(StreamhistError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn healthy_fleet_probes_clean() {
        let f = fleet(3);
        let sup = Supervisor::attach(f, chaos_options()).unwrap();
        assert!(sup.probe_once().is_empty());
        assert!(sup.health().iter().all(|h| h.state == ShardState::Live));
        assert_eq!(sup.metrics().probes, 3);
        assert_eq!(sup.metrics().deaths, 0);
    }

    #[test]
    fn a_killed_shard_is_detected_restarted_and_recovers() {
        let f = fleet(2);
        for i in 0..40u64 {
            f.push(i, (i % 5) as f64).unwrap();
        }
        let sup = Supervisor::attach(f.clone(), chaos_options()).unwrap();
        f.inject_worker_panic(1).unwrap().unwrap();
        // Barrier on shard 0 only; shard 1's death lands when its worker
        // dequeues the panic, which the ping round-trip forces.
        let events = sup.probe_once();
        assert!(
            events.contains(&SupervisorEvent::Died { shard: 1 }),
            "{events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SupervisorEvent::Restarted { shard: 1, .. })),
            "{events:?}"
        );
        assert_eq!(sup.health()[1].state, ShardState::Recovering);
        let events = sup.probe_once();
        assert!(
            events.contains(&SupervisorEvent::Recovered { shard: 1 }),
            "{events:?}"
        );
        assert_eq!(sup.health()[1].state, ShardState::Live);
        // Service is restored: the global snapshot works again.
        assert!(f.snapshot_global().is_ok());
    }

    #[test]
    fn flapping_shard_is_quarantined_then_released_on_probation() {
        let f = fleet(2);
        let opts = chaos_options();
        let sup = Supervisor::attach(f.clone(), opts).unwrap();
        // Kill the shard as fast as the supervisor restarts it. Each
        // cycle: inject, probe (death + restart). After quarantine_after
        // deaths the next decision is quarantine instead of restart.
        for _ in 0..2 {
            f.inject_worker_panic(0).unwrap().unwrap();
            let events = sup.probe_once();
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, SupervisorEvent::Restarted { shard: 0, .. })),
                "{events:?}"
            );
        }
        f.inject_worker_panic(0).unwrap().unwrap();
        let events = sup.probe_once();
        assert!(
            events.contains(&SupervisorEvent::Quarantined { shard: 0 }),
            "{events:?}"
        );
        assert_eq!(sup.health()[0].state, ShardState::Quarantined);
        assert_eq!(sup.metrics().quarantines, 1);
        // Degraded snapshots keep serving around the quarantined shard.
        for i in 0..30u64 {
            let _ = f.push(i, 1.0);
        }
        // Probation: backoff is zero, so the next pass restarts it.
        let events = sup.probe_once();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SupervisorEvent::Probation { shard: 0, .. })),
            "{events:?}"
        );
        assert_eq!(sup.health()[0].state, ShardState::Recovering);
        let events = sup.probe_once();
        assert!(
            events.contains(&SupervisorEvent::Recovered { shard: 0 }),
            "{events:?}"
        );
    }

    #[test]
    fn empty_token_bucket_defers_restarts() {
        let f = fleet(1);
        let opts = SupervisorOptions {
            restart_burst: 1,
            // One token an hour: after the first restart the bucket stays
            // empty for the rest of the test.
            restart_refill: Duration::from_secs(3600),
            quarantine_after: 100,
            flap_window: Duration::ZERO,
            ..SupervisorOptions::default()
        };
        let sup = Supervisor::attach(f.clone(), opts).unwrap();
        f.inject_worker_panic(0).unwrap().unwrap();
        let events = sup.probe_once();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SupervisorEvent::Restarted { shard: 0, .. })),
            "{events:?}"
        );
        let _ = sup.probe_once(); // Recovering -> Live
        f.inject_worker_panic(0).unwrap().unwrap();
        let events = sup.probe_once();
        assert!(
            events.contains(&SupervisorEvent::RestartDeferred { shard: 0 }),
            "{events:?}"
        );
        assert_eq!(sup.health()[0].state, ShardState::Dead);
        assert!(sup.metrics().restarts_deferred >= 1);
    }

    #[test]
    fn threaded_supervisor_heals_without_manual_intervention() {
        let f = fleet(2);
        for i in 0..40u64 {
            f.push(i, (i % 5) as f64).unwrap();
        }
        let opts = SupervisorOptions {
            probe_interval: Duration::from_millis(5),
            flap_window: Duration::ZERO,
            ..SupervisorOptions::default()
        };
        let sup = Supervisor::start(f.clone(), opts).unwrap();
        f.inject_worker_panic(0).unwrap().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if f.snapshot_global().is_ok() && sup.health()[0].state == ShardState::Live {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "supervisor failed to heal in 10s"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(sup.metrics().restarts >= 1);
        sup.shutdown();
    }

    #[test]
    fn degraded_snapshot_of_a_quarantined_fleet_reports_exact_coverage() {
        let fleet = ShardedFixedWindow::new(2, 32, 2, 0.5);
        for s in 0..2usize {
            fleet
                .push_batch(s, (0..20).map(|i| f64::from(i % 4)).collect())
                .unwrap();
        }
        // Barriers so the accepted counters are exact.
        fleet.snapshot(0).unwrap();
        fleet.snapshot(1).unwrap();
        let f = FleetHandle::new(fleet);
        f.inject_worker_panic(1).unwrap().unwrap();
        // The failed ping doubles as the barrier that lets the injected
        // panic land before the degraded gather runs.
        assert!(!f.ping(1, Duration::from_millis(200)).unwrap());
        let (_, _, coverage) = f
            .snapshot_global_with(SnapshotPolicy::Degraded { min_coverage: 0.0 })
            .unwrap();
        assert_eq!(coverage.shards_included, 1);
        assert_eq!(coverage.shards_total, 2);
        assert_eq!(coverage.records_represented, 20);
        assert_eq!(coverage.records_total, 40);
        assert!((coverage.fraction() - 0.5).abs() < 1e-12);
        // Strict still refuses.
        assert!(f.snapshot_global().is_err());
        // And a min_coverage above the actual fraction refuses too.
        assert!(f
            .snapshot_global_with(SnapshotPolicy::Degraded { min_coverage: 0.75 })
            .is_err());
    }
}
