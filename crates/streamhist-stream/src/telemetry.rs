//! Bridge between the streaming summaries and the `streamhist-obs`
//! metrics registry.
//!
//! Three layers, with three different costs:
//!
//! 1. **Shard counters** (always compiled). The sharded layer's
//!    [`ShardMetrics`](crate::ShardMetrics) counters are
//!    [`streamhist_obs::Counter`]/[`streamhist_obs::Gauge`] cells. When a
//!    fleet is built with
//!    [`registry`](crate::ShardedFixedWindowBuilder::registry), those
//!    cells are *registered* — the registry and the `ShardMetrics` view
//!    read the **same atomics**, so the exposition reconciles with the
//!    per-shard metrics exactly, by construction (one source of truth, no
//!    double counting). Without a registry the cells are private and the
//!    behavior (and cost: one relaxed atomic op) is unchanged.
//! 2. **Kernel stats publication** ([`publish_kernel_stats`], always
//!    compiled). [`KernelStats`] is a point-in-time *view* (cumulative
//!    for online summaries, per-materialization for batch builds), so it
//!    publishes as **gauges** — republishing the same snapshot twice must
//!    not double anything, which counter semantics would.
//! 3. **Phase tracing** (`obs` cargo feature, default off). Span-style
//!    hooks inside the kernel and the sharded data plane: build/push
//!    duration, `HERROR` evaluation and binary-search probe counts,
//!    `CreateList` interval production and search depth, rebase and
//!    arena-compaction events, queue-wait time, checkpoint encode /
//!    restore duration, scatter dispatch latency. With the feature
//!    disabled every hook compiles to nothing (the `#[cfg]`'d code is
//!    absent, not dynamically skipped — the `bench_obs_overhead` bin
//!    enforces a ≤2% budget on the disabled path). With the feature
//!    enabled the hooks are live only after a tracer is installed — a
//!    thread-scoped [`KernelTracer`] via [`set_thread_kernel_tracer`] or
//!    [`ShardedFixedWindowBuilder::kernel_tracer`](crate::ShardedFixedWindowBuilder::kernel_tracer)
//!    (worker threads self-install), or the deprecated process-global
//!    [`install_kernel_tracer`] — and un-traced code pays one
//!    thread-local read and a branch.

use streamhist_obs::MetricsRegistry;

use crate::kernel::KernelStats;

/// Metric name prefix shared by everything this crate registers.
const PREFIX: &str = "streamhist";

/// Publishes a [`KernelStats`] snapshot into `registry` as gauges, under
/// `labels` (e.g. `&[("fleet", "f0"), ("shard", "3")]`, or empty for a
/// single unsharded summary).
///
/// Gauges, deliberately: a stats record is a point-in-time view — the
/// online summaries report store-lifetime cumulative work and the window
/// summaries report per-materialization work — so the registry must
/// *overwrite* on republish. Event-counting (monotone `_total` series)
/// is the tracing layer's job, where each event is observed exactly once
/// at its source.
pub fn publish_kernel_stats(
    registry: &MetricsRegistry,
    labels: &[(&str, &str)],
    stats: &KernelStats,
) {
    let clamp = |v: usize| i64::try_from(v).unwrap_or(i64::MAX);
    registry
        .gauge_with(
            &format!("{PREFIX}_kernel_queue_intervals"),
            "Total interval-queue entries across all levels (paper bound O((B/delta) log n)).",
            labels,
        )
        .set(clamp(stats.queue_sizes.iter().sum()));
    registry
        .gauge_with(
            &format!("{PREFIX}_kernel_herror_evals"),
            "HERROR evaluations in the reported stats window (cumulative online, per-build batch).",
            labels,
        )
        .set(clamp(stats.herror_evals));
    registry
        .gauge_with(
            &format!("{PREFIX}_kernel_binary_searches"),
            "CreateList binary searches in the reported stats window (one per interval created).",
            labels,
        )
        .set(clamp(stats.binary_searches));
    registry
        .float_gauge_with(
            &format!("{PREFIX}_kernel_herror"),
            "Current approximate HERROR[n, B] (the SSE the histogram approximately achieves).",
            labels,
        )
        .set(stats.herror);
    registry
        .gauge_with(
            &format!("{PREFIX}_kernel_arena_nodes"),
            "Boundary-chain arena occupancy (live chains plus uncollected garbage).",
            labels,
        )
        .set(clamp(stats.arena_nodes));
    registry
        .gauge_with(
            &format!("{PREFIX}_kernel_arena_peak"),
            "High-water mark of arena occupancy.",
            labels,
        )
        .set(clamp(stats.arena_peak));
    registry
        .gauge_with(
            &format!("{PREFIX}_kernel_compactions"),
            "Arena compactions in the reported stats window.",
            labels,
        )
        .set(clamp(stats.compactions));
    registry
        .gauge_with(
            &format!("{PREFIX}_kernel_rebases"),
            "Prefix-sum anchor rebases in the reported stats window.",
            labels,
        )
        .set(clamp(stats.rebases));
}

#[cfg(feature = "obs")]
#[allow(deprecated)]
pub use tracing::{install_kernel_tracer, kernel_tracer, set_thread_kernel_tracer, KernelTracer};

#[cfg(feature = "obs")]
pub(crate) use tracing::{active_kernel_tracer, FleetTiming};

#[cfg(feature = "obs")]
mod tracing {
    //! The `obs`-gated phase tracer the kernel hooks write through.
    //!
    //! The kernel is constructed deep inside summaries that have no
    //! registry parameter, so the hooks resolve their tracer out of band:
    //! first a **thread-scoped** handle (installed by
    //! [`set_thread_kernel_tracer`] — fleet worker threads install their
    //! fleet's tracer automatically when built with
    //! `ShardedFixedWindowBuilder::kernel_tracer`), then the deprecated
    //! process-global fallback ([`install_kernel_tracer`]). Thread scoping
    //! means two fleets in one process can report to different registries,
    //! which the global never could.

    use std::cell::RefCell;
    use std::sync::{Arc, OnceLock};

    use streamhist_obs::{Counter, LatencyRecorder, MetricsRegistry};

    use super::PREFIX;

    /// Registered handles for the kernel's phase-tracing hooks.
    #[derive(Debug, Clone)]
    pub struct KernelTracer {
        /// Batch materializations (`CreateList` rebuild + final minimization).
        pub builds: Counter,
        /// Wall-clock of each batch materialization.
        pub build_seconds: Arc<LatencyRecorder>,
        /// Online per-point DP steps.
        pub pushes: Counter,
        /// Wall-clock of each online DP step.
        pub push_seconds: Arc<LatencyRecorder>,
        /// `HERROR[c, k]` evaluations.
        pub evals: Counter,
        /// Binary-search probe evaluations inside `CreateList` (the
        /// `log n` factor of Theorem 1, observed directly).
        pub probes: Counter,
        /// Intervals produced by `CreateList` (queue entries).
        pub intervals: Counter,
        /// Arena compaction events.
        pub compactions: Counter,
        /// Prefix-store rebase events.
        pub rebases: Counter,
    }

    impl KernelTracer {
        /// Registers a tracer's metric families into `registry` and
        /// returns the handles. Two tracers built against the same
        /// registry share the same cells (registration is idempotent per
        /// family), so this is cheap to call per fleet. Install the
        /// result with
        /// [`kernel_tracer`](crate::ShardedFixedWindowBuilder::kernel_tracer)
        /// on a fleet builder (worker threads pick it up automatically) or
        /// [`set_thread_kernel_tracer`] on threads that push into
        /// summaries directly.
        #[must_use]
        pub fn new(registry: &MetricsRegistry) -> Self {
            Self::register(registry)
        }

        fn register(registry: &MetricsRegistry) -> Self {
            Self {
                builds: registry.counter(
                    &format!("{PREFIX}_kernel_builds_total"),
                    "Batch histogram materializations (CreateList rebuilds).",
                ),
                build_seconds: registry.latency(
                    &format!("{PREFIX}_kernel_build_seconds"),
                    "Batch materialization latency (GK-backed summary).",
                ),
                pushes: registry.counter(
                    &format!("{PREFIX}_kernel_pushes_total"),
                    "Online per-point DP steps.",
                ),
                push_seconds: registry.latency(
                    &format!("{PREFIX}_kernel_push_seconds"),
                    "Online per-point DP step latency (GK-backed summary).",
                ),
                evals: registry.counter(
                    &format!("{PREFIX}_kernel_herror_evals_total"),
                    "HERROR[c, k] evaluations.",
                ),
                probes: registry.counter(
                    &format!("{PREFIX}_kernel_search_probes_total"),
                    "Binary-search probe evaluations inside CreateList.",
                ),
                intervals: registry.counter(
                    &format!("{PREFIX}_kernel_intervals_total"),
                    "Intervals produced by CreateList.",
                ),
                compactions: registry.counter(
                    &format!("{PREFIX}_kernel_compactions_total"),
                    "Arena compaction events.",
                ),
                rebases: registry.counter(
                    &format!("{PREFIX}_kernel_rebases_total"),
                    "Prefix-sum anchor rebase events.",
                ),
            }
        }
    }

    /// Per-fleet latency recorders for the sharded data plane, registered
    /// when a fleet is built with a registry attached (see
    /// `ShardedFixedWindowBuilder::registry`). Fleet-level rather than
    /// per-shard to keep series cardinality low; the `fleet` label keeps
    /// concurrent fleets apart.
    #[derive(Debug)]
    pub(crate) struct FleetTiming {
        /// Time a command spends in a shard's bounded queue before the
        /// worker dequeues it.
        pub queue_wait: Arc<LatencyRecorder>,
        /// Duration of one checkpoint frame encode on a worker thread.
        pub checkpoint_encode: Arc<LatencyRecorder>,
        /// Duration of one checkpoint frame decode during respawn/restore.
        pub restore: Arc<LatencyRecorder>,
        /// Wall-clock of one `push_batch_scatter` dispatch loop.
        pub scatter: Arc<LatencyRecorder>,
        /// Wall-clock of one `snapshot_global` gather: the cross-shard
        /// snapshot barrier plus every histogram merge stage. Cache hits
        /// are not recorded (nothing is gathered).
        pub merge: Arc<LatencyRecorder>,
    }

    impl FleetTiming {
        pub(crate) fn register(registry: &MetricsRegistry, fleet: &str) -> Self {
            let labels = &[("fleet", fleet)];
            Self {
                queue_wait: registry.latency_with(
                    &format!("{PREFIX}_shard_queue_wait_seconds"),
                    "Time commands spend in a shard's bounded queue before the worker dequeues them.",
                    labels,
                ),
                checkpoint_encode: registry.latency_with(
                    &format!("{PREFIX}_shard_checkpoint_encode_seconds"),
                    "Checkpoint frame encode duration on the worker thread.",
                    labels,
                ),
                restore: registry.latency_with(
                    &format!("{PREFIX}_shard_restore_seconds"),
                    "Checkpoint frame decode duration during respawn/restore.",
                    labels,
                ),
                scatter: registry.latency_with(
                    &format!("{PREFIX}_shard_scatter_seconds"),
                    "push_batch_scatter dispatch-loop latency (all chunks enqueued).",
                    labels,
                ),
                merge: registry.latency_with(
                    &format!("{PREFIX}_fleet_merge_seconds"),
                    "snapshot_global gather latency (shard snapshots plus merge stages).",
                    labels,
                ),
            }
        }
    }

    static TRACER: OnceLock<Arc<KernelTracer>> = OnceLock::new();

    thread_local! {
        /// The thread-scoped tracer the kernel hooks prefer over the
        /// deprecated process-global one.
        static THREAD_TRACER: RefCell<Option<Arc<KernelTracer>>> = const { RefCell::new(None) };
    }

    /// Installs (or clears, with `None`) the calling thread's kernel
    /// tracer. Kernel hooks on this thread report to it from now on,
    /// taking precedence over any process-global tracer. Fleet worker
    /// threads call this themselves when the fleet is built with
    /// [`kernel_tracer`](crate::ShardedFixedWindowBuilder::kernel_tracer);
    /// call it directly only on threads that push into summaries without
    /// going through a fleet.
    pub fn set_thread_kernel_tracer(tracer: Option<Arc<KernelTracer>>) {
        THREAD_TRACER.with(|t| *t.borrow_mut() = tracer);
    }

    /// Installs the process-global kernel tracer, registering its metric
    /// families into `registry`. Idempotent: the first call wins and
    /// returns `true`; later calls are no-ops returning `false` (the
    /// hooks keep reporting to the first registry).
    #[deprecated(
        since = "0.1.0",
        note = "process-global state cannot serve two fleets; build the fleet with \
                `ShardedFixedWindowBuilder::kernel_tracer` (or call \
                `set_thread_kernel_tracer`) instead"
    )]
    pub fn install_kernel_tracer(registry: &MetricsRegistry) -> bool {
        let mut fresh = false;
        TRACER.get_or_init(|| {
            fresh = true;
            Arc::new(KernelTracer::register(registry))
        });
        fresh
    }

    /// The installed process-global tracer, if any.
    #[deprecated(
        since = "0.1.0",
        note = "reads only the deprecated process-global tracer; thread-scoped tracers \
                installed via `set_thread_kernel_tracer` are invisible to it"
    )]
    #[inline(always)]
    pub fn kernel_tracer() -> Option<&'static KernelTracer> {
        TRACER.get().map(Arc::as_ref)
    }

    /// The tracer the kernel hooks should report to right now: the
    /// thread-scoped tracer when one is installed, else the deprecated
    /// process-global one. This is the hooks' only entry point.
    #[inline(always)]
    pub(crate) fn active_kernel_tracer() -> Option<Arc<KernelTracer>> {
        if let Some(t) = THREAD_TRACER.with(|t| t.borrow().clone()) {
            return Some(t);
        }
        TRACER.get().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_stats_publish_as_gauges_and_overwrite() {
        let registry = MetricsRegistry::new();
        let stats = KernelStats {
            queue_sizes: vec![3, 4],
            herror_evals: 100,
            binary_searches: 9,
            herror: 2.5,
            arena_nodes: 40,
            arena_peak: 50,
            compactions: 1,
            rebases: 2,
        };
        publish_kernel_stats(&registry, &[("shard", "0")], &stats);
        // Republishing the identical snapshot must not double anything.
        publish_kernel_stats(&registry, &[("shard", "0")], &stats);
        let text = registry.text_exposition();
        let samples = streamhist_obs::parse_exposition(&text).expect("valid exposition");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing from exposition"))
                .value
        };
        assert_eq!(get("streamhist_kernel_queue_intervals"), 7.0);
        assert_eq!(get("streamhist_kernel_herror_evals"), 100.0);
        assert_eq!(get("streamhist_kernel_binary_searches"), 9.0);
        assert_eq!(get("streamhist_kernel_herror"), 2.5);
        assert_eq!(get("streamhist_kernel_arena_peak"), 50.0);
        assert_eq!(get("streamhist_kernel_rebases"), 2.0);
    }

    #[cfg(feature = "obs")]
    #[test]
    #[allow(deprecated)]
    fn tracer_install_is_idempotent() {
        let registry = MetricsRegistry::new();
        let first = install_kernel_tracer(&registry);
        let second = install_kernel_tracer(&registry);
        assert!(!second, "second install must be a no-op");
        // Whether `first` is true depends on test ordering within the
        // process (another test may have installed already); either way a
        // tracer must now be visible to the hooks.
        let _ = first;
        assert!(kernel_tracer().is_some());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn thread_tracer_takes_precedence_and_is_clearable() {
        use std::sync::Arc;
        let registry = MetricsRegistry::new();
        let tracer = Arc::new(KernelTracer::new(&registry));
        // Run on a fresh thread so another test's thread-local state (or
        // this one's) cannot leak across.
        std::thread::spawn(move || {
            set_thread_kernel_tracer(Some(Arc::clone(&tracer)));
            let active = super::tracing::active_kernel_tracer().expect("thread tracer installed");
            active.pushes.inc();
            assert_eq!(tracer.pushes.get(), 1, "hooks must hit the thread tracer");
            set_thread_kernel_tracer(None);
            // With the thread tracer cleared, only the process-global
            // fallback (whatever test ordering installed) remains.
            if let Some(fallback) = super::tracing::active_kernel_tracer() {
                fallback.pushes.inc();
                assert_eq!(tracer.pushes.get(), 1, "cleared tracer must not be hit");
            }
        })
        .join()
        .expect("tracer thread panicked");
    }
}
