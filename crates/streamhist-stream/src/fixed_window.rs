//! The fixed-window (sliding-window) algorithm — paper §4.5, Figure 5.
//!
//! The agglomerative queues cannot survive a window slide: "if we have a
//! good approximation by intervals of a function, it does not necessarily
//! approximate the same function if the function is shifted by a constant
//! amount" (paper §4.4, Figure 4). The fixed-window algorithm therefore
//! keeps only `O(1)`-amortized per-push state — a circular buffer plus the
//! sliding prefix sums `SUM'`/`SQSUM'` — and rebuilds the interval lists
//! *lazily and sparsely* whenever a histogram is requested, via the
//! recursive `CreateList[a, b, k]` procedure:
//!
//! * `CreateList` covers `[0, m)` with intervals inside which the
//!   `(≤k)`-bucket error `HERROR[·, k]` grows by at most `(1+δ)`; the next
//!   interval endpoint is located by **binary search** over the monotone
//!   `HERROR[·, k]`, so only `O(q · log n)` positions are ever evaluated
//!   (`q` = interval count), never the whole buffer.
//! * Each `HERROR[c, k]` evaluation minimizes over the level `k−1` interval
//!   endpoints (plus the single-bucket candidate, plus a clipped candidate
//!   for the interval straddling `c`).
//!
//! Total per materialization: `O((B³/ε²) log³ n)` (paper Theorem 1).
//!
//! Both steps live in the shared [`crate::kernel`] (batch mode), driven
//! here over a [`SlidingPrefixSums`] provider.

use crate::kernel::{Kernel, KernelStats, SnapshotCache};
use std::collections::VecDeque;
use std::sync::Arc;
use streamhist_core::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use streamhist_core::{
    BatchOutcome, Histogram, MergeableSummary, SlidingPrefixSums, StreamSummary, StreamhistError,
};

/// Sliding-window `(1+ε)`-approximate V-optimal histogram over the last
/// `n` stream points (paper §4.5).
///
/// [`push`](Self::push) is amortized `O(1)`;
/// [`histogram`](Self::histogram) runs `CreateList` and costs
/// `O((B³/ε²) log³ n)`. [`push_and_build`](Self::push_and_build) performs
/// both, which is the paper's per-point maintenance loop.
///
/// The summary is `Send + 'static`, so shards can run on worker threads —
/// [`crate::ShardedFixedWindow`] packages that pattern.
///
/// # Example
///
/// ```
/// use streamhist_stream::FixedWindowHistogram;
///
/// // Paper §4.5 Example 1: window of 8, B = 2, δ = 1.
/// let mut fw = FixedWindowHistogram::with_delta(8, 2, 1.0, 1.0);
/// for v in [100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0] {
///     fw.push(v);
/// }
/// // Window is now 0,0,0,1,1,1,1,1 — the optimum splits after the zeros.
/// let h = fw.histogram();
/// assert_eq!(h.bucket_ends(), vec![2, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct FixedWindowHistogram {
    b: usize,
    eps: f64,
    delta: f64,
    prefix: SlidingPrefixSums,
    raw: VecDeque<f64>,
    total_pushed: u64,
    /// Mutation counter: bumped on every state change, keys the snapshot
    /// cache (a cached build is valid exactly while this is unchanged).
    generation: u64,
    cache: SnapshotCache,
}

/// Validating builder for [`FixedWindowHistogram`] — the non-panicking
/// constructor surface.
///
/// ```
/// use streamhist_stream::FixedWindowHistogram;
///
/// let fw = FixedWindowHistogram::builder(128, 8, 0.1).build()?;
/// assert_eq!(fw.capacity(), 128);
/// assert!(FixedWindowHistogram::builder(0, 8, 0.1).build().is_err());
/// # Ok::<(), streamhist_core::StreamhistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FixedWindowBuilder {
    capacity: usize,
    b: usize,
    eps: f64,
    delta: Option<f64>,
    rebase_period: Option<usize>,
}

impl FixedWindowBuilder {
    /// Overrides the paper's default interval growth factor `δ = ε/(2B)`
    /// (ABL-DELTA ablation; the paper's Example 1 uses `delta = 1`).
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Overrides the prefix-sum rebase period (ABL-REBASE ablation; the
    /// paper rebases every `n` pushes, the default).
    #[must_use]
    pub fn rebase_period(mut self, period: usize) -> Self {
        self.rebase_period = Some(period);
        self
    }

    /// Validates every parameter and constructs the summary.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::InvalidParameter`] if `capacity == 0`,
    /// `b == 0`, `eps` is not positive, or an overridden `delta`/
    /// `rebase_period` is out of domain.
    pub fn build(self) -> Result<FixedWindowHistogram, StreamhistError> {
        if self.capacity == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "capacity",
                message: "window capacity must be positive",
            });
        }
        if self.b == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "b",
                message: "need at least one bucket",
            });
        }
        if self.eps.is_nan() || self.eps <= 0.0 {
            return Err(StreamhistError::InvalidParameter {
                param: "eps",
                message: "eps must be positive",
            });
        }
        let delta = self.delta.unwrap_or(self.eps / (2.0 * self.b as f64));
        if delta.is_nan() || delta <= 0.0 {
            return Err(StreamhistError::InvalidParameter {
                param: "delta",
                message: "delta must be positive",
            });
        }
        let period = self.rebase_period.unwrap_or(self.capacity);
        if period == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "rebase_period",
                message: "rebase period must be positive",
            });
        }
        Ok(FixedWindowHistogram {
            b: self.b,
            eps: self.eps,
            delta,
            prefix: SlidingPrefixSums::with_rebase_period(self.capacity, period),
            raw: VecDeque::with_capacity(self.capacity),
            total_pushed: 0,
            generation: 0,
            cache: SnapshotCache::default(),
        })
    }
}

impl FixedWindowHistogram {
    /// Starts a validating builder for a summary over a window of
    /// `capacity` points, at most `b` buckets, approximation `eps`, with
    /// the paper's `δ = ε/(2B)` unless overridden.
    #[must_use]
    pub fn builder(capacity: usize, b: usize, eps: f64) -> FixedWindowBuilder {
        FixedWindowBuilder {
            capacity,
            b,
            eps,
            delta: None,
            rebase_period: None,
        }
    }

    /// Creates a summary over a window of `capacity` points, at most `b`
    /// buckets, approximation `eps`, with the paper's `δ = ε/(2B)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `b == 0`, or `eps <= 0`; use
    /// [`builder`](Self::builder) for the validating, non-panicking form.
    #[must_use]
    pub fn new(capacity: usize, b: usize, eps: f64) -> Self {
        Self::builder(capacity, b, eps)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a summary with an explicit interval growth factor `delta`
    /// (ABL-DELTA ablation; the paper's Example 1 uses `delta = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `b == 0`, `eps <= 0`, or `delta <= 0`.
    #[must_use]
    pub fn with_delta(capacity: usize, b: usize, eps: f64, delta: f64) -> Self {
        Self::builder(capacity, b, eps)
            .delta(delta)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Overrides the prefix-sum rebase period (ABL-REBASE ablation; the
    /// paper rebases every `n` pushes).
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Self::new`] or if
    /// `rebase_period == 0`.
    #[must_use]
    pub fn with_rebase_period(capacity: usize, b: usize, eps: f64, rebase_period: usize) -> Self {
        Self::builder(capacity, b, eps)
            .rebase_period(rebase_period)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Window capacity `n`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.prefix.capacity()
    }

    /// The bucket budget `B`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The approximation parameter `ε`.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The interval growth factor `δ` in use.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of points currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Whether the window is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.raw.len() == self.prefix.capacity()
    }

    /// Total number of points ever pushed.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// The raw window contents, oldest first (used by harnesses to compute
    /// exact query answers).
    #[must_use]
    pub fn window(&self) -> Vec<f64> {
        self.raw.iter().copied().collect()
    }

    /// Consumes one point, evicting the oldest when full, or rejects it if
    /// it is not finite (NaN/infinity would silently corrupt the prefix
    /// sums and every later answer). On rejection the summary is unchanged
    /// and remains fully usable. Amortized `O(1)`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::NonFiniteValue`] if `v` is NaN or
    /// infinite.
    pub fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        if self.raw.len() == self.prefix.capacity() {
            self.raw.pop_front();
        }
        self.raw.push_back(v);
        #[cfg(feature = "obs")]
        let rebases0 = self.prefix.rebases();
        self.prefix.push(v);
        #[cfg(feature = "obs")]
        if let Some(t) = crate::telemetry::active_kernel_tracer() {
            t.rebases.inc_by((self.prefix.rebases() - rebases0) as u64);
        }
        self.total_pushed += 1;
        self.generation += 1;
        Ok(())
    }

    /// Consumes a whole slab of points — the batch ingestion fast path.
    ///
    /// Equivalent to calling [`try_push`](Self::try_push) per value **bit
    /// for bit** (window contents, `SUM'`/`SQSUM'` state and the rebase
    /// schedule all match), with partial-acceptance semantics: non-finite
    /// values are rejected and counted in the returned [`BatchOutcome`],
    /// ingestion continues with the next value.
    ///
    /// The speedup comes from hoisting per-point overhead out of the hot
    /// loop: each maximal run of finite values is appended to the prefix
    /// store in one pass ([`SlidingPrefixSums::push_slab`] — one rebase
    /// check per rebase-boundary chunk, running sums kept in registers)
    /// and the interval-list work is deferred entirely to the next
    /// [`histogram`](Self::histogram) call, i.e. one `CreateList` rebuild
    /// per slab instead of one per point in the paper's per-point
    /// maintenance loop.
    pub fn push_batch(&mut self, values: &[f64]) -> BatchOutcome {
        #[cfg(feature = "obs")]
        let rebases0 = self.prefix.rebases();
        let mut out = BatchOutcome::default();
        let cap = self.prefix.capacity();
        let mut rest = values;
        while !rest.is_empty() {
            let clean_len = rest
                .iter()
                .position(|v| !v.is_finite())
                .unwrap_or(rest.len());
            let (clean, tail) = rest.split_at(clean_len);
            if !clean.is_empty() {
                for &v in clean {
                    if self.raw.len() == cap {
                        self.raw.pop_front();
                    }
                    self.raw.push_back(v);
                }
                self.prefix.push_slab(clean);
                self.total_pushed += clean.len() as u64;
                out.accepted += clean.len();
            }
            match tail.split_first() {
                Some((_bad, after)) => {
                    out.rejected += 1;
                    rest = after;
                }
                None => rest = &[],
            }
        }
        if out.accepted > 0 {
            self.generation += 1;
        }
        #[cfg(feature = "obs")]
        if let Some(t) = crate::telemetry::active_kernel_tracer() {
            t.rebases.inc_by((self.prefix.rebases() - rebases0) as u64);
        }
        out
    }

    /// Restores the summary to its freshly-constructed state, keeping the
    /// configuration (capacity, `B`, `ε`, `δ`, rebase period).
    pub fn reset(&mut self) {
        let capacity = self.prefix.capacity();
        let period = self.prefix.rebase_period();
        self.prefix = SlidingPrefixSums::with_rebase_period(capacity, period);
        self.raw.clear();
        self.total_pushed = 0;
        self.generation += 1;
        self.cache.clear();
    }

    /// Consumes one point, evicting the oldest when full. Amortized `O(1)`.
    ///
    /// Thin panicking wrapper around [`try_push`](Self::try_push), for
    /// callers that control their input; serving paths (e.g. the sharded
    /// layer) use `try_push` and count rejects instead.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite (NaN/infinity would silently corrupt
    /// the prefix sums and every later answer).
    pub fn push(&mut self, v: f64) {
        if let Err(e) = self.try_push(v) {
            panic!("{e}");
        }
    }

    /// Pushes one point and materializes the histogram of the new window —
    /// the paper's per-point maintenance step.
    #[must_use]
    pub fn push_and_build(&mut self, v: f64) -> Arc<Histogram> {
        self.push(v);
        self.histogram()
    }

    /// Materializes the `(1+ε)`-approximate B-histogram of the current
    /// window contents — `O((B³/ε²) log³ n)` (paper Theorem 1) — or, when
    /// nothing changed since the last materialization, returns the cached
    /// snapshot as a cheap [`Arc`] clone.
    #[must_use]
    pub fn histogram(&self) -> Arc<Histogram> {
        self.histogram_with_stats().0
    }

    /// Like [`Self::histogram`], also returning build diagnostics (the
    /// diagnostics of the cached build when served from the cache).
    #[must_use]
    pub fn histogram_with_stats(&self) -> (Arc<Histogram>, KernelStats) {
        self.cache.get_or_build(self.generation, || {
            Kernel::build(&self.prefix, self.b, self.delta)
        })
    }
}

/// Aligned-window gather: `a.merge_from(&b)` materializes each operand's
/// `(1+ε)`-approximate histogram, concatenates the two **expansions** and
/// rebuilds `a` as a summary of that concatenation, with capacity equal to
/// the sum of the operands' capacities so nothing is evicted — exactly the
/// "concatenate bucket lists, re-optimize through the kernel" contract: a
/// subsequent [`histogram`](FixedWindowHistogram::histogram) call runs the
/// normal kernel DP over the gathered sequence and emits a `B`-bucket
/// global snapshot.
///
/// The merged window holds the operands' *approximations*, not their raw
/// points, so the global SSE picks up the gather term `G = Σ SSE(ĥᵢ,
/// windowᵢ)` on top of the kernel's `(1+ε)` factor — the bound is proved
/// in DESIGN.md §7.
///
/// `b`, `eps` and `delta` must agree pairwise; capacities may differ
/// (folding grows them), but the k-way
/// [`merge`](MergeableSummary::merge) additionally requires all parts to
/// share one window capacity — shard fleets are homogeneous, and a
/// capacity mismatch there means misrouted frames.
impl MergeableSummary for FixedWindowHistogram {
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
        if self.b != other.b {
            return Err(StreamhistError::InvalidParameter {
                param: "b",
                message: "merge requires identical bucket budgets",
            });
        }
        if self.eps != other.eps {
            return Err(StreamhistError::InvalidParameter {
                param: "eps",
                message: "merge requires identical eps",
            });
        }
        if self.delta != other.delta {
            return Err(StreamhistError::InvalidParameter {
                param: "delta",
                message: "merge requires identical delta",
            });
        }
        let capacity = self.capacity() + other.capacity();
        let mut merged = FixedWindowHistogram::builder(capacity, self.b, self.eps)
            .delta(self.delta)
            .build()?;
        merged.push_batch(&self.histogram().expand());
        merged.push_batch(&other.histogram().expand());
        // The merged summary logically continues both streams.
        merged.total_pushed = self.total_pushed + other.total_pushed;
        *self = merged;
        Ok(())
    }

    fn merge(parts: &[&Self]) -> Result<Self, StreamhistError> {
        let (first, rest) = parts
            .split_first()
            .ok_or(StreamhistError::InvalidParameter {
                param: "parts",
                message: "merge needs at least one summary",
            })?;
        if rest.iter().any(|p| p.capacity() != first.capacity()) {
            return Err(StreamhistError::InvalidParameter {
                param: "capacity",
                message: "merge requires identical window capacities",
            });
        }
        let mut merged = (*first).clone();
        for part in rest {
            merged.merge_from(part)?;
        }
        Ok(merged)
    }
}

impl Checkpoint for FixedWindowHistogram {
    /// Serializes configuration, the raw buffered window, and the
    /// **complete** rebased prefix state — including the rebase phase
    /// (`since_rebase`), because rebase timing affects the floating-point
    /// rounding of later prefix entries. Interval lists are *not* stored:
    /// the batch kernel rebuilds them deterministically at the next
    /// materialization, so a restored summary is bit-identical to one that
    /// never crashed.
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::FIXED_WINDOW);
        w.put_usize(self.prefix.capacity());
        w.put_usize(self.b);
        w.put_f64(self.eps);
        w.put_f64(self.delta);
        w.put_usize(self.prefix.rebase_period());
        w.put_varint(self.total_pushed);
        w.put_varint(self.generation);
        let (head, cum) = self.prefix.raw_frame();
        w.put_pair(head);
        w.put_usize(cum.len());
        for &p in &cum {
            w.put_pair(p);
        }
        w.put_usize(self.prefix.since_rebase());
        w.put_usize(self.prefix.rebases());
        w.put_usize(self.raw.len());
        for &v in &self.raw {
            w.put_f64(v);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        let mut r = FrameReader::open(bytes, tag::FIXED_WINDOW)?;
        let capacity = r.get_usize()?;
        let b = r.get_usize()?;
        let eps = r.get_f64()?;
        let delta = r.get_f64()?;
        let rebase_period = r.get_usize()?;
        if b == 0 {
            return Err(corrupt("need at least one bucket"));
        }
        if eps <= 0.0 {
            return Err(corrupt("eps must be positive"));
        }
        if delta <= 0.0 {
            return Err(corrupt("delta must be positive"));
        }
        let total_pushed = r.get_varint()?;
        let generation = r.get_varint()?;
        let head = r.get_pair()?;
        let n = r.get_count(16)?;
        let mut cum = Vec::with_capacity(n);
        for _ in 0..n {
            cum.push(r.get_pair()?);
        }
        let since_rebase = r.get_usize()?;
        let rebases = r.get_usize()?;
        let raw_len = r.get_count(8)?;
        if raw_len != n {
            return Err(corrupt("window and prefix store disagree on length"));
        }
        if total_pushed < raw_len as u64 {
            return Err(corrupt("window holds more points than were pushed"));
        }
        let mut raw = VecDeque::with_capacity(capacity);
        for _ in 0..raw_len {
            raw.push_back(r.get_f64()?);
        }
        r.finish()?;
        let prefix = SlidingPrefixSums::from_checkpoint_state(
            capacity,
            rebase_period,
            head,
            cum,
            since_rebase,
            rebases,
        )?;
        Ok(Self {
            b,
            eps,
            delta,
            prefix,
            raw,
            total_pushed,
            generation,
            cache: SnapshotCache::default(),
        })
    }
}

impl StreamSummary for FixedWindowHistogram {
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        FixedWindowHistogram::try_push(self, v)
    }

    fn push(&mut self, v: f64) {
        FixedWindowHistogram::push(self, v);
    }

    fn push_batch(&mut self, values: &[f64]) -> BatchOutcome {
        FixedWindowHistogram::push_batch(self, values)
    }

    /// Window occupancy (`<= capacity`), not the total pushed.
    fn len(&self) -> usize {
        FixedWindowHistogram::len(self)
    }

    fn reset(&mut self) {
        FixedWindowHistogram::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the full paper Example 1 (§4.5) and checks the interval
    /// structure and final histogram against the worked values.
    #[test]
    fn paper_example_1_interval_structure() {
        let mut fw = FixedWindowHistogram::with_delta(8, 2, 1.0, 1.0);
        for v in [100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0] {
            fw.push(v);
        }
        // Window = 100,0,0,0,1,1,1,1. Paper: level-1 intervals (1,1),(2,8)
        // in 1-based indexing -> endpoints {0, 7} 0-based.
        let (h, stats) = fw.histogram_with_stats();
        assert_eq!(stats.queue_sizes, vec![2]);
        // Optimal B=2 split isolates the 100; second bucket is 0,0,0,1,1,1,1
        // with mean 4/7, so the optimal SSE is 84/49.
        assert_eq!(h.bucket_ends(), vec![0, 7]);
        assert!((stats.herror - 84.0 / 49.0).abs() < 1e-9);

        // Slide: drop the 100, insert a trailing 1.
        fw.push(1.0);
        let (h2, stats2) = fw.histogram_with_stats();
        // Paper: endpoints become 3, 6, 8 (1-based) -> {2, 5, 7} 0-based,
        // i.e. intervals (1,3),(4,6),(7,8).
        assert_eq!(stats2.queue_sizes, vec![3]);
        // "we will minimize over the partition being at 3 or 6 and compute
        // the right solution to be (1,3),(4,8)" -> 0-based ends {2, 7}.
        assert_eq!(h2.bucket_ends(), vec![2, 7]);
        assert_eq!(stats2.herror, 0.0);
        let window = fw.window();
        assert!(h2.sse(&window) < 1e-12);
    }

    #[test]
    fn empty_and_singleton_windows() {
        let mut fw = FixedWindowHistogram::new(4, 3, 0.1);
        assert!(fw.is_empty());
        assert_eq!(fw.histogram().domain_len(), 0);
        fw.push(5.0);
        let h = fw.histogram();
        assert_eq!(h.domain_len(), 1);
        assert_eq!(h.point(0), 5.0);
    }

    #[test]
    fn window_slides_and_domain_is_capped() {
        let mut fw = FixedWindowHistogram::new(4, 2, 0.5);
        for i in 0..10 {
            fw.push(i as f64);
            assert_eq!(fw.len(), (i + 1).min(4));
            assert_eq!(fw.histogram().domain_len(), fw.len());
        }
        assert_eq!(fw.window(), vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(fw.total_pushed(), 10);
    }

    #[test]
    fn b_one_returns_window_mean() {
        let mut fw = FixedWindowHistogram::new(4, 1, 0.5);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            fw.push(v);
        }
        let h = fw.histogram();
        assert_eq!(h.num_buckets(), 1);
        assert!((h.buckets()[0].height - 3.5).abs() < 1e-12); // mean of 2..=5
    }

    #[test]
    fn herror_upper_bounds_realized_sse() {
        let data: Vec<f64> = (0..300).map(|i| ((i * 13 + 7) % 31) as f64).collect();
        let mut fw = FixedWindowHistogram::new(64, 4, 0.2);
        for (i, &v) in data.iter().enumerate() {
            fw.push(v);
            if i % 17 == 0 {
                let (h, stats) = fw.histogram_with_stats();
                let realized = h.sse(&fw.window());
                assert!(
                    realized <= stats.herror + 1e-6,
                    "i={i}: realized {realized} > herror {}",
                    stats.herror
                );
            }
        }
    }

    #[test]
    fn respects_bucket_budget_across_slides() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 29) % 17) as f64).collect();
        let mut fw = FixedWindowHistogram::new(32, 5, 0.1);
        for &v in &data {
            let h = fw.push_and_build(v);
            assert!(h.num_buckets() <= 5);
            assert_eq!(h.domain_len(), fw.len());
        }
    }

    #[test]
    fn exact_on_piecewise_constant_window() {
        // Window with at most 3 level regimes must be represented exactly
        // when B >= 3.
        let mut fw = FixedWindowHistogram::new(12, 3, 0.1);
        for v in [5.0, 5.0, 5.0, 9.0, 9.0, 9.0, 9.0, 2.0, 2.0, 2.0, 2.0, 2.0] {
            fw.push(v);
        }
        let h = fw.histogram();
        assert!(h.sse(&fw.window()) < 1e-12);
        assert_eq!(h.bucket_ends(), vec![2, 6, 11]);
    }

    #[test]
    fn build_stats_report_work_done() {
        let mut fw = FixedWindowHistogram::new(64, 3, 0.2);
        for i in 0..64 {
            fw.push(((i * 7) % 23) as f64);
        }
        let (_, stats) = fw.histogram_with_stats();
        assert_eq!(stats.queue_sizes.len(), 2);
        assert!(stats.queue_sizes.iter().all(|&q| q >= 1));
        assert!(stats.binary_searches >= stats.queue_sizes.iter().sum::<usize>());
        assert!(stats.herror_evals > 0);
        assert!(stats.arena_nodes > 0);
        assert_eq!(stats.arena_peak, stats.arena_nodes); // batch mode never compacts
        assert_eq!(stats.compactions, 0);
    }

    #[test]
    fn rebase_period_does_not_change_results_and_is_counted() {
        let data: Vec<f64> = (0..150).map(|i| ((i * 11 + 3) % 19) as f64).collect();
        let mut a = FixedWindowHistogram::new(32, 3, 0.2);
        let mut b = FixedWindowHistogram::with_rebase_period(32, 3, 0.2, 5);
        for &v in &data {
            let ha = a.push_and_build(v);
            let hb = b.push_and_build(v);
            assert_eq!(ha.bucket_ends(), hb.bucket_ends());
        }
        let (_, stats) = b.histogram_with_stats();
        assert!(stats.rebases > 0, "short rebase period must have fired");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FixedWindowHistogram::new(0, 2, 0.1);
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        assert!(FixedWindowHistogram::builder(64, 4, 0.1).build().is_ok());
        for (builder, param) in [
            (FixedWindowHistogram::builder(0, 4, 0.1), "capacity"),
            (FixedWindowHistogram::builder(64, 0, 0.1), "b"),
            (FixedWindowHistogram::builder(64, 4, 0.0), "eps"),
            (FixedWindowHistogram::builder(64, 4, -1.0), "eps"),
            (FixedWindowHistogram::builder(64, 4, f64::NAN), "eps"),
            (
                FixedWindowHistogram::builder(64, 4, 0.1).delta(0.0),
                "delta",
            ),
            (
                FixedWindowHistogram::builder(64, 4, 0.1).rebase_period(0),
                "rebase_period",
            ),
        ] {
            match builder.build() {
                Err(StreamhistError::InvalidParameter { param: p, .. }) => {
                    assert_eq!(p, param);
                }
                other => panic!("expected InvalidParameter for {param}, got {other:?}"),
            }
        }
    }

    #[test]
    fn builder_matches_positional_constructors() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 7 + 3) % 23) as f64).collect();
        let mut a = FixedWindowHistogram::new(32, 3, 0.2);
        let mut b = FixedWindowHistogram::builder(32, 3, 0.2)
            .build()
            .expect("valid parameters");
        for &v in &data {
            a.push(v);
            b.push(v);
        }
        assert_eq!(*a.histogram(), *b.histogram());
        assert_eq!(a.delta(), b.delta());
    }

    #[test]
    fn push_batch_matches_per_point_with_nan_rejection() {
        let data: Vec<f64> = (0..300).map(|i| ((i * 13 + 7) % 31) as f64).collect();
        let mut seq = FixedWindowHistogram::new(32, 3, 0.2);
        let mut bat = FixedWindowHistogram::new(32, 3, 0.2);
        for &v in &data {
            seq.push(v);
        }
        let mut slab: Vec<f64> = data.clone();
        slab.insert(50, f64::NAN);
        slab.insert(200, f64::NEG_INFINITY);
        let out = bat.push_batch(&slab);
        assert_eq!(out.accepted, data.len());
        assert_eq!(out.rejected, 2);
        assert_eq!(seq.window(), bat.window());
        assert_eq!(seq.total_pushed(), bat.total_pushed());
        let (ha, sa) = seq.histogram_with_stats();
        let (hb, sb) = bat.histogram_with_stats();
        assert_eq!(*ha, *hb);
        assert_eq!(sa.herror.to_bits(), sb.herror.to_bits());
    }

    #[test]
    fn snapshot_cache_reuses_build_until_mutation() {
        let mut fw = FixedWindowHistogram::new(16, 3, 0.2);
        fw.push_batch(&(0..20).map(|i| (i % 7) as f64).collect::<Vec<_>>());
        let h1 = fw.histogram();
        let h2 = fw.histogram();
        assert!(Arc::ptr_eq(&h1, &h2), "idle queries share one build");
        fw.push(3.0);
        let h3 = fw.histogram();
        assert!(!Arc::ptr_eq(&h1, &h3), "mutation invalidates the cache");
    }

    #[test]
    fn reset_restores_fresh_state_and_keeps_config() {
        let mut fw = FixedWindowHistogram::with_rebase_period(8, 3, 0.2, 4);
        fw.push_batch(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let before = fw.histogram();
        assert_eq!(before.domain_len(), 5);
        fw.reset();
        assert!(fw.is_empty());
        assert_eq!(fw.total_pushed(), 0);
        assert_eq!(fw.histogram().domain_len(), 0);
        // Refilling after reset behaves exactly like a fresh instance.
        let mut fresh = FixedWindowHistogram::with_rebase_period(8, 3, 0.2, 4);
        let data: Vec<f64> = (0..20).map(|i| ((i * 5 + 1) % 9) as f64).collect();
        fw.push_batch(&data);
        fresh.push_batch(&data);
        assert_eq!(*fw.histogram(), *fresh.histogram());
    }

    #[test]
    fn stream_summary_trait_drives_the_fast_path() {
        fn ingest<S: StreamSummary>(s: &mut S, values: &[f64]) -> BatchOutcome {
            s.push_batch(values)
        }
        let mut fw = FixedWindowHistogram::new(8, 2, 0.5);
        let out = ingest(&mut fw, &[1.0, f64::NAN, 2.0]);
        assert_eq!(out.accepted, 2);
        assert_eq!(out.rejected, 1);
        assert_eq!(StreamSummary::len(&fw), 2);
        StreamSummary::reset(&mut fw);
        assert!(StreamSummary::is_empty(&fw));
    }

    #[test]
    fn merge_concatenates_window_approximations() {
        // Piecewise-constant parts merge losslessly: each part's histogram
        // is exact, so the gather term vanishes.
        let mut a = FixedWindowHistogram::new(4, 2, 0.1);
        a.push_batch(&[5.0, 5.0, 9.0, 9.0]);
        let mut b = FixedWindowHistogram::new(4, 2, 0.1);
        b.push_batch(&[2.0, 2.0, 2.0]);
        a.merge_from(&b).expect("compatible");
        assert_eq!(a.capacity(), 8);
        assert_eq!(a.len(), 7);
        assert_eq!(a.window(), vec![5.0, 5.0, 9.0, 9.0, 2.0, 2.0, 2.0]);
        assert_eq!(a.total_pushed(), 7);
        // Still a live summary: it keeps ingesting and materializing.
        a.push(2.0);
        let h = a.histogram();
        assert_eq!(h.domain_len(), 8);
        assert!(h.num_buckets() <= 2);
    }

    #[test]
    fn merge_rejects_each_config_mismatch() {
        let base = || {
            let mut fw = FixedWindowHistogram::new(8, 3, 0.2);
            fw.push_batch(&[1.0, 2.0]);
            fw
        };
        for (other, param) in [
            (FixedWindowHistogram::new(8, 4, 0.2), "b"),
            (FixedWindowHistogram::new(8, 3, 0.3), "eps"),
            (FixedWindowHistogram::with_delta(8, 3, 0.2, 1.0), "delta"),
        ] {
            let mut a = base();
            let err = a.merge_from(&other).expect_err("mismatch");
            assert!(
                matches!(err, StreamhistError::InvalidParameter { param: p, .. } if p == param),
                "expected rejection on {param}"
            );
            assert_eq!(a.len(), 2, "receiver unchanged after {param} rejection");
        }
        // The k-way combinator additionally rejects capacity mismatches.
        let a = base();
        let wider = FixedWindowHistogram::new(16, 3, 0.2);
        let err = MergeableSummary::merge(&[&a, &wider]).expect_err("capacity");
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter {
                param: "capacity",
                ..
            }
        ));
    }

    #[test]
    fn kway_merge_matches_sequential_folds() {
        let parts: Vec<FixedWindowHistogram> = (0..3)
            .map(|s| {
                let mut fw = FixedWindowHistogram::new(8, 3, 0.2);
                let data: Vec<f64> = (0..8).map(|i| ((i * 7 + s * 3) % 11) as f64).collect();
                fw.push_batch(&data);
                fw
            })
            .collect();
        let refs: Vec<&FixedWindowHistogram> = parts.iter().collect();
        let merged = MergeableSummary::merge(&refs).expect("homogeneous parts");
        assert_eq!(merged.capacity(), 24);
        assert_eq!(merged.len(), 24);
        let mut fold = parts[0].clone();
        fold.merge_from(&parts[1]).expect("fold 1");
        fold.merge_from(&parts[2]).expect("fold 2");
        assert_eq!(merged.window(), fold.window());
        assert_eq!(*merged.histogram(), *fold.histogram());
    }

    #[test]
    fn try_push_rejects_non_finite_and_leaves_summary_usable() {
        let mut fw = FixedWindowHistogram::new(4, 2, 0.5);
        fw.push(1.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                fw.try_push(bad),
                Err(StreamhistError::NonFiniteValue { .. })
            ));
        }
        // Rejections leave no trace: the window and counters are unchanged
        // and further pushes behave normally.
        assert_eq!(fw.total_pushed(), 1);
        assert_eq!(fw.window(), vec![1.0]);
        fw.try_push(3.0).expect("finite value accepted");
        assert_eq!(fw.window(), vec![1.0, 3.0]);
        assert_eq!(fw.histogram().domain_len(), 2);
    }
}
