//! The naive sliding-window baseline: re-run the exact `O(n²B)` dynamic
//! program on the buffered window for every histogram request.
//!
//! This is the strawman of paper §3: "a naive application of the optimal
//! histogram construction algorithm to each subsequence of length n in the
//! stream will result in an incremental algorithm that requires O(n²) time
//! per new data item" (with the `O(n)`-space prefix-sum trick). It provides
//! the exact-optimal accuracy reference for the sliding-window experiments
//! and the time baseline the fixed-window algorithm is measured against.

// DP split-point loops index parallel arrays.
#![allow(clippy::needless_range_loop)]

use crate::kernel::SnapshotCache;
use std::collections::VecDeque;
use std::sync::Arc;
use streamhist_core::{Histogram, PrefixSums, StreamSummary, StreamhistError};

/// Sliding-window *exact* V-optimal histograms via per-request DP.
#[derive(Debug)]
pub struct NaiveSlidingWindow {
    capacity: usize,
    b: usize,
    window: VecDeque<f64>,
    generation: u64,
    cache: SnapshotCache,
}

impl NaiveSlidingWindow {
    /// Creates an empty window of `capacity` points with bucket budget `b`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `b == 0`.
    #[must_use]
    pub fn new(capacity: usize, b: usize) -> Self {
        Self::builder(capacity, b)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Starts a validating builder (the non-panicking constructor surface,
    /// mirroring the approximate summaries).
    #[must_use]
    pub fn builder(capacity: usize, b: usize) -> NaiveSlidingWindowBuilder {
        NaiveSlidingWindowBuilder { capacity, b }
    }

    /// Window capacity `n`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The bucket budget `B`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// Number of points currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The raw window contents, oldest first.
    #[must_use]
    pub fn window(&self) -> Vec<f64> {
        self.window.iter().copied().collect()
    }

    /// Consumes one point, evicting the oldest when full, or rejects it if
    /// it is not finite. `O(1)`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::NonFiniteValue`] if `v` is NaN or
    /// infinite.
    pub fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(v);
        self.generation += 1;
        Ok(())
    }

    /// Consumes one point, evicting the oldest when full. `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite.
    pub fn push(&mut self, v: f64) {
        if let Err(e) = self.try_push(v) {
            panic!("{e}");
        }
    }

    /// Restores the summary to an empty window, keeping the configuration.
    pub fn reset(&mut self) {
        self.window.clear();
        self.generation += 1;
        self.cache.clear();
    }

    /// Runs the exact DP on the buffered window — `O(n²B)` — or returns
    /// the cached solution as a cheap [`Arc`] clone when nothing changed
    /// since the last request.
    #[must_use]
    pub fn histogram(&self) -> Arc<Histogram> {
        let data = self.window();
        // Inline the optimal DP rather than depending on streamhist-optimal,
        // keeping the crate graph acyclic (optimal is a dev-dependency for
        // the approximation-ratio tests).
        self.cache
            .get_or_build(self.generation, || {
                (optimal_dp(&data, self.b), crate::KernelStats::default())
            })
            .0
    }

    /// Pushes one point and re-solves the window exactly.
    #[must_use]
    pub fn push_and_build(&mut self, v: f64) -> Arc<Histogram> {
        self.push(v);
        self.histogram()
    }
}

/// Validating builder for [`NaiveSlidingWindow`].
#[derive(Debug, Clone)]
pub struct NaiveSlidingWindowBuilder {
    capacity: usize,
    b: usize,
}

impl NaiveSlidingWindowBuilder {
    /// Validates the parameters and constructs the baseline window.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::InvalidParameter`] if `capacity == 0` or
    /// `b == 0`.
    pub fn build(self) -> Result<NaiveSlidingWindow, StreamhistError> {
        if self.capacity == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "capacity",
                message: "window capacity must be positive",
            });
        }
        if self.b == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "b",
                message: "need at least one bucket",
            });
        }
        Ok(NaiveSlidingWindow {
            capacity: self.capacity,
            b: self.b,
            window: VecDeque::with_capacity(self.capacity),
            generation: 0,
            cache: SnapshotCache::default(),
        })
    }
}

impl StreamSummary for NaiveSlidingWindow {
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        NaiveSlidingWindow::try_push(self, v)
    }

    fn push(&mut self, v: f64) {
        NaiveSlidingWindow::push(self, v);
    }

    /// Window occupancy (`<= capacity`).
    fn len(&self) -> usize {
        NaiveSlidingWindow::len(self)
    }

    fn reset(&mut self) {
        NaiveSlidingWindow::reset(self);
    }
}

/// Exact V-optimal DP (at-most-`b` buckets), value + reconstruction.
///
/// Identical in spirit to `streamhist_optimal::optimal_histogram`; kept
/// private here to avoid a dependency cycle. The cross-crate equivalence is
/// asserted by the property tests in `tests/approximation.rs`.
fn optimal_dp(data: &[f64], b: usize) -> Histogram {
    if data.is_empty() {
        return Histogram::new(0, Vec::new()).expect("empty domain is always valid");
    }
    let n = data.len();
    let b = b.min(n);
    let prefix = PrefixSums::new(data);
    let mut herror: Vec<f64> = (0..=n)
        .map(|j| {
            if j == 0 {
                0.0
            } else {
                prefix.sqerror(0, j - 1)
            }
        })
        .collect();
    let mut back = vec![vec![0usize; n + 1]; b];
    for k in 1..b {
        let prev = herror.clone();
        for j in 1..=n {
            let mut best = prev[j];
            let mut best_i = back[k - 1][j];
            for i in 1..j {
                let cand = prev[i] + prefix.sqerror(i, j - 1);
                if cand < best {
                    best = cand;
                    best_i = i;
                }
            }
            herror[j] = best;
            back[k][j] = best_i;
        }
    }
    let mut ends = Vec::with_capacity(b);
    let mut j = n;
    let mut k = b - 1;
    loop {
        ends.push(j - 1);
        let i = back[k][j];
        if i == 0 {
            break;
        }
        j = i;
        k = k.saturating_sub(1);
    }
    ends.reverse();
    Histogram::from_bucket_ends(data, &ends)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_exact_optimum_per_window() {
        let data: Vec<f64> = (0..40).map(|i| ((i * 7) % 11) as f64).collect();
        let mut w = NaiveSlidingWindow::new(8, 3);
        for &v in &data {
            let h = w.push_and_build(v);
            assert!(h.num_buckets() <= 3);
            assert_eq!(h.domain_len(), w.len());
        }
    }

    #[test]
    fn perfect_fit_when_b_at_least_regimes() {
        let mut w = NaiveSlidingWindow::new(6, 2);
        for v in [1.0, 1.0, 1.0, 8.0, 8.0, 8.0] {
            w.push(v);
        }
        let h = w.histogram();
        assert_eq!(h.bucket_ends(), vec![2, 5]);
        assert!(h.sse(&w.window()) < 1e-12);
    }

    #[test]
    fn empty_window_histogram() {
        let w = NaiveSlidingWindow::new(4, 2);
        assert_eq!(w.histogram().domain_len(), 0);
    }
}
