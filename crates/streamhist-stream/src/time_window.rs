//! Time-based fixed windows: "maintain information and perform analysis
//! over specific temporal windows of interest, say over the latest T
//! seconds of data produced" (paper §1, Figure 1(b) description).
//!
//! The count-based [`crate::FixedWindowHistogram`] assumes one arrival per
//! time unit (the paper's simplification, footnote 2: "without loss of
//! generality we assume that a new point arrives at each time step, other
//! possibilities exist ... and indeed our framework can incorporate those
//! as well"). This variant incorporates them: points carry explicit
//! timestamps, the window holds every point newer than `now − duration`,
//! and any number of points may enter or leave per observation. The
//! histogram construction is the same `CreateList` procedure, run over a
//! [`GrowableWindowSums`] whose eviction is timestamp-driven.

use crate::kernel::{Kernel, KernelStats, SnapshotCache};
use std::collections::VecDeque;
use std::sync::Arc;
use streamhist_core::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use streamhist_core::{
    BatchOutcome, GrowableWindowSums, Histogram, MergeableSummary, StreamSummary, StreamhistError,
};

/// `(1+ε)`-approximate V-optimal histogram over all points observed within
/// the last `duration` time units.
///
/// # Example
///
/// ```
/// use streamhist_stream::TimeWindowHistogram;
///
/// let mut tw = TimeWindowHistogram::new(10, 4, 0.1);
/// // Bursty arrivals: several points can share or skip timestamps.
/// for (ts, v) in [(0, 5.0), (0, 5.0), (3, 9.0), (12, 1.0), (13, 1.0)] {
///     tw.push_at(ts, v);
/// }
/// // At time 13 the window [4, 13] holds only the points at ts 12 and 13.
/// assert_eq!(tw.len(), 2);
/// let h = tw.histogram();
/// assert_eq!(h.domain_len(), 2);
/// assert_eq!(h.point(0), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWindowHistogram {
    duration: u64,
    b: usize,
    eps: f64,
    delta: f64,
    sums: GrowableWindowSums,
    /// Parallel deques of timestamps and raw values, oldest first.
    times: VecDeque<u64>,
    raw: VecDeque<f64>,
    now: Option<u64>,
    /// Mutation counter keying the snapshot cache (bumped on accepted
    /// pushes and on evictions, the two things that change the window).
    generation: u64,
    cache: SnapshotCache,
}

/// Validating builder for [`TimeWindowHistogram`] — the non-panicking
/// constructor surface.
#[derive(Debug, Clone)]
pub struct TimeWindowBuilder {
    duration: u64,
    b: usize,
    eps: f64,
    delta: Option<f64>,
}

impl TimeWindowBuilder {
    /// Overrides the paper's default interval growth factor `δ = ε/(2B)`.
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Validates every parameter and constructs the summary.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::InvalidParameter`] if `duration == 0`,
    /// `b == 0`, `eps` is not positive, or an overridden `delta` is not
    /// positive.
    pub fn build(self) -> Result<TimeWindowHistogram, StreamhistError> {
        if self.duration == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "duration",
                message: "window duration must be positive",
            });
        }
        if self.b == 0 {
            return Err(StreamhistError::InvalidParameter {
                param: "b",
                message: "need at least one bucket",
            });
        }
        if self.eps.is_nan() || self.eps <= 0.0 {
            return Err(StreamhistError::InvalidParameter {
                param: "eps",
                message: "eps must be positive",
            });
        }
        let delta = self.delta.unwrap_or(self.eps / (2.0 * self.b as f64));
        if delta.is_nan() || delta <= 0.0 {
            return Err(StreamhistError::InvalidParameter {
                param: "delta",
                message: "delta must be positive",
            });
        }
        Ok(TimeWindowHistogram {
            duration: self.duration,
            b: self.b,
            eps: self.eps,
            delta,
            sums: GrowableWindowSums::new(1024),
            times: VecDeque::new(),
            raw: VecDeque::new(),
            now: None,
            generation: 0,
            cache: SnapshotCache::default(),
        })
    }
}

impl TimeWindowHistogram {
    /// Starts a validating builder over the trailing `duration` time units
    /// with at most `b` buckets and approximation `eps`.
    #[must_use]
    pub fn builder(duration: u64, b: usize, eps: f64) -> TimeWindowBuilder {
        TimeWindowBuilder {
            duration,
            b,
            eps,
            delta: None,
        }
    }

    /// Creates a summary over the trailing `duration` time units with at
    /// most `b` buckets and approximation `eps` (`δ = ε/(2B)`).
    ///
    /// # Panics
    ///
    /// Panics if `duration == 0`, `b == 0`, or `eps <= 0`; use
    /// [`builder`](Self::builder) for the validating, non-panicking form.
    #[must_use]
    pub fn new(duration: u64, b: usize, eps: f64) -> Self {
        Self::builder(duration, b, eps)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The window duration `T`.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// The bucket budget `B`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The approximation parameter `ε`.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of points currently inside the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The latest observed timestamp, if any.
    #[must_use]
    pub fn now(&self) -> Option<u64> {
        self.now
    }

    /// The raw window contents, oldest first.
    #[must_use]
    pub fn window(&self) -> Vec<f64> {
        self.raw.iter().copied().collect()
    }

    /// The `(timestamp, value)` pairs currently in the window.
    #[must_use]
    pub fn window_with_times(&self) -> Vec<(u64, f64)> {
        self.times
            .iter()
            .copied()
            .zip(self.raw.iter().copied())
            .collect()
    }

    /// Pushes a point at time `ts`, or rejects it if the value is not
    /// finite or the timestamp moves backwards. On rejection the summary
    /// (including its clock) is unchanged and remains fully usable.
    ///
    /// Timestamps must be non-decreasing; multiple points may share a
    /// timestamp (batched arrivals). Evicts everything older than
    /// `ts − duration`. Amortized `O(1)` plus one eviction per departed
    /// point.
    ///
    /// # Errors
    ///
    /// Returns [`StreamhistError::NonFiniteValue`] if `v` is NaN or
    /// infinite, and [`StreamhistError::NonMonotonicTimestamp`] if `ts` is
    /// smaller than the previously observed timestamp.
    pub fn try_push_at(&mut self, ts: u64, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        if let Some(now) = self.now {
            if ts < now {
                return Err(StreamhistError::NonMonotonicTimestamp { ts, now });
            }
        }
        self.now = Some(ts);
        self.times.push_back(ts);
        self.raw.push_back(v);
        self.sums.push(v);
        self.generation += 1;
        self.evict_expired(ts);
        Ok(())
    }

    /// Pushes a point at time `ts`.
    ///
    /// Thin panicking wrapper around [`try_push_at`](Self::try_push_at),
    /// for callers that control their input; serving paths use
    /// `try_push_at` and count rejects instead.
    ///
    /// # Panics
    ///
    /// Panics if `ts` is smaller than the previous timestamp or `v` is
    /// not finite.
    pub fn push_at(&mut self, ts: u64, v: f64) {
        if let Err(e) = self.try_push_at(ts, v) {
            panic!("{e}");
        }
    }

    /// Pushes a slab of points all timestamped `ts`, with
    /// partial-acceptance semantics (per-value [`BatchOutcome`]
    /// accounting). Equivalent to calling [`try_push_at`](Self::try_push_at)
    /// per value: if `ts` moves backwards every value is rejected.
    pub fn push_batch_at(&mut self, ts: u64, values: &[f64]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for &v in values {
            match self.try_push_at(ts, v) {
                Ok(()) => out.accepted += 1,
                Err(_) => out.rejected += 1,
            }
        }
        out
    }

    /// Deprecated spelling of [`try_push_at`](Self::try_push_at).
    ///
    /// # Errors
    ///
    /// Same as [`try_push_at`](Self::try_push_at).
    #[deprecated(note = "renamed to `try_push_at`")]
    pub fn try_observe(&mut self, ts: u64, v: f64) -> Result<(), StreamhistError> {
        self.try_push_at(ts, v)
    }

    /// Deprecated spelling of [`push_at`](Self::push_at).
    ///
    /// # Panics
    ///
    /// Same as [`push_at`](Self::push_at).
    #[deprecated(note = "renamed to `push_at`")]
    pub fn observe(&mut self, ts: u64, v: f64) {
        self.push_at(ts, v);
    }

    /// Advances the clock without adding a point (e.g. a heartbeat),
    /// evicting anything that has aged out.
    ///
    /// # Panics
    ///
    /// Panics if `ts` is smaller than the previous timestamp.
    pub fn advance_to(&mut self, ts: u64) {
        if let Some(now) = self.now {
            assert!(
                ts >= now,
                "timestamps must be non-decreasing ({ts} < {now})"
            );
        }
        self.now = Some(ts);
        self.evict_expired(ts);
    }

    /// Restores the summary to its freshly-constructed state (empty
    /// window, clock unset), keeping the configuration (`T`, `B`, `ε`,
    /// `δ`).
    pub fn reset(&mut self) {
        self.sums = GrowableWindowSums::new(1024);
        self.times.clear();
        self.raw.clear();
        self.now = None;
        self.generation += 1;
        self.cache.clear();
    }

    fn evict_expired(&mut self, ts: u64) {
        // Retain exactly the points with timestamp > ts − duration; before
        // one full duration has elapsed nothing can age out.
        let Some(cutoff) = ts.checked_sub(self.duration) else {
            return;
        };
        while self.times.front().is_some_and(|&t| t <= cutoff) {
            self.times.pop_front();
            self.raw.pop_front();
            self.sums.evict_oldest();
            self.generation += 1;
        }
    }

    /// Materializes the `(1+ε)`-approximate B-histogram of the points in
    /// the current time window (indexed by arrival order within the
    /// window), or returns the cached snapshot as a cheap [`Arc`] clone
    /// when nothing changed since the last materialization.
    #[must_use]
    pub fn histogram(&self) -> Arc<Histogram> {
        self.histogram_with_stats().0
    }

    /// Like [`Self::histogram`], also returning build diagnostics (the
    /// diagnostics of the cached build when served from the cache).
    #[must_use]
    pub fn histogram_with_stats(&self) -> (Arc<Histogram>, KernelStats) {
        self.cache.get_or_build(self.generation, || {
            Kernel::build(&self.sums, self.b, self.delta)
        })
    }
}

impl MergeableSummary for TimeWindowHistogram {
    /// Concatenates the two windows, **coarsening timestamps**: every
    /// surviving point is re-stamped at the merged clock
    /// `max(self.now, other.now)` — scatter/gather assumes aligned window
    /// clocks, so per-point arrival times inside a gathered window are not
    /// preserved (they were only ever used for eviction, and a merged
    /// window ages out as one unit). The merged clock never moves
    /// backwards for either operand, so no point is evicted by the merge
    /// itself.
    ///
    /// Configurations must agree on `duration`, `b`, `eps` and `delta`;
    /// the approximation error of the merged materialization composes as
    /// for [`crate::FixedWindowHistogram`] (DESIGN.md §7: the per-part
    /// SSE appears as a gather term on top of the `(1+ε)` factor).
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
        if self.duration != other.duration {
            return Err(StreamhistError::InvalidParameter {
                param: "duration",
                message: "merge requires identical window durations",
            });
        }
        if self.b != other.b {
            return Err(StreamhistError::InvalidParameter {
                param: "b",
                message: "merge requires identical bucket budgets",
            });
        }
        if self.eps != other.eps {
            return Err(StreamhistError::InvalidParameter {
                param: "eps",
                message: "merge requires identical approximation parameters",
            });
        }
        if self.delta != other.delta {
            return Err(StreamhistError::InvalidParameter {
                param: "delta",
                message: "merge requires identical interval growth factors",
            });
        }
        let mut merged = TimeWindowHistogram::builder(self.duration, self.b, self.eps)
            .delta(self.delta)
            .build()?;
        let now = match (self.now, other.now) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        if let Some(ts) = now {
            merged.advance_to(ts);
            merged.push_batch_at(ts, &self.window());
            merged.push_batch_at(ts, &other.window());
        }
        *self = merged;
        Ok(())
    }
}

impl Checkpoint for TimeWindowHistogram {
    /// Serializes configuration, the clock, the `(timestamp, value)`
    /// window, and the **complete** rebased prefix state (including the
    /// rebase phase — rebase timing affects the floating-point rounding of
    /// later prefix entries). Interval lists rebuild deterministically at
    /// the next materialization, so a restored summary is bit-identical to
    /// one that never crashed.
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::TIME_WINDOW);
        w.put_varint(self.duration);
        w.put_usize(self.b);
        w.put_f64(self.eps);
        w.put_f64(self.delta);
        match self.now {
            None => w.put_u8(0),
            Some(ts) => {
                w.put_u8(1);
                w.put_varint(ts);
            }
        }
        w.put_varint(self.generation);
        w.put_usize(self.sums.rebase_period());
        let (head, cum) = self.sums.raw_frame();
        w.put_pair(head);
        w.put_usize(cum.len());
        for &p in &cum {
            w.put_pair(p);
        }
        w.put_usize(self.sums.since_rebase());
        w.put_usize(self.sums.rebases());
        w.put_usize(self.times.len());
        for &t in &self.times {
            w.put_varint(t);
        }
        for &v in &self.raw {
            w.put_f64(v);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        let mut r = FrameReader::open(bytes, tag::TIME_WINDOW)?;
        let duration = r.get_varint()?;
        if duration == 0 {
            return Err(corrupt("window duration must be positive"));
        }
        let b = r.get_usize()?;
        if b == 0 {
            return Err(corrupt("need at least one bucket"));
        }
        let eps = r.get_f64()?;
        if eps <= 0.0 {
            return Err(corrupt("eps must be positive"));
        }
        let delta = r.get_f64()?;
        if delta <= 0.0 {
            return Err(corrupt("delta must be positive"));
        }
        let now = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_varint()?),
            _ => return Err(corrupt("invalid clock-presence byte")),
        };
        let generation = r.get_varint()?;
        let rebase_period = r.get_usize()?;
        let head = r.get_pair()?;
        let n = r.get_count(16)?;
        let mut cum = Vec::with_capacity(n);
        for _ in 0..n {
            cum.push(r.get_pair()?);
        }
        let since_rebase = r.get_usize()?;
        let rebases = r.get_usize()?;
        let len = r.get_count(9)?;
        if len != n {
            return Err(corrupt("window and prefix store disagree on length"));
        }
        let mut times = VecDeque::with_capacity(len);
        for _ in 0..len {
            let t = r.get_varint()?;
            if times.back().is_some_and(|&prev| t < prev) {
                return Err(corrupt("timestamps must be non-decreasing"));
            }
            times.push_back(t);
        }
        match (now, times.back()) {
            (None, Some(_)) => return Err(corrupt("window holds points but clock is unset")),
            (Some(ts), Some(&last)) if last > ts => {
                return Err(corrupt("window holds points newer than the clock"));
            }
            (Some(ts), Some(&_)) => {
                // The eviction invariant: nothing at or before ts − duration
                // survives a push, so a frame violating it was tampered with.
                if let Some(cutoff) = ts.checked_sub(duration) {
                    if times.front().is_some_and(|&t| t <= cutoff) {
                        return Err(corrupt("window holds points older than the duration"));
                    }
                }
            }
            _ => {}
        }
        let mut raw = VecDeque::with_capacity(len);
        for _ in 0..len {
            raw.push_back(r.get_f64()?);
        }
        r.finish()?;
        let sums = GrowableWindowSums::from_checkpoint_state(
            rebase_period,
            head,
            cum,
            since_rebase,
            rebases,
        )?;
        Ok(Self {
            duration,
            b,
            eps,
            delta,
            sums,
            times,
            raw,
            now,
            generation,
            cache: SnapshotCache::default(),
        })
    }
}

impl StreamSummary for TimeWindowHistogram {
    /// Pushes `v` at the current clock (the latest observed timestamp, or
    /// 0 for an empty summary) — the value-only entry point for callers
    /// that drive the clock via [`advance_to`](Self::advance_to).
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        let ts = self.now.unwrap_or(0);
        self.try_push_at(ts, v)
    }

    /// Window occupancy (points inside the trailing duration).
    fn len(&self) -> usize {
        TimeWindowHistogram::len(self)
    }

    fn reset(&mut self) {
        TimeWindowHistogram::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_by_age_not_count() {
        let mut tw = TimeWindowHistogram::new(5, 3, 0.2);
        for t in 0..10u64 {
            tw.push_at(t, t as f64);
        }
        // Window (9-5, 9] = ts in {5..=9}.
        assert_eq!(tw.window(), vec![5.0, 6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn batched_arrivals_share_timestamps() {
        let mut tw = TimeWindowHistogram::new(4, 2, 0.5);
        for _ in 0..6 {
            tw.push_at(10, 2.0);
        }
        tw.push_at(11, 3.0);
        assert_eq!(tw.len(), 7);
        tw.push_at(14, 4.0);
        // cutoff 10: ts 10 evicted, ts 11/14 retained.
        assert_eq!(tw.window(), vec![3.0, 4.0]);
    }

    #[test]
    fn advance_to_evicts_without_adding() {
        let mut tw = TimeWindowHistogram::new(3, 2, 0.5);
        tw.push_at(0, 1.0);
        tw.push_at(1, 2.0);
        tw.advance_to(10);
        assert!(tw.is_empty());
        assert_eq!(tw.histogram().domain_len(), 0);
        assert_eq!(tw.now(), Some(10));
    }

    #[test]
    fn histogram_matches_fixed_window_when_arrivals_are_uniform() {
        // One arrival per tick + duration n behaves like a count window of n.
        let data: Vec<f64> = (0..100).map(|i| ((i * 13 + 5) % 17) as f64).collect();
        let n = 16u64;
        let mut tw = TimeWindowHistogram::new(n, 4, 0.2);
        let mut fw = crate::FixedWindowHistogram::new(n as usize, 4, 0.2);
        for (t, &v) in data.iter().enumerate() {
            tw.push_at(t as u64, v);
            fw.push(v);
            assert_eq!(tw.window(), fw.window(), "t={t}");
            assert_eq!(
                tw.histogram().bucket_ends(),
                fw.histogram().bucket_ends(),
                "t={t}"
            );
        }
    }

    #[test]
    fn guarantee_holds_under_irregular_arrivals() {
        use streamhist_optimal::optimal_sse;
        let b = 3;
        let eps = 0.2;
        let mut tw = TimeWindowHistogram::new(20, b, eps);
        let mut ts = 0u64;
        for i in 0..300u64 {
            // Irregular gaps and occasional bursts.
            ts += [0, 1, 1, 3, 7][(i % 5) as usize];
            let v = ((i * 29 + 3) % 23) as f64 + if i % 50 < 3 { 100.0 } else { 0.0 };
            tw.push_at(ts, v);
            if i % 17 == 0 && !tw.is_empty() {
                let win = tw.window();
                let approx = tw.histogram().sse(&win);
                let opt = optimal_sse(&win, b);
                assert!(
                    approx <= (1.0 + eps) * opt + 1e-6,
                    "i={i}: {approx} vs {opt}"
                );
            }
        }
    }

    #[test]
    fn window_with_times_pairs_correctly() {
        let mut tw = TimeWindowHistogram::new(100, 2, 0.5);
        tw.push_at(1, 10.0);
        tw.push_at(5, 20.0);
        assert_eq!(tw.window_with_times(), vec![(1, 10.0), (5, 20.0)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_timestamps_rejected() {
        let mut tw = TimeWindowHistogram::new(5, 2, 0.5);
        tw.push_at(10, 1.0);
        tw.push_at(9, 1.0);
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        assert!(TimeWindowHistogram::builder(10, 4, 0.1).build().is_ok());
        assert!(matches!(
            TimeWindowHistogram::builder(0, 4, 0.1).build(),
            Err(StreamhistError::InvalidParameter {
                param: "duration",
                ..
            })
        ));
        assert!(matches!(
            TimeWindowHistogram::builder(10, 0, 0.1).build(),
            Err(StreamhistError::InvalidParameter { param: "b", .. })
        ));
        assert!(matches!(
            TimeWindowHistogram::builder(10, 4, 0.0).build(),
            Err(StreamhistError::InvalidParameter { param: "eps", .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_observe_aliases_still_ingest() {
        let mut tw = TimeWindowHistogram::new(10, 2, 0.5);
        tw.observe(0, 1.0);
        tw.try_observe(1, 2.0).expect("alias accepts good record");
        assert_eq!(tw.window(), vec![1.0, 2.0]);
    }

    #[test]
    fn push_batch_at_counts_rejects_exactly() {
        let mut tw = TimeWindowHistogram::new(10, 2, 0.5);
        tw.push_at(5, 1.0);
        let out = tw.push_batch_at(6, &[2.0, f64::NAN, 3.0]);
        assert_eq!(out.accepted, 2);
        assert_eq!(out.rejected, 1);
        // A backwards slab is rejected wholesale, value by value.
        let back = tw.push_batch_at(4, &[7.0, 8.0]);
        assert_eq!(back.accepted, 0);
        assert_eq!(back.rejected, 2);
        assert_eq!(tw.window(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn snapshot_cache_invalidated_by_pushes_and_eviction() {
        let mut tw = TimeWindowHistogram::new(5, 2, 0.5);
        tw.push_at(0, 1.0);
        tw.push_at(1, 2.0);
        let h1 = tw.histogram();
        assert!(Arc::ptr_eq(&h1, &tw.histogram()));
        // advance_to that evicts must invalidate the cached snapshot.
        tw.advance_to(10);
        let h2 = tw.histogram();
        assert!(!Arc::ptr_eq(&h1, &h2));
        assert_eq!(h2.domain_len(), 0);
    }

    #[test]
    fn stream_summary_pushes_at_current_clock_and_resets() {
        let mut tw = TimeWindowHistogram::new(5, 2, 0.5);
        tw.push_at(7, 1.0);
        StreamSummary::try_push(&mut tw, 2.0).expect("joins at ts 7");
        assert_eq!(tw.window_with_times(), vec![(7, 1.0), (7, 2.0)]);
        let out = StreamSummary::push_batch(&mut tw, &[3.0, f64::INFINITY]);
        assert_eq!(out.accepted, 1);
        assert_eq!(out.rejected, 1);
        StreamSummary::reset(&mut tw);
        assert!(tw.is_empty());
        assert_eq!(tw.now(), None);
        // After reset the value-only push starts the clock at 0.
        StreamSummary::try_push(&mut tw, 9.0).expect("fresh clock");
        assert_eq!(tw.window_with_times(), vec![(0, 9.0)]);
    }

    #[test]
    fn merge_concatenates_and_coarsens_timestamps() {
        let mut a = TimeWindowHistogram::new(10, 2, 0.5);
        a.push_at(3, 1.0);
        a.push_at(5, 2.0);
        let mut b = TimeWindowHistogram::new(10, 2, 0.5);
        b.push_at(8, 7.0);
        a.merge_from(&b).expect("compatible");
        // Every merged point sits at the merged clock max(5, 8) = 8.
        assert_eq!(a.now(), Some(8));
        assert_eq!(a.window_with_times(), vec![(8, 1.0), (8, 2.0), (8, 7.0)]);
        // The merged window ages out as one unit.
        a.advance_to(18);
        assert!(a.is_empty());
    }

    #[test]
    fn merge_with_empty_operands_keeps_the_later_clock() {
        let mut a = TimeWindowHistogram::new(10, 2, 0.5);
        let b = TimeWindowHistogram::new(10, 2, 0.5);
        a.merge_from(&b).expect("both empty");
        assert_eq!(a.now(), None);
        let mut c = TimeWindowHistogram::new(10, 2, 0.5);
        c.push_at(4, 1.0);
        a.merge_from(&c).expect("empty receiver");
        assert_eq!(a.window_with_times(), vec![(4, 1.0)]);
    }

    #[test]
    fn merge_rejects_each_config_mismatch() {
        let base = || {
            let mut tw = TimeWindowHistogram::new(10, 3, 0.2);
            tw.push_at(1, 5.0);
            tw
        };
        for (other, param) in [
            (TimeWindowHistogram::new(20, 3, 0.2), "duration"),
            (TimeWindowHistogram::new(10, 4, 0.2), "b"),
            (TimeWindowHistogram::new(10, 3, 0.3), "eps"),
            (
                TimeWindowHistogram::builder(10, 3, 0.2)
                    .delta(1.0)
                    .build()
                    .expect("valid"),
                "delta",
            ),
        ] {
            let mut a = base();
            let err = a.merge_from(&other).expect_err("mismatch");
            assert!(
                matches!(err, StreamhistError::InvalidParameter { param: p, .. } if p == param),
                "expected rejection on {param}"
            );
            assert_eq!(a.window_with_times(), vec![(1, 5.0)], "receiver unchanged");
        }
    }

    #[test]
    fn kway_merge_combinator_gathers_shards() {
        let parts: Vec<TimeWindowHistogram> = (0..3)
            .map(|s| {
                let mut tw = TimeWindowHistogram::new(100, 2, 0.5);
                tw.push_at(10 + s, s as f64);
                tw
            })
            .collect();
        let refs: Vec<&TimeWindowHistogram> = parts.iter().collect();
        let merged = MergeableSummary::merge(&refs).expect("homogeneous parts");
        assert_eq!(merged.now(), Some(12));
        assert_eq!(merged.window(), vec![0.0, 1.0, 2.0]);
        assert!(merged.histogram().num_buckets() <= 2);
    }

    #[test]
    fn try_observe_rejects_bad_input_and_leaves_summary_usable() {
        let mut tw = TimeWindowHistogram::new(5, 2, 0.5);
        tw.try_push_at(10, 1.0).expect("good record accepted");
        assert!(matches!(
            tw.try_push_at(11, f64::NAN),
            Err(StreamhistError::NonFiniteValue { .. })
        ));
        // A rejected value must not advance the clock.
        assert_eq!(tw.now(), Some(10));
        assert_eq!(
            tw.try_push_at(9, 2.0),
            Err(StreamhistError::NonMonotonicTimestamp { ts: 9, now: 10 })
        );
        assert_eq!(tw.window(), vec![1.0]);
        tw.try_push_at(12, 2.0).expect("clock resumes normally");
        assert_eq!(tw.window(), vec![1.0, 2.0]);
    }
}
