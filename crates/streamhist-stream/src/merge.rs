//! Kernel-backed re-optimizing histogram merge — the gather half of
//! scatter/gather.
//!
//! `MergeableSummary for Histogram` (streamhist-core) concatenates bucket
//! lists exactly but lets the bucket count grow to the sum of the parts.
//! [`merge_histograms`] finishes the job: it concatenates the parts and
//! re-optimizes the result back down to a `B`-bucket V-optimal histogram
//! through the same DP kernel that serves every window summary, so a
//! gathered fleet-global snapshot has the same shape and budget as any
//! per-shard one.
//!
//! # Error composition (proved in DESIGN.md §7)
//!
//! Let `u` be the true concatenated window, `ĥᵢ` the per-part histograms
//! with gather term `G = Σᵢ SSE(ĥᵢ, partᵢ)`, and `h` the merged output.
//! By the L2 triangle inequality and the kernel's `(1+ε)` guarantee over
//! the concatenated expansion `û`:
//!
//! ```text
//! √SSE(h, u)  <=  √G + √(1+ε) · (√G + √OPT_B(u))
//! ```
//!
//! i.e. the merge pays the per-part error twice (once as input noise, once
//! inside the re-optimization) on top of the usual `(1+ε)` factor — merges
//! are cheap but never free.

use crate::kernel::{Kernel, KernelStats};
use streamhist_core::{Histogram, MergeableSummary, PrefixSums, StreamhistError};

/// Merges `parts` (per-shard / per-partition histograms, in stream order)
/// into one `b`-bucket histogram over the concatenated domain, running the
/// `(1+eps)`-approximate DP over the exact concatenation of the parts'
/// expansions. Returns the histogram plus the kernel work counters of the
/// re-optimization.
///
/// Parts with empty domains contribute nothing; if every part is empty
/// the result is the empty histogram.
///
/// # Errors
///
/// [`StreamhistError::InvalidParameter`] if `parts` is empty, `b == 0`,
/// or `eps` is not positive.
pub fn merge_histograms(
    parts: &[&Histogram],
    b: usize,
    eps: f64,
) -> Result<(Histogram, KernelStats), StreamhistError> {
    if parts.is_empty() {
        return Err(StreamhistError::InvalidParameter {
            param: "parts",
            message: "merge needs at least one histogram",
        });
    }
    if b == 0 {
        return Err(StreamhistError::InvalidParameter {
            param: "b",
            message: "need at least one bucket",
        });
    }
    if eps.is_nan() || eps <= 0.0 {
        return Err(StreamhistError::InvalidParameter {
            param: "eps",
            message: "eps must be positive",
        });
    }
    let mut concat = parts[0].clone();
    for part in &parts[1..] {
        concat.merge_from(part)?;
    }
    if concat.domain_len() == 0 {
        return Ok((concat, KernelStats::default()));
    }
    if concat.num_buckets() <= b {
        // Already within budget: the concatenation itself is the answer,
        // and it is exact relative to the parts (no re-optimization loss).
        return Ok((concat, KernelStats::default()));
    }
    let expanded = concat.expand();
    let p = PrefixSums::new(&expanded);
    let delta = eps / (2.0 * b as f64);
    Ok(Kernel::build(&p, b, delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamhist_core::sum_squared_error;

    #[test]
    fn rejects_bad_parameters() {
        let h = Histogram::from_bucket_ends(&[1.0, 2.0], &[1]);
        for (parts, b, eps, param) in [
            (vec![], 4, 0.1, "parts"),
            (vec![&h], 0, 0.1, "b"),
            (vec![&h], 4, 0.0, "eps"),
            (vec![&h], 4, f64::NAN, "eps"),
        ] {
            let err = merge_histograms(&parts, b, eps).expect_err("invalid");
            assert!(
                matches!(err, StreamhistError::InvalidParameter { param: p, .. } if p == param),
                "expected rejection on {param}"
            );
        }
    }

    #[test]
    fn within_budget_concatenation_is_exact() {
        let a = Histogram::from_bucket_ends(&[1.0, 1.0], &[1]);
        let b = Histogram::from_bucket_ends(&[9.0, 9.0, 9.0], &[2]);
        let (h, stats) = merge_histograms(&[&a, &b], 4, 0.1).expect("valid");
        assert_eq!(h.num_buckets(), 2);
        assert_eq!(h.expand(), vec![1.0, 1.0, 9.0, 9.0, 9.0]);
        assert_eq!(stats.herror, 0.0);
    }

    #[test]
    fn reoptimizes_piecewise_constant_parts_without_loss() {
        // Three exact parts, each one constant run; merged under B = 3 the
        // kernel must find the three run boundaries exactly.
        let parts_data: [&[f64]; 3] = [&[5.0; 4], &[9.0; 3], &[2.0; 5]];
        let parts: Vec<Histogram> = parts_data
            .iter()
            .map(|d| Histogram::from_bucket_ends(d, &[d.len() - 1]))
            .collect();
        let refs: Vec<&Histogram> = parts.iter().collect();
        let (h, _) = merge_histograms(&refs, 3, 0.1).expect("valid");
        assert_eq!(h.bucket_ends(), vec![3, 6, 11]);
        let whole: Vec<f64> = parts_data.iter().flat_map(|d| d.iter().copied()).collect();
        assert_eq!(h.sse(&whole), 0.0);
    }

    #[test]
    fn merged_error_respects_the_documented_bound() {
        // Parts summarized lossily (B=2 over non-constant data), merged to
        // B = 4: check sqrt(SSE) <= sqrt(G) + sqrt(1+eps)(sqrt(G) +
        // sqrt(OPT)) with OPT conservatively lower-bounded by 0.
        let data: Vec<f64> = (0..64).map(|i| ((i * 13 + 5) % 23) as f64).collect();
        let eps = 0.1;
        let mut parts = Vec::new();
        let mut gather = 0.0;
        for chunk in data.chunks(16) {
            let h = crate::approx_histogram(chunk, 2, eps);
            gather += h.sse(chunk);
            parts.push(h);
        }
        let refs: Vec<&Histogram> = parts.iter().collect();
        let (h, _) = merge_histograms(&refs, 4, eps).expect("valid");
        let sse = sum_squared_error(&data, &h.expand());
        // OPT_4(data) <= SSE of any 4-bucket histogram; use the offline
        // approximation as an upper bound on (1+eps) * OPT.
        let opt_upper = crate::approx_histogram(&data, 4, eps).sse(&data);
        let bound = gather.sqrt() + (1.0 + eps).sqrt() * (gather.sqrt() + opt_upper.sqrt());
        assert!(
            sse.sqrt() <= bound + 1e-9,
            "sqrt(SSE) {} > bound {}",
            sse.sqrt(),
            bound
        );
    }

    #[test]
    fn empty_parts_merge_to_empty() {
        let e = Histogram::from_bucket_ends(&[], &[]);
        let (h, _) = merge_histograms(&[&e, &e], 3, 0.1).expect("valid");
        assert_eq!(h.domain_len(), 0);
        assert_eq!(h.num_buckets(), 0);
    }
}
