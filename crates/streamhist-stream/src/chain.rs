//! Bucket-boundary chains shared by the streaming algorithms.
//!
//! Both streaming algorithms must reconstruct the winning bucket boundaries
//! at the end of the dynamic program, but the program is evaluated sparsely
//! (only at interval endpoints), so each endpoint entry carries the chain of
//! boundaries realizing its (approximate) `HERROR` value. Chains are shared
//! structurally via `Rc` — extending a solution by one bucket is `O(1)` and
//! the queues collectively hold `O(B · q)` nodes.

use std::rc::Rc;
use streamhist_core::{Bucket, Histogram};

/// One node of a boundary chain: the inclusive end index of a bucket, the
/// prefix sum of values through that index (used to derive mean heights
/// without re-reading data), and the rest of the chain toward index 0.
#[derive(Debug)]
pub(crate) struct Cut {
    /// Inclusive end index of this bucket.
    pub end: usize,
    /// Sum of values over `[0, end]`.
    pub sum_through: f64,
    /// The chain for the preceding buckets (`None` when this is the first
    /// bucket, covering `[0, end]`).
    pub prev: Option<Rc<Cut>>,
}

impl Cut {
    /// A single-bucket chain covering `[0, end]`.
    pub fn root(end: usize, sum_through: f64) -> Rc<Self> {
        Rc::new(Self { end, sum_through, prev: None })
    }

    /// Extends `prev` with a bucket ending at `end`.
    pub fn extend(prev: &Rc<Cut>, end: usize, sum_through: f64) -> Rc<Self> {
        debug_assert!(prev.end < end, "chain ends must strictly increase");
        Rc::new(Self { end, sum_through, prev: Some(Rc::clone(prev)) })
    }

    /// Number of buckets in the chain.
    #[cfg(test)]
    pub fn len(self: &Rc<Self>) -> usize {
        let mut n = 1;
        let mut cur = self;
        while let Some(p) = &cur.prev {
            n += 1;
            cur = p;
        }
        n
    }

    /// Returns a copy of the chain truncated to cuts strictly below
    /// `below`, or `None` if no cut survives.
    ///
    /// Used by the fixed-window algorithm's straddling-interval candidate
    /// (see `fixed_window.rs`): an endpoint chain describing `[0, e]` with
    /// `e >= c` must be converted into a valid partition of a shorter
    /// prefix. Truncation never increases the realized SSE of the retained
    /// region because dropping a suffix only removes buckets, and clipping
    /// the straddling bucket to a sub-range cannot increase its SSE.
    pub fn truncate_below(self: &Rc<Self>, below: usize) -> Option<Rc<Cut>> {
        let mut cur = self;
        loop {
            if cur.end < below {
                return Some(Rc::clone(cur));
            }
            match &cur.prev {
                Some(p) => cur = p,
                None => return None,
            }
        }
    }

    /// Materializes the chain into a [`Histogram`] over `[0, self.end]`,
    /// deriving each bucket's height as the mean of its values from the
    /// stored prefix sums.
    pub fn into_histogram(self: &Rc<Self>) -> Histogram {
        let mut cuts: Vec<(usize, f64)> = Vec::new();
        let mut cur = Some(self);
        while let Some(c) = cur {
            cuts.push((c.end, c.sum_through));
            cur = c.prev.as_ref();
        }
        cuts.reverse();
        let mut buckets = Vec::with_capacity(cuts.len());
        let mut prev_end_plus1 = 0usize;
        let mut prev_sum = 0.0f64;
        for (end, sum_through) in cuts {
            let len = (end + 1 - prev_end_plus1) as f64;
            buckets.push(Bucket::new(prev_end_plus1, end, (sum_through - prev_sum) / len));
            prev_end_plus1 = end + 1;
            prev_sum = sum_through;
        }
        let domain_len = self.end + 1;
        Histogram::new(domain_len, buckets).expect("chains always tile the prefix")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_chain_is_single_bucket() {
        let c = Cut::root(4, 10.0);
        let h = c.into_histogram();
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.buckets()[0].height, 2.0);
        assert_eq!(h.domain_len(), 5);
    }

    #[test]
    fn extend_builds_mean_heights_from_prefix_sums() {
        // data: [1, 1, 4, 4, 4] -> cuts at 1 (sum 2) and 4 (sum 14)
        let c = Cut::extend(&Cut::root(1, 2.0), 4, 14.0);
        let h = c.into_histogram();
        assert_eq!(h.bucket_ends(), vec![1, 4]);
        assert_eq!(h.buckets()[0].height, 1.0);
        assert_eq!(h.buckets()[1].height, 4.0);
    }

    #[test]
    fn chain_len_counts_buckets() {
        let c = Cut::extend(&Cut::extend(&Cut::root(0, 1.0), 2, 3.0), 5, 9.0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn truncate_below_keeps_strictly_smaller_cuts() {
        let c = Cut::extend(&Cut::extend(&Cut::root(1, 2.0), 3, 6.0), 7, 20.0);
        assert_eq!(c.truncate_below(7).map(|t| t.end), Some(3));
        assert_eq!(c.truncate_below(4).map(|t| t.end), Some(3));
        assert_eq!(c.truncate_below(3).map(|t| t.end), Some(1));
        assert_eq!(c.truncate_below(1).map(|t| t.end), None);
        assert_eq!(c.truncate_below(0).map(|t| t.end), None);
    }

    #[test]
    fn sharing_is_structural() {
        let base = Cut::root(0, 1.0);
        let a = Cut::extend(&base, 3, 4.0);
        let b = Cut::extend(&base, 5, 6.0);
        assert!(Rc::ptr_eq(a.prev.as_ref().expect("has prev"), b.prev.as_ref().expect("has prev")));
    }
}
