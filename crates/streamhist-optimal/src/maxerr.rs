//! Optimal **max-error** histograms.
//!
//! The paper's footnote 3 notes its results "will hold for any point-wise
//! additive error function", naming `max_i F(b_i)` as the common
//! alternative. This module provides the classical constructions for that
//! metric: within a bucket the max absolute error is minimized by the
//! mid-range representative `h = (min + max) / 2`, giving bucket cost
//! `(max − min) / 2`; the histogram cost is the maximum over buckets.
//!
//! * [`RangeMinMax`] — `O(n log n)`-space sparse table answering range
//!   min/max in `O(1)` (the substrate both constructions share).
//! * [`max_error_histogram`] — the greedy + binary-search construction:
//!   for a candidate error `e` a left-to-right greedy that extends each
//!   bucket maximally is feasibility-optimal, so binary searching `e` over
//!   the candidate set (half-differences of data values) finds the exact
//!   optimum in `O(n log n · log n)`.
//! * [`max_error_dp`] — the `O(n²B)` DP analogue of the SSE construction,
//!   used as the cross-check reference.

// DP split-point loops index parallel arrays.
#![allow(clippy::needless_range_loop)]

use streamhist_core::{Bucket, Histogram};

/// Sparse table for `O(1)` range minimum and maximum queries over a fixed
/// array (inclusive 0-based ranges).
#[derive(Debug, Clone)]
pub struct RangeMinMax {
    /// `mins[k][i]` = min over `data[i .. i + 2^k]`.
    mins: Vec<Vec<f64>>,
    maxs: Vec<Vec<f64>>,
    len: usize,
}

impl RangeMinMax {
    /// Builds the table in `O(n log n)`.
    #[must_use]
    pub fn new(data: &[f64]) -> Self {
        let n = data.len();
        let levels = if n <= 1 { 1 } else { n.ilog2() as usize + 1 };
        let mut mins = Vec::with_capacity(levels);
        let mut maxs = Vec::with_capacity(levels);
        mins.push(data.to_vec());
        maxs.push(data.to_vec());
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let prev_min = &mins[k - 1];
            let prev_max = &maxs[k - 1];
            let size = n.saturating_sub((1 << k) - 1);
            let mut row_min = Vec::with_capacity(size);
            let mut row_max = Vec::with_capacity(size);
            for i in 0..size {
                row_min.push(prev_min[i].min(prev_min[i + half]));
                row_max.push(prev_max[i].max(prev_max[i + half]));
            }
            mins.push(row_min);
            maxs.push(row_max);
        }
        Self { mins, maxs, len: n }
    }

    /// Number of underlying values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Minimum over `[start, end]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end >= len`.
    #[must_use]
    pub fn min(&self, start: usize, end: usize) -> f64 {
        assert!(start <= end && end < self.len, "bad range [{start}, {end}]");
        let k = (end - start + 1).ilog2() as usize;
        self.mins[k][start].min(self.mins[k][end + 1 - (1 << k)])
    }

    /// Maximum over `[start, end]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end >= len`.
    #[must_use]
    pub fn max(&self, start: usize, end: usize) -> f64 {
        assert!(start <= end && end < self.len, "bad range [{start}, {end}]");
        let k = (end - start + 1).ilog2() as usize;
        self.maxs[k][start].max(self.maxs[k][end + 1 - (1 << k)])
    }

    /// The max-error bucket cost `(max − min) / 2` over `[start, end]`.
    #[must_use]
    pub fn bucket_cost(&self, start: usize, end: usize) -> f64 {
        (self.max(start, end) - self.min(start, end)) / 2.0
    }
}

/// Greedy feasibility check: the minimum number of buckets needed so every
/// bucket's cost is `<= e` (left-to-right maximal extension is optimal for
/// this min-max objective). Returns the bucket end boundaries.
fn greedy_cover(table: &RangeMinMax, e: f64) -> Vec<usize> {
    let n = table.len();
    let mut ends = Vec::new();
    let mut start = 0usize;
    while start < n {
        // Exponential + binary search for the maximal end with cost <= e.
        let mut lo = start; // always feasible: single point has cost 0
        let mut step = 1usize;
        while lo + step < n && table.bucket_cost(start, lo + step) <= e {
            lo += step;
            step *= 2;
        }
        let mut hi = (lo + step).min(n - 1);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if table.bucket_cost(start, mid) <= e {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        ends.push(lo);
        start = lo + 1;
    }
    ends
}

/// Builds the **optimal max-error histogram** with at most `b` buckets:
/// minimizes `max_i (max(bucket_i) − min(bucket_i)) / 2` exactly, using
/// mid-range heights.
///
/// Exact because the optimal error is the half-range of one of the final
/// buckets, i.e. `(v_hi − v_lo)/2` for data values `v_hi, v_lo`; we binary
/// search that candidate set through the greedy feasibility oracle.
/// `O(n log n)` per oracle call, `O(log n)` calls after sorting the values.
///
/// # Panics
///
/// Panics if `b == 0` and `data` is non-empty.
#[must_use]
pub fn max_error_histogram(data: &[f64], b: usize) -> Histogram {
    if data.is_empty() {
        return Histogram::new(0, Vec::new()).expect("empty domain is always valid");
    }
    assert!(b > 0, "need at least one bucket for non-empty data");
    let table = RangeMinMax::new(data);
    // Candidate errors: 0 plus half-differences of consecutive sorted
    // values' cumulative spans. Any bucket's cost is (max - min)/2 for some
    // pair of data values, so searching over all pairwise half-differences
    // is exact. Rather than materializing O(n²) pairs we binary search over
    // the continuous range and then snap: feasibility is monotone in e, and
    // greedy_cover's answer only changes at candidate values, so the
    // bisection converges to the optimum within FP precision.
    let mut lo = 0.0f64;
    let mut hi = table.bucket_cost(0, data.len() - 1);
    if greedy_cover(&table, lo).len() <= b {
        // Even zero error is feasible (at most b distinct runs).
        let ends = greedy_cover(&table, lo);
        return mid_range_histogram(data, &table, &ends);
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if greedy_cover(&table, mid).len() <= b {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let ends = greedy_cover(&table, hi);
    mid_range_histogram(data, &table, &ends)
}

/// The `O(n²B)` DP for max-error (cross-check reference): identical
/// recurrence shape to the SSE DP, with `max` replacing `+` when combining
/// a prefix solution with the last bucket.
///
/// # Panics
///
/// Panics if `b == 0` and `data` is non-empty.
#[must_use]
pub fn max_error_dp(data: &[f64], b: usize) -> Histogram {
    if data.is_empty() {
        return Histogram::new(0, Vec::new()).expect("empty domain is always valid");
    }
    assert!(b > 0, "need at least one bucket for non-empty data");
    let n = data.len();
    let b = b.min(n);
    let table = RangeMinMax::new(data);
    let mut err: Vec<f64> = (0..=n)
        .map(|j| {
            if j == 0 {
                0.0
            } else {
                table.bucket_cost(0, j - 1)
            }
        })
        .collect();
    let mut back = vec![vec![0usize; n + 1]; b];
    for k in 1..b {
        let prev = err.clone();
        for j in 1..=n {
            let mut best = prev[j];
            let mut best_i = back[k - 1][j];
            for i in 1..j {
                let cand = prev[i].max(table.bucket_cost(i, j - 1));
                if cand < best {
                    best = cand;
                    best_i = i;
                }
            }
            err[j] = best;
            back[k][j] = best_i;
        }
    }
    let mut ends = Vec::with_capacity(b);
    let mut j = n;
    let mut k = b - 1;
    loop {
        ends.push(j - 1);
        let i = back[k][j];
        if i == 0 {
            break;
        }
        j = i;
        k = k.saturating_sub(1);
    }
    ends.reverse();
    mid_range_histogram(data, &table, &ends)
}

/// Assembles a histogram from boundaries with mid-range heights (the
/// max-error-optimal representative, unlike the mean used for SSE).
fn mid_range_histogram(data: &[f64], table: &RangeMinMax, ends: &[usize]) -> Histogram {
    let mut buckets = Vec::with_capacity(ends.len());
    let mut start = 0usize;
    for &end in ends {
        let h = 0.5 * (table.min(start, end) + table.max(start, end));
        buckets.push(Bucket::new(start, end, h));
        start = end + 1;
    }
    Histogram::new(data.len(), buckets).expect("greedy/DP boundaries tile the domain")
}

/// The realized max-error of a histogram against data — the metric these
/// constructions minimize.
///
/// # Panics
///
/// Panics if `data.len()` differs from the histogram domain.
#[must_use]
pub fn realized_max_error(h: &Histogram, data: &[f64]) -> f64 {
    streamhist_core::max_abs_error(data, &h.expand())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_max_error(data: &[f64], b: usize) -> f64 {
        // Enumerate partitions (small n only).
        fn recurse(table: &RangeMinMax, start: usize, left: usize, acc: f64, best: &mut f64) {
            let n = table.len();
            if left == 1 {
                *best = best.min(acc.max(table.bucket_cost(start, n - 1)));
                return;
            }
            for end in start..n - 1 {
                recurse(
                    table,
                    end + 1,
                    left - 1,
                    acc.max(table.bucket_cost(start, end)),
                    best,
                );
            }
            *best = best.min(acc.max(table.bucket_cost(start, n - 1)));
        }
        let table = RangeMinMax::new(data);
        let mut best = f64::INFINITY;
        recurse(&table, 0, b, 0.0, &mut best);
        best
    }

    #[test]
    fn sparse_table_matches_naive() {
        let data: Vec<f64> = (0..37).map(|i| ((i * 17 + 5) % 23) as f64).collect();
        let t = RangeMinMax::new(&data);
        for i in 0..data.len() {
            for j in i..data.len() {
                let naive_min = data[i..=j].iter().cloned().fold(f64::INFINITY, f64::min);
                let naive_max = data[i..=j]
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(t.min(i, j), naive_min, "min ({i},{j})");
                assert_eq!(t.max(i, j), naive_max, "max ({i},{j})");
            }
        }
    }

    #[test]
    fn greedy_matches_dp_and_brute_force() {
        let inputs: Vec<Vec<f64>> = vec![
            vec![1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 1.0],
            vec![0.0, 0.0, 100.0, 0.0, 0.0],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            vec![7.0; 9],
            vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0],
        ];
        for data in &inputs {
            for b in 1..=4 {
                let greedy = max_error_histogram(data, b);
                let dp = max_error_dp(data, b);
                let brute = brute_force_max_error(data, b);
                let ge = realized_max_error(&greedy, data);
                let de = realized_max_error(&dp, data);
                assert!(
                    (ge - brute).abs() < 1e-6,
                    "greedy {ge} vs brute {brute} (b={b}, {data:?})"
                );
                assert!(
                    (de - brute).abs() < 1e-6,
                    "dp {de} vs brute {brute} (b={b}, {data:?})"
                );
            }
        }
    }

    #[test]
    fn exact_when_buckets_cover_runs() {
        let data = [2.0, 2.0, 9.0, 9.0, 4.0, 4.0];
        let h = max_error_histogram(&data, 3);
        assert_eq!(realized_max_error(&h, &data), 0.0);
        assert_eq!(h.bucket_ends(), vec![1, 3, 5]);
    }

    #[test]
    fn mid_range_heights_beat_means_for_max_error() {
        // Skewed bucket: values {0, 0, 0, 9}. Mean 2.25 -> max err 6.75;
        // mid-range 4.5 -> max err 4.5.
        let data = [0.0, 0.0, 0.0, 9.0];
        let h = max_error_histogram(&data, 1);
        assert_eq!(h.buckets()[0].height, 4.5);
        assert_eq!(realized_max_error(&h, &data), 4.5);
    }

    #[test]
    fn monotone_in_buckets() {
        let data: Vec<f64> = (0..60).map(|i| ((i * 13) % 31) as f64).collect();
        let mut last = f64::INFINITY;
        for b in 1..=10 {
            let e = realized_max_error(&max_error_histogram(&data, b), &data);
            assert!(e <= last + 1e-9, "b={b}");
            last = e;
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(max_error_histogram(&[], 3).domain_len(), 0);
        let h = max_error_histogram(&[5.0], 2);
        assert_eq!(h.point(0), 5.0);
        assert_eq!(max_error_dp(&[], 2).domain_len(), 0);
    }
}
