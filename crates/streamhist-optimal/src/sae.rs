//! Optimal **sum-absolute-error** (SAE) histograms.
//!
//! Another instance of the paper's footnote-3 generalization to point-wise
//! additive error functions: within a bucket the sum of absolute deviations
//! `Σ |v − h|` is minimized by the **median** `h`, and the histogram cost
//! is the sum over buckets.
//!
//! The DP has the same structure as the SSE one, but the bucket cost has no
//! constant-size prefix summary — we evaluate it incrementally instead:
//! for each DP column `j`, sweep the bucket start `i` downward from `j`
//! while feeding values into a [`RollingMedian`] (dual-heap median with
//! half-sums), so each `SAE(i, j)` costs `O(log n)`; total `O(n² log n)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use streamhist_core::{Bucket, Histogram};

/// Total-ordering wrapper for finite `f64`s (heap keys).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Finite(f64);

impl Eq for Finite {}

impl PartialOrd for Finite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("values are finite")
    }
}

/// Incremental median with running half-sums: insert values one at a time,
/// query the median and the sum of absolute deviations in `O(1)` after an
/// `O(log n)` insert.
#[derive(Debug, Default)]
pub struct RollingMedian {
    /// Max-heap of the lower half.
    low: BinaryHeap<Finite>,
    /// Min-heap of the upper half.
    high: BinaryHeap<Reverse<Finite>>,
    sum_low: f64,
    sum_high: f64,
}

impl RollingMedian {
    /// Creates an empty structure.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of inserted values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.low.len() + self.high.len()
    }

    /// Whether no values have been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a value. `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite.
    pub fn insert(&mut self, v: f64) {
        assert!(v.is_finite(), "median structure requires finite values");
        if self.low.peek().is_none_or(|m| v <= m.0) {
            self.low.push(Finite(v));
            self.sum_low += v;
        } else {
            self.high.push(Reverse(Finite(v)));
            self.sum_high += v;
        }
        // Rebalance so |low| == |high| or |low| == |high| + 1.
        if self.low.len() > self.high.len() + 1 {
            let Finite(m) = self.low.pop().expect("low is non-empty");
            self.sum_low -= m;
            self.high.push(Reverse(Finite(m)));
            self.sum_high += m;
        } else if self.high.len() > self.low.len() {
            let Reverse(Finite(m)) = self.high.pop().expect("high is non-empty");
            self.sum_high -= m;
            self.low.push(Finite(m));
            self.sum_low += m;
        }
    }

    /// The lower median of the inserted values.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.low.peek().expect("median of an empty set").0
    }

    /// Sum of absolute deviations from the median — the SAE-optimal bucket
    /// cost of the inserted values. `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    #[must_use]
    pub fn sae(&self) -> f64 {
        let m = self.median();
        (m * self.low.len() as f64 - self.sum_low) + (self.sum_high - m * self.high.len() as f64)
    }
}

/// Builds the optimal SAE histogram of `data` with at most `b` buckets
/// (median heights). `O(n²(log n + B))` time, `O(nB)` space.
///
/// # Panics
///
/// Panics if `b == 0` and `data` is non-empty.
#[must_use]
pub fn optimal_histogram_sae(data: &[f64], b: usize) -> Histogram {
    if data.is_empty() {
        return Histogram::new(0, Vec::new()).expect("empty domain is always valid");
    }
    assert!(b > 0, "need at least one bucket for non-empty data");
    let n = data.len();
    let b = b.min(n);

    // cost[i][j-1] would be O(n²) memory; instead precompute per column on
    // the fly and run all B levels inside the column sweep. We materialize
    // the full cost matrix column by column but keep only `err` rows.
    // err[k][j] = optimal SAE of data[0..j] with at most k+1 buckets.
    let mut err = vec![vec![0.0f64; n + 1]; b];
    let mut back = vec![vec![0usize; n + 1]; b];
    // Column costs: costs[i] = SAE(i, j-1) for the current j.
    let mut costs = vec![0.0f64; n];
    for j in 1..=n {
        let mut med = RollingMedian::new();
        for i in (0..j).rev() {
            med.insert(data[i]);
            costs[i] = med.sae();
        }
        err[0][j] = costs[0];
        for k in 1..b {
            let mut best = err[k - 1][j];
            let mut best_i = back[k - 1][j];
            for (i, &cost) in costs.iter().enumerate().take(j).skip(1) {
                let cand = err[k - 1][i] + cost;
                if cand < best {
                    best = cand;
                    best_i = i;
                }
            }
            err[k][j] = best;
            back[k][j] = best_i;
        }
    }

    let mut ends = Vec::with_capacity(b);
    let mut j = n;
    let mut k = b - 1;
    loop {
        ends.push(j - 1);
        let i = back[k][j];
        if i == 0 {
            break;
        }
        j = i;
        k = k.saturating_sub(1);
    }
    ends.reverse();

    // Median heights.
    let mut buckets = Vec::with_capacity(ends.len());
    let mut start = 0usize;
    for &end in &ends {
        let mut seg: Vec<f64> = data[start..=end].to_vec();
        seg.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let h = seg[(seg.len() - 1) / 2]; // lower median, matching RollingMedian
        buckets.push(Bucket::new(start, end, h));
        start = end + 1;
    }
    Histogram::new(n, buckets).expect("DP boundaries tile the domain")
}

/// The realized SAE of a histogram against data.
///
/// # Panics
///
/// Panics if `data.len()` differs from the histogram domain.
#[must_use]
pub fn realized_sae(h: &Histogram, data: &[f64]) -> f64 {
    streamhist_core::sum_abs_error(data, &h.expand())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sae(data: &[f64]) -> f64 {
        let mut s: Vec<f64> = data.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let m = s[(s.len() - 1) / 2];
        s.iter().map(|v| (v - m).abs()).sum()
    }

    fn brute_force_sae(data: &[f64], b: usize) -> f64 {
        fn recurse(data: &[f64], start: usize, left: usize, acc: f64, best: &mut f64) {
            let n = data.len();
            if left == 1 {
                *best = (*best).min(acc + naive_sae(&data[start..]));
                return;
            }
            for end in start..n - 1 {
                recurse(
                    data,
                    end + 1,
                    left - 1,
                    acc + naive_sae(&data[start..=end]),
                    best,
                );
            }
            *best = (*best).min(acc + naive_sae(&data[start..]));
        }
        let mut best = f64::INFINITY;
        recurse(data, 0, b, 0.0, &mut best);
        best
    }

    #[test]
    fn rolling_median_matches_naive() {
        let data = [5.0, 1.0, 9.0, 3.0, 3.0, 7.0, 2.0, 8.0];
        let mut rm = RollingMedian::new();
        for (i, &v) in data.iter().enumerate() {
            rm.insert(v);
            let naive = naive_sae(&data[..=i]);
            assert!(
                (rm.sae() - naive).abs() < 1e-9,
                "prefix {}: {} vs {naive}",
                i + 1,
                rm.sae()
            );
        }
    }

    #[test]
    fn dp_matches_brute_force() {
        let inputs: Vec<Vec<f64>> = vec![
            vec![1.0, 100.0, 2.0, 3.0],
            vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0],
            vec![0.0, 0.0, 10.0, 10.0, 0.0, 0.0],
            vec![6.0; 7],
        ];
        for data in &inputs {
            for b in 1..=3 {
                let h = optimal_histogram_sae(data, b);
                let got = realized_sae(&h, data);
                let brute = brute_force_sae(data, b);
                assert!(
                    (got - brute).abs() < 1e-9,
                    "b={b} {data:?}: {got} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn median_heights_beat_means_for_outliers() {
        // One outlier: the SAE-optimal single bucket uses the median.
        let data = [1.0, 1.0, 1.0, 1.0, 101.0];
        let h = optimal_histogram_sae(&data, 1);
        assert_eq!(h.buckets()[0].height, 1.0);
        assert_eq!(realized_sae(&h, &data), 100.0);
        // The mean (21) would cost 4*20 + 80 = 160.
    }

    #[test]
    fn exact_on_piecewise_constant() {
        let data = [4.0, 4.0, 9.0, 9.0, 9.0, 1.0];
        let h = optimal_histogram_sae(&data, 3);
        assert_eq!(realized_sae(&h, &data), 0.0);
        assert_eq!(h.bucket_ends(), vec![1, 4, 5]);
    }

    #[test]
    fn monotone_in_buckets() {
        let data: Vec<f64> = (0..40).map(|i| ((i * 23 + 7) % 19) as f64).collect();
        let mut last = f64::INFINITY;
        for b in 1..=8 {
            let e = realized_sae(&optimal_histogram_sae(&data, b), &data);
            assert!(e <= last + 1e-9, "b={b}");
            last = e;
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(optimal_histogram_sae(&[], 2).domain_len(), 0);
        let h = optimal_histogram_sae(&[7.5], 3);
        assert_eq!(h.point(0), 7.5);
    }
}
