//! # streamhist-optimal
//!
//! Optimal V-optimal histogram construction: the dynamic program of
//! Jagadish, Koudas, Muthukrishnan, Poosala, Sevcik & Suel (VLDB 1998),
//! restated as `Algorithm OptimalHistogram` in §4.1 of the reproduced paper
//! (Guha & Koudas, ICDE 2002).
//!
//! The DP relies on the observation that "if the last bucket contains the
//! data points indexed by `[i+1, …, n]` in the optimal B-histogram, then the
//! rest of the buckets must form an optimal (B−1)-histogram for `[1, …, i]`".
//! With the `SUM`/`SQSUM` prefix arrays the bucket error `SQERROR[i, j]` is
//! `O(1)`, giving total time `O(n²·B)` and space `O(n·B)` with
//! reconstruction (an `O(n)`-space, error-only variant is also provided).
//!
//! This crate is the accuracy gold standard the streaming algorithms are
//! measured against (experiment `EXP-AGG-OPT` in `DESIGN.md`), and its
//! monotonicity properties (paper §4.2) are verified here as tests because
//! the correctness of the streaming algorithms rests on them.
//!
//! We use the *at-most-B-buckets* convention: allowing fewer buckets never
//! increases SSE, so the returned histogram has `min(B, n)` or fewer buckets
//! and its SSE equals the classical exactly-B formulation whenever `n >= B`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod dp;
pub mod maxerr;
pub mod sae;

pub use brute::brute_force_optimal;
pub use dp::{herror_table, optimal_histogram, optimal_sse};
pub use maxerr::{max_error_dp, max_error_histogram, realized_max_error, RangeMinMax};
pub use sae::{optimal_histogram_sae, realized_sae, RollingMedian};
