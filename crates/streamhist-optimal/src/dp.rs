//! The `O(n²B)` dynamic program (paper §4.1, Figure 2).

// The DP inner loops index two parallel arrays by the same split point;
// iterator rewrites obscure the recurrence.
#![allow(clippy::needless_range_loop)]

use streamhist_core::{Histogram, PrefixSums};

/// Computes the optimal (minimum-SSE) histogram of `data` with at most
/// `b` buckets, including bucket boundaries and mean heights.
///
/// Time `O(n²·b)`, space `O(n·b)` for the back-pointer table.
///
/// # Panics
///
/// Panics if `b == 0` and `data` is non-empty.
#[must_use]
pub fn optimal_histogram(data: &[f64], b: usize) -> Histogram {
    if data.is_empty() {
        return Histogram::new(0, Vec::new()).expect("empty domain is always valid");
    }
    assert!(b > 0, "need at least one bucket for non-empty data");
    let n = data.len();
    let b = b.min(n);
    let prefix = PrefixSums::new(data);

    // herror[k][j] = min SSE of representing data[0..j] with at most k+1
    // buckets (j in 1..=n). back[k][j] = split point i: the last bucket is
    // data[i..j] (i in 0..j).
    let mut herror = vec![0.0f64; n + 1];
    let mut prev: Vec<f64>;
    let mut back = vec![vec![0usize; n + 1]; b];
    for j in 1..=n {
        herror[j] = prefix.sqerror(0, j - 1);
        back[0][j] = 0;
    }
    for k in 1..b {
        prev = herror.clone();
        for j in 1..=n {
            // Using fewer buckets is always allowed (at-most semantics).
            let mut best = prev[j];
            let mut best_i = back[k - 1][j]; // inherit the (k)-bucket split
            let mut inherited = true;
            for i in 1..j {
                let cand = prev[i] + prefix.sqerror(i, j - 1);
                if cand < best {
                    best = cand;
                    best_i = i;
                    inherited = false;
                }
            }
            herror[j] = best;
            // Encode "inherited from level k-1" by keeping that level's
            // back-pointer; reconstruction walks levels downward so the
            // chain stays consistent either way because the split i is the
            // start of the LAST bucket and prev[i] is realizable with at
            // most k buckets.
            back[k][j] = if inherited { back[k - 1][j] } else { best_i };
        }
    }

    // Reconstruct boundaries by walking back-pointers from (b-1, n).
    let mut ends = Vec::with_capacity(b);
    let mut j = n;
    let mut k = b - 1;
    loop {
        ends.push(j - 1); // inclusive end of the last bucket of data[0..j]
        let i = back[k][j];
        if i == 0 {
            break;
        }
        j = i;
        k = k.saturating_sub(1);
    }
    ends.reverse();
    Histogram::from_bucket_ends(data, &ends)
}

/// Computes only the optimal SSE value, in `O(n²·b)` time and `O(n)` space
/// (the "fairly simple trick" of paper §3 that drops the quadratic space).
///
/// # Panics
///
/// Panics if `b == 0` and `data` is non-empty.
#[must_use]
pub fn optimal_sse(data: &[f64], b: usize) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    assert!(b > 0, "need at least one bucket for non-empty data");
    let n = data.len();
    let b = b.min(n);
    let prefix = PrefixSums::new(data);
    let mut herror: Vec<f64> = (0..=n)
        .map(|j| {
            if j == 0 {
                0.0
            } else {
                prefix.sqerror(0, j - 1)
            }
        })
        .collect();
    let mut scratch = vec![0.0f64; n + 1];
    for _ in 1..b {
        scratch[0] = 0.0;
        for j in 1..=n {
            let mut best = herror[j];
            for i in 1..j {
                let cand = herror[i] + prefix.sqerror(i, j - 1);
                if cand < best {
                    best = cand;
                }
            }
            scratch[j] = best;
        }
        std::mem::swap(&mut herror, &mut scratch);
    }
    herror[n]
}

/// Computes the full `HERROR[j][k]` table: `table[k-1][j-1]` is the minimum
/// SSE of representing `data[0..=j-1]` with at most `k` buckets.
///
/// Exposed for the monotonicity tests (paper §4.2: `HERROR[i, k−1]` is
/// "positive non-decreasing as i increases") that underpin the streaming
/// algorithms, and for diagnostics in the harnesses. `O(n²·b)` time,
/// `O(n·b)` space.
///
/// # Panics
///
/// Panics if `b == 0` and `data` is non-empty.
#[must_use]
pub fn herror_table(data: &[f64], b: usize) -> Vec<Vec<f64>> {
    if data.is_empty() {
        return Vec::new();
    }
    assert!(b > 0, "need at least one bucket for non-empty data");
    let n = data.len();
    let prefix = PrefixSums::new(data);
    let mut table: Vec<Vec<f64>> = Vec::with_capacity(b);
    table.push((1..=n).map(|j| prefix.sqerror(0, j - 1)).collect());
    for k in 1..b {
        let prev = &table[k - 1];
        let mut row = Vec::with_capacity(n);
        for j in 1..=n {
            let mut best = prev[j - 1];
            for i in 1..j {
                let cand = prev[i - 1] + prefix.sqerror(i, j - 1);
                if cand < best {
                    best = cand;
                }
            }
            row.push(best);
        }
        table.push(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_optimal;

    /// The example sequence used in the paper's §4.2 discussion.
    const PAPER_SEQ: [f64; 7] = [3.0, 7.0, 5.0, 8.0, 2.0, 6.0, 4.0];

    #[test]
    fn one_bucket_is_global_mean() {
        let h = optimal_histogram(&PAPER_SEQ, 1);
        assert_eq!(h.num_buckets(), 1);
        assert!((h.buckets()[0].height - 5.0).abs() < 1e-12);
    }

    #[test]
    fn n_buckets_reproduce_exactly() {
        let h = optimal_histogram(&PAPER_SEQ, PAPER_SEQ.len());
        assert!(h.sse(&PAPER_SEQ) < 1e-12);
        assert_eq!(h.expand(), PAPER_SEQ.to_vec());
    }

    #[test]
    fn matches_brute_force_on_small_inputs() {
        let inputs: Vec<Vec<f64>> = vec![
            vec![1.0],
            vec![1.0, 100.0],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0],
            PAPER_SEQ.to_vec(),
            vec![0.0, 0.0, 10.0, 10.0, 0.0, 0.0, 10.0, 10.0, 5.0],
        ];
        for data in &inputs {
            for b in 1..=4.min(data.len()) {
                let dp = optimal_histogram(data, b);
                let brute = brute_force_optimal(data, b);
                assert!(
                    (dp.sse(data) - brute.sse(data)).abs() < 1e-9,
                    "data {data:?} b {b}: dp {} vs brute {}",
                    dp.sse(data),
                    brute.sse(data)
                );
            }
        }
    }

    #[test]
    fn optimal_sse_matches_histogram_sse() {
        for b in 1..=5 {
            let h = optimal_histogram(&PAPER_SEQ, b);
            let e = optimal_sse(&PAPER_SEQ, b);
            assert!(
                (h.sse(&PAPER_SEQ) - e).abs() < 1e-9,
                "b={b}: {} vs {e}",
                h.sse(&PAPER_SEQ)
            );
        }
    }

    #[test]
    fn sse_is_non_increasing_in_b() {
        let data: Vec<f64> = (0..40).map(|i| ((i * 17) % 23) as f64).collect();
        let mut last = f64::INFINITY;
        for b in 1..=10 {
            let e = optimal_sse(&data, b);
            assert!(e <= last + 1e-9, "b={b}: {e} > {last}");
            last = e;
        }
    }

    #[test]
    fn herror_rows_are_non_decreasing_in_prefix_length() {
        // Paper §4.2 observation 2: HERROR[i, k] is non-decreasing in i.
        let data: Vec<f64> = (0..30).map(|i| ((i * 7 + 3) % 13) as f64).collect();
        let table = herror_table(&data, 4);
        for (k, row) in table.iter().enumerate() {
            for w in row.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "row {k} decreased: {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn herror_columns_are_non_increasing_in_buckets() {
        let data: Vec<f64> = (0..25).map(|i| ((i * 11 + 1) % 9) as f64).collect();
        let table = herror_table(&data, 5);
        for j in 0..data.len() {
            for k in 1..table.len() {
                assert!(
                    table[k][j] <= table[k - 1][j] + 1e-9,
                    "more buckets must not increase error (j={j}, k={k})"
                );
            }
        }
    }

    #[test]
    fn sqerror_is_non_increasing_as_start_advances() {
        // Paper §4.2 observation 1: SQERROR[i+1, j] non-increasing in i for
        // fixed j.
        let data: Vec<f64> = (0..30).map(|i| ((i * 5 + 2) % 17) as f64).collect();
        let prefix = streamhist_core::PrefixSums::new(&data);
        let j = data.len() - 1;
        let mut last = f64::INFINITY;
        for i in 0..=j {
            let e = prefix.sqerror(i, j);
            assert!(e <= last + 1e-9, "i={i}");
            last = e;
        }
    }

    #[test]
    fn detects_obvious_boundaries() {
        // Two clear level regimes -> the 2-bucket optimum must split at the
        // regime change.
        let mut data = vec![10.0; 8];
        data.extend(vec![50.0; 8]);
        let h = optimal_histogram(&data, 2);
        assert_eq!(h.bucket_ends(), vec![7, 15]);
        assert!(h.sse(&data) < 1e-12);
    }

    #[test]
    fn paper_example_transition_detected() {
        // §4.5 Example 1's post-slide content: 0,0,0,1,1,1,1,1 with B = 2
        // must split after the third zero.
        let data = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let h = optimal_histogram(&data, 2);
        assert_eq!(h.bucket_ends(), vec![2, 7]);
        assert!(h.sse(&data) < 1e-12);
    }

    #[test]
    fn b_larger_than_n_is_clamped() {
        let data = [1.0, 2.0];
        let h = optimal_histogram(&data, 10);
        assert_eq!(h.num_buckets(), 2);
        assert!(h.sse(&data) < 1e-12);
        assert_eq!(optimal_sse(&data, 10), 0.0);
    }

    #[test]
    fn empty_data_gives_empty_histogram() {
        let h = optimal_histogram(&[], 3);
        assert_eq!(h.domain_len(), 0);
        assert_eq!(optimal_sse(&[], 3), 0.0);
        assert!(herror_table(&[], 3).is_empty());
    }
}
