//! Exhaustive-search reference implementation.
//!
//! Enumerates every partition of the sequence into at most `b` contiguous
//! buckets and returns the SSE-minimal one. Exponential — intended only for
//! validating [`crate::optimal_histogram`] on small inputs in tests and
//! property tests.

use streamhist_core::{Histogram, PrefixSums};

/// Returns the minimum-SSE histogram of `data` with at most `b` buckets by
/// exhaustive enumeration of bucket boundaries.
///
/// # Panics
///
/// Panics if `b == 0` and `data` is non-empty. Intended for `n <= ~15`;
/// larger inputs will enumerate `C(n-1, b-1)` partitions.
#[must_use]
pub fn brute_force_optimal(data: &[f64], b: usize) -> Histogram {
    if data.is_empty() {
        return Histogram::new(0, Vec::new()).expect("empty domain is always valid");
    }
    assert!(b > 0, "need at least one bucket for non-empty data");
    let n = data.len();
    let b = b.min(n);
    let prefix = PrefixSums::new(data);

    let mut best_sse = f64::INFINITY;
    let mut best_ends: Vec<usize> = Vec::new();
    let mut ends: Vec<usize> = Vec::new();

    // Recursively choose the inclusive end of each bucket.
    #[allow(clippy::too_many_arguments)] // explicit search state beats a struct here
    fn recurse(
        prefix: &PrefixSums,
        n: usize,
        b: usize,
        start: usize,
        acc_sse: f64,
        ends: &mut Vec<usize>,
        best_sse: &mut f64,
        best_ends: &mut Vec<usize>,
    ) {
        if acc_sse >= *best_sse {
            return; // branch-and-bound: SSE only grows
        }
        let buckets_left = b - ends.len();
        if buckets_left == 1 {
            let total = acc_sse + prefix.sqerror(start, n - 1);
            if total < *best_sse {
                *best_sse = total;
                best_ends.clone_from(ends);
                best_ends.push(n - 1);
            }
            return;
        }
        // The current bucket can end anywhere that still leaves room for at
        // least one point per remaining bucket — or swallow the rest (at-most
        // semantics is covered because ending at n-1 terminates early).
        for end in start..n {
            let cost = prefix.sqerror(start, end);
            if end == n - 1 {
                let total = acc_sse + cost;
                if total < *best_sse {
                    *best_sse = total;
                    best_ends.clone_from(ends);
                    best_ends.push(n - 1);
                }
            } else {
                ends.push(end);
                recurse(
                    prefix,
                    n,
                    b,
                    end + 1,
                    acc_sse + cost,
                    ends,
                    best_sse,
                    best_ends,
                );
                ends.pop();
            }
        }
    }

    recurse(
        &prefix,
        n,
        b,
        0,
        0.0,
        &mut ends,
        &mut best_sse,
        &mut best_ends,
    );
    Histogram::from_bucket_ends(data, &best_ends)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bucket_when_b_is_one() {
        let data = [1.0, 5.0, 9.0];
        let h = brute_force_optimal(&data, 1);
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.buckets()[0].height, 5.0);
    }

    #[test]
    fn perfect_fit_with_enough_buckets() {
        let data = [1.0, 5.0, 9.0];
        let h = brute_force_optimal(&data, 3);
        assert!(h.sse(&data) < 1e-12);
    }

    #[test]
    fn prefers_fewer_buckets_when_equal() {
        // Constant data: one bucket already achieves zero SSE.
        let data = [4.0; 6];
        let h = brute_force_optimal(&data, 3);
        assert_eq!(h.sse(&data), 0.0);
    }

    #[test]
    fn finds_the_obvious_split() {
        let data = [0.0, 0.0, 0.0, 9.0, 9.0];
        let h = brute_force_optimal(&data, 2);
        assert_eq!(h.bucket_ends(), vec![2, 4]);
    }

    #[test]
    fn empty_input() {
        let h = brute_force_optimal(&[], 2);
        assert_eq!(h.domain_len(), 0);
    }
}
