//! Property tests for the optimal constructions: DP-vs-brute-force
//! agreement under all three error objectives, the §4.2 monotonicity
//! observations the streaming algorithms rest on, and cross-objective
//! dominance (each construction wins on its own metric).

use proptest::prelude::*;
use streamhist_optimal::{
    brute_force_optimal, herror_table, max_error_dp, max_error_histogram, optimal_histogram,
    optimal_histogram_sae, optimal_sse, realized_max_error, realized_sae, RangeMinMax,
    RollingMedian,
};

fn data_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50..50i64, 1..max_len)
        .prop_map(|v| v.into_iter().map(|x| x as f64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sse_dp_matches_brute(data in data_strategy(12), b in 1usize..5) {
        let dp = optimal_histogram(&data, b);
        let brute = brute_force_optimal(&data, b);
        prop_assert!((dp.sse(&data) - brute.sse(&data)).abs() < 1e-9);
        prop_assert!((optimal_sse(&data, b) - dp.sse(&data)).abs() < 1e-9);
    }

    #[test]
    fn maxerr_greedy_matches_dp(data in data_strategy(14), b in 1usize..5) {
        let greedy = realized_max_error(&max_error_histogram(&data, b), &data);
        let dp = realized_max_error(&max_error_dp(&data, b), &data);
        prop_assert!((greedy - dp).abs() < 1e-6, "greedy {greedy} vs dp {dp}");
    }

    #[test]
    fn each_objective_wins_its_own_metric(data in data_strategy(20), b in 1usize..5) {
        let h_sse = optimal_histogram(&data, b);
        let h_sae = optimal_histogram_sae(&data, b);
        let h_max = max_error_histogram(&data, b);
        // SSE-optimal has the least SSE.
        prop_assert!(h_sse.sse(&data) <= h_sae.sse(&data) + 1e-6);
        prop_assert!(h_sse.sse(&data) <= h_max.sse(&data) + 1e-6);
        // SAE-optimal has the least SAE.
        let (sa, ss, sm) = (
            realized_sae(&h_sae, &data),
            realized_sae(&h_sse, &data),
            realized_sae(&h_max, &data),
        );
        prop_assert!(sa <= ss + 1e-6, "sae {sa} > sse-hist {ss}");
        prop_assert!(sa <= sm + 1e-6, "sae {sa} > max-hist {sm}");
        // Max-error-optimal has the least L-inf.
        let (ma, ms, mm) = (
            realized_max_error(&h_max, &data),
            realized_max_error(&h_sse, &data),
            realized_max_error(&h_sae, &data),
        );
        prop_assert!(ma <= ms + 1e-6, "max {ma} > sse-hist {ms}");
        prop_assert!(ma <= mm + 1e-6, "max {ma} > sae-hist {mm}");
    }

    /// Paper §4.2: HERROR[i, k] is non-decreasing in i and non-increasing
    /// in k — the monotonicity both streaming algorithms rely on.
    #[test]
    fn herror_monotonicity(data in data_strategy(30), b in 2usize..5) {
        let table = herror_table(&data, b);
        for row in &table {
            for w in row.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-9);
            }
        }
        for j in 0..data.len() {
            for k in 1..table.len() {
                prop_assert!(table[k][j] <= table[k - 1][j] + 1e-9);
            }
        }
    }

    #[test]
    fn sparse_table_matches_scan(data in data_strategy(40)) {
        let t = RangeMinMax::new(&data);
        let n = data.len();
        for (a, b) in [(0, n - 1), (0, 0), (n / 2, n - 1), (n / 3, 2 * n / 3)] {
            let (a, b) = (a.min(b), a.max(b));
            let mn = data[a..=b].iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = data[a..=b].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(t.min(a, b), mn);
            prop_assert_eq!(t.max(a, b), mx);
        }
    }

    #[test]
    fn rolling_median_is_exact(data in data_strategy(60)) {
        let mut rm = RollingMedian::new();
        for (i, &v) in data.iter().enumerate() {
            rm.insert(v);
            let mut sorted: Vec<f64> = data[..=i].to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let med = sorted[(sorted.len() - 1) / 2];
            prop_assert_eq!(rm.median(), med, "prefix {}", i + 1);
            let sae: f64 = sorted.iter().map(|v| (v - med).abs()).sum();
            prop_assert!((rm.sae() - sae).abs() < 1e-9);
        }
    }

    /// All three constructions respect the bucket budget and tile the
    /// domain (structural soundness on arbitrary inputs).
    #[test]
    fn constructions_are_structurally_sound(data in data_strategy(25), b in 1usize..6) {
        for h in [
            optimal_histogram(&data, b),
            optimal_histogram_sae(&data, b),
            max_error_histogram(&data, b),
            max_error_dp(&data, b),
        ] {
            prop_assert!(h.num_buckets() <= b);
            prop_assert_eq!(h.domain_len(), data.len());
            let mut covered = 0usize;
            for bk in h.buckets() {
                prop_assert_eq!(bk.start, covered);
                covered = bk.end + 1;
            }
            prop_assert_eq!(covered, data.len());
        }
    }
}
