//! EXP-AGG-OPT — reproduces the paper's §5.2 second summarized experiment:
//! "We also compared algorithm AgglomerativeHistogram with the optimal
//! histogram construction algorithm of Jagadish et al. ... The resulting
//! histograms are comparable in accuracy with those resulting from the
//! optimal histogram construction algorithm (for various values of ε) and
//! the savings in construction time are profound; these savings increase
//! as the size of the underlying data set increases."
//!
//! Reported: SSE ratio (should stay within 1+ε) and time speedup (should
//! grow with n) for several ε.
//!
//! Run: `cargo run --release -p streamhist-bench --bin agglomerative_vs_optimal`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist_bench::{full_scale, timed};
use streamhist_data::utilization_trace;
use streamhist_optimal::optimal_histogram;
use streamhist_stream::AgglomerativeHistogram;

fn main() {
    let sizes: &[usize] = if full_scale() {
        &[2_000, 4_000, 8_000, 16_000, 32_000, 64_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000, 16_000]
    };
    let b = 32;
    let epss = [0.5f64, 0.1, 0.01];
    println!("EXP-AGG-OPT: one-pass agglomerative vs optimal DP (B = {b})\n");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>10} {:>12} {:>12} {:>9}",
        "n", "eps", "agg SSE", "opt SSE", "SSE ratio", "agg time", "opt time", "speedup"
    );

    for &n in sizes {
        let data = utilization_trace(n, 909);
        let (h_opt, t_opt) = timed(|| optimal_histogram(&data, b));
        let sse_opt = h_opt.sse(&data);
        for &eps in &epss {
            let (h_agg, t_agg) =
                timed(|| AgglomerativeHistogram::from_slice(&data, b, eps).histogram());
            let sse_agg = h_agg.sse(&data);
            let ratio = sse_agg / sse_opt.max(1e-12);
            println!(
                "{:>8} {:>6} {:>12.4e} {:>12.4e} {:>10.4} {:>10.3}s {:>10.3}s {:>8.1}x",
                n,
                eps,
                sse_agg,
                sse_opt,
                ratio,
                t_agg.as_secs_f64(),
                t_opt.as_secs_f64(),
                t_opt.as_secs_f64() / t_agg.as_secs_f64().max(1e-12)
            );
            println!(
                "csv,agg_vs_opt,{n},{b},{eps},{sse_agg},{sse_opt},{},{}",
                t_agg.as_secs_f64(),
                t_opt.as_secs_f64()
            );
            assert!(
                ratio <= 1.0 + eps + 1e-6,
                "approximation guarantee violated: {ratio} > 1 + {eps}"
            );
        }
    }
    println!("\n(all SSE ratios verified <= 1 + eps)");
}
