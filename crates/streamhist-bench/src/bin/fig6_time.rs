//! FIG6-CD — reproduces the paper's Figure 6(c)-(d): construction /
//! incremental-maintenance time of fixed-window histograms as the window
//! length varies, for two bucket budgets, at ε = 0.1 (panel c) and
//! ε = 0.01 (panel d).
//!
//! Paper claims to reproduce: "Fixed window histograms require more time to
//! compute as B increases or ε decreases. However, the penalty is small";
//! and (omitted from their figure) the wavelet construction time was "much
//! worse ... (up to an order of magnitude)".
//!
//! Run: `cargo run --release -p streamhist-bench --bin fig6_time`
//! (set `STREAMHIST_FULL=1` for the 1M-point paper-scale stream).

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::time::Duration;
use streamhist_bench::{full_scale, timed};
use streamhist_data::utilization_trace;
use streamhist_stream::FixedWindowHistogram;
use streamhist_wavelet::SlidingWindowWavelet;

fn main() {
    let (stream_len, materialize_every) = if full_scale() {
        (1_000_000usize, 4096usize)
    } else {
        (50_000, 2048)
    };
    let stream = utilization_trace(stream_len, 20_022);
    let windows = [256usize, 512, 1024, 2048];
    let bs = [8usize, 16];
    let epss = [0.1f64, 0.01];

    println!(
        "FIG6-CD: maintenance time over a {stream_len}-point stream \
         (histogram materialized every {materialize_every} pushes)\n"
    );
    println!(
        "{:>6} {:>4} {:>6} {:>12} {:>14} {:>12} {:>12}",
        "window", "B", "eps", "hist total", "hist us/push", "wave total", "ratio"
    );

    for &eps in &epss {
        for &b in &bs {
            for &window in &windows {
                // Fixed-window histogram: O(1) pushes + periodic CreateList.
                let mut fw = FixedWindowHistogram::new(window, b, eps);
                let ((), hist_time) = timed(|| {
                    for (t, &v) in stream.iter().enumerate() {
                        fw.push(v);
                        if t + 1 >= window && (t + 1) % materialize_every == 0 {
                            std::hint::black_box(fw.histogram());
                        }
                    }
                });

                // Wavelet baseline: recompute from scratch at the same cadence.
                let mut wv = SlidingWindowWavelet::new(window, b);
                let ((), wave_time) = timed(|| {
                    for (t, &v) in stream.iter().enumerate() {
                        wv.push(v);
                        if t + 1 >= window && (t + 1) % materialize_every == 0 {
                            std::hint::black_box(wv.synopsis());
                        }
                    }
                });

                let us_per_push = hist_time.as_secs_f64() * 1e6 / stream_len as f64;
                println!(
                    "{:>6} {:>4} {:>6} {:>12} {:>14.2} {:>12} {:>11.2}x",
                    window,
                    b,
                    eps,
                    fmt_dur(hist_time),
                    us_per_push,
                    fmt_dur(wave_time),
                    wave_time.as_secs_f64() / hist_time.as_secs_f64().max(1e-12)
                );
                println!(
                    "csv,fig6_time,{window},{b},{eps},{},{}",
                    hist_time.as_secs_f64(),
                    wave_time.as_secs_f64()
                );
            }
        }
        println!();
    }
}

fn fmt_dur(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}
