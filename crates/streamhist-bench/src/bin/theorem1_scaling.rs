//! THM1-SCALING — sanity-checks the shape of Theorem 1: the fixed-window
//! materialization cost is `O((B³/ε²) log³ n)` — polylogarithmic in the
//! window length but polynomial in `B` and `1/ε` — and compares it against
//! the naive `O(n²B)` per-window DP, locating the crossover where the
//! paper's algorithm starts winning.
//!
//! Run: `cargo run --release -p streamhist-bench --bin theorem1_scaling`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist_bench::{full_scale, timed};
use streamhist_data::utilization_trace;
use streamhist_stream::{FixedWindowHistogram, NaiveSlidingWindow};

fn materialization_cost(
    window: usize,
    b: usize,
    eps: f64,
    stream: &[f64],
) -> (f64, f64, Vec<usize>) {
    let mut fw = FixedWindowHistogram::new(window, b, eps);
    for &v in &stream[..window] {
        fw.push(v);
    }
    // Time several materializations at different window positions.
    let reps = 5usize;
    let mut total = 0.0;
    let mut stats = Vec::new();
    for r in 0..reps {
        fw.push(stream[window + r]);
        let ((_, s), t) = timed(|| fw.histogram_with_stats());
        total += t.as_secs_f64();
        stats = s.queue_sizes;
    }
    // Naive DP on the same windows.
    let mut naive = NaiveSlidingWindow::new(window, b);
    for &v in &stream[..window] {
        naive.push(v);
    }
    let mut naive_total = 0.0;
    for r in 0..reps {
        naive.push(stream[window + r]);
        let (h, t) = timed(|| naive.histogram());
        std::hint::black_box(h);
        naive_total += t.as_secs_f64();
    }
    (total / reps as f64, naive_total / reps as f64, stats)
}

fn main() {
    let max_window = if full_scale() { 32_768 } else { 8_192 };
    let stream = utilization_trace(max_window + 16, 555);

    println!("THM1-SCALING: per-materialization cost, CreateList vs naive O(n^2 B) DP\n");
    println!(
        "{:>6} {:>4} {:>6} {:>14} {:>14} {:>9} {:>16}",
        "window", "B", "eps", "CreateList", "naive DP", "speedup", "queue sizes"
    );

    // Sweep window length at fixed (B, eps) — cost should grow much slower
    // than the naive DP's quadratic growth.
    for &(b, eps) in &[(4usize, 1.0f64), (8, 0.5), (8, 0.1)] {
        let mut w = 512usize;
        while w <= max_window {
            let (fw_t, naive_t, qs) = materialization_cost(w, b, eps, &stream);
            let qsum: usize = qs.iter().sum();
            println!(
                "{:>6} {:>4} {:>6} {:>13.3}ms {:>13.3}ms {:>8.1}x {:>16}",
                w,
                b,
                eps,
                fw_t * 1e3,
                naive_t * 1e3,
                naive_t / fw_t.max(1e-12),
                format!("sum={qsum}")
            );
            println!("csv,thm1_window,{w},{b},{eps},{fw_t},{naive_t},{qsum}");
            w *= 2;
        }
        println!();
    }

    // Sweep B and eps at a fixed window — cost should grow with B and 1/eps.
    let w = if full_scale() { 8_192 } else { 4_096 };
    println!("fixed window = {w}: cost vs B and eps");
    for &b in &[2usize, 4, 8, 16] {
        for &eps in &[1.0f64, 0.5, 0.1] {
            let (fw_t, _, qs) = materialization_cost(w, b, eps, &stream);
            let qsum: usize = qs.iter().sum();
            println!(
                "  B={b:<3} eps={eps:<5} CreateList = {:>9.3}ms  (queue total {qsum})",
                fw_t * 1e3
            );
            println!("csv,thm1_beps,{w},{b},{eps},{fw_t},{qsum}");
        }
    }
}
