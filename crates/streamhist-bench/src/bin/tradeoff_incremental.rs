//! TRADEOFF-INC — the paper's closing remark of §4.5: "if we were to use
//! this algorithm to compute the approximate histogram for an
//! agglomerative problem (which require one solution after seeing all
//! points, as opposed to 1 solution on seeing every new point), the
//! running time increases ... This is an interesting tradeoff between the
//! incremental nature and speed of the algorithm."
//!
//! Concretely: to summarize a whole prefix once, the agglomerative
//! algorithm pays per-push queue maintenance for every point, while the
//! fixed-window machinery (window = whole prefix) pays O(1) per push and
//! one CreateList at the end. This harness measures both, plus the
//! opposite regime — a solution needed after *every* push — where the
//! incremental agglomerative algorithm wins.
//!
//! Run: `cargo run --release -p streamhist-bench --bin tradeoff_incremental`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist_bench::{full_scale, timed};
use streamhist_data::utilization_trace;
use streamhist_stream::{AgglomerativeHistogram, FixedWindowHistogram};

fn main() {
    let sizes: &[usize] = if full_scale() {
        &[16_384, 65_536, 262_144]
    } else {
        &[8_192, 32_768]
    };
    let b = 8usize;
    let eps = 0.5f64;

    println!("TRADEOFF-INC: one-shot vs per-push summaries (B = {b}, eps = {eps})\n");
    println!(
        "{:>8} {:>22} {:>22} {:>14}",
        "n", "one-shot: agg / fw", "per-push: agg / fw", "answers match"
    );

    for &n in sizes {
        let data = utilization_trace(n, 303);

        // One solution after seeing all points.
        let (h_agg, t_agg_once) = timed(|| {
            let mut a = AgglomerativeHistogram::new(b, eps);
            for &v in &data {
                a.push(v);
            }
            a.histogram()
        });
        let (h_fw, t_fw_once) = timed(|| {
            let mut fw = FixedWindowHistogram::new(n, b, eps);
            for &v in &data {
                fw.push(v);
            }
            fw.histogram()
        });

        // A solution after every push (measured on a prefix to keep the
        // quadratic-ish cost affordable, then scaled per push).
        let per_push_n = (n / 8).max(1_024);
        let (_, t_agg_every) = timed(|| {
            let mut a = AgglomerativeHistogram::new(b, eps);
            for &v in &data[..per_push_n] {
                a.push(v);
                std::hint::black_box(a.histogram());
            }
        });
        let (_, t_fw_every) = timed(|| {
            let mut fw = FixedWindowHistogram::new(per_push_n, b, eps);
            for &v in &data[..per_push_n] {
                std::hint::black_box(fw.push_and_build(v));
            }
        });

        let sse_match = {
            let (sa, sf) = (h_agg.sse(&data), h_fw.sse(&data));
            (sa - sf).abs() <= 0.05 * sa.max(sf).max(1.0)
        };
        println!(
            "{:>8} {:>10.3}s / {:>7.3}s {:>10.3}s / {:>7.3}s {:>14}",
            n,
            t_agg_once.as_secs_f64(),
            t_fw_once.as_secs_f64(),
            t_agg_every.as_secs_f64(),
            t_fw_every.as_secs_f64(),
            if sse_match { "yes" } else { "within (1+eps)" }
        );
        println!(
            "csv,tradeoff,{n},{b},{eps},{},{},{},{}",
            t_agg_once.as_secs_f64(),
            t_fw_once.as_secs_f64(),
            t_agg_every.as_secs_f64(),
            t_fw_every.as_secs_f64()
        );
    }
    println!(
        "\n(one-shot: the fixed-window machinery wins — O(1) pushes + one CreateList;\n\
         per-push: the agglomerative algorithm wins — incremental queues beat\n\
         rebuilding CreateList from scratch every arrival. The paper's §4.5 tradeoff.)"
    );
}
