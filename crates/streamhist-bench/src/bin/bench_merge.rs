//! BENCH-MERGE — fleet-global snapshot latency and accuracy.
//!
//! Exercises the scatter/gather path end to end: a sharded fleet ingests a
//! stream, `snapshot_global()` gathers the per-shard V-optimal histograms
//! into one `B`-bucket fleet histogram, and the harness measures
//!
//! * **latency** — wall time of `snapshot_global()` after a fresh slab
//!   has been pushed *and drained* (per-shard barrier snapshots first, so
//!   the cache deterministically misses and the per-shard histograms are
//!   already materialized): the measured cost is the gather itself —
//!   every kernel re-optimization in the merge tree;
//! * **accuracy** — SSE of the gathered histogram against the true
//!   concatenated fleet window `u`, compared to the exact-replay optimum
//!   `OPT_B(u)` and checked against the documented gather bound
//!   (DESIGN.md §7): `√SSE ≤ √G + √(1+ε)·(√G + √OPT_B(u))` with
//!   `G = Σᵢ SSE(ĥᵢ, windowᵢ)`.
//!
//! Fleets of 1, 4 and 16 shards run with a flat gather; the 16-shard
//! fleet additionally runs a two-level `gather_fanout(4)` aggregation
//! tree, whose bound composes once per level.
//!
//! Output: a human-readable table plus `BENCH_merge.json` (written to the
//! current directory). **Exits nonzero** if any configuration's measured
//! global error exceeds its composed bound — the CI merge-smoke gate.
//!
//! Run: `cargo run --release -p streamhist-bench --bin bench_merge`
//! (set `STREAMHIST_FULL=1` for the paper-scale stream).

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::fmt::Write as _;
use std::time::Instant;
use streamhist_bench::full_scale;
use streamhist_data::utilization_trace;
use streamhist_optimal::optimal_sse;
use streamhist_stream::ShardedFixedWindow;

struct Row {
    shards: usize,
    fanout: usize, // 0 = flat gather
    points: usize,
    snapshot_secs: f64,
    merges: u64,
    sse: f64,
    gather_term: f64,
    opt: f64,
    bound_sq: f64,
}

fn run(shards: usize, fanout: usize, window: usize, b: usize, eps: f64) -> Row {
    let mut builder = ShardedFixedWindow::builder(shards, window, b, eps);
    if fanout > 0 {
        builder = builder.gather_fanout(fanout);
    }
    let fleet = builder.build().expect("valid config");

    // Fill every window twice over so the fleet is at steady state.
    let total = shards * window;
    let stream = utilization_trace(2 * total, 42 + shards as u64);
    fleet.push_batch_scatter(&stream).expect("lossless push");
    let _ = fleet.snapshot_global().expect("fleet healthy"); // warm-up build

    // Latency: invalidate with a small slab, drain it behind a per-shard
    // barrier (pushes are queued asynchronously — an undrained slab is
    // not yet absorbed, so the cached view would still be current and the
    // gather would be skipped), then time the global gather. The barrier
    // also materializes each shard's histogram, so the sample isolates
    // the merge tree.
    let iters = if full_scale() { 20 } else { 5 };
    let slab = utilization_trace(shards, 7);
    let mut secs = 0.0;
    for _ in 0..iters {
        fleet.push_batch_scatter(&slab).expect("lossless push");
        for s in 0..shards {
            let _ = fleet.snapshot(s).expect("worker alive");
        }
        let t0 = Instant::now();
        let _ = fleet.snapshot_global().expect("fleet healthy");
        secs += t0.elapsed().as_secs_f64();
    }
    let snapshot_secs = secs / iters as f64;

    // Accuracy: gather once more, then join to recover the true windows
    // (no pushes in between, so the snapshot covers exactly these).
    let (global, _) = fleet.snapshot_global().expect("fleet healthy");
    let merges = fleet.merge_metrics().merges;
    let summaries: Vec<_> = fleet
        .join()
        .into_iter()
        .map(|r| r.expect("worker alive"))
        .collect();
    let mut u = Vec::with_capacity(total);
    let mut gather_term = 0.0f64;
    for fw in &summaries {
        let w = fw.window();
        gather_term += fw.histogram().sse(&w);
        u.extend_from_slice(&w);
    }
    assert_eq!(global.domain_len(), u.len(), "snapshot covers the fleet");

    let sse = global.sse(&u);
    let opt = optimal_sse(&u, b);
    let bound = gather_term.sqrt() + (1.0 + eps).sqrt() * (gather_term.sqrt() + opt.sqrt());
    Row {
        shards,
        fanout,
        points: u.len(),
        snapshot_secs,
        merges,
        sse,
        gather_term,
        opt,
        bound_sq: bound * bound,
    }
}

fn to_json(rows: &[Row], window: usize, b: usize, eps: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"config\": {{\"window_per_shard\": {window}, \"b\": {b}, \"eps\": {eps}}},"
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shards\": {}, \"gather_fanout\": {}, \"points\": {}, \
             \"snapshot_secs\": {:.6}, \"merges\": {}, \"sse\": {:.6}, \
             \"gather_term\": {:.6}, \"optimal_sse\": {:.6}, \"bound\": {:.6}}}",
            r.shards,
            r.fanout,
            r.points,
            r.snapshot_secs,
            r.merges,
            r.sse,
            r.gather_term,
            r.opt,
            r.bound_sq
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let window = if full_scale() { 1_024usize } else { 256usize };
    let (b, eps) = (8usize, 0.1f64);

    println!("BENCH-MERGE: window/shard {window}, B {b}, eps {eps}\n");
    println!(
        "{:>7} {:>7} {:>8} {:>13} {:>7} {:>12} {:>12} {:>12}",
        "shards", "fanout", "points", "snapshot_s", "merges", "sse", "optimal", "bound"
    );

    let configs = [(1usize, 0usize), (4, 0), (16, 0), (16, 4)];
    let mut rows = Vec::new();
    for (shards, fanout) in configs {
        rows.push(run(shards, fanout, window, b, eps));
    }
    for r in &rows {
        println!(
            "{:>7} {:>7} {:>8} {:>13.6} {:>7} {:>12.3} {:>12.3} {:>12.3}",
            r.shards, r.fanout, r.points, r.snapshot_secs, r.merges, r.sse, r.opt, r.bound_sq
        );
        println!(
            "csv,{},{},{},{:.6},{},{:.6},{:.6},{:.6}",
            r.shards, r.fanout, r.points, r.snapshot_secs, r.merges, r.sse, r.opt, r.bound_sq
        );
    }

    let json = to_json(&rows, window, b, eps);
    std::fs::write("BENCH_merge.json", &json).expect("write BENCH_merge.json");
    println!("\nwrote BENCH_merge.json");

    // The accuracy gate: every configuration must honour the documented
    // gather bound. Tiny additive slack absorbs f64 summation order.
    for r in &rows {
        assert!(
            r.sse.sqrt() <= r.bound_sq.sqrt() + 1e-6,
            "{} shards (fanout {}): global SSE {:.6} exceeds the \
             documented gather bound {:.6} (G {:.6}, OPT {:.6})",
            r.shards,
            r.fanout,
            r.sse,
            r.bound_sq,
            r.gather_term,
            r.opt
        );
    }
    println!("all configurations within the documented gather bound");
}
