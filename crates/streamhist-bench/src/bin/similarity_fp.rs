//! EXP-SIM — reproduces the paper's §5.2 third summarized experiment:
//! "Our results indicate that the histogram approximations resulting from
//! our algorithms are far superior than those resulting from the APCA
//! algorithm of Keogh et al. ... reflected in these problems by reducing
//! the number of false positives during time series similarity indexing,
//! while remaining competitive in terms of the time required to approximate
//! the time series."
//!
//! Protocol: series share a flat noisy base and differ by three plateaus
//! at per-series, non-dyadic positions (a plateau hidden inside a segment
//! of length `L` contributes only `~mass/L` to the lower bound instead of
//! its true mass, so segmentation quality controls the false-positive
//! rate). GEMINI
//! range queries at radii set to fractions of the mean pairwise distance;
//! report false positives and representation-build time per method, for
//! whole-series and subsequence matching.
//!
//! Run: `cargo run --release -p streamhist-bench --bin similarity_fp`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamhist_bench::{full_scale, timed};
use streamhist_data::{Diurnal, Mixture, SpikeTrain};
use streamhist_similarity::{euclidean, ReprMethod, SeriesIndex, SubsequenceIndex};

/// Shared flat base with light noise + three per-series plateaus of width
/// 4-8 at arbitrary (non-dyadic) positions: plateau boundaries are what
/// the segmentations compete on (a plateau hidden inside a segment of
/// length `L` contributes only `~mass/L` to the lower bound).
fn collection(count: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
            let mut s: Vec<f64> = (0..len).map(|_| 100.0 + rng.gen_range(-2.0..2.0)).collect();
            for _ in 0..3 {
                let w = rng.gen_range(4..9);
                let at = rng.gen_range(0..len - w);
                let h = rng.gen_range(40.0..90.0);
                for v in s.iter_mut().skip(at).take(w) {
                    *v += h;
                }
            }
            s
        })
        .collect()
}

fn mean_pairwise(coll: &[Vec<f64>], samples: usize) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..samples.min(coll.len()) {
        for j in (i + 1)..samples.min(coll.len()) {
            total += euclidean(&coll[i], &coll[j]);
            count += 1;
        }
    }
    total / count as f64
}

fn main() {
    let (count, len, n_queries) = if full_scale() {
        (1_000, 256, 100)
    } else {
        (300, 128, 50)
    };
    let m = 8;
    let coll = collection(count, len, 31);
    let d_typ = mean_pairwise(&coll, 40);
    let queries: Vec<Vec<f64>> = (0..n_queries)
        .map(|k| {
            let base = &coll[(k * 13) % count];
            base.iter()
                .enumerate()
                .map(|(i, v)| v + ((i * (k + 1)) % 3) as f64 * 0.5)
                .collect()
        })
        .collect();
    let radii_frac = [0.4f64, 0.6, 0.8];

    println!(
        "EXP-SIM (whole matching): {count} series x {len} points, {m} segments, \
         {n_queries} queries, mean pairwise distance {d_typ:.0}\n"
    );
    println!(
        "{:>24} {:>8} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "representation", "radius", "answers", "candidates", "false pos", "FP rate", "build time"
    );

    let methods: [(&str, ReprMethod); 3] = [
        ("APCA", ReprMethod::Apca),
        ("V-optimal eps=0.1", ReprMethod::VOptimalApprox { eps: 0.1 }),
        ("V-optimal exact", ReprMethod::VOptimalExact),
    ];

    for (name, method) in methods {
        let (index, build_time) = timed(|| SeriesIndex::build(coll.clone(), m, method));
        for &frac in &radii_frac {
            let radius = frac * d_typ;
            let (mut answers, mut candidates, mut fps) = (0usize, 0usize, 0usize);
            for q in &queries {
                let (hits, stats) = index.range_query(q, radius);
                answers += hits.len();
                candidates += stats.candidates;
                fps += stats.false_positives;
            }
            let fp_rate = 100.0 * fps as f64 / candidates.max(1) as f64;
            println!(
                "{:>24} {:>7.2} {:>10} {:>12} {:>12} {:>9.1}% {:>11.3}s",
                name,
                radius,
                answers,
                candidates,
                fps,
                fp_rate,
                build_time.as_secs_f64()
            );
            println!(
                "csv,similarity_whole,{name},{frac},{answers},{candidates},{fps},{}",
                build_time.as_secs_f64()
            );
        }
    }

    // Subsequence matching over one long stream with the same structure.
    let long_len = if full_scale() { 131_072 } else { 32_768 };
    let window = 128;
    let step = 16;
    let mut long: Vec<f64> = Mixture::new(vec![
        Box::new(Diurnal::new(404, 60.0, 20.0, 512, 1.0)),
        Box::new(SpikeTrain::new(405, 0.02, 40.0)),
    ])
    .take(long_len)
    .collect();
    // Plant patterns.
    let planted = [long_len / 4, long_len / 2, 3 * long_len / 4];
    for &at in &planted {
        for (i, v) in long.iter_mut().enumerate().skip(at).take(window) {
            *v = if (i - at) % 64 < 32 { 250.0 } else { 180.0 };
        }
    }
    println!(
        "\nEXP-SIM (subsequence matching): {long_len}-point stream, window {window}, \
         step {step}, patterns planted at {planted:?}\n"
    );
    println!(
        "{:>24} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "representation", "found", "candidates", "false pos", "FP rate", "build time"
    );
    let pattern = long[planted[0]..planted[0] + window].to_vec();
    for (name, method) in [
        ("APCA", ReprMethod::Apca),
        ("V-optimal eps=0.1", ReprMethod::VOptimalApprox { eps: 0.1 }),
    ] {
        let (idx, build_time) = timed(|| SubsequenceIndex::build(&long, window, step, m, method));
        let (hits, stats) = idx.range_query(&pattern, 80.0);
        let found = planted.iter().filter(|&&p| hits.contains(&p)).count();
        println!(
            "{:>24} {:>6}/{:<3} {:>12} {:>12} {:>9.1}% {:>11.3}s",
            name,
            found,
            planted.len(),
            stats.candidates,
            stats.false_positives,
            100.0 * stats.false_positives as f64 / stats.candidates.max(1) as f64,
            build_time.as_secs_f64()
        );
        println!(
            "csv,similarity_subseq,{name},{found},{},{},{}",
            stats.candidates,
            stats.false_positives,
            build_time.as_secs_f64()
        );
        assert_eq!(
            found,
            planted.len(),
            "lower bounding must not dismiss planted matches"
        );
    }
}
