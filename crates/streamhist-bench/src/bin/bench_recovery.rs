//! BENCH-RECOVERY — mean-time-to-recovery of the self-healing fleet.
//!
//! Stands a supervised, durable, sharded fleet up, then repeatedly kills
//! one worker and measures **MTTR**: the wall-clock time from the injected
//! panic to the moment the same shard serves a snapshot again, with the
//! supervisor doing every part of the recovery on its own (probe → detect
//! → store-backed respawn → serve). Ingest keeps running between kills so
//! recovery is measured against a moving fleet, not a museum piece.
//!
//! Gates — the run **exits nonzero** if:
//!
//! * any single kill's MTTR exceeds [`MTTR_GATE`] (2s — generous against
//!   a 2ms probe interval precisely so only an order-of-magnitude
//!   regression, like a stuck probe thread or a respawn deadlock, trips
//!   it on a noisy CI machine);
//! * conservation is violated: accepted records fleet-wide must equal the
//!   surviving summaries' totals plus every record the supervisor
//!   reported lost — a self-healing fleet that silently loses more than
//!   it admits is worse than one that stays down.
//!
//! Output: a human-readable summary plus `BENCH_recovery.json` (current
//! directory) with per-kill MTTR percentiles and the loss ledger — the
//! CI recovery-smoke artifact.
//!
//! Run: `cargo run --release -p streamhist-bench --bin bench_recovery`
//! (set `STREAMHIST_FULL=1` for more kill rounds).

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamhist_bench::full_scale;
use streamhist_core::MemStore;
use streamhist_data::utilization_trace;
use streamhist_stream::{
    DurabilityOptions, FleetHandle, ShardedFixedWindow, Supervisor, SupervisorOptions,
};

/// Per-kill MTTR ceiling. See the module docs for why it is this loose.
const MTTR_GATE: Duration = Duration::from_secs(2);

fn percentile(sorted: &[u64], phi: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * phi).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let shards = 4;
    let window = 1024;
    let b = 8;
    let eps = 0.1;
    let kills: usize = if full_scale() { 32 } else { 16 };

    // A durable fleet (MemStore keeps the bench hermetic; the recovery
    // path through it is byte-identical to DirStore's) under a fast-probe
    // supervisor. flap_window is zero because this harness kills shards
    // on purpose: rapid deaths are the workload, not flapping.
    let store = Arc::new(MemStore::new());
    let fleet = ShardedFixedWindow::builder(shards, window, b, eps)
        .checkpoint_interval(256)
        .durability(
            DurabilityOptions::new(Arc::clone(&store) as _)
                .wal_sync(64)
                .checkpoint_interval(256),
        )
        .build()
        .expect("valid durable fleet");
    let handle = FleetHandle::new(fleet);
    let trace = utilization_trace(2 * shards * window, 42);
    handle.push_batch_scatter(&trace).expect("fleet healthy");
    let options = SupervisorOptions {
        probe_interval: Duration::from_millis(2),
        ping_timeout: Duration::from_millis(100),
        restart_burst: 4,
        restart_refill: Duration::ZERO,
        quarantine_after: 1_000_000,
        quarantine_backoff: Duration::ZERO,
        flap_window: Duration::ZERO,
    };
    let sup = Supervisor::start(handle.clone(), options).expect("valid supervisor options");

    // Kill rounds: panic one worker, stamp the clock, poll the same shard
    // until it serves a snapshot again. Between rounds, keep ingesting so
    // every recovery happens against live traffic.
    let mut mttr_ns: Vec<u64> = Vec::with_capacity(kills);
    let slab: Vec<f64> = trace.iter().copied().take(512).collect();
    for round in 0..kills {
        let shard = round % shards;
        handle
            .push_batch_scatter(&slab)
            .expect("fleet healthy before the kill");
        let killed_at = Instant::now();
        handle
            .inject_worker_panic(shard)
            .expect("valid index")
            .expect("worker alive before the kill");
        loop {
            if let Ok(Ok(_)) = handle.snapshot_shard(shard) {
                break;
            }
            if killed_at.elapsed() > 2 * MTTR_GATE {
                eprintln!(
                    "GATE FAIL: shard {shard} not serving {:?} after the kill",
                    2 * MTTR_GATE
                );
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        mttr_ns.push(u64::try_from(killed_at.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    // Quiesce, freeze the supervisor ledger, and check conservation.
    for shard in 0..shards {
        handle
            .snapshot_shard(shard)
            .expect("valid index")
            .expect("fleet healthy at the end");
    }
    let sm = sup.metrics();
    sup.shutdown();
    let metrics = handle.metrics_all();
    let accepted: u64 = metrics.iter().map(|m| m.pushes_accepted).sum();
    let summaries = match handle.try_join() {
        Ok(s) => s,
        Err(_) => {
            eprintln!("GATE FAIL: a fleet handle leaked; cannot audit the summaries");
            std::process::exit(1);
        }
    };
    let surviving: u64 = summaries
        .into_iter()
        .map(|r| r.expect("worker alive at join").total_pushed())
        .sum();

    mttr_ns.sort_unstable();
    let p50 = percentile(&mttr_ns, 0.50);
    let p99 = percentile(&mttr_ns, 0.99);
    let max = mttr_ns.last().copied().unwrap_or(0);
    println!(
        "recovery: {kills} kills across {shards} shards, MTTR p50 {:.2}ms p99 {:.2}ms max {:.2}ms",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        max as f64 / 1e6
    );
    println!(
        "ledger: {} deaths observed, {} restarts, {} records lost; accepted {accepted} = \
         surviving {surviving} + lost {}",
        sm.deaths, sm.restarts, sm.records_lost, sm.records_lost
    );

    // --- JSON artifact. ---
    let gate_ns = u64::try_from(MTTR_GATE.as_nanos()).expect("fits");
    let conserved = accepted == surviving + sm.records_lost;
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"shards\": {shards}, \"window_per_shard\": {window}, \"b\": {b}, \
         \"eps\": {eps}, \"kills\": {kills}, \"probe_interval_ms\": 2, \
         \"mttr_gate_ns\": {gate_ns}}},"
    );
    let _ = writeln!(json, "  \"mttr_p50_ns\": {p50},");
    let _ = writeln!(json, "  \"mttr_p99_ns\": {p99},");
    let _ = writeln!(json, "  \"mttr_max_ns\": {max},");
    let _ = writeln!(json, "  \"deaths\": {},", sm.deaths);
    let _ = writeln!(json, "  \"restarts\": {},", sm.restarts);
    let _ = writeln!(json, "  \"records_lost\": {},", sm.records_lost);
    let _ = writeln!(json, "  \"accepted\": {accepted},");
    let _ = writeln!(json, "  \"surviving\": {surviving},");
    let _ = writeln!(json, "  \"conservation_ok\": {conserved}");
    json.push_str("}\n");
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");

    // --- Gates. ---
    let mut failed = false;
    if max > gate_ns {
        eprintln!(
            "GATE FAIL: max MTTR {:.2}ms exceeds the {:.0}ms gate",
            max as f64 / 1e6,
            gate_ns as f64 / 1e6
        );
        failed = true;
    }
    if !conserved {
        eprintln!(
            "GATE FAIL: conservation violated: accepted {accepted} != surviving {surviving} \
             + lost {}",
            sm.records_lost
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("gates passed: every MTTR under the gate, every record accounted for");
}
