//! EXT-SEL — extension experiment: the `[IP95]`-style comparison of
//! histogram bucketization policies for range-predicate selectivity
//! estimation, the query-optimization setting the paper's V-optimal
//! objective originates from.
//!
//! Protocol: stream values from a skewed (Zipfian) and a multimodal
//! distribution into a frequency vector; build each policy's histogram at
//! matched bucket budgets; evaluate random range predicates; report mean
//! absolute / relative count errors. Expected ordering (the classical
//! result): V-optimal <= MaxDiff < equi-depth < equi-width on skewed data.
//!
//! Run: `cargo run --release -p streamhist-bench --bin selectivity_estimation`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamhist_bench::full_scale;
use streamhist_data::{collect, Zipfian};
use streamhist_freq::{evaluate_selectivity, FrequencyVector, ValueHistogram};

fn multimodal(seed: u64, n: usize, domain: i64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mode = rng.gen_range(0..3);
            let center = [domain / 6, domain / 2, 5 * domain / 6][mode];
            let spread = domain / 20;
            (center + rng.gen_range(-spread..=spread)).clamp(0, domain - 1)
        })
        .collect()
}

fn main() {
    let n = if full_scale() { 2_000_000 } else { 200_000 };
    let domain = 1_024i64;
    let budgets = [16usize, 32, 64];
    let predicates: Vec<(i64, i64)> = {
        let mut rng = StdRng::seed_from_u64(99);
        (0..2_000)
            .map(|_| {
                let a = rng.gen_range(0..domain);
                let span = rng.gen_range(1..=domain / 4);
                (a, (a + span - 1).min(domain - 1))
            })
            .collect()
    };

    let workloads: Vec<(&str, Vec<i64>)> = vec![
        (
            "zipf(1.1)",
            collect(Zipfian::new(7, domain as usize, 1.1), n)
                .into_iter()
                .map(|v| v as i64 - 1)
                .collect(),
        ),
        ("multimodal", multimodal(8, n, domain)),
    ];

    println!(
        "EXT-SEL: selectivity estimation over a {domain}-value domain, {n} stream values, \
         2000 random range predicates\n"
    );
    for (wname, values) in &workloads {
        let freq = FrequencyVector::from_values(values.iter().copied(), 0, domain - 1);
        println!("workload: {wname} (total {} values)", freq.total());
        println!(
            "  {:>4} {:>18} {:>14} {:>10} {:>14}",
            "B", "policy", "mean |err|", "rel err", "max |err|"
        );
        for &b in &budgets {
            let policies: Vec<(&str, ValueHistogram)> = vec![
                ("v-optimal", ValueHistogram::v_optimal(&freq, b)),
                (
                    "v-opt eps=0.1",
                    ValueHistogram::v_optimal_approx(&freq, b, 0.1),
                ),
                ("max-diff", ValueHistogram::max_diff(&freq, b)),
                ("equi-depth", ValueHistogram::equi_depth(&freq, b)),
                ("equi-width", ValueHistogram::equi_width(&freq, b)),
            ];
            for (pname, h) in &policies {
                let r = evaluate_selectivity(&freq, h, &predicates);
                println!(
                    "  {:>4} {:>18} {:>14.1} {:>9.2}% {:>14.1}",
                    b,
                    pname,
                    r.mean_abs_error,
                    100.0 * r.mean_rel_error,
                    r.max_abs_error
                );
                println!(
                    "csv,selectivity,{wname},{b},{pname},{},{},{}",
                    r.mean_abs_error, r.mean_rel_error, r.max_abs_error
                );
            }
            println!();
        }
    }
}
