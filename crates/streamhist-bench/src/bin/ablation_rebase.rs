//! ABL-REBASE — ablation of the sliding prefix-sum rebase period.
//!
//! The paper's fixed-window algorithm re-anchors the `SUM'`/`SQSUM'`
//! arrays "from time to time (after n iterations)", arguing the `O(n)`
//! cost "amortized over n iterations, can be ignored" (§4.5). This harness
//! measures total push throughput for rebase periods n/4, n, 4n and
//! confirms answers are identical regardless of period.
//!
//! Run: `cargo run --release -p streamhist-bench --bin ablation_rebase`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist_bench::{full_scale, timed};
use streamhist_data::utilization_trace;
use streamhist_stream::FixedWindowHistogram;

fn main() {
    let window = 4_096usize;
    let stream_len = if full_scale() { 4_000_000 } else { 1_000_000 };
    let stream = utilization_trace(stream_len, 616);
    let (b, eps) = (8usize, 0.5f64);

    println!("ABL-REBASE: {stream_len} pushes through a {window}-window (B = {b}, eps = {eps})\n");
    println!(
        "{:>12} {:>12} {:>14} {:>18}",
        "period", "push total", "ns/push", "final boundaries"
    );

    let mut reference: Option<Vec<usize>> = None;
    for (name, period) in [
        ("n/4", window / 4),
        ("n (paper)", window),
        ("4n", window * 4),
    ] {
        let mut fw = FixedWindowHistogram::with_rebase_period(window, b, eps, period);
        let ((), t) = timed(|| {
            for &v in &stream {
                fw.push(v);
            }
        });
        let ends = fw.histogram().bucket_ends();
        match &reference {
            None => reference = Some(ends.clone()),
            Some(r) => assert_eq!(
                r, &ends,
                "rebase period must not change the computed histogram"
            ),
        }
        println!(
            "{:>12} {:>11.3}s {:>14.1} {:>18}",
            name,
            t.as_secs_f64(),
            t.as_secs_f64() * 1e9 / stream_len as f64,
            format!("{} buckets", ends.len())
        );
        println!("csv,ablation_rebase,{period},{}", t.as_secs_f64());
    }
    println!("\n(all periods produced identical histograms; push cost stays O(1) amortized)");
}
