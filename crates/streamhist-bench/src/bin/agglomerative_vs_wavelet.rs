//! EXP-AGG-WAV — reproduces the paper's §5.2 first summarized experiment:
//! "We prototyped algorithm AgglomerativeHistogram and evaluated its
//! accuracy and performance for agglomerative stream histogram
//! construction, compared with a wavelet approach. The resulting histograms
//! are superior both in accuracy as well as construction time."
//!
//! Two wavelet comparators are run at the same coefficient budget:
//!
//! * **batch** — one offline top-B transform of the stored sequence (this
//!   stores the whole stream, so it is *not* a stream algorithm; it is the
//!   accuracy ceiling for wavelets and a time lower bound);
//! * **dynamic** — the MVW00-style per-arrival maintenance
//!   (`DynamicWavelet`): exact coefficients updated in `O(log n)` per
//!   point, the fair per-push streaming comparator.
//!
//! Accuracy is measured on random range-sum queries over the whole domain.
//!
//! Run: `cargo run --release -p streamhist-bench --bin agglomerative_vs_wavelet`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist_bench::{accuracy_of, full_scale, timed};
use streamhist_data::utilization_trace;
use streamhist_stream::AgglomerativeHistogram;
use streamhist_wavelet::{DynamicWavelet, WaveletSynopsis};

fn main() {
    let sizes: &[usize] = if full_scale() {
        &[50_000, 100_000, 500_000, 1_000_000]
    } else {
        &[10_000, 50_000, 100_000]
    };
    let bs = [16usize, 32];
    let eps = 0.1;
    let queries = 1_000;

    println!("EXP-AGG-WAV: agglomerative histogram vs wavelet synopses (eps = {eps})\n");
    println!(
        "{:>8} {:>4} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "n",
        "B",
        "agg |err|",
        "wave |err|",
        "agg time",
        "batch t",
        "dynamic t",
        "agg SSE",
        "wave SSE"
    );

    for &n in sizes {
        let stream = utilization_trace(n, 777);
        for &b in &bs {
            let (agg, agg_time) = timed(|| {
                let mut a = AgglomerativeHistogram::new(b, eps);
                for &v in &stream {
                    a.push(v);
                }
                a.histogram()
            });
            let (wav, batch_time) = timed(|| WaveletSynopsis::top_b(&stream, b));
            // Per-arrival dynamic maintenance (same final coefficients).
            let (dyn_wav, dynamic_time) = timed(|| {
                let mut dw = DynamicWavelet::new(n);
                for &v in &stream {
                    dw.push(v);
                }
                dw.synopsis(b)
            });

            let r_agg = accuracy_of(&stream, agg.as_ref(), queries, n as u64);
            let r_wav = accuracy_of(&stream, &wav, queries, n as u64);
            let r_dyn = accuracy_of(&stream, &dyn_wav, queries, n as u64);
            assert!(
                (r_wav.mean_abs_error - r_dyn.mean_abs_error).abs()
                    <= 1e-6 * r_wav.mean_abs_error.max(1.0),
                "dynamic and batch wavelets must agree"
            );

            println!(
                "{:>8} {:>4} {:>12.1} {:>12.1} {:>9.3}s {:>9.3}s {:>9.3}s {:>12.4e} {:>12.4e}",
                n,
                b,
                r_agg.mean_abs_error,
                r_wav.mean_abs_error,
                agg_time.as_secs_f64(),
                batch_time.as_secs_f64(),
                dynamic_time.as_secs_f64(),
                agg.sse(&stream),
                wav.sse(&stream)
            );
            println!(
                "csv,agg_vs_wav,{n},{b},{eps},{},{},{},{},{}",
                r_agg.mean_abs_error,
                r_wav.mean_abs_error,
                agg_time.as_secs_f64(),
                batch_time.as_secs_f64(),
                dynamic_time.as_secs_f64()
            );
        }
    }
    println!(
        "\n(batch wavelet stores the entire stream — it is an accuracy/time ceiling, \
         not a stream algorithm; the dynamic comparator maintains coefficients per arrival)"
    );
}
