//! BENCH-WAL — checkpoint amplification of the durability pipeline.
//!
//! Streams a utilization trace into a durable sharded fleet (per-shard
//! WAL + periodic full frames behind a [`DirStore`]), quiesces, and
//! reports **checkpoint amplification**: bytes written to the store per
//! byte ingested (8 bytes per accepted `f64`). The run then proves the
//! store is actually good for something by rebuilding a second fleet from
//! it and accounting for every record: recovered + unsynced tail ==
//! ingested.
//!
//! **Gates** (exit nonzero on violation):
//!
//! 1. amplification ≤ [`AMPLIFICATION_GATE`] (2.0) at
//!    `checkpoint_interval = 1024` — writing the log must stay cheaper
//!    than writing the data twice;
//! 2. zero dropped segments and zero upload failures
//!    ([`OverloadPolicy::Block`](streamhist_stream::OverloadPolicy) plus a
//!    healthy local store must be lossless);
//! 3. exact recovery accounting — every ingested record is either in the
//!    rebuilt fleet or part of a shard's sub-`wal_sync` unsynced tail.
//!
//! Output: a human-readable summary plus `BENCH_wal.json` (current
//! directory), the CI durability artifact.
//!
//! Run: `cargo run --release -p streamhist-bench --bin bench_wal`
//! (set `STREAMHIST_FULL=1` for a 4x longer trace).

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use streamhist_bench::full_scale;
use streamhist_core::DirStore;
use streamhist_data::utilization_trace;
use streamhist_stream::{DurabilityOptions, ShardedFixedWindow};

/// Ceiling on bytes-written / bytes-ingested. The envelope math for the
/// configuration below lands near 1.8: one WAL segment per 64 records
/// (512 payload bytes + ~20 envelope bytes) plus one ~6 KiB frame per
/// 1024 records per shard.
const AMPLIFICATION_GATE: f64 = 2.0;

fn main() {
    let shards = 4;
    let capacity = 256;
    let b = 8;
    let eps = 0.1;
    let wal_sync = 64;
    let checkpoint_interval = 1024;
    let records: usize = if full_scale() { 262_144 } else { 65_536 };

    let store_dir = std::path::Path::new("target").join("bench-wal-store");
    if store_dir.exists() {
        std::fs::remove_dir_all(&store_dir).expect("clear previous store");
    }
    let store = Arc::new(DirStore::open(&store_dir).expect("open checkpoint store"));

    let fleet = ShardedFixedWindow::builder(shards, capacity, b, eps)
        .durability(
            DurabilityOptions::new(Arc::clone(&store) as _)
                .wal_sync(wal_sync)
                .checkpoint_interval(checkpoint_interval),
        )
        .build()
        .expect("valid durable fleet");

    // --- Ingest, then quiesce: drain every queue, land every upload. ---
    let trace = utilization_trace(records, 42);
    let start = Instant::now();
    for slab in trace.chunks(4096) {
        fleet.push_batch_scatter(slab).expect("lossless ingest");
    }
    for shard in 0..shards {
        fleet.snapshot(shard).expect("worker alive");
    }
    fleet.flush_wal();
    let ingest_secs = start.elapsed().as_secs_f64();

    let status = fleet.wal_status();
    assert!(status.enabled, "durable fleet reports an enabled WAL");
    let accepted: u64 = fleet.metrics_all().iter().map(|m| m.pushes_accepted).sum();
    assert_eq!(accepted as usize, records, "trace is all-finite");

    // --- Rebuild a second fleet from the store; account for everything. ---
    let mut rebuilt = ShardedFixedWindow::builder(shards, capacity, b, eps)
        .build()
        .expect("valid fleet");
    rebuilt
        .load_from_store(store.as_ref())
        .expect("store rebuilds the fleet");
    let recovered: u64 = rebuilt
        .join()
        .into_iter()
        .map(|r| r.expect("worker alive").total_pushed())
        .sum();
    let tail = accepted - recovered;
    for r in fleet.join() {
        r.expect("worker alive at join");
    }

    // --- Report. ---
    println!("BENCH-WAL  ({records} records, {shards} shards, capacity {capacity})");
    println!("  wal_sync {wal_sync}, checkpoint_interval {checkpoint_interval}");
    println!(
        "  ingested {} B, written {} B ({} segments / {} B, {} frames / {} B)",
        status.bytes_ingested,
        status.bytes_written,
        status.segments_written,
        status.segment_bytes,
        status.frames_written,
        status.frame_bytes
    );
    println!(
        "  amplification {:.3} (gate {AMPLIFICATION_GATE}), ingest {:.3}s",
        status.amplification, ingest_secs
    );
    println!(
        "  retries {}, failures {}, dropped {}; recovered {recovered} of {accepted} \
         (unsynced tail {tail})",
        status.retries, status.failures, status.segments_dropped
    );

    // --- JSON artifact. ---
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"shards\": {shards}, \"capacity\": {capacity}, \"b\": {b}, \
         \"eps\": {eps}, \"wal_sync\": {wal_sync}, \
         \"checkpoint_interval\": {checkpoint_interval}, \"records\": {records}, \
         \"amplification_gate\": {AMPLIFICATION_GATE}}},"
    );
    let _ = writeln!(json, "  \"bytes_ingested\": {},", status.bytes_ingested);
    let _ = writeln!(json, "  \"bytes_written\": {},", status.bytes_written);
    let _ = writeln!(json, "  \"segments_written\": {},", status.segments_written);
    let _ = writeln!(json, "  \"segment_bytes\": {},", status.segment_bytes);
    let _ = writeln!(json, "  \"frames_written\": {},", status.frames_written);
    let _ = writeln!(json, "  \"frame_bytes\": {},", status.frame_bytes);
    let _ = writeln!(json, "  \"amplification\": {:.4},", status.amplification);
    let _ = writeln!(json, "  \"retries\": {},", status.retries);
    let _ = writeln!(json, "  \"failures\": {},", status.failures);
    let _ = writeln!(json, "  \"segments_dropped\": {},", status.segments_dropped);
    let _ = writeln!(json, "  \"recovered_records\": {recovered},");
    let _ = writeln!(json, "  \"unsynced_tail\": {tail},");
    let _ = writeln!(json, "  \"ingest_secs\": {ingest_secs:.3}");
    json.push_str("}\n");
    std::fs::write("BENCH_wal.json", &json).expect("write BENCH_wal.json");
    println!("wrote BENCH_wal.json");

    // --- Gates. ---
    let mut failed = false;
    if status.amplification > AMPLIFICATION_GATE {
        eprintln!(
            "GATE FAIL: amplification {:.3} exceeds {AMPLIFICATION_GATE}",
            status.amplification
        );
        failed = true;
    }
    if status.segments_dropped > 0 || status.failures > 0 {
        eprintln!(
            "GATE FAIL: {} dropped segments, {} upload failures on a lossless config",
            status.segments_dropped, status.failures
        );
        failed = true;
    }
    if tail >= (shards * wal_sync) as u64 {
        eprintln!(
            "GATE FAIL: unsynced tail {tail} >= {} — records unaccounted for",
            shards * wal_sync
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("gates passed: amplification under {AMPLIFICATION_GATE}, lossless, exact accounting");
}
