//! BENCH-SERVE — loopback load test of the framed TCP query front-end.
//!
//! Stands up a [`QueryServer`] over a live sharded fleet, then:
//!
//! 1. **Correctness gate** — for a sweep of index-domain queries, the
//!    answer read over the wire must be *bit-identical* to evaluating the
//!    same [`Query`](streamhist_core::Query) against the in-process
//!    `snapshot_global()` histogram. The wire is transport, not math.
//! 2. **Load** — `threads` client connections (≥ 4) each issue a paced
//!    stream of requests (target `qps` per thread) cycling through the
//!    scalar verbs; client-observed latency is recorded per verb.
//! 3. **Gates** — the run **exits nonzero** if any request came back as
//!    an error frame (the workload is all-valid by construction, so a
//!    single error frame is a server bug), or if any verb's client-side
//!    p99 exceeds [`P99_GATE_NS`]. The gate is deliberately generous —
//!    50 ms for a loopback round trip that typically takes tens of
//!    microseconds — because CI machines are noisy neighbors; it exists
//!    to catch order-of-magnitude regressions (a blocking accept loop, a
//!    lost wakeup, an O(n) frame parse), not microsecond drift.
//! 4. **Slow-query cross-check** — the server runs with its slow-query
//!    threshold set to the same 50 ms as the p99 gate, and after the load
//!    phase the bench drains the flight recorder over the `events` admin
//!    verb and counts [`SlowQuery`](streamhist_obs::EventKind::SlowQuery)
//!    events per verb. The two instruments watch the same requests from
//!    opposite ends of the socket, so they must agree about a regression:
//!    a verb whose client p99 breaches the gate should have put ≥ 1% of
//!    its requests in the server's slow-query log, and vice versa. A
//!    one-sided verdict means one instrument is lying (client-side clock
//!    bug, server-side phase timer bug, recorder losing events) and the
//!    run exits nonzero even when the p99 gate alone would pass.
//!
//! Output: a human-readable table plus `BENCH_serve.json` (current
//! directory) with per-verb count/p50/p99/max and the error-frame count —
//! the CI serve-smoke artifact.
//!
//! Run: `cargo run --release -p streamhist-bench --bin bench_serve`
//! (set `STREAMHIST_FULL=1` for more threads and a longer run).

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamhist_bench::full_scale;
use streamhist_core::Query;
use streamhist_data::utilization_trace;
use streamhist_obs::{EventKind, MetricsRegistry};
use streamhist_serve::{
    QuantileMethod, QueryServer, Request, RetryBudget, ServeClient, ServeState, ServerOptions,
};
use streamhist_stream::{FleetHandle, ShardedFixedWindow};

/// Per-verb client-observed p99 ceiling, in nanoseconds (50 ms). See the
/// module docs for why it is this loose.
const P99_GATE_NS: u64 = 50_000_000;

/// Server-side slow-query threshold — deliberately the same 50 ms as the
/// client-side p99 gate so the two instruments form a cross-check: if a
/// verb's client p99 breaches the gate, at least 1% of its requests took
/// ≥ 50 ms end to end, and the server must have logged them as slow.
const SLOW_QUERY_GATE: Duration = Duration::from_nanos(P99_GATE_NS);

struct VerbStats {
    verb: &'static str,
    count: usize,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    /// Server-side `SlowQuery` events attributed to this verb, drained
    /// from the flight recorder over the `events` admin verb.
    slow_count: u64,
}

fn percentile(sorted: &[u64], phi: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * phi).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let shards = 4;
    let window = 1024;
    let b = 8;
    let eps = 0.1;
    let threads: usize = if full_scale() { 8 } else { 4 };
    let per_thread_requests: usize = if full_scale() { 4000 } else { 1200 };
    let qps_per_thread: f64 = 2000.0;

    // --- Stand the server up over a warmed fleet. ---
    let fleet = FleetHandle::new(ShardedFixedWindow::new(shards, window, b, eps));
    let state = ServeState::new(fleet, Arc::new(MetricsRegistry::new()));
    let trace = utilization_trace(2 * shards * window, 42);
    state.ingest_scatter(&trace).expect("lossless ingest");
    let (hist, _) = state
        .fleet()
        .snapshot_global()
        .expect("fleet healthy after ingest");
    let domain = hist.domain_len();
    assert!(domain >= 16, "warmed fleet must have a populated window");
    // Explicit options on the loopback bench: a generous per-connection
    // IO deadline so a noisy CI machine can't time out a paced client.
    let options = ServerOptions {
        io_timeout: Duration::from_secs(2),
        slow_query: SLOW_QUERY_GATE,
    };
    let io_timeout_ms = options.io_timeout.as_millis();
    let server = QueryServer::start_with("127.0.0.1:0", state.clone(), threads, options)
        .expect("bind loopback");
    let addr = server.local_addr();

    // --- 1. Bit-identity: wire answers == in-process answers. ---
    let mut probe = ServeClient::connect(addr).expect("connect");
    let mut checked = 0usize;
    for i in 0..32usize {
        let start = (i * 13) % (domain / 2);
        let end = start + (domain / 2 - 1).max(1);
        let cases = [
            Query::RangeSum { start, end },
            Query::RangeAvg { start, end },
            Query::Point {
                idx: (i * 29) % domain,
            },
            Query::RangeCount { start, end },
        ];
        for q in cases {
            let direct = q.try_estimate(&*hist).expect("valid probe query");
            let wire = match q {
                Query::RangeSum { start, end } => probe.range_sum(start, end),
                Query::RangeAvg { start, end } => probe.range_avg(start, end),
                Query::Point { idx } => probe.point(idx),
                Query::RangeCount { start, end } => probe.range_count(start, end),
            }
            .expect("valid probe query over the wire");
            assert_eq!(
                wire.to_bits(),
                direct.to_bits(),
                "wire answer for {q:?} diverged from snapshot_global()"
            );
            checked += 1;
        }
    }
    println!("bit-identity: {checked} wire answers match snapshot_global() exactly");
    // Connections pin pool workers for their lifetime; release the
    // probe's worker before the load phase so `threads` clients fit the
    // `threads`-worker pool exactly.
    drop(probe);

    // --- 2. Load: threads × paced request streams. ---
    let error_frames = Arc::new(AtomicU64::new(0));
    let retries_total = Arc::new(AtomicU64::new(0));
    let verbs = [
        "range_sum",
        "range_avg",
        "point",
        "range_count",
        "quantile_gk",
        "selectivity",
    ];
    let pace = Duration::from_secs_f64(1.0 / qps_per_thread);
    let wall = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let errors = Arc::clone(&error_frames);
            let retries = Arc::clone(&retries_total);
            std::thread::spawn(move || {
                // Each client retries transport failures and Overloaded
                // sheds within a bounded budget; the retry count is a
                // reported bench output (expected 0 on loopback).
                let mut client = ServeClient::connect(addr)
                    .expect("connect")
                    .with_retry_budget(RetryBudget {
                        deadline: Duration::from_secs(1),
                        backoff_start: Duration::from_millis(2),
                        seed: t as u64,
                    });
                // One latency vector per verb, ns.
                let mut lat: Vec<Vec<u64>> = vec![Vec::new(); 6];
                let started = Instant::now();
                for i in 0..per_thread_requests {
                    let hi = 1 + (i * 7 + t * 13) % (domain - 1);
                    let lo = (i * 3) % hi;
                    let req = match i % 6 {
                        0 => Request::RangeSum { start: lo, end: hi },
                        1 => Request::RangeAvg { start: lo, end: hi },
                        2 => Request::Point { idx: hi },
                        3 => Request::RangeCount { start: lo, end: hi },
                        4 => Request::Quantile {
                            method: QuantileMethod::Gk,
                            phi: (i % 100) as f64 / 100.0,
                        },
                        _ => Request::Selectivity {
                            lo: 0.0,
                            hi: 1.0 + (i % 50) as f64,
                        },
                    };
                    let t0 = Instant::now();
                    let outcome = client.call(&req);
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    if outcome.is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    lat[i % 6].push(ns);
                    // Pace to the target per-thread QPS.
                    let deadline = pace * (i as u32 + 1);
                    let elapsed = started.elapsed();
                    if elapsed < deadline {
                        std::thread::sleep(deadline - elapsed);
                    }
                }
                retries.fetch_add(client.retries(), Ordering::Relaxed);
                lat
            })
        })
        .collect();
    let mut merged: Vec<Vec<u64>> = vec![Vec::new(); 6];
    for h in handles {
        let lat = h.join().expect("load thread");
        for (m, v) in merged.iter_mut().zip(lat) {
            m.extend(v);
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    let errors = error_frames.load(Ordering::Relaxed);
    let retries = retries_total.load(Ordering::Relaxed);
    let total: usize = merged.iter().map(Vec::len).sum();

    // --- Drain the server's flight recorder and bucket SlowQuery events
    // by verb. The recorder names verbs with `Request::verb_name()`
    // ("quantile", not the bench's "quantile_gk" display label), so map
    // explicitly. A verb outside the workload (e.g. the drain's own
    // `events` calls going slow) counts against no bucket but is still
    // reported in the total.
    let mut drain = ServeClient::connect(addr).expect("connect for events drain");
    let (recorded, events) = drain
        .events_all(0)
        .expect("drain the flight recorder over the wire");
    drop(drain);
    let mut slow_counts = [0u64; 6];
    let mut slow_total = 0u64;
    for event in &events {
        if let EventKind::SlowQuery { verb, .. } = &event.kind {
            slow_total += 1;
            let slot = match verb.as_str() {
                "range_sum" => Some(0),
                "range_avg" => Some(1),
                "point" => Some(2),
                "range_count" => Some(3),
                "quantile" => Some(4),
                "selectivity" => Some(5),
                _ => None,
            };
            if let Some(s) = slot {
                slow_counts[s] += 1;
            }
        }
    }

    let stats: Vec<VerbStats> = verbs
        .iter()
        .zip(merged.iter_mut())
        .zip(slow_counts)
        .map(|((verb, lat), slow_count)| {
            lat.sort_unstable();
            VerbStats {
                verb,
                count: lat.len(),
                p50_ns: percentile(lat, 0.50),
                p99_ns: percentile(lat, 0.99),
                max_ns: lat.last().copied().unwrap_or(0),
                slow_count,
            }
        })
        .collect();

    println!(
        "load: {threads} threads x {per_thread_requests} reqs (pace {qps_per_thread} qps/thread) \
         = {total} total in {wall_secs:.2}s ({:.0} qps aggregate), {errors} error frames, \
         {retries} retries",
        total as f64 / wall_secs
    );
    println!(
        "slow-query log: {slow_total} events over the {:.0}ms threshold \
         ({recorded} recorder events total, {} retained)",
        SLOW_QUERY_GATE.as_secs_f64() * 1e3,
        events.len()
    );
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>6}",
        "verb", "count", "p50_us", "p99_us", "max_us", "slow"
    );
    for s in &stats {
        println!(
            "{:<12} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>6}",
            s.verb,
            s.count,
            s.p50_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3,
            s.max_ns as f64 / 1e3,
            s.slow_count
        );
    }

    // --- JSON artifact. ---
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"shards\": {shards}, \"window_per_shard\": {window}, \"b\": {b}, \
         \"eps\": {eps}, \"threads\": {threads}, \"requests_per_thread\": {per_thread_requests}, \
         \"qps_per_thread\": {qps_per_thread}, \"io_timeout_ms\": {io_timeout_ms}, \
         \"p99_gate_ns\": {P99_GATE_NS}, \"slow_query_gate_ns\": {}}},",
        SLOW_QUERY_GATE.as_nanos()
    );
    let _ = writeln!(json, "  \"bit_identity_checks\": {checked},");
    let _ = writeln!(json, "  \"error_frames\": {errors},");
    let _ = writeln!(json, "  \"slow_queries\": {slow_total},");
    let _ = writeln!(json, "  \"recorder_events\": {recorded},");
    let _ = writeln!(json, "  \"retries\": {retries},");
    let _ = writeln!(json, "  \"wall_secs\": {wall_secs:.3},");
    json.push_str("  \"verbs\": [\n");
    for (i, s) in stats.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"verb\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"max_ns\": {}, \"slow_queries\": {}}}",
            s.verb, s.count, s.p50_ns, s.p99_ns, s.max_ns, s.slow_count
        );
        json.push_str(if i + 1 == stats.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    server.shutdown();

    // --- 3. Gates. ---
    let mut failed = false;
    if errors > 0 {
        eprintln!("GATE FAIL: {errors} error frames on an all-valid workload");
        failed = true;
    }
    for s in &stats {
        if s.p99_ns > P99_GATE_NS {
            eprintln!(
                "GATE FAIL: {} p99 {:.1}us exceeds the {:.1}us gate",
                s.verb,
                s.p99_ns as f64 / 1e3,
                P99_GATE_NS as f64 / 1e3
            );
            failed = true;
        }
        // Cross-check: the client-side p99 gate and the server-side
        // slow-query log watch the same requests with the same 50 ms
        // threshold, so their regression verdicts must match. "Regressed"
        // per the slow log means ≥ 1% of the verb's requests were logged
        // slow — the server-side restatement of "p99 over the threshold".
        let p99_regressed = s.p99_ns > P99_GATE_NS;
        let slow_regressed = s.slow_count.saturating_mul(100) >= s.count as u64;
        if p99_regressed != slow_regressed {
            eprintln!(
                "GATE FAIL: {} regression verdicts disagree — client p99 {:.1}us \
                 ({} the gate) vs {} server-side slow queries of {} requests",
                s.verb,
                s.p99_ns as f64 / 1e3,
                if p99_regressed { "over" } else { "under" },
                s.slow_count,
                s.count
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gates passed: zero error frames, every verb p99 under the gate, \
         slow-query log agrees"
    );
}
