//! SHARD-SCALING — thread-scaling of the sharded fixed-window summary.
//!
//! The arena-backed kernel makes every summary `Send`, so independent
//! shards can run on worker threads ([`ShardedFixedWindow`]). This bench
//! measures *weak scaling*: each shard absorbs the same fixed workload (a
//! stream of pushes with a periodic histogram materialization — the
//! paper's maintenance loop at a reduced build cadence), so with perfect
//! scaling the wall time stays flat as shards are added and aggregate
//! throughput grows linearly.
//!
//! Output per shard count: wall time, aggregate points/s, speedup vs one
//! shard, and parallel efficiency (speedup / shards). Efficiency near 1.0
//! across 2–4 shards is the near-linear regime; on a machine with fewer
//! cores than shards the efficiency degrades proportionally, which the
//! printed `available_parallelism` makes visible. After the scaling table,
//! the per-shard [`ShardMetrics`] and the fleet-aggregated `KernelStats`
//! (via `KernelStats::absorb`) for the largest run are printed, so the
//! serving-layer counters are exercised and visible in every bench run.
//!
//! Run: `cargo run --release -p streamhist-bench --bin sharded_scaling`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::time::Instant;
use streamhist_data::{collect, Ar1};
use streamhist_stream::{KernelStats, ShardMetrics, ShardedFixedWindow};

const POINTS_PER_SHARD: usize = 100_000;
const BATCH: usize = 1024;
const BUILD_EVERY_BATCHES: usize = 4;
const CAPACITY: usize = 256;
const B: usize = 8;
const EPS: f64 = 0.1;
const REPS: usize = 3;

/// Feeds every shard its own pre-generated stream and returns the wall
/// time until all shards have absorbed their work (the final snapshot per
/// shard is the completion barrier), together with the per-shard serving
/// metrics and the fleet-aggregated kernel stats.
fn run_once(shards: usize, streams: &[Vec<f64>]) -> (f64, Vec<ShardMetrics>, KernelStats) {
    let sharded = ShardedFixedWindow::new(shards, CAPACITY, B, EPS);
    let start = Instant::now();
    let mut sent = vec![0usize; shards];
    let mut batch_no = 0usize;
    while sent.iter().any(|&s| s < POINTS_PER_SHARD) {
        for shard in 0..shards {
            if sent[shard] < POINTS_PER_SHARD {
                let lo = sent[shard];
                let hi = (lo + BATCH).min(POINTS_PER_SHARD);
                sharded
                    .push_batch(shard, streams[shard][lo..hi].to_vec())
                    .expect("bench workers stay alive");
                sent[shard] = hi;
            }
        }
        batch_no += 1;
        if batch_no.is_multiple_of(BUILD_EVERY_BATCHES) {
            // Ask every shard to materialize; fire-and-forget is not
            // possible for builds, so this also paces the feeder.
            for shard in 0..shards {
                let (h, _) = sharded.snapshot(shard).expect("bench workers stay alive");
                assert!(h.num_buckets() <= B);
            }
        }
    }
    let mut fleet = KernelStats::default();
    for shard in 0..shards {
        let (h, stats) = sharded.snapshot(shard).expect("bench workers stay alive");
        assert!(h.num_buckets() <= B);
        assert!(stats.herror_evals > 0);
        fleet.absorb(&stats);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let metrics = sharded.metrics_all();
    let summaries: Vec<_> = sharded
        .join()
        .into_iter()
        .map(|r| r.expect("bench workers stay alive"))
        .collect();
    assert!(summaries
        .iter()
        .all(|fw| fw.total_pushed() == POINTS_PER_SHARD as u64));
    (elapsed, metrics, fleet)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    println!("# sharded fixed-window weak scaling");
    println!(
        "# per-shard: {POINTS_PER_SHARD} points, build every {} points \
         (capacity {CAPACITY}, B {B}, eps {EPS}); median of {REPS} reps",
        BATCH * BUILD_EVERY_BATCHES
    );
    println!("# available_parallelism: {cores}");
    println!("# shards  wall_s  agg_points_per_s  speedup  efficiency");

    let max_shards = 4;
    let streams: Vec<Vec<f64>> = (0..max_shards)
        .map(|s| collect(Ar1::new(40 + s as u64, 0.9, 100.0, 25.0), POINTS_PER_SHARD))
        .collect();

    let mut base = None;
    let mut last_run = None;
    for shards in [1, 2, 4] {
        let mut runs: Vec<(f64, Vec<ShardMetrics>, KernelStats)> = (0..REPS)
            .map(|_| run_once(shards, &streams[..shards]))
            .collect();
        runs.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
        let wall = runs[REPS / 2].0;
        let agg = (shards * POINTS_PER_SHARD) as f64 / wall;
        let base_agg = *base.get_or_insert(agg);
        let speedup = agg / base_agg;
        println!(
            "{shards:7} {wall:7.3} {agg:17.0} {speedup:8.2} {:10.2}",
            speedup / shards as f64
        );
        last_run = runs.pop();
    }

    // Serving-layer observability for the largest fleet: per-shard
    // counters plus the kernel stats aggregated across every shard.
    let (_, metrics, fleet) = last_run.expect("at least one run");
    println!("#\n# per-shard metrics (4-shard fleet, last rep)");
    println!("# shard  accepted  rejected  dropped  snapshots  respawns  queue_depth");
    for (shard, m) in metrics.iter().enumerate() {
        println!(
            "{shard:7} {:9} {:9} {:8} {:10} {:9} {:12}",
            m.pushes_accepted,
            m.values_rejected,
            m.records_dropped,
            m.snapshots_served,
            m.respawns,
            m.queue_depth
        );
    }
    println!(
        "# fleet kernel stats: herror_evals {}, binary_searches {}, rebases {}, \
         compactions {}, arena_peak {}",
        fleet.herror_evals,
        fleet.binary_searches,
        fleet.rebases,
        fleet.compactions,
        fleet.arena_peak
    );
}
