//! BENCH-BATCH — batch-ingestion throughput for the fixed-window summary.
//!
//! Measures the paper's per-point maintenance loop (push, then materialize
//! the histogram — one `CreateList` per arrival) against the batched
//! driving mode (`push_batch` a slab, then materialize once), for slab
//! sizes 1, 64 and 1024, single-threaded and through the sharded serving
//! layer. The batched mode is bit-identical to the per-point one (see
//! `tests/batch_equivalence.rs`); the speedup it reports is pure overhead
//! removal — one slab append over the prefix store and one deferred
//! interval-list rebuild per slab instead of per point.
//!
//! Output: a human-readable table plus `BENCH_batch_ingest.json` (written
//! to the current directory) with points/sec per configuration and the
//! kernel instrumentation counters at the end of each run.
//!
//! Exits nonzero if the batch-1024 single-threaded throughput fails to
//! beat batch-1, or if the sharded batch-1024 throughput falls behind
//! sharded batch-64 beyond noise — the CI smoke guards against regressing
//! the fast path and against re-introducing the scatter inversion (large
//! slabs used to split into `len/k` monolithic chunks that serialized the
//! fleet behind the slowest worker; the scatter chunk cap fixed it).
//!
//! Run: `cargo run --release -p streamhist-bench --bin bench_batch`
//! (set `STREAMHIST_FULL=1` for the paper-scale stream).

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::fmt::Write as _;
use std::time::Instant;
use streamhist_bench::full_scale;
use streamhist_data::utilization_trace;
use streamhist_stream::{FixedWindowHistogram, KernelStats, ShardedFixedWindow};

struct Row {
    mode: &'static str,
    batch: usize,
    points: usize,
    secs: f64,
    stats: Option<KernelStats>,
}

impl Row {
    fn pps(&self) -> f64 {
        self.points as f64 / self.secs
    }
}

fn bench_unsharded(stream: &[f64], window: usize, b: usize, eps: f64, batch: usize) -> Row {
    let mut fw = FixedWindowHistogram::builder(window, b, eps)
        .build()
        .expect("valid config");
    // Warm the window so every measured materialization covers a full one.
    fw.push_batch(&stream[..window]);
    let body = &stream[window..];
    let t0 = Instant::now();
    for slab in body.chunks(batch) {
        let out = fw.push_batch(slab);
        assert_eq!(out.rejected, 0);
        let _ = fw.histogram(); // the maintenance-loop materialization
    }
    let secs = t0.elapsed().as_secs_f64();
    let (_, stats) = fw.histogram_with_stats();
    Row {
        mode: "fixed_window",
        batch,
        points: body.len(),
        secs,
        stats: Some(stats),
    }
}

fn bench_sharded(
    stream: &[f64],
    shards: usize,
    window: usize,
    b: usize,
    eps: f64,
    batch: usize,
) -> Row {
    let sw = ShardedFixedWindow::builder(shards, window, b, eps)
        .build()
        .expect("valid config");
    let t0 = Instant::now();
    for slab in stream.chunks(batch) {
        sw.push_batch_scatter(slab).expect("lossless push");
    }
    // Snapshot per shard: a barrier behind every queued slab, so elapsed
    // time covers ingestion *and* one materialization per shard.
    let mut stats = None;
    for s in 0..shards {
        let (_, st) = sw.snapshot(s).expect("worker alive");
        stats = Some(st);
    }
    let secs = t0.elapsed().as_secs_f64();
    for r in sw.join() {
        r.expect("worker alive");
    }
    Row {
        mode: "sharded",
        batch,
        points: stream.len(),
        secs,
        stats,
    }
}

fn json_escape_free(s: &str) -> &str {
    // All emitted strings are static identifiers — assert, don't escape.
    assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    s
}

fn to_json(rows: &[Row], window: usize, b: usize, eps: f64, shards: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"config\": {{\"window\": {window}, \"b\": {b}, \"eps\": {eps}, \"shards\": {shards}}},"
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mode\": \"{}\", \"batch\": {}, \"points\": {}, \"secs\": {:.6}, \"points_per_sec\": {:.1}",
            json_escape_free(r.mode),
            r.batch,
            r.points,
            r.secs,
            r.pps()
        );
        if let Some(st) = &r.stats {
            let _ = write!(
                out,
                ", \"kernel\": {{\"herror_evals\": {}, \"binary_searches\": {}, \"queue_total\": {}, \"herror\": {:.6}}}",
                st.herror_evals,
                st.binary_searches,
                st.queue_sizes.iter().sum::<usize>(),
                st.herror
            );
        }
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    // The batch-1 baseline materializes per point (the paper's maintenance
    // loop), which caps the affordable stream length: per-point builds run
    // at O(100) pts/s for kilobyte windows, so the presets are sized for a
    // seconds-scale smoke run and a minutes-scale full run.
    let (window, body) = if full_scale() {
        (1_024usize, 16_384usize)
    } else {
        (512usize, 4_096usize)
    };
    let (b, eps) = (8usize, 0.1f64);
    let shards = 4usize;
    let len = window + body;
    let stream = utilization_trace(len, 77);

    println!("BENCH-BATCH: window {window}, B {b}, eps {eps}, stream {len}, {shards} shards\n");
    println!(
        "{:>14} {:>8} {:>10} {:>10} {:>14}",
        "mode", "batch", "points", "secs", "points/sec"
    );

    let mut rows = Vec::new();
    for batch in [1usize, 64, 1024] {
        rows.push(bench_unsharded(&stream, window, b, eps, batch));
    }
    for batch in [1usize, 64, 1024] {
        rows.push(bench_sharded(&stream, shards, window, b, eps, batch));
    }
    for r in &rows {
        println!(
            "{:>14} {:>8} {:>10} {:>10.3} {:>14.0}",
            r.mode,
            r.batch,
            r.points,
            r.secs,
            r.pps()
        );
        println!(
            "csv,{},{},{},{:.6},{:.1}",
            r.mode,
            r.batch,
            r.points,
            r.secs,
            r.pps()
        );
    }

    let json = to_json(&rows, window, b, eps, shards);
    std::fs::write("BENCH_batch_ingest.json", &json).expect("write BENCH_batch_ingest.json");
    println!("\nwrote BENCH_batch_ingest.json");

    let base = rows
        .iter()
        .find(|r| r.mode == "fixed_window" && r.batch == 1)
        .expect("batch-1 row");
    let fast = rows
        .iter()
        .find(|r| r.mode == "fixed_window" && r.batch == 1024)
        .expect("batch-1024 row");
    let speedup = fast.pps() / base.pps();
    println!("batch-1024 vs batch-1 (fixed_window): {speedup:.2}x");
    assert!(
        speedup > 1.0,
        "batch ingestion regressed: batch-1024 ({:.0} pts/s) is not faster than batch-1 ({:.0} pts/s)",
        fast.pps(),
        base.pps()
    );

    // The scatter-inversion gate: with the chunk cap, a 1024-record slab
    // scatters as pipeline-sized chunks, so it must not fall behind the
    // batch-64 sharded run by more than scheduler noise.
    let s64 = rows
        .iter()
        .find(|r| r.mode == "sharded" && r.batch == 64)
        .expect("sharded batch-64 row");
    let s1024 = rows
        .iter()
        .find(|r| r.mode == "sharded" && r.batch == 1024)
        .expect("sharded batch-1024 row");
    let ratio = s1024.pps() / s64.pps();
    println!("batch-1024 vs batch-64 (sharded): {ratio:.2}x");
    assert!(
        ratio > 0.75,
        "sharded scatter inversion: batch-1024 ({:.0} pts/s) fell behind batch-64 ({:.0} pts/s)",
        s1024.pps(),
        s64.pps()
    );
}
