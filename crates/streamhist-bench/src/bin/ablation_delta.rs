//! ABL-DELTA — ablation of the interval growth factor δ.
//!
//! The paper sets δ = ε/(2B) so the per-level (1+δ) losses compound to at
//! most (1+ε) across B levels (§4.3/§4.5). This harness measures what
//! actually happens for coarser δ policies: δ = ε (no per-level headroom)
//! and δ = ε/B, against the paper's δ = ε/(2B) — reporting the realized
//! worst-case SSE ratio vs. the optimum and the interval-queue sizes
//! (construction work) each policy pays.
//!
//! Run: `cargo run --release -p streamhist-bench --bin ablation_delta`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist_bench::full_scale;
use streamhist_data::utilization_trace;
use streamhist_optimal::optimal_sse;
use streamhist_stream::FixedWindowHistogram;

fn main() {
    let window = 512usize;
    let slides = if full_scale() { 2_000 } else { 400 };
    let stream = utilization_trace(window + slides, 4_242);
    let b = 8usize;
    let eps = 0.1f64;

    println!("ABL-DELTA: window {window}, B {b}, eps {eps}, {slides} slide positions\n");
    println!(
        "{:>14} {:>12} {:>12} {:>14} {:>12}",
        "delta policy", "worst ratio", "mean ratio", "queue total", "evals/build"
    );

    let policies: [(&str, f64); 3] = [
        ("eps/(2B)", eps / (2.0 * b as f64)),
        ("eps/B", eps / b as f64),
        ("eps", eps),
    ];

    for (name, delta) in policies {
        let mut fw = FixedWindowHistogram::with_delta(window, b, eps, delta);
        for &v in &stream[..window] {
            fw.push(v);
        }
        let mut worst: f64 = 1.0;
        let mut sum_ratio = 0.0;
        let mut count = 0usize;
        let mut queue_total = 0usize;
        let mut evals_total = 0usize;
        for s in 0..slides {
            fw.push(stream[window + s]);
            // Measure every 8th slide to keep the exact DP affordable.
            if s % 8 != 0 {
                continue;
            }
            let (h, stats) = fw.histogram_with_stats();
            let win = fw.window();
            let opt = optimal_sse(&win, b);
            let ratio = if opt <= 1e-9 {
                if h.sse(&win) <= 1e-6 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                h.sse(&win) / opt
            };
            worst = worst.max(ratio);
            sum_ratio += ratio;
            count += 1;
            queue_total += stats.queue_sizes.iter().sum::<usize>();
            evals_total += stats.herror_evals;
        }
        println!(
            "{:>14} {:>12.5} {:>12.5} {:>14} {:>12}",
            name,
            worst,
            sum_ratio / count as f64,
            queue_total / count,
            evals_total / count
        );
        println!(
            "csv,ablation_delta,{name},{delta},{worst},{},{},{}",
            sum_ratio / count as f64,
            queue_total / count,
            evals_total / count
        );
    }
    println!(
        "\n(guarantee bound for eps = {eps}: ratio <= {:.2}; coarser deltas trade \
         accuracy headroom for smaller queues)",
        1.0 + eps
    );
}
