//! FIG6-AB — reproduces the paper's Figure 6(a)-(b): accuracy of random
//! range-sum queries against fixed-window histograms vs. from-scratch
//! wavelet synopses, sweeping the window length ("subsequence length") for
//! two bucket budgets, at ε = 0.1 (panel a) and ε = 0.01 (panel b).
//!
//! The paper's series are {Exact, Histogram, Wavelet} mean answers; we
//! print the mean exact answer and both methods' mean estimates and mean
//! absolute errors. The paper's claim to reproduce: "Accuracy of estimation
//! using fixed window histograms improves with B and ε. The benefits in
//! accuracy when compared with Wavelet based histograms are evident."
//!
//! Run: `cargo run --release -p streamhist-bench --bin fig6_accuracy`
//! (set `STREAMHIST_FULL=1` for the 1M-point paper-scale stream).

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist_bench::{full_scale, run_fig6_cell};
use streamhist_data::utilization_trace;

fn main() {
    let (stream_len, checkpoints, queries) = if full_scale() {
        (1_000_000, 8, 200)
    } else {
        (100_000, 6, 200)
    };
    let stream = utilization_trace(stream_len, 20_022);
    let windows = [256usize, 512, 1024, 2048];
    let bs = [8usize, 16];
    let epss = [0.1f64, 0.01];

    println!("FIG6-AB: accuracy vs window length (stream = {stream_len} points)");
    println!("{checkpoints} checkpoints x {queries} random range-sum queries per cell\n");
    println!(
        "{:>6} {:>4} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "window",
        "B",
        "eps",
        "exact mean",
        "hist mean",
        "wave mean",
        "hist |err|",
        "wave |err|",
        "ratio"
    );
    for &eps in &epss {
        for &b in &bs {
            for &window in &windows {
                let cell = run_fig6_cell(&stream, window, b, eps, checkpoints, queries);
                let ratio = cell.wavelet.mean_abs_error / cell.hist.mean_abs_error.max(1e-9);
                println!(
                    "{:>6} {:>4} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>7.2}x",
                    window,
                    b,
                    eps,
                    cell.hist.mean_exact,
                    cell.hist.mean_estimate,
                    cell.wavelet.mean_estimate,
                    cell.hist.mean_abs_error,
                    cell.wavelet.mean_abs_error,
                    ratio
                );
                println!(
                    "csv,fig6_accuracy,{window},{b},{eps},{},{},{},{},{}",
                    cell.hist.mean_exact,
                    cell.hist.mean_estimate,
                    cell.wavelet.mean_estimate,
                    cell.hist.mean_abs_error,
                    cell.wavelet.mean_abs_error
                );
            }
        }
        println!();
    }
}
