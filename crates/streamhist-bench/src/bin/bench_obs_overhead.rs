//! BENCH-OBS-OVERHEAD — cost of the telemetry layer on the ingest path.
//!
//! The observability design promises that metrics stay out of the hot
//! path: the shard counters are plain relaxed atomics whether or not a
//! [`MetricsRegistry`] is attached (attaching only swaps in shared cells),
//! and the kernel phase-tracing hooks compile to no-ops without the `obs`
//! cargo feature. This bench makes both claims measurable.
//!
//! Modes (each the same workload — sharded batch ingestion with snapshot
//! barriers — best of [`REPEATS`] runs):
//!
//! * `baseline` — no registry attached, whatever feature state this
//!   binary was compiled with;
//! * `obs_off` — registry attached, compiled WITHOUT `--features obs`
//!   (the production default). Guarded: must stay within
//!   [`MAX_REGRESSION`] of `baseline` or the bench exits nonzero;
//! * `recorder` — registry *and* an explicit [`FlightRecorder`] attached,
//!   compiled WITHOUT `--features obs`. Guarded: must stay within
//!   [`MAX_REGRESSION`] of `obs_off`, pinning the flight recorder's
//!   promise that an idle ring (no shard deaths, no overload) costs the
//!   ingest path nothing beyond noise — the hot path never touches it
//!   except through the sampled overload probe, which a lossless run
//!   never takes;
//! * `obs_on` — registry attached, compiled WITH `--features obs` but no
//!   kernel tracer installed (one thread-local + `OnceLock` load per
//!   hook);
//! * `obs_on_tracing` — registry attached and a fleet-scoped kernel
//!   tracer handed to the builder (worker threads install it
//!   thread-locally), so every push/build is timed into GK latency
//!   summaries. Unguarded: this is the opt-in deep-tracing mode and its
//!   cost is reported, not bounded.
//!
//! Every mode's workload ends with one `snapshot_global()`, so the merge
//! path — including the live accuracy audit that publishes the
//! `streamhist_snapshot_sse_estimate` / `_error_bound` / `_error_ratio`
//! gauges — is inside the measured region in all rows.
//!
//! One compilation can only observe its own feature state, so the JSON
//! artifact is *merged*, not overwritten: rows measured by the other
//! build are preserved. Run both to fill all four rows:
//!
//! ```text
//! cargo run --release -p streamhist-bench --bin bench_obs_overhead
//! cargo run --release -p streamhist-bench --features obs --bin bench_obs_overhead
//! ```
//!
//! Output: `BENCH_obs_overhead.json` in the current directory.
#![allow(clippy::disallowed_macros)] // bench bins report via stdout

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use streamhist_bench::full_scale;
use streamhist_data::utilization_trace;
use streamhist_obs::{FlightRecorder, MetricsRegistry};
#[cfg(feature = "obs")]
use streamhist_stream::telemetry::KernelTracer;
use streamhist_stream::ShardedFixedWindow;

const REPEATS: usize = 3;
/// `obs_off` may run at no less than this fraction of `baseline`, and
/// `recorder` no less than this fraction of `obs_off`.
#[cfg(not(feature = "obs"))]
const MAX_REGRESSION: f64 = 0.98;

const SHARDS: usize = 2;
const WINDOW: usize = 512;
const B: usize = 8;
const EPS: f64 = 0.1;
const BATCH: usize = 512;

struct Row {
    mode: &'static str,
    points: usize,
    secs: f64,
}

impl Row {
    fn pps(&self) -> f64 {
        self.points as f64 / self.secs
    }
}

/// What a pass attaches to the fleet; each mode is one combination.
#[derive(Clone, Copy, Default)]
struct PassCfg<'a> {
    registry: Option<&'a Arc<MetricsRegistry>>,
    recorder: Option<&'a Arc<FlightRecorder>>,
    #[cfg(feature = "obs")]
    tracer: Option<&'a Arc<KernelTracer>>,
}

/// One timed pass: scatter the stream through the fleet in slabs, then a
/// per-shard snapshot barrier plus one `snapshot_global()` — so elapsed
/// time covers every queued record, one histogram materialization per
/// shard, and one fleet-global merge with its accuracy audit.
fn one_pass(stream: &[f64], cfg: PassCfg<'_>) -> f64 {
    let mut builder = ShardedFixedWindow::builder(SHARDS, WINDOW, B, EPS).fleet_label("bench");
    if let Some(reg) = cfg.registry {
        builder = builder.registry(Arc::clone(reg));
    }
    if let Some(rec) = cfg.recorder {
        builder = builder.recorder(Arc::clone(rec));
    }
    #[cfg(feature = "obs")]
    if let Some(tracer) = cfg.tracer {
        builder = builder.kernel_tracer(Arc::clone(tracer));
    }
    let sw = builder.build().expect("valid config");
    let t0 = Instant::now();
    for slab in stream.chunks(BATCH) {
        sw.push_batch_scatter(slab).expect("lossless push");
    }
    for s in 0..SHARDS {
        sw.snapshot(s).expect("worker alive");
    }
    sw.snapshot_global().expect("fleet alive");
    let secs = t0.elapsed().as_secs_f64();
    for r in sw.join() {
        r.expect("worker alive");
    }
    secs
}

fn bench_mode(mode: &'static str, stream: &[f64], cfg: PassCfg<'_>) -> Row {
    // Best-of-N: the minimum is the least-noisy estimator for a
    // throughput bench on a shared machine.
    let secs = (0..REPEATS)
        .map(|_| one_pass(stream, cfg))
        .fold(f64::INFINITY, f64::min);
    Row {
        mode,
        points: stream.len(),
        secs,
    }
}

/// Rows this build cannot measure, recovered from an existing artifact so
/// the two feature-state runs compose into one file. The format is our
/// own (one row object per line), so a line scan is exact, not heuristic.
fn preserved_rows(path: &str, measured: &[Row]) -> Vec<String> {
    let Ok(existing) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    existing
        .lines()
        .filter(|line| {
            let t = line.trim_start();
            t.starts_with("{\"mode\":")
                && !measured
                    .iter()
                    .any(|r| t.contains(&format!("\"{}\"", r.mode)))
        })
        .map(|line| line.trim_end_matches(',').to_string())
        .collect()
}

fn to_json(measured: &[Row], preserved: &[String]) -> String {
    let mut lines: Vec<String> = preserved.to_vec();
    for r in measured {
        lines.push(format!(
            "    {{\"mode\": \"{}\", \"obs_feature\": {}, \"points\": {}, \"secs\": {:.6}, \"points_per_sec\": {:.1}}}",
            r.mode,
            cfg!(feature = "obs"),
            r.points,
            r.secs,
            r.pps()
        ));
    }
    // Canonical order keeps diffs of the committed datapoint readable.
    let order = [
        "baseline",
        "obs_off",
        "recorder",
        "obs_on",
        "obs_on_tracing",
    ];
    lines.sort_by_key(|l| order.iter().position(|m| l.contains(&format!("\"{m}\""))));
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"config\": {{\"shards\": {SHARDS}, \"window\": {WINDOW}, \"b\": {B}, \"eps\": {EPS}, \"batch\": {BATCH}, \"repeats\": {REPEATS}}},"
    );
    out.push_str("  \"rows\": [\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let len = if full_scale() { 4_000_000 } else { 800_000 };
    let stream = utilization_trace(len, 77);
    let registry = Arc::new(MetricsRegistry::new());

    // Warm-up pass (untimed): fault in the stream, spin up and tear down
    // one fleet, so the first measured mode is not charged for cold-start.
    one_pass(&stream, PassCfg::default());

    println!(
        "BENCH-OBS-OVERHEAD: {SHARDS} shards, window {WINDOW}, B {B}, eps {EPS}, \
         stream {len}, obs feature {}",
        cfg!(feature = "obs")
    );

    let with_registry = PassCfg {
        registry: Some(&registry),
        ..PassCfg::default()
    };
    let mut rows = vec![bench_mode("baseline", &stream, PassCfg::default())];
    #[cfg(not(feature = "obs"))]
    {
        rows.push(bench_mode("obs_off", &stream, with_registry));
        let recorder = Arc::new(FlightRecorder::default());
        // Feature-off, `registry` + `recorder` are ALL the fields, but the
        // obs build adds `tracer` — keep the update syntax for both.
        #[allow(clippy::needless_update)]
        rows.push(bench_mode(
            "recorder",
            &stream,
            PassCfg {
                registry: Some(&registry),
                recorder: Some(&recorder),
                ..PassCfg::default()
            },
        ));
        // A lossless run records nothing; the ring must still be empty.
        assert_eq!(recorder.recorded(), 0, "idle recorder captured events");
    }
    #[cfg(feature = "obs")]
    {
        rows.push(bench_mode("obs_on", &stream, with_registry));
        // Fleet-scoped tracer: the builder hands it to worker threads,
        // which install it thread-locally — nothing process-global, so
        // mode order no longer matters.
        let tracer = Arc::new(KernelTracer::new(&registry));
        rows.push(bench_mode(
            "obs_on_tracing",
            &stream,
            PassCfg {
                registry: Some(&registry),
                tracer: Some(&tracer),
                ..PassCfg::default()
            },
        ));
    }

    for r in &rows {
        println!(
            "{:>16} {:>10} points {:>9.3}s {:>12.0} points/sec",
            r.mode,
            r.points,
            r.secs,
            r.pps()
        );
    }

    let path = "BENCH_obs_overhead.json";
    let json = to_json(&rows, &preserved_rows(path, &rows));
    std::fs::write(path, &json).expect("write BENCH_obs_overhead.json");
    println!("wrote {path}");

    // The guard only applies to the production default (feature off):
    // attaching a registry must not tax ingestion beyond noise, because
    // the counters are the same relaxed atomics either way.
    #[cfg(not(feature = "obs"))]
    {
        let base = rows.iter().find(|r| r.mode == "baseline").expect("row");
        let off = rows.iter().find(|r| r.mode == "obs_off").expect("row");
        let rec = rows.iter().find(|r| r.mode == "recorder").expect("row");
        let ratio = off.pps() / base.pps();
        println!(
            "obs_off vs baseline: {:.1}% ({:.0} vs {:.0} points/sec)",
            100.0 * ratio,
            off.pps(),
            base.pps()
        );
        assert!(
            ratio >= MAX_REGRESSION,
            "registry attachment regressed feature-off ingestion by more than \
             {:.0}%: {:.0} vs {:.0} points/sec",
            100.0 * (1.0 - MAX_REGRESSION),
            off.pps(),
            base.pps()
        );
        let rec_ratio = rec.pps() / off.pps();
        println!(
            "recorder vs obs_off: {:.1}% ({:.0} vs {:.0} points/sec)",
            100.0 * rec_ratio,
            rec.pps(),
            off.pps()
        );
        assert!(
            rec_ratio >= MAX_REGRESSION,
            "an idle flight recorder regressed feature-off ingestion by more \
             than {:.0}%: {:.0} vs {:.0} points/sec",
            100.0 * (1.0 - MAX_REGRESSION),
            rec.pps(),
            off.pps()
        );
    }
}
