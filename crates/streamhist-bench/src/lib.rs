//! Shared machinery for the experiment harness binaries (one binary per
//! paper table/figure — see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded results).
//!
//! Every harness prints a human-readable table **and** machine-readable CSV
//! rows (prefixed `csv,`) so results can be replotted. Scale is controlled
//! by the `STREAMHIST_FULL` environment variable: unset runs a
//! minutes-scale configuration; `STREAMHIST_FULL=1` runs the paper-scale
//! one (1M-point streams).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};
use streamhist_core::{evaluate_queries, AccuracyReport, SequenceSummary};
use streamhist_data::WorkloadGen;
use streamhist_stream::FixedWindowHistogram;
use streamhist_wavelet::SlidingWindowWavelet;

/// Whether the paper-scale configuration was requested
/// (`STREAMHIST_FULL=1`).
#[must_use]
pub fn full_scale() -> bool {
    std::env::var("STREAMHIST_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Measures one closure, returning its result and the elapsed time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Result of one Figure-6 grid cell: a (window, B, ε) configuration run
/// over the whole stream.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// Window length `n`.
    pub window: usize,
    /// Bucket budget `B`.
    pub b: usize,
    /// Approximation parameter `ε`.
    pub eps: f64,
    /// Accuracy of the fixed-window histogram across all checkpoints.
    pub hist: AccuracyReport,
    /// Accuracy of the from-scratch wavelet synopsis across checkpoints.
    pub wavelet: AccuracyReport,
    /// Total time maintaining + materializing the fixed-window histogram.
    pub hist_time: Duration,
    /// Total time maintaining + recomputing the wavelet synopsis.
    pub wavelet_time: Duration,
    /// Number of checkpoints at which synopses were materialized/queried.
    pub checkpoints: usize,
}

/// Runs one Figure-6 cell: stream the data through a fixed-window histogram
/// and a from-scratch wavelet baseline, materializing and querying both at
/// `checkpoints` evenly spaced positions (after warm-up) with
/// `queries_per_checkpoint` random range-sum queries each.
///
/// The paper materializes per push; at reproduction scale that is
/// prohibitive for the degenerate (small-window, tiny-δ) cells, so the
/// checkpoint cadence is the documented substitution — it preserves the
/// relative accuracy and the relative time between methods.
///
/// # Panics
///
/// Panics if the stream is shorter than the window or `checkpoints == 0`.
#[must_use]
pub fn run_fig6_cell(
    stream: &[f64],
    window: usize,
    b: usize,
    eps: f64,
    checkpoints: usize,
    queries_per_checkpoint: usize,
) -> Fig6Cell {
    assert!(stream.len() >= window, "stream shorter than the window");
    assert!(checkpoints > 0, "need at least one checkpoint");
    let stride = (stream.len() - window).max(1) / checkpoints;
    let stride = stride.max(1);

    let mut fw = FixedWindowHistogram::new(window, b, eps);
    let mut hist_report = AccuracyReport::empty();
    let mut hist_time = Duration::ZERO;
    let mut n_checkpoints = 0usize;

    let ((), t) = timed(|| {
        for (t, &v) in stream.iter().enumerate() {
            fw.push(v);
            if t + 1 >= window && (t + 1 - window).is_multiple_of(stride) {
                let hist = fw.histogram();
                n_checkpoints += 1;
                let truth = fw.window();
                let queries = WorkloadGen::new(t as u64, window).range_sums(queries_per_checkpoint);
                hist_report = hist_report.merge(&evaluate_queries(&truth, hist.as_ref(), &queries));
            }
        }
    });
    hist_time += t;

    let mut wv = SlidingWindowWavelet::new(window, b);
    let mut wavelet_report = AccuracyReport::empty();
    let mut wavelet_time = Duration::ZERO;
    let ((), t) = timed(|| {
        for (t, &v) in stream.iter().enumerate() {
            wv.push(v);
            if t + 1 >= window && (t + 1 - window).is_multiple_of(stride) {
                let syn = wv.synopsis();
                let truth = wv.window();
                let queries = WorkloadGen::new(t as u64, window).range_sums(queries_per_checkpoint);
                wavelet_report = wavelet_report.merge(&evaluate_queries(&truth, &syn, &queries));
            }
        }
    });
    wavelet_time += t;

    Fig6Cell {
        window,
        b,
        eps,
        hist: hist_report,
        wavelet: wavelet_report,
        hist_time,
        wavelet_time,
        checkpoints: n_checkpoints,
    }
}

/// Evaluates one summary over a fresh workload — convenience for harnesses
/// comparing many methods on a fixed sequence.
#[must_use]
pub fn accuracy_of<S: SequenceSummary + ?Sized>(
    data: &[f64],
    summary: &S,
    queries: usize,
    seed: u64,
) -> AccuracyReport {
    let workload = WorkloadGen::new(seed, data.len()).range_sums(queries);
    evaluate_queries(data, summary, &workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamhist_data::utilization_trace;

    #[test]
    fn fig6_cell_runs_and_reports() {
        let stream = utilization_trace(2_000, 3);
        let cell = run_fig6_cell(&stream, 256, 8, 0.5, 4, 50);
        assert!(cell.checkpoints >= 4);
        assert!(cell.hist.queries >= 200);
        assert!(cell.hist.mean_abs_error.is_finite());
        assert!(cell.wavelet.mean_abs_error.is_finite());
        assert!(cell.hist_time > Duration::ZERO);
    }

    #[test]
    fn accuracy_of_exact_is_zero() {
        let data = utilization_trace(500, 9);
        let exact = streamhist_core::ExactSummary::new(&data);
        let r = accuracy_of(&data, &exact, 100, 1);
        assert_eq!(r.mean_abs_error, 0.0);
    }
}
