//! Criterion benches for offline/one-pass construction (EXP-AGG-OPT /
//! EXP-AGG-WAV micro view): exact DP vs agglomerative vs wavelet top-B,
//! across sequence sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamhist_data::utilization_trace;
use streamhist_optimal::optimal_histogram;
use streamhist_stream::AgglomerativeHistogram;
use streamhist_wavelet::WaveletSynopsis;

fn bench_construction(c: &mut Criterion) {
    let b = 16;
    let eps = 0.1;
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    for n in [1_000usize, 4_000] {
        let data = utilization_trace(n, 21);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("optimal_dp", n), &data, |bch, d| {
            bch.iter(|| optimal_histogram(d, b));
        });
        g.bench_with_input(BenchmarkId::new("agglomerative", n), &data, |bch, d| {
            bch.iter(|| AgglomerativeHistogram::from_slice(d, b, eps).histogram());
        });
        g.bench_with_input(BenchmarkId::new("wavelet_top_b", n), &data, |bch, d| {
            bch.iter(|| WaveletSynopsis::top_b(d, b));
        });
    }
    // Agglomerative scales to sizes where the DP is infeasible.
    {
        let n = 50_000usize;
        let data = utilization_trace(n, 22);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("agglomerative", n), &data, |bch, d| {
            bch.iter(|| AgglomerativeHistogram::from_slice(d, b, eps).histogram());
        });
        g.bench_with_input(BenchmarkId::new("wavelet_top_b", n), &data, |bch, d| {
            bch.iter(|| WaveletSynopsis::top_b(d, b));
        });
    }
    g.finish();
}

fn bench_agglomerative_push(c: &mut Criterion) {
    let data = utilization_trace(20_000, 23);
    let mut g = c.benchmark_group("agglomerative_push");
    g.sample_size(10); // each iteration replays a 20k-point stream
    g.throughput(Throughput::Elements(data.len() as u64));
    for &(b, eps) in &[(8usize, 0.5f64), (16, 0.1), (32, 0.1)] {
        let id = format!("B{b}_eps{eps}");
        g.bench_function(BenchmarkId::from_parameter(id), |bch| {
            bch.iter(|| {
                let mut agg = AgglomerativeHistogram::new(b, eps);
                for &v in &data {
                    agg.push(v);
                }
                agg.len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_construction, bench_agglomerative_push);
criterion_main!(benches);
