//! Criterion benches for query answering on the synopses (the consumer
//! side of Figure 6): range-sum estimation cost per summary type, plus the
//! quantile-summary substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamhist_core::Query;
use streamhist_data::{utilization_trace, WorkloadGen};
use streamhist_optimal::optimal_histogram;
use streamhist_quantile::{GkSummary, MrlSummary, QuantileSummary};
use streamhist_wavelet::WaveletSynopsis;

fn bench_range_sum(c: &mut Criterion) {
    let n = 4_096;
    let b = 32;
    let data = utilization_trace(n, 31);
    let hist = optimal_histogram(&data, b);
    let wav = WaveletSynopsis::top_b(&data, b);
    let queries: Vec<Query> = WorkloadGen::new(5, n).range_sums(1_000);

    let mut g = c.benchmark_group("range_sum_estimation");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("histogram", |bch| {
        bch.iter(|| queries.iter().map(|q| q.estimate(&hist)).sum::<f64>());
    });
    g.bench_function("wavelet", |bch| {
        bch.iter(|| queries.iter().map(|q| q.estimate(&wav)).sum::<f64>());
    });
    g.bench_function("exact_scan", |bch| {
        bch.iter(|| queries.iter().map(|q| q.exact(&data)).sum::<f64>());
    });
    g.finish();
}

fn bench_quantile_summaries(c: &mut Criterion) {
    let data = utilization_trace(100_000, 41);
    let mut g = c.benchmark_group("quantile_insert");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function(BenchmarkId::new("gk", "eps0.01"), |bch| {
        bch.iter(|| {
            let mut s = GkSummary::new(0.01);
            for &v in &data {
                s.push(v);
            }
            s.stored()
        });
    });
    g.bench_function(BenchmarkId::new("mrl", "k256"), |bch| {
        bch.iter(|| {
            let mut s = MrlSummary::new(256);
            for &v in &data {
                s.push(v);
            }
            s.stored()
        });
    });
    g.finish();

    let mut gk = GkSummary::new(0.01);
    for &v in &data {
        gk.push(v);
    }
    let mut g = c.benchmark_group("quantile_query");
    g.bench_function("gk_median", |bch| {
        bch.iter(|| gk.quantile(0.5));
    });
    g.finish();
}

fn bench_codec_and_distance(c: &mut Criterion) {
    let data = utilization_trace(8_192, 51);
    let a = optimal_histogram(&data, 64);
    let b = {
        let shifted: Vec<f64> = data.iter().map(|v| v * 0.9 + 10.0).collect();
        optimal_histogram(&shifted, 48)
    };
    let bytes = streamhist_core::codec::encode(&a);

    let mut g = c.benchmark_group("codec_and_distance");
    g.bench_function("encode_64_buckets", |bch| {
        bch.iter(|| streamhist_core::codec::encode(&a));
    });
    g.bench_function("decode_64_buckets", |bch| {
        bch.iter(|| streamhist_core::codec::decode(&bytes).expect("valid"));
    });
    g.bench_function("l2_distance_64v48", |bch| {
        bch.iter(|| streamhist_core::distance::l2(&a, &b));
    });
    g.finish();
}

fn bench_selectivity_policies(c: &mut Criterion) {
    use streamhist_freq::{FrequencyVector, ValueHistogram};
    let values: Vec<i64> = utilization_trace(200_000, 61)
        .into_iter()
        .map(|v| (v as i64).clamp(0, 1023))
        .collect();
    let freq = FrequencyVector::from_values(values, 0, 1023);
    let b = 32;
    let mut g = c.benchmark_group("selectivity_build");
    g.sample_size(10);
    g.bench_function("v_optimal", |bch| {
        bch.iter(|| ValueHistogram::v_optimal(&freq, b));
    });
    g.bench_function("v_optimal_approx", |bch| {
        bch.iter(|| ValueHistogram::v_optimal_approx(&freq, b, 0.1));
    });
    g.bench_function("max_diff", |bch| {
        bch.iter(|| ValueHistogram::max_diff(&freq, b));
    });
    g.bench_function("equi_depth", |bch| {
        bch.iter(|| ValueHistogram::equi_depth(&freq, b));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_range_sum,
    bench_quantile_summaries,
    bench_codec_and_distance,
    bench_selectivity_policies
);
criterion_main!(benches);
