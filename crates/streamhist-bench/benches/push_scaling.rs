//! THM1-SCALING criterion bench (promised by DESIGN.md §4): per-point
//! `push` cost across the (n, B, ε) grid for both streaming types.
//!
//! Theorem 1 predicts the paper's per-point maintenance cost
//! `O((B³/ε²) log³ n)` for the fixed-window algorithm (push + CreateList
//! materialization), and the agglomerative per-point cost is `O(B · q)`
//! with queue length `q = O((B/ε) log n)`. The grid makes the predicted
//! shape observable: slow growth in `n`, polynomial growth in `B` and
//! `1/ε`.
//!
//! Two measurement modes per type:
//! * `*_push` — the summary's own per-point ingest (the amortized-O(1)
//!   claim for the fixed window; `O(B·q)` for agglomerative);
//! * `fixed_window_maintain` — push + materialize per point, the paper's
//!   full maintenance loop that Theorem 1 actually bounds (run on a
//!   reduced grid: it is the expensive product of the two costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamhist_data::utilization_trace;
use streamhist_stream::{AgglomerativeHistogram, FixedWindowHistogram};

const NS: [usize; 3] = [1_024, 4_096, 16_384];
const BS: [usize; 3] = [4, 8, 16];
const EPSS: [f64; 2] = [0.5, 0.1];

fn bench_agglomerative_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("agglomerative_push");
    for &n in &NS {
        let stream = utilization_trace(n, 8);
        g.throughput(Throughput::Elements(n as u64));
        for &b in &BS {
            for &eps in &EPSS {
                let id = format!("n{n}_B{b}_eps{eps}");
                g.bench_with_input(BenchmarkId::from_parameter(id), &stream, |bch, s| {
                    bch.iter(|| {
                        let mut agg = AgglomerativeHistogram::new(b, eps);
                        for &v in s {
                            agg.push(v);
                        }
                        agg.kernel_stats().herror
                    });
                });
            }
        }
    }
    g.finish();
}

fn bench_fixed_window_push(c: &mut Criterion) {
    // Per-point ingest only: amortized O(1) regardless of (B, ε), in
    // contrast to the agglomerative grid above.
    let mut g = c.benchmark_group("fixed_window_push");
    for &n in &NS {
        let stream = utilization_trace(4 * n, 8);
        g.throughput(Throughput::Elements(stream.len() as u64));
        for &b in &BS {
            for &eps in &EPSS {
                let id = format!("n{n}_B{b}_eps{eps}");
                g.bench_with_input(BenchmarkId::from_parameter(id), &stream, |bch, s| {
                    bch.iter(|| {
                        let mut fw = FixedWindowHistogram::new(n, b, eps);
                        for &v in s {
                            fw.push(v);
                        }
                        fw.total_pushed()
                    });
                });
            }
        }
    }
    g.finish();
}

fn bench_fixed_window_maintain(c: &mut Criterion) {
    // The full Theorem 1 loop: push + CreateList materialization per
    // point, over one window's worth of points on a full window.
    let mut g = c.benchmark_group("fixed_window_maintain");
    g.sample_size(5);
    for &n in &[1_024usize, 4_096] {
        let stream = utilization_trace(n + 64, 8);
        g.throughput(Throughput::Elements(64));
        for &b in &[4usize, 8] {
            for &eps in &EPSS {
                let id = format!("n{n}_B{b}_eps{eps}");
                g.bench_with_input(BenchmarkId::from_parameter(id), &stream, |bch, s| {
                    bch.iter(|| {
                        let mut fw = FixedWindowHistogram::new(n, b, eps);
                        for &v in &s[..n] {
                            fw.push(v);
                        }
                        let mut acc = 0usize;
                        for &v in &s[n..] {
                            acc += fw.push_and_build(v).num_buckets();
                        }
                        acc
                    });
                });
            }
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_agglomerative_push,
    bench_fixed_window_push,
    bench_fixed_window_maintain
);
criterion_main!(benches);
