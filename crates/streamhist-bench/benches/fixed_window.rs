//! Criterion benches for the fixed-window algorithm (FIG6-CD /
//! THM1-SCALING micro view): push throughput and per-materialization
//! CreateList cost across window length, bucket budget and ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamhist_data::utilization_trace;
use streamhist_stream::{FixedWindowHistogram, NaiveSlidingWindow};

fn bench_push(c: &mut Criterion) {
    let stream = utilization_trace(65_536, 8);
    let mut g = c.benchmark_group("fixed_window_push");
    g.throughput(Throughput::Elements(stream.len() as u64));
    for window in [1_024usize, 4_096] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &window, |bch, &w| {
            bch.iter(|| {
                let mut fw = FixedWindowHistogram::new(w, 8, 0.5);
                for &v in &stream {
                    fw.push(v);
                }
                fw.total_pushed()
            });
        });
    }
    g.finish();
}

fn bench_materialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed_window_materialize");
    g.sample_size(10);
    for &(window, b, eps) in &[
        (512usize, 8usize, 0.5f64),
        (512, 8, 0.1),
        (2_048, 8, 0.5),
        (2_048, 16, 0.5),
        (2_048, 8, 0.1),
    ] {
        let stream = utilization_trace(window + 8, 9);
        let mut fw = FixedWindowHistogram::new(window, b, eps);
        for &v in &stream {
            fw.push(v);
        }
        let id = format!("n{window}_B{b}_eps{eps}");
        g.bench_function(BenchmarkId::from_parameter(id), |bch| {
            bch.iter(|| fw.histogram());
        });
    }
    g.finish();
}

fn bench_vs_naive_dp(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_materialize_vs_naive");
    g.sample_size(10);
    for window in [512usize, 2_048] {
        let stream = utilization_trace(window + 8, 10);
        let mut fw = FixedWindowHistogram::new(window, 8, 0.5);
        let mut naive = NaiveSlidingWindow::new(window, 8);
        for &v in &stream {
            fw.push(v);
            naive.push(v);
        }
        g.bench_function(BenchmarkId::new("createlist", window), |bch| {
            bch.iter(|| fw.histogram());
        });
        g.bench_function(BenchmarkId::new("naive_dp", window), |bch| {
            bch.iter(|| naive.histogram());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_push, bench_materialize, bench_vs_naive_dp);
criterion_main!(benches);
